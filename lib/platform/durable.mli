(** Crash-safe storage primitives with a pluggable I/O backend.

    Everything a search leaves behind — checkpoints, run ledgers, JSON
    reports, bench dumps — goes to disk through this layer, so
    crash-consistency is a property the test suite {e proves} over an
    adversarial in-memory backend instead of an assumption about the
    filesystem.

    Two backends ship:

    - {!fs}, the real filesystem: atomic publication is tmp-write +
      flush + [fsync] + rename + directory-[fsync], failures surface as
      the typed {!io_error} (never a bare [Sys_error]), and the [.tmp]
      staging file is removed on {e any} failure — a disk-full error
      does not leave droppings behind.
    - {!Mem}, a deterministic simulated disk that can kill the writer
      at any byte or operation boundary, lose or tear un-fsynced
      writes, roll back un-fsynced renames, and flip bits — the
      substrate of the crash-matrix property tests.

    The write protocol (see DESIGN.md §14): data is staged to
    [path ^ ".tmp"], fsynced, renamed over [path], and the containing
    directory is fsynced so the rename itself is durable.  A crash at
    any point leaves either the complete old file or the complete new
    file at [path] (plus possibly a stray [.tmp], which loaders ignore
    and [wayfinder fsck --repair] removes). *)

(** {1 Typed errors} *)

type io_error = {
  op : string;  (** The primitive that failed: ["write"], ["fsync"], … *)
  path : string;
  reason : string;  (** The underlying OS/simulator message. *)
}

exception Io_error of io_error
(** Raised by backend primitives; the high-level entry points catch it
    and return a [result]. *)

val io_error_to_string : io_error -> string

(** {1 Backends} *)

(** The primitive operations a backend must supply.  High-level
    protocols ([atomic_write], {!Checkpoint.save}) are generic code over
    these, which is what lets the fault backend inject a crash {e
    between} (or inside) any two primitives of a protocol. *)
type backend = {
  name : string;
  read : string -> string;  (** Whole-file read.  @raise Io_error *)
  write : string -> string -> unit;
      (** Create-or-truncate and write, {e buffered}: not durable until
          [fsync].  @raise Io_error *)
  append : string -> string -> unit;
      (** Append, buffered (creates the file if absent).  @raise Io_error *)
  fsync : string -> unit;  (** Make the file's bytes durable.  @raise Io_error *)
  rename : src:string -> dst:string -> unit;
      (** Atomic within the directory, but only durable after
          [fsync_dir].  @raise Io_error *)
  fsync_dir : string -> unit;
      (** Fsync the directory containing [path] (making renames and
          unlinks durable).  Best-effort on filesystems that reject
          directory fsync.  @raise Io_error *)
  remove : string -> unit;  (** Unlink; no-op if absent.  @raise Io_error *)
  exists : string -> bool;
}

val fs : backend
(** The real filesystem, via [Unix]. *)

(** {1 Protocols} *)

val atomic_write : ?backend:backend -> path:string -> string -> (unit, io_error) result
(** Durable atomic publication of [data] at [path]: stage to
    [path ^ ".tmp"], fsync, rename, fsync the directory.  On failure the
    staging file is removed (best-effort) and the previous content of
    [path], if any, is untouched. *)

val atomic_write_exn : ?backend:backend -> path:string -> string -> unit
(** @raise Io_error instead of returning it. *)

val generation_path : string -> int -> string
(** [generation_path path 0 = path]; [generation_path path i] is
    ["path.i"] for [i >= 1] — the naming scheme of rotated generations. *)

val atomic_publish : ?backend:backend -> ?keep:int -> path:string -> string -> unit
(** {!atomic_write} plus {e generation rotation}: stage to
    [path ^ ".tmp"], fsync, then (when [keep > 1] and [path] exists)
    shift [path] → [path.1] → … → [path.(keep-1)] before renaming the
    staging file into place and fsyncing the directory.  A crash at any
    boundary leaves a complete generation loadable under some name; a
    failed publish removes the staging file and leaves every existing
    generation untouched.  This is the protocol checkpoints have always
    used ({!Checkpoint.save} is a thin wrapper) and registry entries
    share.
    @raise Io_error on I/O failure (after cleanup).
    @raise Invalid_argument if [keep < 1]. *)

val read_file : ?backend:backend -> string -> (string, io_error) result

(** {1 The deterministic fault backend} *)

module Mem : sig
  type fs
  (** A simulated disk: per-file durable prefix tracking, a write-ahead
      of un-fsynced bytes, and an undo log of un-fsynced renames. *)

  exception Crashed
  (** Raised by a primitive when the fault plan's fuel runs out; the
      partial effect of the interrupted primitive (e.g. a torn write's
      prefix) has already been applied. *)

  val create :
    ?fuel:int ->
    ?keep_unsynced:bool ->
    ?keep_renames:bool ->
    unit ->
    fs
  (** [fuel] is the crash budget in simulated I/O cost units: every
      primitive costs 1, and writes/appends additionally cost 1 {e per
      byte}, so sweeping [fuel] over [0 .. total_cost] kills the writer
      at every operation {e and} byte boundary.  No [fuel] means never
      crash.  At crash time, un-fsynced bytes either survive up to the
      kill point ([keep_unsynced = true], the torn-tail case) or are
      lost entirely ([false], the lost-page-cache case); un-fsynced
      renames either survive ([keep_renames = true]) or roll back. *)

  val backend : fs -> backend

  val set_fuel : fs -> int -> unit
  (** Arm (or re-arm) the crash budget — lets a test build a valid
      baseline state with unlimited fuel, then inject the kill into the
      operation under test. *)

  val crash : fs -> unit
  (** Apply the post-crash state: truncate or drop un-fsynced bytes per
      the plan, roll back un-fsynced renames if the plan says so, and
      clear the fuel so recovery code can run against the result. *)

  val cost : fs -> int
  (** Total I/O cost units consumed so far — run the protocol once
      uninterrupted to learn the sweep range for the crash matrix. *)

  val set_file : fs -> string -> string -> unit
  (** God-mode: install durable, fsynced content directly. *)

  val get_file : fs -> string -> string option
  (** Durable content as a post-crash reader would see it. *)

  val list_files : fs -> string list
  (** Paths that currently exist, sorted. *)

  val flip_bit : fs -> string -> int -> unit
  (** Flip bit [i] (0-based over the whole file, MSB-first within each
      byte) of a file's durable content — the fsck corruption seeder.
      @raise Invalid_argument if out of range or the file is absent. *)
end
