module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Vclock = Wayfinder_simos.Vclock
module Rng = Wayfinder_tensor.Rng
module Stat = Wayfinder_tensor.Stat
module Obs = Wayfinder_obs

type budget = Iterations of int | Virtual_seconds of float

type stop_reason = Budget_exhausted | Invalid_cap

type result = {
  history : History.t;
  best : History.entry option;
  clock : Vclock.t;
  iterations : int;
  stop_reason : stop_reason;
  metrics : Obs.Metrics.snapshot;
}

(* Virtual phases the driver charges time under; Report and the benches
   read these histogram names back. *)
let virtual_phases =
  [ ("build", "driver.build"); ("boot", "driver.boot"); ("run", "driver.run");
    ("invalid", "driver.invalid"); ("retry", "driver.retry");
    ("quarantined", "driver.quarantined"); ("replay", "driver.replay") ]

let default_invalid_floor_s = 1.
let default_max_consecutive_invalid = 1000
let default_checkpoint_every = 10

(* Distinct evaluation calls within one iteration (retries, corroborating
   measurements) get distinct trial numbers, spread far from the iteration
   indices so a retry never collides with another iteration's noise or
   fault draw.  Call 0 uses the bare iteration index, so runs without
   resilience machinery see exactly the historical trial numbering. *)
let trial_stride = 1_000_003

let config_key config = Hashtbl.hash (Array.to_list config)

let run ?(seed = 0) ?clock ?on_iteration ?obs ?(invalid_floor_s = default_invalid_floor_s)
    ?(max_consecutive_invalid = default_max_consecutive_invalid)
    ?(resilience = Resilience.none) ?checkpoint_path
    ?(checkpoint_every = default_checkpoint_every) ?resume_from ~target ~algorithm ~budget ()
    =
  if invalid_floor_s <= 0. then invalid_arg "Driver.run: invalid_floor_s must be positive";
  if max_consecutive_invalid <= 0 then
    invalid_arg "Driver.run: max_consecutive_invalid must be positive";
  if checkpoint_every <= 0 then invalid_arg "Driver.run: checkpoint_every must be positive";
  Resilience.validate resilience;
  let clock = match clock with Some c -> c | None -> Vclock.create () in
  let obs = match obs with Some o -> o | None -> Obs.Recorder.create () in
  Obs.Recorder.set_virtual_now obs (fun () -> Vclock.now clock);
  Vclock.on_advance clock (fun dt -> Obs.Recorder.incr obs ~by:dt ~quiet:true "driver.virtual_s");
  let space = target.Target.space in
  let history = History.create target.Target.metric in
  let rng = Rng.create seed in
  let ctx =
    { Search_algorithm.space; metric = target.Target.metric; history; rng; obs }
  in
  (* The configuration of the last image actually built; the build task is
     skipped when only runtime parameters changed since then (§3.1). *)
  let last_built = ref None in
  let index = ref 0 in
  let consecutive_invalid = ref 0 in
  let stop = ref None in
  (* Quarantine bookkeeping: exhausted-retry episodes per config key, and
     the keys given up on. *)
  let strikes : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let quarantine : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* The budget is measured relative to the clock reading at start, so a
     caller-supplied, already-advanced clock does not silently shrink a
     [Virtual_seconds] budget — and so a resumed run keeps charging
     against the original origin. *)
  let start_seconds =
    match resume_from with
    | Some ck -> ck.Checkpoint.budget_start_seconds
    | None -> Vclock.now clock
  in
  (* ---------------- Resume: replay the recorded prefix ---------------- *)
  (match resume_from with
  | None -> ()
  | Some ck ->
    if Vclock.now clock <> ck.Checkpoint.budget_start_seconds then
      invalid_arg
        "Driver.run: resume requires a clock at the checkpoint's budget origin (pass a fresh \
         clock)";
    (* Rebuild the search algorithm's state by replaying the recorded
       history through its normal propose/observe path — everything except
       the target evaluations is deterministic given the seed, so the
       state (and the shared RNG stream) land exactly where the
       interrupted run left them.  Each replayed proposal is checked
       against the recorded one: a resume under a different algorithm,
       seed or option set fails loudly here instead of silently diverging. *)
    List.iter
      (fun (e : History.entry) ->
        let config = algorithm.Search_algorithm.propose ctx in
        if config <> e.History.config then
          invalid_arg
            (Printf.sprintf
               "Driver.run: resume replay diverged at iteration %d (different algorithm, seed \
                or options than the checkpointed run?)"
               e.History.index);
        Obs.Recorder.emit_span obs ~virtual_s:e.History.eval_seconds
          ~attrs:[ Obs.Attr.int "iteration" e.History.index ]
          "driver.replay";
        algorithm.Search_algorithm.observe ctx e;
        History.add history e;
        incr index)
      ck.Checkpoint.entries;
    if Rng.state rng <> ck.Checkpoint.rng_state then
      invalid_arg
        "Driver.run: resume replay left the RNG in a different state than the checkpoint";
    (* One exact advance instead of per-entry increments: float addition is
       not associative, and the resumed clock must be bit-identical to the
       interrupted one for the continuation to reproduce it. *)
    Vclock.advance clock (ck.Checkpoint.clock_seconds -. Vclock.now clock);
    consecutive_invalid := ck.Checkpoint.consecutive_invalid;
    last_built := ck.Checkpoint.last_built;
    List.iter (fun (k, n) -> Hashtbl.replace strikes k n) ck.Checkpoint.strikes;
    List.iter (fun k -> Hashtbl.replace quarantine k ()) ck.Checkpoint.quarantined;
    Obs.Recorder.incr obs ~quiet:true ~by:(float_of_int !index) "driver.replayed_iterations";
    if !consecutive_invalid >= max_consecutive_invalid then stop := Some Invalid_cap);
  let write_checkpoint () =
    match checkpoint_path with
    | None -> ()
    | Some path ->
      let sorted_strikes =
        List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) strikes [])
      in
      let sorted_quarantined =
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) quarantine [])
      in
      Checkpoint.save ~path
        { Checkpoint.seed;
          rng_state = Rng.state rng;
          clock_seconds = Vclock.now clock;
          budget_start_seconds = start_seconds;
          iterations = !index;
          consecutive_invalid = !consecutive_invalid;
          last_built = !last_built;
          strikes = sorted_strikes;
          quarantined = sorted_quarantined;
          entries = Array.to_list (History.entries history) };
      Obs.Recorder.incr obs ~quiet:true "driver.checkpoints"
  in
  let within_budget () =
    match budget with
    | Iterations n -> !index < n
    | Virtual_seconds s -> Vclock.now clock -. start_seconds < s
  in
  (* Per-phase virtual timeouts: a phase whose duration exceeds its cap is
     charged at the cap, later phases never ran, and the outcome is the
     corresponding timeout failure — a hung boot costs [boot_timeout_s],
     not an unbounded clock advance. *)
  let apply_timeouts (r : Target.eval_result) =
    let over cap_opt dur =
      match cap_opt with Some c when dur > c -> Some c | Some _ | None -> None
    in
    match over resilience.Resilience.build_timeout_s r.Target.build_s with
    | Some cap ->
      { Target.value = Error Failure.Build_timeout; build_s = cap; boot_s = 0.; run_s = 0. }
    | None -> (
      match over resilience.Resilience.boot_timeout_s r.Target.boot_s with
      | Some cap -> { r with Target.value = Error Failure.Boot_timeout; boot_s = cap; run_s = 0. }
      | None -> (
        match over resilience.Resilience.run_timeout_s r.Target.run_s with
        | Some cap -> { r with Target.value = Error Failure.Run_timeout; run_s = cap }
        | None -> r))
  in
  while !stop = None && within_budget () do
    let iteration_span =
      Obs.Recorder.span_begin obs ~attrs:[ Obs.Attr.int "iteration" !index ] "driver.iteration"
    in
    (* Every evaluation call this iteration (first attempt, retries,
       corroborating measurements) draws a distinct deterministic trial. *)
    let eval_calls = ref 0 in
    let call_target config =
      let trial = !index + (trial_stride * !eval_calls) in
      incr eval_calls;
      target.Target.evaluate ~trial config
    in
    let config, decide_seconds =
      Obs.Recorder.timed obs "driver.propose" (fun () -> algorithm.Search_algorithm.propose ctx)
    in
    let violations =
      Obs.Recorder.with_span obs "driver.validate" (fun () -> Space.validate space config)
    in
    let entry =
      match violations with
      | _ :: _ ->
        (* Liveness: an invalid proposal consumed a decision slot, so it
           must still advance the virtual clock — otherwise an algorithm
           stuck proposing invalid configurations spins a Virtual_seconds
           budget forever.  A fixed floor (rather than the measured
           wall-clock decision time) keeps virtual trajectories
           deterministic given the seed. *)
        incr consecutive_invalid;
        Vclock.advance clock invalid_floor_s;
        Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s
          ~attrs:[ Obs.Attr.int "consecutive" !consecutive_invalid ]
          "driver.invalid";
        Obs.Recorder.incr obs "driver.invalid_proposals";
        { History.index = !index; config; value = None;
          failure = Some Failure.Invalid_configuration; at_seconds = Vclock.now clock;
          eval_seconds = invalid_floor_s; built = false; decide_seconds }
      | [] ->
        consecutive_invalid := 0;
        let key = config_key config in
        if Hashtbl.mem quarantine key then begin
          (* Given up on: skip the testbed entirely, at a floor charge so a
             stuck algorithm re-proposing its quarantined favourite still
             drains a virtual budget. *)
          Vclock.advance clock invalid_floor_s;
          Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s "driver.quarantined";
          Obs.Recorder.incr obs "driver.quarantined_proposals";
          { History.index = !index; config; value = None;
            failure = Some Failure.Quarantined; at_seconds = Vclock.now clock;
            eval_seconds = invalid_floor_s; built = false; decide_seconds }
        end
        else begin
          let total_charged = ref 0. in
          let entry_built = ref false in
          (* Evaluate once and charge its (possibly capped) virtual phases.
             Corroborating re-measurements never charge a build: the image
             exists, only boot + run repeat. *)
          let perform_attempt ~remeasure =
            let r =
              Obs.Recorder.with_span obs "driver.evaluate" (fun () -> call_target config)
            in
            let r = apply_timeouts r in
            let needs_build =
              (not remeasure)
              &&
              match !last_built with
              | None -> true
              | Some previous ->
                not (Space.differs_only_in_stage space previous config Param.Runtime)
            in
            let build_charged = if needs_build then r.Target.build_s else 0. in
            let charged = build_charged +. r.Target.boot_s +. r.Target.run_s in
            Vclock.advance clock charged;
            total_charged := !total_charged +. charged;
            if remeasure then Obs.Recorder.incr obs "driver.remeasurements"
            else begin
              if needs_build then begin
                entry_built := true;
                Obs.Recorder.incr obs "driver.builds_charged"
              end
              else Obs.Recorder.incr obs "driver.rebuild_skips";
              Obs.Recorder.emit_span obs ~virtual_s:build_charged
                ~attrs:[ Obs.Attr.bool "rebuild_skipped" (not needs_build) ]
                "driver.build"
            end;
            let attrs = if remeasure then [ Obs.Attr.bool "remeasure" true ] else [] in
            Obs.Recorder.emit_span obs ~virtual_s:r.Target.boot_s ~attrs "driver.boot";
            Obs.Recorder.emit_span obs ~virtual_s:r.Target.run_s ~attrs "driver.run";
            (* Failed builds leave the previous image in place; anything
               that built (even if it later crashed) becomes the new
               baseline image. *)
            (match r.Target.value with
            | Error f when Failure.is_build_stage f -> ()
            | Error _ | Ok _ -> if needs_build then last_built := Some config);
            r.Target.value
          in
          (* Corroborate a successful measurement: the first sample stands
             unless a second one disagrees beyond the threshold, in which
             case up to [measure_repeats] samples are taken and the median
             voted on — rejecting heavy-tailed outliers, including a
             corrupted *first* sample. *)
          let corroborate v1 =
            if resilience.Resilience.measure_repeats < 2 then v1
            else begin
              let samples = ref [ v1 ] in
              let calls = ref 1 in
              let need_more () =
                !calls < resilience.Resilience.measure_repeats
                &&
                let s = Array.of_list !samples in
                Array.length s < 2
                || Resilience.disagreement s > resilience.Resilience.outlier_threshold
              in
              while need_more () do
                incr calls;
                match perform_attempt ~remeasure:true with
                | Ok v -> samples := v :: !samples
                | Error _ -> Obs.Recorder.incr obs "driver.remeasure_failures"
              done;
              let s = Array.of_list (List.rev !samples) in
              if Array.length s < 2 then v1
              else if
                Array.length s = 2
                && Resilience.disagreement s <= resilience.Resilience.outlier_threshold
              then v1
              else begin
                (* Either three-plus samples (a disagreement forced extra
                   measurements — the median votes the outlier out) or a
                   disagreeing pair whose tie-breaker failed (the median of
                   two at least halves the corruption). *)
                Obs.Recorder.incr obs "driver.outlier_rejections";
                (* Robust spread of the disputed sample set (histogram
                   [driver.sample_mad.value]) — how noisy the testbed's
                   measurements actually were. *)
                Obs.Recorder.observe obs ~quiet:true "driver.sample_mad" (Stat.mad s);
                Stat.median s
              end
            end
          in
          (* Bounded retry with exponential backoff for transient faults
             and timeouts; each backoff is charged to the virtual budget. *)
          let rec attempt k =
            match perform_attempt ~remeasure:false with
            | Ok v -> Ok (corroborate v)
            | Error f when Failure.retryable f && k < resilience.Resilience.retries ->
              let backoff = Resilience.backoff_s resilience ~attempt:k in
              Vclock.advance clock backoff;
              total_charged := !total_charged +. backoff;
              Obs.Recorder.emit_span obs ~virtual_s:backoff
                ~attrs:
                  [ Obs.Attr.int "attempt" (k + 1);
                    Obs.Attr.string "kind" (Failure.to_string f) ]
                "driver.retry";
              Obs.Recorder.incr obs "driver.retries";
              attempt (k + 1)
            | Error f ->
              if Failure.retryable f && resilience.Resilience.quarantine_after > 0 then begin
                (* The config exhausted its retries on transient failures:
                   one strike; enough strikes and it is quarantined. *)
                let n = (try Hashtbl.find strikes key with Not_found -> 0) + 1 in
                Hashtbl.replace strikes key n;
                if n >= resilience.Resilience.quarantine_after then begin
                  Hashtbl.replace quarantine key ();
                  Obs.Recorder.incr obs "driver.quarantines"
                end
              end;
              Error f
          in
          let final = attempt 0 in
          (match final with
          | Ok _ -> ()
          | Error f ->
            Obs.Recorder.incr obs (Printf.sprintf "driver.failures.%s" (Failure.to_string f)));
          { History.index = !index;
            config;
            value = (match final with Ok v -> Some v | Error _ -> None);
            failure = (match final with Ok _ -> None | Error f -> Some f);
            at_seconds = Vclock.now clock;
            eval_seconds = !total_charged;
            built = !entry_built;
            decide_seconds }
        end
    in
    (* Model update runs before the entry is archived so its cost can be
       folded into the recorded per-iteration decision time. *)
    let (), observe_seconds =
      Obs.Recorder.timed obs "driver.observe" (fun () ->
          algorithm.Search_algorithm.observe ctx entry)
    in
    let entry = { entry with History.decide_seconds = decide_seconds +. observe_seconds } in
    History.add history entry;
    Obs.Recorder.incr obs "driver.iterations";
    Obs.Recorder.observe obs ~quiet:true "driver.decide_s" entry.History.decide_seconds;
    Obs.Recorder.observe obs ~quiet:true "driver.eval_s" entry.History.eval_seconds;
    Obs.Recorder.span_end obs
      ~attrs:
        [ Obs.Attr.bool "built" entry.History.built;
          Obs.Attr.string "status"
            (match entry.History.failure with
            | Some f -> Failure.to_string f
            | None -> "ok") ]
      iteration_span;
    (match on_iteration with Some f -> f entry | None -> ());
    incr index;
    if !index mod checkpoint_every = 0 then write_checkpoint ();
    (* Safety cap: a search stuck on invalid proposals makes no progress
       the history could ever recover from — stop rather than burn the
       whole budget recording failures. *)
    if !consecutive_invalid >= max_consecutive_invalid then stop := Some Invalid_cap
  done;
  (* A final checkpoint so a completed (or capped) run leaves a coherent
     file behind even when the budget is not a multiple of the cadence. *)
  if !index mod checkpoint_every <> 0 then write_checkpoint ();
  Obs.Recorder.flush obs;
  { history;
    best = History.best history;
    clock;
    iterations = !index;
    stop_reason = (match !stop with Some r -> r | None -> Budget_exhausted);
    metrics = Obs.Recorder.snapshot obs }

let phase_virtual_seconds result =
  List.map
    (fun (label, name) -> (label, Obs.Metrics.sum result.metrics (name ^ ".virtual_s")))
    virtual_phases

let best_relative_to result ~default =
  (* A zero (or non-finite) reference yields inf/nan ratios, which is
     worse than no answer. *)
  if default = 0. || not (Float.is_finite default) then None
  else
    match History.best result.history with
    | None -> None
    | Some e -> (
      match e.History.value with
      | None -> None
      | Some v ->
        if (History.metric result.history).Metric.maximize then Some (v /. default)
        else Some (default /. v))
