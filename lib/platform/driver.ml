module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Vclock = Wayfinder_simos.Vclock
module Rng = Wayfinder_tensor.Rng
module Stat = Wayfinder_tensor.Stat
module Domain_pool = Wayfinder_tensor.Domain_pool
module Obs = Wayfinder_obs

type budget = Iterations of int | Virtual_seconds of float

type stop_reason = Budget_exhausted | Invalid_cap | Space_exhausted

type result = {
  history : History.t;
  best : History.entry option;
  clock : Vclock.t;
  iterations : int;
  stop_reason : stop_reason;
  pareto : Pareto.t;
  metrics : Obs.Metrics.snapshot;
}

(* Virtual phases the driver charges time under; Report and the benches
   read these histogram names back. *)
let virtual_phases =
  [ ("build", "driver.build"); ("boot", "driver.boot"); ("run", "driver.run");
    ("invalid", "driver.invalid"); ("retry", "driver.retry");
    ("quarantined", "driver.quarantined"); ("negative-cache", "driver.negative_cache");
    ("replay", "driver.replay") ]

let default_invalid_floor_s = 1.
let default_max_consecutive_invalid = 1000
let default_checkpoint_every = 10

(* Distinct evaluation calls within one iteration (retries, corroborating
   measurements) get distinct trial numbers, spread far from the iteration
   indices so a retry never collides with another iteration's noise or
   fault draw.  Call 0 uses the bare iteration index, so runs without
   resilience machinery see exactly the historical trial numbering. *)
let trial_stride = 1_000_003

(* Canonical, collision-free configuration identity.  The previous
   [Hashtbl.hash (Array.to_list config)] examined only a bounded prefix of
   the list, so configs differing past the ~10th parameter shared a key
   and silently pooled their quarantine strikes. *)
let config_key = Param.config_key

let diverged_msg index =
  Printf.sprintf
    "Driver.run: resume replay diverged at iteration %d (different algorithm, seed or options \
     than the checkpointed run?)"
    index

(* Per-phase virtual timeouts: a phase whose duration exceeds its cap is
   charged at the cap, later phases never ran, and the outcome is the
   corresponding timeout failure — a hung boot costs [boot_timeout_s],
   not an unbounded clock advance. *)
let apply_timeouts (resilience : Resilience.policy) (r : Target.eval_result) =
  let over cap_opt dur =
    match cap_opt with Some c when dur > c -> Some c | Some _ | None -> None
  in
  match over resilience.Resilience.build_timeout_s r.Target.build_s with
  | Some cap ->
    { Target.value = Error Failure.Build_timeout;
      build_s = cap;
      boot_s = 0.;
      run_s = 0.;
      objectives = [||] }
  | None -> (
    match over resilience.Resilience.boot_timeout_s r.Target.boot_s with
    | Some cap ->
      { r with Target.value = Error Failure.Boot_timeout; boot_s = cap; run_s = 0.; objectives = [||] }
    | None -> (
      match over resilience.Resilience.run_timeout_s r.Target.run_s with
      | Some cap -> { r with Target.value = Error Failure.Run_timeout; run_s = cap; objectives = [||] }
      | None -> r))

(* The explicit NaN policy: a target reporting [Ok v] with a non-finite
   [v] is a deterministic failure of the configuration, never a value —
   NaN must not reach the corroboration median, the history or the
   search algorithms (polymorphic float comparisons are not total with
   NaN). *)
let reject_non_finite (r : Target.eval_result) =
  match r.Target.value with
  | Ok v when not (Float.is_finite v) ->
    { r with Target.value = Error Failure.Non_finite_measurement; objectives = [||] }
  | Ok _ | Error _ -> r

(* ------------------------------------------------------------------ *)
(* The legacy strictly-sequential loop                                 *)
(* ------------------------------------------------------------------ *)

(* This is the driver as it existed before the multi-worker engine: one
   proposal, one synchronous evaluation, one observe per step.  It is
   kept verbatim as the executable specification the engine is tested
   against — the conformance suite asserts that [run ~workers:1] is
   byte-for-byte equivalent (history, metrics, virtual trajectory). *)
let run_sequential ?(seed = 0) ?clock ?on_iteration ?on_record ?obs
    ?(invalid_floor_s = default_invalid_floor_s)
    ?(max_consecutive_invalid = default_max_consecutive_invalid)
    ?(resilience = Resilience.none) ?checkpoint_path
    ?(checkpoint_every = default_checkpoint_every) ?(checkpoint_keep = 1) ?resume_from
    ?image_cache ?scenario ~target
    ~algorithm ~budget () =
  if invalid_floor_s <= 0. then invalid_arg "Driver.run: invalid_floor_s must be positive";
  if max_consecutive_invalid <= 0 then
    invalid_arg "Driver.run: max_consecutive_invalid must be positive";
  if checkpoint_every <= 0 then invalid_arg "Driver.run: checkpoint_every must be positive";
  if checkpoint_keep < 1 then invalid_arg "Driver.run: checkpoint_keep must be >= 1";
  Resilience.validate resilience;
  let clock = match clock with Some c -> c | None -> Vclock.create () in
  let obs = match obs with Some o -> o | None -> Obs.Recorder.create () in
  Obs.Recorder.set_virtual_now obs (fun () -> Vclock.now clock);
  Vclock.on_advance clock (fun dt -> Obs.Recorder.incr obs ~by:dt ~quiet:true "driver.virtual_s");
  let space = target.Target.space in
  let history = History.create target.Target.metric in
  (* The Pareto archive accumulates the non-dominated front of every
     successful objective vector.  Scalar targets report no vectors, so
     the archive stays empty and the scalar path is untouched.
     [Pareto.insert] is idempotent and order-independent, so replayed
     completions may re-insert freely. *)
  let archive = ref (Pareto.create ~spec:target.Target.objective_spec) in
  let record_pareto (e : History.entry) =
    match e.History.objectives with
    | Some v when e.History.failure = None ->
      archive := Pareto.insert !archive ~index:e.History.index ~objectives:v
    | Some _ | None -> ()
  in
  let rng = Rng.create seed in
  let ctx =
    { Search_algorithm.space; metric = target.Target.metric; history; rng; obs }
  in
  (* The shared content-addressed image cache (§3.1 rebuild-skip,
     generalized): the build task is skipped when the cache holds the
     image for this configuration's non-runtime projection.  The default
     capacity of 1 is exactly the historical "last built image" baseline
     — a single-entry LRU. *)
  let cache_config =
    match image_cache with Some c -> c | None -> Image_cache.capacity 1
  in
  let cache = Image_cache.create cache_config in
  let index = ref 0 in
  let consecutive_invalid = ref 0 in
  let stop = ref None in
  (* Quarantine bookkeeping: exhausted-retry episodes per config key, and
     the keys given up on. *)
  let strikes : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let quarantine : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* The budget is measured relative to the clock reading at start, so a
     caller-supplied, already-advanced clock does not silently shrink a
     [Virtual_seconds] budget — and so a resumed run keeps charging
     against the original origin. *)
  let start_seconds =
    match resume_from with
    | Some ck -> ck.Checkpoint.budget_start_seconds
    | None -> Vclock.now clock
  in
  (* ---------------- Resume: replay the recorded prefix ---------------- *)
  (match resume_from with
  | None -> ()
  | Some ck ->
    if Vclock.now clock <> ck.Checkpoint.budget_start_seconds then
      invalid_arg
        "Driver.run: resume requires a clock at the checkpoint's budget origin (pass a fresh \
         clock)";
    if ck.Checkpoint.workers <> 1 || ck.Checkpoint.inflight <> [] then
      invalid_arg
        "Driver.run_sequential: checkpoint was written by a multi-worker run (resume it with \
         Driver.run ~workers)";
    (* Rebuild the search algorithm's state by replaying the recorded
       history through its normal propose/observe path — everything except
       the target evaluations is deterministic given the seed, so the
       state (and the shared RNG stream) land exactly where the
       interrupted run left them.  Each replayed proposal is checked
       against the recorded one: a resume under a different algorithm,
       seed or option set fails loudly here instead of silently diverging. *)
    List.iter
      (fun (e : History.entry) ->
        let config = algorithm.Search_algorithm.propose ctx in
        if config <> e.History.config then invalid_arg (diverged_msg e.History.index);
        Obs.Recorder.emit_span obs ~virtual_s:e.History.eval_seconds
          ~attrs:[ Obs.Attr.int "iteration" e.History.index ]
          "driver.replay";
        algorithm.Search_algorithm.observe ctx e;
        History.add history e;
        record_pareto e;
        incr index)
      ck.Checkpoint.entries;
    if Rng.state rng <> ck.Checkpoint.rng_state then
      invalid_arg
        "Driver.run: resume replay left the RNG in a different state than the checkpoint";
    (* One exact advance instead of per-entry increments: float addition is
       not associative, and the resumed clock must be bit-identical to the
       interrupted one for the continuation to reproduce it. *)
    Vclock.advance clock (ck.Checkpoint.clock_seconds -. Vclock.now clock);
    consecutive_invalid := ck.Checkpoint.consecutive_invalid;
    if ck.Checkpoint.cache_capacity <> Image_cache.cap cache then
      invalid_arg "Driver.run: resume requires the same image-cache capacity as the checkpoint";
    (* Restore contents and recency directly (least recently used first so
       the head of the persisted list ends up most recent): replay skips
       the evaluations that populated the cache. *)
    List.iter
      (fun (k, e) -> ignore (Image_cache.add cache k e))
      (List.rev ck.Checkpoint.cache);
    List.iter (fun (k, n) -> Hashtbl.replace strikes k n) ck.Checkpoint.strikes;
    archive := Pareto.of_list ~spec:target.Target.objective_spec ck.Checkpoint.pareto;
    (match (scenario, ck.Checkpoint.trace_cursor) with
    | Some sc, Some c -> Scenario.set_cursor sc c
    | None, None -> ()
    | Some _, None ->
      invalid_arg "Driver.run: checkpoint was written without a scenario; resume without one"
    | None, Some _ ->
      invalid_arg "Driver.run: checkpoint was written with a scenario; resume with the same one");
    Obs.Recorder.incr obs ~quiet:true ~by:(float_of_int !index) "driver.replayed_iterations";
    if !consecutive_invalid >= max_consecutive_invalid then stop := Some Invalid_cap);
  let write_checkpoint () =
    match checkpoint_path with
    | None -> ()
    | Some path ->
      (* Ordering is defined by the canonical key, not polymorphic compare:
         the checkpoint bytes for a given quarantine state are unique. *)
      let sorted_strikes =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun k n acc -> (k, n) :: acc) strikes [])
      in
      let sorted_quarantined =
        List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) quarantine [])
      in
      Checkpoint.save ~keep:checkpoint_keep ~path
        { Checkpoint.seed;
          rng_state = Rng.state rng;
          clock_seconds = Vclock.now clock;
          budget_start_seconds = start_seconds;
          iterations = !index;
          workers = 1;
          consecutive_invalid = !consecutive_invalid;
          cache_capacity = Image_cache.cap cache;
          cache = Image_cache.to_alist cache;
          strikes = sorted_strikes;
          quarantined = sorted_quarantined;
          entries = Array.to_list (History.entries history);
          inflight = [];
          pareto = Pareto.to_list !archive;
          trace_cursor = Option.map Scenario.cursor scenario };
      Obs.Recorder.incr obs ~quiet:true "driver.checkpoints"
  in
  let within_budget () =
    match budget with
    | Iterations n -> !index < n
    | Virtual_seconds s -> Vclock.now clock -. start_seconds < s
  in
  while !stop = None && within_budget () do
    let iteration_span =
      Obs.Recorder.span_begin obs ~attrs:[ Obs.Attr.int "iteration" !index ] "driver.iteration"
    in
    (* Every evaluation call this iteration (first attempt, retries,
       corroborating measurements) draws a distinct deterministic trial. *)
    let eval_calls = ref 0 in
    let call_target config =
      let trial = !index + (trial_stride * !eval_calls) in
      incr eval_calls;
      target.Target.evaluate ~trial config
    in
    let proposed, decide_seconds =
      Obs.Recorder.timed obs "driver.propose" (fun () ->
          try Some (algorithm.Search_algorithm.propose ctx)
          with Search_algorithm.Space_exhausted -> None)
    in
    match proposed with
    | None ->
      (* The algorithm enumerated its whole space: stop cleanly instead of
         letting the exception escape or looping on duplicates. *)
      Obs.Recorder.span_end obs
        ~attrs:[ Obs.Attr.string "status" "space_exhausted" ]
        iteration_span;
      stop := Some Space_exhausted
    | Some config ->
      (* Pre-evaluation belief capture: what the model thought about this
         proposal before the testbed answered.  Only computed when a
         consumer is attached — [predict] is pure, so recorded and
         unrecorded runs stay byte-for-byte identical. *)
      let belief =
        match (on_record, algorithm.Search_algorithm.predict) with
        | Some _, Some p -> Some (p ctx config)
        | (Some _ | None), _ -> None
      in
      let violations =
        Obs.Recorder.with_span obs "driver.validate" (fun () -> Space.validate space config)
      in
      let entry =
        match violations with
        | _ :: _ ->
          (* Liveness: an invalid proposal consumed a decision slot, so it
             must still advance the virtual clock — otherwise an algorithm
             stuck proposing invalid configurations spins a Virtual_seconds
             budget forever.  A fixed floor (rather than the measured
             wall-clock decision time) keeps virtual trajectories
             deterministic given the seed. *)
          incr consecutive_invalid;
          Vclock.advance clock invalid_floor_s;
          Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s
            ~attrs:[ Obs.Attr.int "consecutive" !consecutive_invalid ]
            "driver.invalid";
          Obs.Recorder.incr obs "driver.invalid_proposals";
          { History.index = !index; config; value = None;
            failure = Some Failure.Invalid_configuration; at_seconds = Vclock.now clock;
            eval_seconds = invalid_floor_s; built = false; decide_seconds; objectives = None }
        | [] ->
          consecutive_invalid := 0;
          let key = config_key config in
          if Hashtbl.mem quarantine key then begin
            (* Given up on: skip the testbed entirely, at a floor charge so a
               stuck algorithm re-proposing its quarantined favourite still
               drains a virtual budget. *)
            Vclock.advance clock invalid_floor_s;
            Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s "driver.quarantined";
            Obs.Recorder.incr obs "driver.quarantined_proposals";
            { History.index = !index; config; value = None;
              failure = Some Failure.Quarantined; at_seconds = Vclock.now clock;
              eval_seconds = invalid_floor_s; built = false; decide_seconds; objectives = None }
          end
          else begin
            let image_key = Space.stage_key space config in
            match Image_cache.peek cache image_key with
            | Some { Image_cache.status = Image_cache.Build_failed f; _ } ->
              (* Negative hit: the image for this non-runtime projection is
                 known not to build.  Serve the cached failure at a floor
                 charge instead of re-running a doomed build. *)
              Image_cache.touch cache image_key;
              Vclock.advance clock invalid_floor_s;
              Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s
                ~attrs:[ Obs.Attr.bool "cache_hit" true ]
                "driver.negative_cache";
              Obs.Recorder.incr obs "driver.image_cache.negative_hits";
              { History.index = !index; config; value = None;
                failure = Some f; at_seconds = Vclock.now clock;
                eval_seconds = invalid_floor_s; built = false; decide_seconds; objectives = None }
            | Some { Image_cache.status = Image_cache.Built; _ } | None ->
            (* A real evaluation consumes trace time: the scenario cursor
               advances exactly once per launch, before the first attempt,
               so the slice the target replays is a function of the launch
               order alone — identical across worker counts. *)
            (match scenario with Some sc -> Scenario.advance sc | None -> ());
            let last_objectives = ref [||] in
            let total_charged = ref 0. in
            let entry_built = ref false in
            (* Evaluate once and charge its (possibly capped) virtual phases.
               Corroborating re-measurements never charge a build: the image
               exists, only boot + run repeat. *)
            let perform_attempt ~remeasure =
              let r =
                Obs.Recorder.with_span obs "driver.evaluate" (fun () -> call_target config)
              in
              let r = apply_timeouts resilience r in
              let r = reject_non_finite r in
              (* The vector of the attempt that stood: corroborating
                 re-measurements vote only on the scalar. *)
              (match r.Target.value with
              | Ok _ when not remeasure -> last_objectives := r.Target.objectives
              | Ok _ | Error _ -> ());
              let cache_hit =
                if remeasure then false
                else
                  match Image_cache.find cache image_key with
                  | Some { Image_cache.status = Image_cache.Built; origin } ->
                    Obs.Recorder.incr obs "driver.image_cache.hits";
                    if origin <> 0 then Obs.Recorder.incr obs "driver.image_cache.cross_slot_hits";
                    true
                  | Some { Image_cache.status = Image_cache.Build_failed _; _ } | None ->
                    Obs.Recorder.incr obs "driver.image_cache.misses";
                    false
              in
              let needs_build = (not remeasure) && not cache_hit in
              let build_charged = if needs_build then r.Target.build_s else 0. in
              let charged = build_charged +. r.Target.boot_s +. r.Target.run_s in
              Vclock.advance clock charged;
              total_charged := !total_charged +. charged;
              if remeasure then Obs.Recorder.incr obs "driver.remeasurements"
              else begin
                if needs_build then begin
                  entry_built := true;
                  Obs.Recorder.incr obs "driver.builds_charged"
                end
                else Obs.Recorder.incr obs "driver.rebuild_skips";
                Obs.Recorder.emit_span obs ~virtual_s:build_charged
                  ~attrs:
                    [ Obs.Attr.bool "rebuild_skipped" (not needs_build);
                      Obs.Attr.bool "cache_hit" cache_hit ]
                  "driver.build"
              end;
              let attrs = if remeasure then [ Obs.Attr.bool "remeasure" true ] else [] in
              Obs.Recorder.emit_span obs ~virtual_s:r.Target.boot_s ~attrs "driver.boot";
              Obs.Recorder.emit_span obs ~virtual_s:r.Target.run_s ~attrs "driver.run";
              (* Retry semantics (pinned): a build-stage failure leaves no
                 image, so the cache is NOT updated — a retried transient
                 build failure misses again and legitimately re-charges the
                 build.  Anything that built (even if it later crashed or
                 timed out post-build) caches Built, so a retry skips the
                 rebuild and build_s is charged exactly once.  Deterministic
                 build failures are negative-cached instead: that image
                 provably cannot build, and re-proposals are served the
                 failure at a floor charge. *)
              (match r.Target.value with
              | Error f when Failure.is_build_stage f ->
                if needs_build && Failure.klass f = Failure.Deterministic then begin
                  match
                    Image_cache.add cache image_key
                      { Image_cache.status = Image_cache.Build_failed f; origin = 0 }
                  with
                  | Some _ -> Obs.Recorder.incr obs "driver.image_cache.evictions"
                  | None -> ()
                end
              | Error _ | Ok _ ->
                if needs_build then begin
                  match
                    Image_cache.add cache image_key
                      { Image_cache.status = Image_cache.Built; origin = 0 }
                  with
                  | Some _ -> Obs.Recorder.incr obs "driver.image_cache.evictions"
                  | None -> ()
                end);
              r.Target.value
            in
            (* Corroborate a successful measurement: the first sample stands
               unless a second one disagrees beyond the threshold, in which
               case up to [measure_repeats] samples are taken and the median
               voted on — rejecting heavy-tailed outliers, including a
               corrupted *first* sample. *)
            let corroborate v1 =
              if resilience.Resilience.measure_repeats < 2 then v1
              else begin
                let samples = ref [ v1 ] in
                let calls = ref 1 in
                let need_more () =
                  !calls < resilience.Resilience.measure_repeats
                  &&
                  let s = Array.of_list !samples in
                  Array.length s < 2
                  || Resilience.disagreement s > resilience.Resilience.outlier_threshold
                in
                while need_more () do
                  incr calls;
                  match perform_attempt ~remeasure:true with
                  | Ok v -> samples := v :: !samples
                  | Error _ -> Obs.Recorder.incr obs "driver.remeasure_failures"
                done;
                let s = Array.of_list (List.rev !samples) in
                if Array.length s < 2 then v1
                else if
                  Array.length s = 2
                  && Resilience.disagreement s <= resilience.Resilience.outlier_threshold
                then v1
                else begin
                  (* Either three-plus samples (a disagreement forced extra
                     measurements — the median votes the outlier out) or a
                     disagreeing pair whose tie-breaker failed (the median of
                     two at least halves the corruption). *)
                  Obs.Recorder.incr obs "driver.outlier_rejections";
                  (* Robust spread of the disputed sample set (histogram
                     [driver.sample_mad.value]) — how noisy the testbed's
                     measurements actually were. *)
                  Obs.Recorder.observe obs ~quiet:true "driver.sample_mad" (Stat.mad s);
                  Stat.median s
                end
              end
            in
            (* Bounded retry with exponential backoff for transient faults
               and timeouts; each backoff is charged to the virtual budget. *)
            let rec attempt k =
              match perform_attempt ~remeasure:false with
              | Ok v -> Ok (corroborate v)
              | Error f when Failure.retryable f && k < resilience.Resilience.retries ->
                let backoff = Resilience.backoff_s resilience ~attempt:k in
                Vclock.advance clock backoff;
                total_charged := !total_charged +. backoff;
                Obs.Recorder.emit_span obs ~virtual_s:backoff
                  ~attrs:
                    [ Obs.Attr.int "attempt" (k + 1);
                      Obs.Attr.string "kind" (Failure.to_string f) ]
                  "driver.retry";
                Obs.Recorder.incr obs "driver.retries";
                attempt (k + 1)
              | Error f ->
                if Failure.retryable f && resilience.Resilience.quarantine_after > 0 then begin
                  (* The config exhausted its retries on transient failures:
                     one strike; enough strikes and it is quarantined. *)
                  let n = (try Hashtbl.find strikes key with Not_found -> 0) + 1 in
                  Hashtbl.replace strikes key n;
                  if n >= resilience.Resilience.quarantine_after then begin
                    Hashtbl.replace quarantine key ();
                    Obs.Recorder.incr obs "driver.quarantines"
                  end
                end;
                Error f
            in
            let final = attempt 0 in
            (match final with
            | Ok _ -> ()
            | Error f ->
              Obs.Recorder.incr obs (Printf.sprintf "driver.failures.%s" (Failure.to_string f)));
            { History.index = !index;
              config;
              value = (match final with Ok v -> Some v | Error _ -> None);
              failure = (match final with Ok _ -> None | Error f -> Some f);
              at_seconds = Vclock.now clock;
              eval_seconds = !total_charged;
              built = !entry_built;
              decide_seconds;
              objectives =
                (match final with
                | Ok _ when Array.length !last_objectives > 0 -> Some !last_objectives
                | Ok _ | Error _ -> None) }
          end
      in
      (* Model update runs before the entry is archived so its cost can be
         folded into the recorded per-iteration decision time. *)
      let (), observe_seconds =
        Obs.Recorder.timed obs "driver.observe" (fun () ->
            algorithm.Search_algorithm.observe ctx entry)
      in
      let entry = { entry with History.decide_seconds = decide_seconds +. observe_seconds } in
      History.add history entry;
      record_pareto entry;
      Obs.Recorder.incr obs "driver.iterations";
      Obs.Recorder.observe obs ~quiet:true "driver.decide_s" entry.History.decide_seconds;
      Obs.Recorder.observe obs ~quiet:true "driver.eval_s" entry.History.eval_seconds;
      Obs.Recorder.span_end obs
        ~attrs:
          [ Obs.Attr.bool "built" entry.History.built;
            Obs.Attr.string "status"
              (match entry.History.failure with
              | Some f -> Failure.to_string f
              | None -> "ok") ]
        iteration_span;
      (match on_record with Some f -> f entry belief | None -> ());
      (match on_iteration with Some f -> f entry | None -> ());
      (* Keep attached trace sinks current with the ledger: a live
         consumer (watch --follow, metrics export) sees every completed
         iteration, not just what the final flush drains. *)
      Obs.Recorder.flush obs;
      incr index;
      if !index mod checkpoint_every = 0 then write_checkpoint ();
      (* Safety cap: a search stuck on invalid proposals makes no progress
         the history could ever recover from — stop rather than burn the
         whole budget recording failures. *)
      if !consecutive_invalid >= max_consecutive_invalid then stop := Some Invalid_cap
  done;
  (* A final checkpoint so a completed (or capped) run leaves a coherent
     file behind even when the budget is not a multiple of the cadence. *)
  if !index mod checkpoint_every <> 0 then write_checkpoint ();
  Obs.Recorder.flush obs;
  { history;
    best = History.best history;
    clock;
    iterations = !index;
    stop_reason = (match !stop with Some r -> r | None -> Budget_exhausted);
    pareto = !archive;
    metrics = Obs.Recorder.snapshot obs }

(* ------------------------------------------------------------------ *)
(* The multi-worker discrete-event engine                              *)
(* ------------------------------------------------------------------ *)

(* [workers] virtual evaluation slots share one virtual clock.  A launch
   eagerly computes a task's whole outcome — evaluation is a pure
   function of (trial, configuration), so retries, timeouts,
   corroboration and the per-slot rebuild skip can all be decided at
   launch time — and schedules its completion on the clock's min-heap as
   the exact chain of charges a sequential driver would have applied.
   The main loop pops the earliest completion, records its entry, and
   refills free slots with fresh proposals (batched through
   [propose_batch] when [batch > 1]).

   With [workers = 1] the slot launches and completes with the clock
   untouched in between, so every advance, span and counter lands in the
   same order, with the same float values, as [run_sequential]: the two
   are byte-for-byte equivalent (the conformance suite checks this). *)
let run ?(seed = 0) ?clock ?on_iteration ?on_record ?obs
    ?(invalid_floor_s = default_invalid_floor_s)
    ?(max_consecutive_invalid = default_max_consecutive_invalid)
    ?(resilience = Resilience.none) ?checkpoint_path
    ?(checkpoint_every = default_checkpoint_every) ?(checkpoint_keep = 1) ?resume_from
    ?(workers = 1) ?batch
    ?image_cache ?pool ?scenario ~target ~algorithm ~budget () =
  if invalid_floor_s <= 0. then invalid_arg "Driver.run: invalid_floor_s must be positive";
  if max_consecutive_invalid <= 0 then
    invalid_arg "Driver.run: max_consecutive_invalid must be positive";
  if checkpoint_every <= 0 then invalid_arg "Driver.run: checkpoint_every must be positive";
  if checkpoint_keep < 1 then invalid_arg "Driver.run: checkpoint_keep must be >= 1";
  if workers <= 0 then invalid_arg "Driver.run: workers must be positive";
  let batch = match batch with Some b -> b | None -> workers in
  if batch <= 0 then invalid_arg "Driver.run: batch must be positive";
  Resilience.validate resilience;
  let clock = match clock with Some c -> c | None -> Vclock.create () in
  let obs = match obs with Some o -> o | None -> Obs.Recorder.create () in
  Obs.Recorder.set_virtual_now obs (fun () -> Vclock.now clock);
  Vclock.on_advance clock (fun dt -> Obs.Recorder.incr obs ~by:dt ~quiet:true "driver.virtual_s");
  let space = target.Target.space in
  let history = History.create target.Target.metric in
  (* The Pareto archive accumulates the non-dominated front of every
     successful objective vector.  Scalar targets report no vectors, so
     the archive stays empty and the scalar path is untouched.
     [Pareto.insert] is idempotent and order-independent, so replayed
     completions may re-insert freely. *)
  let archive = ref (Pareto.create ~spec:target.Target.objective_spec) in
  let record_pareto (e : History.entry) =
    match e.History.objectives with
    | Some v when e.History.failure = None ->
      archive := Pareto.insert !archive ~index:e.History.index ~objectives:v
    | Some _ | None -> ()
  in
  let rng = Rng.create seed in
  let ctx =
    { Search_algorithm.space; metric = target.Target.metric; history; rng; obs }
  in
  let multi = workers > 1 in
  (* The image cache is shared by every slot: a slot skips the build task
     when *any* slot already built (or proved unbuildable) the image for
     that non-runtime projection.  The default capacity equals the worker
     count — the same image budget the old per-slot baselines had, but
     pooled; with [workers = 1] that is a single-entry LRU, i.e. exactly
     the sequential oracle's baseline. *)
  let cache_config =
    match image_cache with Some c -> c | None -> Image_cache.capacity workers
  in
  let cache = Image_cache.create cache_config in
  let free_slots = ref (List.init workers Fun.id) in
  let take_slot () =
    match !free_slots with
    | [] -> assert false
    | s :: rest ->
      free_slots := rest;
      s
  in
  let release_slot s =
    let rec ins = function
      | [] -> [ s ]
      | x :: rest when x < s -> x :: ins rest
      | l -> s :: l
    in
    free_slots := ins !free_slots
  in
  let proposal_seq = ref 0 in
  let completed = ref 0 in
  let consecutive_invalid = ref 0 in
  let stop = ref None in
  let exhausted = ref false in
  let note_exhausted () =
    exhausted := true;
    if !stop = None then stop := Some Space_exhausted
  in
  let strikes : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let quarantine : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* Launched-but-not-completed tasks, keyed by proposal index — what a
     checkpoint persists as in-flight slot state. *)
  let inflight_tbl : (int, Checkpoint.inflight) Hashtbl.t = Hashtbl.create 16 in
  let start_seconds =
    match resume_from with
    | Some ck -> ck.Checkpoint.budget_start_seconds
    | None -> Vclock.now clock
  in
  (* ---------------- Resume bookkeeping ---------------- *)
  (* The engine resumes by re-running its own deterministic timeline:
     recorded entries are re-proposed (rebuilding algorithm + RNG state),
     verified, and scheduled to complete at their recorded times; tasks
     that were in flight when the checkpoint was written are re-launched
     with their persisted outcome; everything after that runs live.  The
     evaluated phases of replayed work were charged before the kill, so
     on completion they are booked under [driver.replay] — keeping the
     phase-sum invariant — instead of re-emitting build/boot/run. *)
  let replay_entries : (int, History.entry) Hashtbl.t = Hashtbl.create 64 in
  let replay_inflight : (int, Checkpoint.inflight) Hashtbl.t = Hashtbl.create 16 in
  let total_replayed =
    match resume_from with
    | None -> 0
    | Some ck -> ck.Checkpoint.iterations + List.length ck.Checkpoint.inflight
  in
  let rng_checked = ref (resume_from = None) in
  (match resume_from with
  | None -> ()
  | Some ck ->
    if Vclock.now clock <> ck.Checkpoint.budget_start_seconds then
      invalid_arg
        "Driver.run: resume requires a clock at the checkpoint's budget origin (pass a fresh \
         clock)";
    if ck.Checkpoint.workers <> workers then
      invalid_arg "Driver.run: resume requires the same ~workers as the checkpointed run";
    if ck.Checkpoint.cache_capacity <> Image_cache.cap cache then
      invalid_arg "Driver.run: resume requires the same image-cache capacity as the checkpoint";
    consecutive_invalid := ck.Checkpoint.consecutive_invalid;
    (* Cache mutations happen at launch time and replayed launches skip
       them, so the persisted state — contents and recency — is restored
       verbatim (least recently used inserted first). *)
    List.iter
      (fun (k, e) -> ignore (Image_cache.add cache k e))
      (List.rev ck.Checkpoint.cache);
    List.iter (fun (k, n) -> Hashtbl.replace strikes k n) ck.Checkpoint.strikes;
    archive := Pareto.of_list ~spec:target.Target.objective_spec ck.Checkpoint.pareto;
    (match (scenario, ck.Checkpoint.trace_cursor) with
    | Some sc, Some c -> Scenario.set_cursor sc c
    | None, None -> ()
    | Some _, None ->
      invalid_arg "Driver.run: checkpoint was written without a scenario; resume without one"
    | None, Some _ ->
      invalid_arg "Driver.run: checkpoint was written with a scenario; resume with the same one");
    List.iter
      (fun (e : History.entry) -> Hashtbl.replace replay_entries e.History.index e)
      ck.Checkpoint.entries;
    List.iter
      (fun (r : Checkpoint.inflight) -> Hashtbl.replace replay_inflight r.Checkpoint.index r)
      ck.Checkpoint.inflight;
    Obs.Recorder.incr obs ~quiet:true
      ~by:(float_of_int ck.Checkpoint.iterations)
      "driver.replayed_iterations");
  let check_rng () =
    if (not !rng_checked) && !proposal_seq >= total_replayed then begin
      rng_checked := true;
      match resume_from with
      | Some ck when Rng.state rng <> ck.Checkpoint.rng_state ->
        invalid_arg
          "Driver.run: resume replay left the RNG in a different state than the checkpoint"
      | Some _ | None -> ()
    end
  in
  (* ---------------- Speculative parallel prefetch ---------------- *)
  (* With a domain pool, the first-attempt evaluation of every launch in a
     batch is computed in parallel *before* the launches run, keyed by its
     deterministic trial number; [call_target] then consumes the memoised
     result.  Evaluation is a pure function of (trial, configuration), so
     the memo is observably indistinguishable from evaluating inline —
     retries and corroborating re-measurements use distinct trial numbers
     and still evaluate inline, and a speculated result that a launch
     never consumes (a config quarantined or negative-cached by an
     *earlier* launch of the same batch) is simply dropped.  Nothing here
     touches the recorder, the RNG or the clock, so pooled runs stay
     byte-for-byte equal to sequential ones. *)
  let prefetched : (int, Target.eval_result) Hashtbl.t = Hashtbl.create 64 in
  let prefetch_batch pending =
    match (pool, scenario) with
    | None, _ | Some _, Some _ ->
      (* A scenario target reads the trace cursor at evaluation time, so
         speculating first attempts out of launch order would replay the
         wrong trace slice; scenario runs evaluate inline, in order. *)
      ()
    | Some p, None ->
      let work =
        List.filter
          (fun (idx, config) ->
            (not (Hashtbl.mem replay_entries idx))
            && (not (Hashtbl.mem replay_inflight idx))
            && Space.validate space config = []
            && (not (Hashtbl.mem quarantine (config_key config)))
            &&
            match Image_cache.peek cache (Space.stage_key space config) with
            | Some { Image_cache.status = Image_cache.Build_failed _; _ } -> false
            | Some { Image_cache.status = Image_cache.Built; _ } | None -> true)
          pending
      in
      Array.iter
        (fun (idx, r) -> Hashtbl.replace prefetched idx r)
        (Domain_pool.map p
           (fun (idx, config) -> (idx, target.Target.evaluate ~trial:idx config))
           (Array.of_list work))
  in
  let write_checkpoint () =
    match checkpoint_path with
    | None -> ()
    | Some path ->
      (* Ordering is defined by the canonical key, not polymorphic compare:
         the checkpoint bytes for a given quarantine state are unique. *)
      let sorted_strikes =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun k n acc -> (k, n) :: acc) strikes [])
      in
      let sorted_quarantined =
        List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) quarantine [])
      in
      let inflight =
        List.sort
          (fun (a : Checkpoint.inflight) b -> compare a.Checkpoint.index b.Checkpoint.index)
          (Hashtbl.fold (fun _ r acc -> r :: acc) inflight_tbl [])
      in
      Checkpoint.save ~keep:checkpoint_keep ~path
        { Checkpoint.seed;
          rng_state = Rng.state rng;
          clock_seconds = Vclock.now clock;
          budget_start_seconds = start_seconds;
          iterations = !completed;
          workers;
          consecutive_invalid = !consecutive_invalid;
          cache_capacity = Image_cache.cap cache;
          cache = Image_cache.to_alist cache;
          strikes = sorted_strikes;
          quarantined = sorted_quarantined;
          entries = Array.to_list (History.entries history);
          inflight;
          pareto = Pareto.to_list !archive;
          trace_cursor = Option.map Scenario.cursor scenario };
      Obs.Recorder.incr obs ~quiet:true "driver.checkpoints"
  in
  let within_budget () =
    match budget with
    | Iterations n -> !proposal_seq < n
    | Virtual_seconds s -> Vclock.now clock -. start_seconds < s
  in
  (* ---------------- Completion side ---------------- *)
  let complete_task slot ~iteration_span ~belief ~replayed_phases (entry : History.entry) =
    if replayed_phases then
      Obs.Recorder.emit_span obs ~virtual_s:entry.History.eval_seconds
        ~attrs:[ Obs.Attr.int "iteration" entry.History.index ]
        "driver.replay";
    (* Model update runs before the entry is archived so its cost can be
       folded into the recorded per-iteration decision time. *)
    let (), observe_seconds =
      Obs.Recorder.timed obs "driver.observe" (fun () ->
          algorithm.Search_algorithm.observe ctx entry)
    in
    let entry =
      { entry with History.decide_seconds = entry.History.decide_seconds +. observe_seconds }
    in
    History.add history entry;
    record_pareto entry;
    Obs.Recorder.incr obs "driver.iterations";
    Obs.Recorder.observe obs ~quiet:true "driver.decide_s" entry.History.decide_seconds;
    Obs.Recorder.observe obs ~quiet:true "driver.eval_s" entry.History.eval_seconds;
    (match iteration_span with
    | Some span ->
      Obs.Recorder.span_end obs
        ~attrs:
          [ Obs.Attr.bool "built" entry.History.built;
            Obs.Attr.string "status"
              (match entry.History.failure with
              | Some f -> Failure.to_string f
              | None -> "ok") ]
        span
    | None -> ());
    if multi then begin
      Obs.Recorder.emit_span obs ~virtual_s:entry.History.eval_seconds
        ~attrs:
          [ Obs.Attr.int "slot" slot; Obs.Attr.int "iteration" entry.History.index ]
        "driver.worker";
      Obs.Recorder.observe obs ~quiet:true "driver.worker.busy"
        (float_of_int (workers - List.length !free_slots))
    end;
    Hashtbl.remove inflight_tbl entry.History.index;
    release_slot slot;
    incr completed;
    (match on_record with Some f -> f entry belief | None -> ());
    (match on_iteration with Some f -> f entry | None -> ());
    (* As in the sequential loop: live trace consumers track the ledger. *)
    Obs.Recorder.flush obs;
    if !completed mod checkpoint_every = 0 then write_checkpoint ()
  in
  (* A replayed completion: the entry is already final (observe cost
     included), so it is fed to the algorithm and archived without
     re-announcing or re-checkpointing — mirroring the sequential replay. *)
  let complete_replayed slot (e : History.entry) =
    Obs.Recorder.emit_span obs ~virtual_s:e.History.eval_seconds
      ~attrs:[ Obs.Attr.int "iteration" e.History.index ]
      "driver.replay";
    algorithm.Search_algorithm.observe ctx e;
    History.add history e;
    record_pareto e;
    release_slot slot;
    incr completed
  in
  (* ---------------- Launch side ---------------- *)
  let schedule_outcome slot ~iteration_span ~belief ~deltas ~entry_of_at =
    (* The completion time is the left fold of the charges from the
       current reading — the identical chain of float additions the
       sequential driver performs, so trajectories match bit-for-bit. *)
    let at = List.fold_left ( +. ) (Vclock.now clock) deltas in
    let entry : History.entry = entry_of_at at in
    Hashtbl.replace inflight_tbl entry.History.index
      { Checkpoint.index = entry.History.index; slot;
        start_seconds = Vclock.now clock; entry };
    ignore
      (Vclock.schedule_chain clock ~deltas (fun () ->
           complete_task slot ~iteration_span ~belief ~replayed_phases:false entry))
  in
  let launch_live ~iteration_span ~belief slot idx config decide_seconds =
    let eval_calls = ref 0 in
    let call_target config =
      let trial = idx + (trial_stride * !eval_calls) in
      incr eval_calls;
      match Hashtbl.find_opt prefetched trial with
      | Some r ->
        Hashtbl.remove prefetched trial;
        r
      | None -> target.Target.evaluate ~trial config
    in
    let violations =
      Obs.Recorder.with_span obs "driver.validate" (fun () -> Space.validate space config)
    in
    match violations with
    | _ :: _ ->
      incr consecutive_invalid;
      Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s
        ~attrs:[ Obs.Attr.int "consecutive" !consecutive_invalid ]
        "driver.invalid";
      Obs.Recorder.incr obs "driver.invalid_proposals";
      schedule_outcome slot ~iteration_span ~belief ~deltas:[ invalid_floor_s ]
        ~entry_of_at:(fun at ->
          { History.index = idx; config; value = None;
            failure = Some Failure.Invalid_configuration; at_seconds = at;
            eval_seconds = invalid_floor_s; built = false; decide_seconds; objectives = None })
    | [] ->
      consecutive_invalid := 0;
      let key = config_key config in
      if Hashtbl.mem quarantine key then begin
        Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s "driver.quarantined";
        Obs.Recorder.incr obs "driver.quarantined_proposals";
        schedule_outcome slot ~iteration_span ~belief ~deltas:[ invalid_floor_s ]
          ~entry_of_at:(fun at ->
            { History.index = idx; config; value = None;
              failure = Some Failure.Quarantined; at_seconds = at;
              eval_seconds = invalid_floor_s; built = false; decide_seconds; objectives = None })
      end
      else begin
        let image_key = Space.stage_key space config in
        match Image_cache.peek cache image_key with
        | Some { Image_cache.status = Image_cache.Build_failed f; _ } ->
          (* Negative hit: the image for this non-runtime projection is
             known not to build.  Serve the cached failure at a floor
             charge instead of re-running a doomed build. *)
          Image_cache.touch cache image_key;
          Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s
            ~attrs:[ Obs.Attr.bool "cache_hit" true ]
            "driver.negative_cache";
          Obs.Recorder.incr obs "driver.image_cache.negative_hits";
          schedule_outcome slot ~iteration_span ~belief ~deltas:[ invalid_floor_s ]
            ~entry_of_at:(fun at ->
              { History.index = idx; config; value = None;
                failure = Some f; at_seconds = at;
                eval_seconds = invalid_floor_s; built = false; decide_seconds; objectives = None })
        | Some { Image_cache.status = Image_cache.Built; _ } | None ->
        (* Eager evaluation: the outcome is a pure function of (trial,
           config) and the shared image cache at launch time, so the full
           attempt / corroborate / retry cascade runs now, accumulating
           the charges it would have applied to a synchronous clock. *)
        (match scenario with Some sc -> Scenario.advance sc | None -> ());
        let last_objectives = ref [||] in
        let deltas_rev = ref [] in
        let charge d = deltas_rev := d :: !deltas_rev in
        let total_charged = ref 0. in
        let entry_built = ref false in
        let perform_attempt ~remeasure =
          let r =
            Obs.Recorder.with_span obs "driver.evaluate" (fun () -> call_target config)
          in
          let r = apply_timeouts resilience r in
          let r = reject_non_finite r in
          (match r.Target.value with
          | Ok _ when not remeasure -> last_objectives := r.Target.objectives
          | Ok _ | Error _ -> ());
          let cache_hit =
            if remeasure then false
            else
              match Image_cache.find cache image_key with
              | Some { Image_cache.status = Image_cache.Built; origin } ->
                Obs.Recorder.incr obs "driver.image_cache.hits";
                if origin <> slot then
                  Obs.Recorder.incr obs "driver.image_cache.cross_slot_hits";
                true
              | Some { Image_cache.status = Image_cache.Build_failed _; _ } | None ->
                Obs.Recorder.incr obs "driver.image_cache.misses";
                false
          in
          let needs_build = (not remeasure) && not cache_hit in
          let build_charged = if needs_build then r.Target.build_s else 0. in
          let charged = build_charged +. r.Target.boot_s +. r.Target.run_s in
          charge charged;
          total_charged := !total_charged +. charged;
          if remeasure then Obs.Recorder.incr obs "driver.remeasurements"
          else begin
            if needs_build then begin
              entry_built := true;
              Obs.Recorder.incr obs "driver.builds_charged"
            end
            else Obs.Recorder.incr obs "driver.rebuild_skips";
            Obs.Recorder.emit_span obs ~virtual_s:build_charged
              ~attrs:
                [ Obs.Attr.bool "rebuild_skipped" (not needs_build);
                  Obs.Attr.bool "cache_hit" cache_hit ]
              "driver.build"
          end;
          let attrs = if remeasure then [ Obs.Attr.bool "remeasure" true ] else [] in
          Obs.Recorder.emit_span obs ~virtual_s:r.Target.boot_s ~attrs "driver.boot";
          Obs.Recorder.emit_span obs ~virtual_s:r.Target.run_s ~attrs "driver.run";
          (* Retry semantics (pinned; mirrors run_sequential): a
             build-stage failure leaves no image, so the cache is NOT
             updated — a retried transient build failure misses again and
             legitimately re-charges the build.  Anything that built
             (even if it later crashed or timed out post-build) caches
             Built, so a retry skips the rebuild and build_s is charged
             exactly once.  Deterministic build failures are
             negative-cached instead. *)
          (match r.Target.value with
          | Error f when Failure.is_build_stage f ->
            if needs_build && Failure.klass f = Failure.Deterministic then begin
              match
                Image_cache.add cache image_key
                  { Image_cache.status = Image_cache.Build_failed f; origin = slot }
              with
              | Some _ -> Obs.Recorder.incr obs "driver.image_cache.evictions"
              | None -> ()
            end
          | Error _ | Ok _ ->
            if needs_build then begin
              match
                Image_cache.add cache image_key
                  { Image_cache.status = Image_cache.Built; origin = slot }
              with
              | Some _ -> Obs.Recorder.incr obs "driver.image_cache.evictions"
              | None -> ()
            end);
          r.Target.value
        in
        let corroborate v1 =
          if resilience.Resilience.measure_repeats < 2 then v1
          else begin
            let samples = ref [ v1 ] in
            let calls = ref 1 in
            let need_more () =
              !calls < resilience.Resilience.measure_repeats
              &&
              let s = Array.of_list !samples in
              Array.length s < 2
              || Resilience.disagreement s > resilience.Resilience.outlier_threshold
            in
            while need_more () do
              incr calls;
              match perform_attempt ~remeasure:true with
              | Ok v -> samples := v :: !samples
              | Error _ -> Obs.Recorder.incr obs "driver.remeasure_failures"
            done;
            let s = Array.of_list (List.rev !samples) in
            if Array.length s < 2 then v1
            else if
              Array.length s = 2
              && Resilience.disagreement s <= resilience.Resilience.outlier_threshold
            then v1
            else begin
              Obs.Recorder.incr obs "driver.outlier_rejections";
              Obs.Recorder.observe obs ~quiet:true "driver.sample_mad" (Stat.mad s);
              Stat.median s
            end
          end
        in
        let rec attempt k =
          match perform_attempt ~remeasure:false with
          | Ok v -> Ok (corroborate v)
          | Error f when Failure.retryable f && k < resilience.Resilience.retries ->
            let backoff = Resilience.backoff_s resilience ~attempt:k in
            charge backoff;
            total_charged := !total_charged +. backoff;
            Obs.Recorder.emit_span obs ~virtual_s:backoff
              ~attrs:
                [ Obs.Attr.int "attempt" (k + 1);
                  Obs.Attr.string "kind" (Failure.to_string f) ]
              "driver.retry";
            Obs.Recorder.incr obs "driver.retries";
            attempt (k + 1)
          | Error f ->
            if Failure.retryable f && resilience.Resilience.quarantine_after > 0 then begin
              let n = (try Hashtbl.find strikes key with Not_found -> 0) + 1 in
              Hashtbl.replace strikes key n;
              if n >= resilience.Resilience.quarantine_after then begin
                Hashtbl.replace quarantine key ();
                Obs.Recorder.incr obs "driver.quarantines"
              end
            end;
            Error f
        in
        let final = attempt 0 in
        (match final with
        | Ok _ -> ()
        | Error f ->
          Obs.Recorder.incr obs (Printf.sprintf "driver.failures.%s" (Failure.to_string f)));
        schedule_outcome slot ~iteration_span ~belief ~deltas:(List.rev !deltas_rev)
          ~entry_of_at:(fun at ->
            { History.index = idx;
              config;
              value = (match final with Ok v -> Some v | Error _ -> None);
              failure = (match final with Ok _ -> None | Error f -> Some f);
              at_seconds = at;
              eval_seconds = !total_charged;
              built = !entry_built;
              decide_seconds;
              objectives =
                (match final with
                | Ok _ when Array.length !last_objectives > 0 -> Some !last_objectives
                | Ok _ | Error _ -> None) })
      end
  in
  let launch ~iteration_span config decide_seconds =
    let idx = !proposal_seq in
    incr proposal_seq;
    let slot = take_slot () in
    match (Hashtbl.find_opt replay_entries idx, Hashtbl.find_opt replay_inflight idx) with
    | Some e, _ ->
      if config <> e.History.config then invalid_arg (diverged_msg e.History.index);
      (match iteration_span with
      | Some span ->
        Obs.Recorder.span_end obs ~attrs:[ Obs.Attr.bool "replay" true ] span
      | None -> ());
      ignore
        (Vclock.schedule clock ~at:e.History.at_seconds (fun () -> complete_replayed slot e))
    | None, Some r ->
      if config <> r.Checkpoint.entry.History.config then invalid_arg (diverged_msg idx);
      if slot <> r.Checkpoint.slot || Vclock.now clock <> r.Checkpoint.start_seconds then
        invalid_arg (diverged_msg idx);
      (match iteration_span with
      | Some span ->
        Obs.Recorder.span_end obs ~attrs:[ Obs.Attr.bool "replay" true ] span
      | None -> ());
      Hashtbl.replace inflight_tbl idx r;
      ignore
        (Vclock.schedule clock ~at:r.Checkpoint.entry.History.at_seconds (fun () ->
             complete_task slot ~iteration_span:None ~belief:None ~replayed_phases:true
               r.Checkpoint.entry))
    | None, None ->
      (* Pre-evaluation belief capture (live launches only): [predict] is
         pure and only consulted when a consumer is attached, so recorded
         runs stay byte-for-byte identical to unrecorded ones. *)
      let belief =
        match (on_record, algorithm.Search_algorithm.predict) with
        | Some _, Some p -> Some (p ctx config)
        | (Some _ | None), _ -> None
      in
      launch_live ~iteration_span ~belief slot idx config decide_seconds
  in
  let request_and_launch k =
    if algorithm.Search_algorithm.propose_batch <> None && k > 1 then begin
      let batch_fn = Option.get algorithm.Search_algorithm.propose_batch in
      let configs, secs =
        Obs.Recorder.timed obs "driver.propose" (fun () ->
            try batch_fn ctx ~k with Search_algorithm.Space_exhausted -> [])
      in
      let n = List.length configs in
      (* A short batch is the algorithm's way of saying the space ran dry
         mid-ask (a final partial batch). *)
      if n < k then note_exhausted ();
      if multi then Obs.Recorder.observe obs ~quiet:true "driver.batch.size" (float_of_int n);
      let share = secs /. float_of_int (max 1 n) in
      prefetch_batch (List.mapi (fun i config -> (!proposal_seq + i, config)) configs);
      List.iter (fun config -> launch ~iteration_span:None config share) configs;
      Hashtbl.reset prefetched
    end
    else begin
      let launched = ref 0 in
      let i = ref 0 in
      (match pool with
      | None ->
        while !i < k && not !exhausted do
          let span =
            Obs.Recorder.span_begin obs
              ~attrs:[ Obs.Attr.int "iteration" !proposal_seq ]
              "driver.iteration"
          in
          let proposed, secs =
            Obs.Recorder.timed obs "driver.propose" (fun () ->
                try Some (algorithm.Search_algorithm.propose ctx)
                with Search_algorithm.Space_exhausted -> None)
          in
          (match proposed with
          | None ->
            Obs.Recorder.span_end obs
              ~attrs:[ Obs.Attr.string "status" "space_exhausted" ]
              span;
            note_exhausted ()
          | Some config ->
            incr launched;
            launch ~iteration_span:(Some span) config secs);
          incr i
        done
      | Some _ ->
        (* Collect the round's proposals first so their first attempts can
           be evaluated in parallel, then launch in proposal order.
           Proposals only read algorithm/RNG/history state that launches
           never touch, and launches never advance the clock (they only
           schedule completions), so the hoisting changes no per-metric
           event order; the iteration attribute is reconstructed to match
           the interleaved numbering. *)
        let base = !proposal_seq in
        let pending = ref [] in
        while !i < k && not !exhausted do
          let span =
            Obs.Recorder.span_begin obs
              ~attrs:[ Obs.Attr.int "iteration" (base + !launched) ]
              "driver.iteration"
          in
          let proposed, secs =
            Obs.Recorder.timed obs "driver.propose" (fun () ->
                try Some (algorithm.Search_algorithm.propose ctx)
                with Search_algorithm.Space_exhausted -> None)
          in
          (match proposed with
          | None ->
            Obs.Recorder.span_end obs
              ~attrs:[ Obs.Attr.string "status" "space_exhausted" ]
              span;
            note_exhausted ()
          | Some config ->
            incr launched;
            pending := (span, config, secs) :: !pending);
          incr i
        done;
        let pending = List.rev !pending in
        prefetch_batch (List.mapi (fun j (_, config, _) -> (base + j, config)) pending);
        List.iter
          (fun (span, config, secs) -> launch ~iteration_span:(Some span) config secs)
          pending;
        Hashtbl.reset prefetched);
      if multi then
        Obs.Recorder.observe obs ~quiet:true "driver.batch.size" (float_of_int !launched)
    end
  in
  (* ---------------- Fill & drain ---------------- *)
  let rec fill () =
    check_rng ();
    let free = List.length !free_slots in
    if free = 0 || !exhausted then ()
    else begin
      let replaying = !proposal_seq < total_replayed in
      let iter_room =
        match budget with Iterations n -> n - !proposal_seq | Virtual_seconds _ -> max_int
      in
      if replaying then begin
        (* Replayed proposals were legitimately launched by the original
           run, so they bypass the live guards (whose state variables hold
           checkpoint-final values during replay); the batching pattern —
           min(free, batch, iteration room) — is the same deterministic
           rule the original followed, so algorithm state and the RNG
           stream evolve identically. *)
        request_and_launch (min free (min batch iter_room));
        fill ()
      end
      else if !stop <> None then ()
      else if !consecutive_invalid >= max_consecutive_invalid then stop := Some Invalid_cap
      else if not (within_budget ()) then ()
      else begin
        let k = min free (min batch iter_room) in
        if k <= 0 then ()
        else begin
          request_and_launch k;
          fill ()
        end
      end
    end
  in
  fill ();
  while Vclock.run_next clock do
    fill ()
  done;
  check_rng ();
  if !completed mod checkpoint_every <> 0 then write_checkpoint ();
  Obs.Recorder.flush obs;
  { history;
    best = History.best history;
    clock;
    iterations = !completed;
    stop_reason = (match !stop with Some r -> r | None -> Budget_exhausted);
    pareto = !archive;
    metrics = Obs.Recorder.snapshot obs }

let phase_virtual_seconds result =
  List.map
    (fun (label, name) -> (label, Obs.Metrics.sum result.metrics (name ^ ".virtual_s")))
    virtual_phases

let best_relative_to result ~default =
  (* A zero (or non-finite) reference yields inf/nan ratios, which is
     worse than no answer. *)
  if default = 0. || not (Float.is_finite default) then None
  else
    match History.best result.history with
    | None -> None
    | Some e -> (
      match e.History.value with
      | None -> None
      | Some v ->
        if (History.metric result.history).Metric.maximize then Some (v /. default)
        else Some (default /. v))
