module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Vclock = Wayfinder_simos.Vclock
module Rng = Wayfinder_tensor.Rng
module Obs = Wayfinder_obs

type budget = Iterations of int | Virtual_seconds of float

type stop_reason = Budget_exhausted | Invalid_cap

type result = {
  history : History.t;
  best : History.entry option;
  clock : Vclock.t;
  iterations : int;
  stop_reason : stop_reason;
  metrics : Obs.Metrics.snapshot;
}

(* Virtual phases the driver charges time under; Report and the benches
   read these histogram names back. *)
let virtual_phases =
  [ ("build", "driver.build"); ("boot", "driver.boot"); ("run", "driver.run");
    ("invalid", "driver.invalid") ]

let default_invalid_floor_s = 1.
let default_max_consecutive_invalid = 1000

let run ?(seed = 0) ?clock ?on_iteration ?obs ?(invalid_floor_s = default_invalid_floor_s)
    ?(max_consecutive_invalid = default_max_consecutive_invalid) ~target ~algorithm ~budget () =
  if invalid_floor_s <= 0. then invalid_arg "Driver.run: invalid_floor_s must be positive";
  if max_consecutive_invalid <= 0 then
    invalid_arg "Driver.run: max_consecutive_invalid must be positive";
  let clock = match clock with Some c -> c | None -> Vclock.create () in
  let obs = match obs with Some o -> o | None -> Obs.Recorder.create () in
  Obs.Recorder.set_virtual_now obs (fun () -> Vclock.now clock);
  Vclock.on_advance clock (fun dt -> Obs.Recorder.incr obs ~by:dt ~quiet:true "driver.virtual_s");
  let space = target.Target.space in
  let history = History.create target.Target.metric in
  let rng = Rng.create seed in
  let ctx =
    { Search_algorithm.space; metric = target.Target.metric; history; rng; obs }
  in
  (* The configuration of the last image actually built; the build task is
     skipped when only runtime parameters changed since then (§3.1). *)
  let last_built = ref None in
  let index = ref 0 in
  let consecutive_invalid = ref 0 in
  let stop = ref None in
  let within_budget () =
    match budget with
    | Iterations n -> !index < n
    | Virtual_seconds s -> Vclock.now clock < s
  in
  while !stop = None && within_budget () do
    let iteration_span =
      Obs.Recorder.span_begin obs ~attrs:[ Obs.Attr.int "iteration" !index ] "driver.iteration"
    in
    let config, decide_seconds =
      Obs.Recorder.timed obs "driver.propose" (fun () -> algorithm.Search_algorithm.propose ctx)
    in
    let violations =
      Obs.Recorder.with_span obs "driver.validate" (fun () -> Space.validate space config)
    in
    let entry =
      match violations with
      | _ :: _ ->
        (* Liveness: an invalid proposal consumed a decision slot, so it
           must still advance the virtual clock — otherwise an algorithm
           stuck proposing invalid configurations spins a Virtual_seconds
           budget forever.  A fixed floor (rather than the measured
           wall-clock decision time) keeps virtual trajectories
           deterministic given the seed. *)
        incr consecutive_invalid;
        Vclock.advance clock invalid_floor_s;
        Obs.Recorder.emit_span obs ~virtual_s:invalid_floor_s
          ~attrs:[ Obs.Attr.int "consecutive" !consecutive_invalid ]
          "driver.invalid";
        Obs.Recorder.incr obs "driver.invalid_proposals";
        { History.index = !index; config; value = None; failure = Some "invalid-configuration";
          at_seconds = Vclock.now clock; eval_seconds = invalid_floor_s; built = false;
          decide_seconds }
      | [] ->
        consecutive_invalid := 0;
        let result =
          Obs.Recorder.with_span obs "driver.evaluate" (fun () ->
              target.Target.evaluate ~trial:!index config)
        in
        let needs_build =
          match !last_built with
          | None -> true
          | Some previous -> not (Space.differs_only_in_stage space previous config Param.Runtime)
        in
        let build_charged = if needs_build then result.Target.build_s else 0. in
        let eval_seconds = build_charged +. result.Target.boot_s +. result.Target.run_s in
        Vclock.advance clock eval_seconds;
        if needs_build then Obs.Recorder.incr obs "driver.builds_charged"
        else Obs.Recorder.incr obs "driver.rebuild_skips";
        let skip_attr = [ Obs.Attr.bool "rebuild_skipped" (not needs_build) ] in
        Obs.Recorder.emit_span obs ~virtual_s:build_charged ~attrs:skip_attr "driver.build";
        Obs.Recorder.emit_span obs ~virtual_s:result.Target.boot_s "driver.boot";
        Obs.Recorder.emit_span obs ~virtual_s:result.Target.run_s "driver.run";
        (match result.Target.value with
        | Ok _ -> ()
        | Error kind -> Obs.Recorder.incr obs (Printf.sprintf "driver.failures.%s" kind));
        (* Failed builds leave the previous image in place; anything that
           built (even if it later crashed) becomes the new baseline
           image. *)
        (match result.Target.value with
        | Error "build-failure" -> ()
        | Error _ | Ok _ -> if needs_build then last_built := Some config);
        { History.index = !index;
          config;
          value = (match result.Target.value with Ok v -> Some v | Error _ -> None);
          failure = (match result.Target.value with Ok _ -> None | Error kind -> Some kind);
          at_seconds = Vclock.now clock;
          eval_seconds;
          built = needs_build;
          decide_seconds }
    in
    (* Model update runs before the entry is archived so its cost can be
       folded into the recorded per-iteration decision time. *)
    let (), observe_seconds =
      Obs.Recorder.timed obs "driver.observe" (fun () ->
          algorithm.Search_algorithm.observe ctx entry)
    in
    let entry = { entry with History.decide_seconds = decide_seconds +. observe_seconds } in
    History.add history entry;
    Obs.Recorder.incr obs "driver.iterations";
    Obs.Recorder.observe obs ~quiet:true "driver.decide_s" entry.History.decide_seconds;
    Obs.Recorder.observe obs ~quiet:true "driver.eval_s" entry.History.eval_seconds;
    Obs.Recorder.span_end obs
      ~attrs:
        [ Obs.Attr.bool "built" entry.History.built;
          Obs.Attr.string "status"
            (match entry.History.failure with Some kind -> kind | None -> "ok") ]
      iteration_span;
    (match on_iteration with Some f -> f entry | None -> ());
    incr index;
    (* Safety cap: a search stuck on invalid proposals makes no progress
       the history could ever recover from — stop rather than burn the
       whole budget recording failures. *)
    if !consecutive_invalid >= max_consecutive_invalid then stop := Some Invalid_cap
  done;
  Obs.Recorder.flush obs;
  { history;
    best = History.best history;
    clock;
    iterations = !index;
    stop_reason = (match !stop with Some r -> r | None -> Budget_exhausted);
    metrics = Obs.Recorder.snapshot obs }

let phase_virtual_seconds result =
  List.map
    (fun (label, name) -> (label, Obs.Metrics.sum result.metrics (name ^ ".virtual_s")))
    virtual_phases

let best_relative_to result ~default =
  match History.best result.history with
  | None -> None
  | Some e -> (
    match e.History.value with
    | None -> None
    | Some v ->
      if (History.metric result.history).Metric.maximize then Some (v /. default)
      else Some (default /. v))
