module Simos = Wayfinder_simos
module Sim_linux = Simos.Sim_linux
module Sim_unikraft = Simos.Sim_unikraft
module Sim_riscv = Simos.Sim_riscv
module Cozart = Simos.Cozart

let failure_of_stage = function
  | Sim_linux.Build_failure -> Failure.Build_failure
  | Sim_linux.Boot_failure -> Failure.Boot_failure
  | Sim_linux.Runtime_crash -> Failure.Runtime_crash

let of_sim_linux sim ~app =
  Target.make
    ~name:(Printf.sprintf "sim-linux/%s" (Simos.App.name app))
    ~space:(Sim_linux.space sim) ~metric:(Metric.of_app app)
    (fun ~trial config ->
      let o = Sim_linux.evaluate sim ~app ~trial config in
      let d = o.Sim_linux.durations in
      { Target.value =
          (match o.Sim_linux.result with
          | Ok v -> Ok v
          | Error stage -> Error (failure_of_stage stage));
        build_s = d.Sim_linux.build_s;
        boot_s = d.Sim_linux.boot_s;
        run_s = d.Sim_linux.run_s })

let of_sim_linux_memory sim ~app =
  Target.make
    ~name:(Printf.sprintf "sim-linux-memory/%s" (Simos.App.name app))
    ~space:(Sim_linux.space sim) ~metric:Metric.memory_mb
    (fun ~trial config ->
      let o = Sim_linux.evaluate sim ~app ~trial config in
      let d = o.Sim_linux.durations in
      { Target.value =
          (match o.Sim_linux.result with
          | Ok _ -> Ok (Sim_linux.memory_footprint_mb sim config)
          | Error stage -> Error (failure_of_stage stage));
        build_s = d.Sim_linux.build_s;
        boot_s = d.Sim_linux.boot_s;
        run_s = d.Sim_linux.run_s })

let of_sim_unikraft uk =
  Target.make ~name:"sim-unikraft/nginx" ~space:(Sim_unikraft.space uk) ~metric:Metric.throughput
    (fun ~trial config ->
      let o = Sim_unikraft.evaluate uk ~trial config in
      { Target.value =
          (match o.Sim_unikraft.result with
          | Ok v -> Ok v
          | Error `Build_failure -> Error Failure.Build_failure
          | Error `Runtime_crash -> Error Failure.Runtime_crash);
        build_s = o.Sim_unikraft.build_s;
        boot_s = o.Sim_unikraft.boot_s;
        run_s = o.Sim_unikraft.run_s })

let of_sim_riscv rv =
  Target.make ~name:"sim-riscv/memory" ~space:(Sim_riscv.space rv) ~metric:Metric.memory_mb
    (fun ~trial config ->
      let o = Sim_riscv.evaluate rv ~trial config in
      { Target.value =
          (match o.Sim_riscv.result with
          | Ok v -> Ok v
          | Error `Build_failure -> Error Failure.Build_failure
          | Error `Boot_failure -> Error Failure.Boot_failure);
        build_s = o.Sim_riscv.build_s;
        boot_s = o.Sim_riscv.boot_s;
        run_s = 0. })

let of_cozart cz ~score =
  Target.make ~name:"cozart/nginx" ~space:(Cozart.reduced_space cz) ~metric:Metric.composite_score
    (fun ~trial config ->
      let o = Cozart.evaluate cz ~trial config in
      let d = o.Simos.Cozart.durations in
      { Target.value =
          (match o.Simos.Cozart.throughput with
          | Ok throughput -> Ok (score ~throughput ~memory_mb:o.Simos.Cozart.memory_mb)
          | Error stage -> Error (failure_of_stage stage));
        build_s = d.Sim_linux.build_s;
        boot_s = d.Sim_linux.boot_s;
        run_s = d.Sim_linux.run_s })
