module Simos = Wayfinder_simos
module Sim_linux = Simos.Sim_linux
module Sim_unikraft = Simos.Sim_unikraft
module Sim_riscv = Simos.Sim_riscv
module Cozart = Simos.Cozart

let failure_of_stage = function
  | Sim_linux.Build_failure -> Failure.Build_failure
  | Sim_linux.Boot_failure -> Failure.Boot_failure
  | Sim_linux.Runtime_crash -> Failure.Runtime_crash

let of_sim_linux sim ~app =
  Target.make
    ~name:(Printf.sprintf "sim-linux/%s" (Simos.App.name app))
    ~space:(Sim_linux.space sim) ~metric:(Metric.of_app app)
    (fun ~trial config ->
      let o = Sim_linux.evaluate sim ~app ~trial config in
      let d = o.Sim_linux.durations in
      { Target.value =
          (match o.Sim_linux.result with
          | Ok v -> Ok v
          | Error stage -> Error (failure_of_stage stage));
        build_s = d.Sim_linux.build_s;
        boot_s = d.Sim_linux.boot_s;
        run_s = d.Sim_linux.run_s;
        objectives = [||] })

let of_sim_linux_memory sim ~app =
  Target.make
    ~name:(Printf.sprintf "sim-linux-memory/%s" (Simos.App.name app))
    ~space:(Sim_linux.space sim) ~metric:Metric.memory_mb
    (fun ~trial config ->
      let o = Sim_linux.evaluate sim ~app ~trial config in
      let d = o.Sim_linux.durations in
      { Target.value =
          (match o.Sim_linux.result with
          | Ok _ -> Ok (Sim_linux.memory_footprint_mb sim config)
          | Error stage -> Error (failure_of_stage stage));
        build_s = d.Sim_linux.build_s;
        boot_s = d.Sim_linux.boot_s;
        run_s = d.Sim_linux.run_s;
        objectives = [||] })

let of_sim_unikraft uk =
  Target.make ~name:"sim-unikraft/nginx" ~space:(Sim_unikraft.space uk) ~metric:Metric.throughput
    (fun ~trial config ->
      let o = Sim_unikraft.evaluate uk ~trial config in
      { Target.value =
          (match o.Sim_unikraft.result with
          | Ok v -> Ok v
          | Error `Build_failure -> Error Failure.Build_failure
          | Error `Runtime_crash -> Error Failure.Runtime_crash);
        build_s = o.Sim_unikraft.build_s;
        boot_s = o.Sim_unikraft.boot_s;
        run_s = o.Sim_unikraft.run_s;
        objectives = [||] })

let of_sim_riscv rv =
  Target.make ~name:"sim-riscv/memory" ~space:(Sim_riscv.space rv) ~metric:Metric.memory_mb
    (fun ~trial config ->
      let o = Sim_riscv.evaluate rv ~trial config in
      { Target.value =
          (match o.Sim_riscv.result with
          | Ok v -> Ok v
          | Error `Build_failure -> Error Failure.Build_failure
          | Error `Boot_failure -> Error Failure.Boot_failure);
        build_s = o.Sim_riscv.build_s;
        boot_s = o.Sim_riscv.boot_s;
        run_s = 0.;
        objectives = [||] })

let of_cozart cz ~score =
  Target.make ~name:"cozart/nginx" ~space:(Cozart.reduced_space cz) ~metric:Metric.composite_score
    (fun ~trial config ->
      let o = Cozart.evaluate cz ~trial config in
      let d = o.Simos.Cozart.durations in
      { Target.value =
          (match o.Simos.Cozart.throughput with
          | Ok throughput -> Ok (score ~throughput ~memory_mb:o.Simos.Cozart.memory_mb)
          | Error stage -> Error (failure_of_stage stage));
        build_s = d.Sim_linux.build_s;
        boot_s = d.Sim_linux.boot_s;
        run_s = d.Sim_linux.run_s;
        objectives = [||] })

(* ------------------------------------------------------------------ *)
(* Trace-driven multi-objective target                                 *)
(* ------------------------------------------------------------------ *)

(* Trace loads are expressed against a nominal default capacity of 1000
   requests/second, independent of the application's raw metric units: a
   configuration's sustainable rate is 1000 times its relative
   performance against the default configuration.  This keeps trace
   construction (base/peak loads) app-independent. *)
let nominal_capacity_rps = 1000.

let trace_objective_value (s : Simos.Trace_replay.summary) (m : Metric.t) =
  match m.Metric.metric_name with
  | "throughput" -> s.Simos.Trace_replay.mean_throughput_rps
  | "p50" -> s.Simos.Trace_replay.p50_latency_s
  | "p95" -> s.Simos.Trace_replay.p95_latency_s
  | "p99" -> s.Simos.Trace_replay.p99_latency_s
  | "memory" -> s.Simos.Trace_replay.peak_memory_mb
  | other ->
    invalid_arg
      (Printf.sprintf "Targets.of_sim_linux_trace: unmeasurable objective %S" other)

let of_sim_linux_trace sim ~app ~scenario ~objectives ?scalarize () =
  let n = Array.length objectives in
  if n = 0 then
    invalid_arg "Targets.of_sim_linux_trace: at least one objective is required";
  Array.iter
    (fun (m : Metric.t) ->
      match m.Metric.metric_name with
      | "throughput" | "p50" | "p95" | "p99" | "memory" -> ()
      | other ->
        invalid_arg
          (Printf.sprintf "Targets.of_sim_linux_trace: unknown objective %S" other))
    objectives;
  let scalarize =
    match scalarize with
    | Some s -> s
    | None -> Scalarize.Weighted_sum (Array.make n 1.)
  in
  (match Scalarize.validate scalarize ~n with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Targets.of_sim_linux_trace: " ^ msg));
  (* One objective degenerates to a plain scalar target: the value is the
     raw objective under that objective's own metric, so existing oracles
     (best-entry selection, reports) hold byte-for-byte. *)
  let metric =
    if n = 1 then objectives.(0) else Metric.make ~name:"score" ~unit_name:"score" ()
  in
  let app_metric = Metric.of_app app in
  let reference = Sim_linux.default_value sim ~app () in
  Target.make
    ~name:(Printf.sprintf "sim-linux-trace/%s" (Simos.App.name app))
    ~space:(Sim_linux.space sim) ~metric ~objective_spec:objectives
    (fun ~trial config ->
      let o = Sim_linux.evaluate sim ~app ~trial config in
      let d = o.Sim_linux.durations in
      match o.Sim_linux.result with
      | Error stage ->
        { Target.value = Error (failure_of_stage stage);
          build_s = d.Sim_linux.build_s;
          boot_s = d.Sim_linux.boot_s;
          run_s = d.Sim_linux.run_s;
          objectives = [||] }
      | Ok v ->
        let rel = if app_metric.Metric.maximize then v /. reference else reference /. v in
        let memory_mb = Sim_linux.memory_footprint_mb sim config in
        let service =
          { Simos.Trace_replay.capacity_rps = nominal_capacity_rps *. Float.max 1e-6 rel;
            (* Memory inflates the unloaded latency (cache pressure): a
               leaner image answers faster at equal capacity, which is
               what puts p99 in tension with raw throughput. *)
            base_latency_s = 0.001 *. (1. +. (memory_mb /. 400.));
            memory_mb }
        in
        let slice = Scenario.slice scenario in
        let summary = Simos.Trace_replay.replay slice service in
        let vec = Array.map (trace_objective_value summary) objectives in
        let value =
          if n = 1 then vec.(0) else Scalarize.apply scalarize ~spec:objectives vec
        in
        { Target.value = Ok value;
          build_s = d.Sim_linux.build_s;
          boot_s = d.Sim_linux.boot_s;
          (* Replaying the trace slice is the benchmark run: it charges
             the slice's virtual duration, not the static workload's. *)
          run_s = Simos.Trace.duration_s slice;
          objectives = vec })
