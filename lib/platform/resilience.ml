module Stat = Wayfinder_tensor.Stat

type policy = {
  retries : int;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_max_s : float;
  build_timeout_s : float option;
  boot_timeout_s : float option;
  run_timeout_s : float option;
  measure_repeats : int;
  outlier_threshold : float;
  quarantine_after : int;
}

let none =
  { retries = 0;
    backoff_base_s = 30.;
    backoff_factor = 2.;
    backoff_max_s = 600.;
    build_timeout_s = None;
    boot_timeout_s = None;
    run_timeout_s = None;
    measure_repeats = 1;
    outlier_threshold = 0.25;
    quarantine_after = 0 }

let default_resilient =
  { retries = 3;
    backoff_base_s = 30.;
    backoff_factor = 2.;
    backoff_max_s = 600.;
    build_timeout_s = Some 600.;
    boot_timeout_s = Some 120.;
    run_timeout_s = Some 300.;
    measure_repeats = 3;
    (* Tight on purpose: with two samples the median-based disagreement of
       a pair (v, r·v) is (r-1)/(r+1), so 0.1 flags any corruption beyond
       ~1.22x while honest simulator noise (a few percent) stays below it. *)
    outlier_threshold = 0.1;
    quarantine_after = 2 }

let validate p =
  if p.retries < 0 then invalid_arg "Resilience: retries must be non-negative";
  if p.backoff_base_s < 0. then invalid_arg "Resilience: backoff_base_s must be non-negative";
  if p.backoff_factor < 1. then invalid_arg "Resilience: backoff_factor must be >= 1";
  if p.backoff_max_s < 0. then invalid_arg "Resilience: backoff_max_s must be non-negative";
  if p.measure_repeats < 1 then invalid_arg "Resilience: measure_repeats must be >= 1";
  if p.outlier_threshold <= 0. then invalid_arg "Resilience: outlier_threshold must be positive";
  if p.quarantine_after < 0 then invalid_arg "Resilience: quarantine_after must be non-negative";
  let check_cap name = function
    | Some s when s <= 0. -> invalid_arg (Printf.sprintf "Resilience: %s must be positive" name)
    | Some _ | None -> ()
  in
  check_cap "build_timeout_s" p.build_timeout_s;
  check_cap "boot_timeout_s" p.boot_timeout_s;
  check_cap "run_timeout_s" p.run_timeout_s

let backoff_s p ~attempt =
  if attempt < 0 then invalid_arg "Resilience.backoff_s: negative attempt";
  Float.min p.backoff_max_s (p.backoff_base_s *. (p.backoff_factor ** float_of_int attempt))

(* Relative disagreement of a sample set: the worst deviation from the
   median, scaled by the median's magnitude.  With two samples this is the
   half-spread; with more it is a MAD-flavoured robust spread.  Guarded so
   an all-zero sample set never divides by zero. *)
let disagreement samples =
  match samples with
  | [||] | [| _ |] -> 0.
  | _ ->
    let m = Stat.median samples in
    let worst =
      Array.fold_left (fun acc v -> Float.max acc (Float.abs (v -. m))) 0. samples
    in
    worst /. Float.max (Float.abs m) 1e-9
