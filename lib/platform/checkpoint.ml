module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param

type inflight = {
  index : int;
  slot : int;
  start_seconds : float;
  entry : History.entry;
}

type t = {
  seed : int;
  rng_state : int64;
  clock_seconds : float;
  budget_start_seconds : float;
  iterations : int;
  workers : int;
  consecutive_invalid : int;
  cache_capacity : int;
  cache : (string * Image_cache.entry) list;
  strikes : (string * int) list;
  quarantined : string list;
  entries : History.entry list;
  inflight : inflight list;
  pareto : (int * float array) list;
  trace_cursor : int option;
}

type error =
  | Unsupported_version of { found : int; expected : int }
  | Malformed of string

let error_to_string = function
  | Unsupported_version { found; expected } ->
    Printf.sprintf "unsupported checkpoint version %d (expected %d)" found expected
  | Malformed msg -> msg

(* v4: strike/quarantine lines are keyed by the canonical config key
   (comma-joined value tokens) instead of the truncated polymorphic hash,
   which conflated configurations differing past the ~10th parameter.
   v5: entry lines carry the objective vector (9th field), and the body
   persists the Pareto archive and the scenario trace cursor, so a
   resumed multi-objective trace run continues bitwise where it died. *)
let version = 5

(* ------------------------------------------------------------------ *)
(* Field encodings                                                     *)
(* ------------------------------------------------------------------ *)

(* Hex float literals ("%h") round-trip every finite double exactly, so a
   resumed virtual clock is bit-identical to the interrupted one. *)
let float_field = Printf.sprintf "%h"

let float_of_field s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Malformed ("bad float " ^ s))

(* The token codec is shared with the analytics run ledger. *)
let value_token = Param.value_token

let value_of_token s =
  match Param.value_of_token s with
  | Some v -> Ok v
  | None -> Error (Malformed ("bad value token " ^ s))

(* "." denotes the empty configuration so a config field is never an empty
   string (which a whitespace split could not distinguish). *)
let config_field config =
  if Array.length config = 0 then "."
  else String.concat " " (Array.to_list (Array.map value_token config))

(* Objective vectors are comma-joined %h floats; "." is the empty vector
   (mirroring the empty-config marker) and "-" in an entry line means no
   vector at all. *)
let vec_field v =
  if Array.length v = 0 then "."
  else String.concat "," (Array.to_list (Array.map float_field v))

let vec_of_field s =
  if s = "." then Ok [||]
  else
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | tok :: rest -> (
        match float_of_field tok with Ok v -> go (v :: acc) rest | Error e -> Error e)
    in
    go [] (String.split_on_char ',' s)

let config_of_field s =
  if s = "." then Ok [||]
  else
    let tokens = String.split_on_char ' ' s in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | tok :: rest -> ( match value_of_token tok with Ok v -> go (v :: acc) rest | Error e -> Error e)
    in
    go [] tokens

(* Failure strings may be user-supplied ([Other _]); percent-encode the
   characters the line format reserves. *)
let encode_string s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' | '\t' | '\n' | '\r' | ' ' -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_string s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> Buffer.add_string buf (String.sub s i 3));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let entry_line (e : History.entry) =
  String.concat "\t"
    [ string_of_int e.History.index;
      (match e.History.value with Some v -> float_field v | None -> "-");
      (match e.History.failure with Some f -> encode_string (Failure.to_string f) | None -> "-");
      float_field e.History.at_seconds;
      float_field e.History.eval_seconds;
      (if e.History.built then "1" else "0");
      float_field e.History.decide_seconds;
      config_field e.History.config;
      (match e.History.objectives with Some v -> vec_field v | None -> "-") ]

let body_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "wayfinder-checkpoint %d" version;
  line "seed %d" t.seed;
  line "rng %Lx" t.rng_state;
  line "clock %s" (float_field t.clock_seconds);
  line "budget_start %s" (float_field t.budget_start_seconds);
  line "iterations %d" t.iterations;
  line "workers %d" t.workers;
  line "consecutive_invalid %d" t.consecutive_invalid;
  line "cache_capacity %d" t.cache_capacity;
  (* Most-recently-used first, exactly [Image_cache.to_alist]: the reader
     hands the list straight back to [Image_cache.of_alist], so a resumed
     run evicts in the same order the killed run would have. *)
  List.iter
    (fun (key, e) ->
      match e.Image_cache.status with
      | Image_cache.Built -> line "cached built %d %s" e.Image_cache.origin (encode_string key)
      | Image_cache.Build_failed f ->
        line "cached failed %d %s %s" e.Image_cache.origin
          (encode_string (Failure.to_string f))
          (encode_string key))
    t.cache;
  List.iter (fun (key, n) -> line "strike %s %d" (encode_string key) n) t.strikes;
  List.iter (fun key -> line "quarantined %s" (encode_string key)) t.quarantined;
  List.iter (fun e -> line "entry %s" (entry_line e)) t.entries;
  List.iter (fun (i, v) -> line "pareto %d %s" i (vec_field v)) t.pareto;
  (match t.trace_cursor with
  | Some c -> line "trace_cursor %d" c
  | None -> ());
  List.iter
    (fun i ->
      line "inflight %s"
        (String.concat "\t"
           [ string_of_int i.slot; float_field i.start_seconds; entry_line i.entry ]))
    t.inflight;
  line "end";
  Buffer.contents buf

(* The sealed envelope: the format-4 body followed by a CRC-32 trailer
   line over the body bytes.  The trailer is mandatory on read, so a
   truncation that happens to cut exactly after the "end" marker is
   still detected. *)
let to_string t =
  let body = body_string t in
  body ^ Printf.sprintf "crc %s\n" (Crc32.to_hex (Crc32.digest body))

let generation_path = Durable.generation_path
let max_generations = 64

let save ?backend ?keep ~path t =
  (* The staged-write + rotation protocol lives in Durable and is shared
     with registry entries; the crash matrix in test_durable exercises it
     through this entry point. *)
  try Durable.atomic_publish ?backend ?keep ~path (to_string t)
  with Invalid_argument _ -> invalid_arg "Checkpoint.save: keep must be >= 1"

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_entry rest =
  match String.split_on_char '\t' rest with
  | [ index; value; failure; at; eval; built; decide; config; objectives ] ->
    let* index =
      match int_of_string_opt index with
      | Some i -> Ok i
      | None -> Error (Malformed "bad entry index")
    in
    let* value =
      if value = "-" then Ok None
      else
        let* v = float_of_field value in
        Ok (Some v)
    in
    let failure =
      if failure = "-" then None else Some (Failure.of_string (decode_string failure))
    in
    let* at_seconds = float_of_field at in
    let* eval_seconds = float_of_field eval in
    let* built =
      match built with
      | "1" -> Ok true
      | "0" -> Ok false
      | _ -> Error (Malformed "bad entry built flag")
    in
    let* decide_seconds = float_of_field decide in
    let* config = config_of_field config in
    let* objectives =
      if objectives = "-" then Ok None
      else
        let* v = vec_of_field objectives in
        Ok (Some v)
    in
    Ok
      { History.index;
        config;
        value;
        failure;
        at_seconds;
        eval_seconds;
        built;
        decide_seconds;
        objectives }
  | _ -> Error (Malformed "bad entry field count")

let parse_inflight rest =
  match String.split_on_char '\t' rest with
  | slot :: start :: entry_fields when List.length entry_fields = 9 ->
    let* slot =
      match int_of_string_opt slot with
      | Some i when i >= 0 -> Ok i
      | Some _ | None -> Error (Malformed "bad inflight slot")
    in
    let* start_seconds = float_of_field start in
    let* entry = parse_entry (String.concat "\t" entry_fields) in
    Ok { index = entry.History.index; slot; start_seconds; entry }
  | _ -> Error (Malformed "bad inflight field count")

(* Peel the CRC trailer off the envelope: the body (everything up to and
   including the newline that ends the "end" marker) and the stored
   checksum.  Trailing newlines after the trailer are tolerated. *)
let split_envelope s =
  let e =
    let i = ref (String.length s) in
    while !i > 0 && s.[!i - 1] = '\n' do decr i done;
    !i
  in
  if e = 0 then Error (Malformed "empty checkpoint")
  else
    let start = match String.rindex_from_opt s (e - 1) '\n' with Some i -> i + 1 | None -> 0 in
    let last_line = String.sub s start (e - start) in
    match String.split_on_char ' ' last_line with
    | [ "crc"; hex ] -> (
      match Crc32.of_hex hex with
      | None -> Error (Malformed ("bad crc trailer " ^ hex))
      | Some stored ->
        let body = String.sub s 0 start in
        let computed = Crc32.digest body in
        if computed = stored then Ok body
        else
          Error
            (Malformed
               (Printf.sprintf "crc mismatch (stored %s, computed %s): corrupt checkpoint" hex
                  (Crc32.to_hex computed))))
    | _ -> Error (Malformed "missing crc trailer (unsealed or truncated checkpoint)")

let of_body s =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> Error (Malformed "empty checkpoint")
  | header :: rest -> (
    let* () =
      match String.split_on_char ' ' header with
      | [ "wayfinder-checkpoint"; v ] -> (
        match int_of_string_opt v with
        | Some found when found = version -> Ok ()
        | Some found -> Error (Unsupported_version { found; expected = version })
        | None -> Error (Malformed ("bad checkpoint version " ^ v)))
      | _ -> Error (Malformed "not a wayfinder checkpoint")
    in
    let seed = ref None
    and rng_state = ref None
    and clock = ref None
    and budget_start = ref None
    and iterations = ref None
    and workers = ref None
    and consecutive_invalid = ref None
    and cache_capacity = ref None
    and cache = ref []
    and strikes = ref []
    and quarantined = ref []
    and entries = ref []
    and inflight = ref []
    and pareto = ref []
    and trace_cursor = ref None
    and ended = ref false in
    let parse_line line =
      let key, rest =
        match String.index_opt line ' ' with
        | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
        | None -> (line, "")
      in
      let int_ref r =
        match int_of_string_opt rest with
        | Some v ->
          r := Some v;
          Ok ()
        | None -> Error (Malformed (Printf.sprintf "bad %s field" key))
      in
      match key with
      | "seed" -> int_ref seed
      | "rng" -> (
        match Int64.of_string_opt ("0x" ^ rest) with
        | Some v ->
          rng_state := Some v;
          Ok ()
        | None -> Error (Malformed "bad rng field"))
      | "clock" ->
        let* v = float_of_field rest in
        clock := Some v;
        Ok ()
      | "budget_start" ->
        let* v = float_of_field rest in
        budget_start := Some v;
        Ok ()
      | "iterations" -> int_ref iterations
      | "workers" -> int_ref workers
      | "consecutive_invalid" -> int_ref consecutive_invalid
      | "cache_capacity" -> int_ref cache_capacity
      | "cached" -> (
        let entry origin status key =
          match int_of_string_opt origin with
          | Some origin when origin >= 0 ->
            cache := (decode_string key, { Image_cache.status; origin }) :: !cache;
            Ok ()
          | Some _ | None -> Error (Malformed "bad cached origin")
        in
        match String.split_on_char ' ' rest with
        | [ "built"; origin; key ] -> entry origin Image_cache.Built key
        | [ "failed"; origin; failure; key ] ->
          entry origin (Image_cache.Build_failed (Failure.of_string (decode_string failure))) key
        | _ -> Error (Malformed "bad cached field"))
      | "strike" -> (
        match String.split_on_char ' ' rest with
        | [ k; n ] -> (
          match int_of_string_opt n with
          | Some n ->
            strikes := (decode_string k, n) :: !strikes;
            Ok ()
          | None -> Error (Malformed "bad strike field"))
        | _ -> Error (Malformed "bad strike field"))
      | "quarantined" ->
        quarantined := decode_string rest :: !quarantined;
        Ok ()
      | "entry" ->
        let* e = parse_entry rest in
        entries := e :: !entries;
        Ok ()
      | "inflight" ->
        let* i = parse_inflight rest in
        inflight := i :: !inflight;
        Ok ()
      | "pareto" -> (
        match String.split_on_char ' ' rest with
        | [ idx; vec ] -> (
          match int_of_string_opt idx with
          | Some idx ->
            let* v = vec_of_field vec in
            pareto := (idx, v) :: !pareto;
            Ok ()
          | None -> Error (Malformed "bad pareto index"))
        | _ -> Error (Malformed "bad pareto field"))
      | "trace_cursor" -> (
        match int_of_string_opt rest with
        | Some c when c >= 0 ->
          trace_cursor := Some c;
          Ok ()
        | Some _ -> Error (Malformed "negative trace_cursor field")
        | None -> Error (Malformed "bad trace_cursor field"))
      | "end" ->
        ended := true;
        Ok ()
      | other -> Error (Malformed ("unknown checkpoint field " ^ other))
    in
    let rec consume = function
      | [] -> Ok ()
      | line :: rest ->
        let* () = parse_line line in
        consume rest
    in
    let* () = consume rest in
    let require name = function
      | Some v -> Ok v
      | None -> Error (Malformed ("missing " ^ name))
    in
    let* () = if !ended then Ok () else Error (Malformed "truncated checkpoint (no end marker)") in
    let* seed = require "seed" !seed in
    let* rng_state = require "rng" !rng_state in
    let* clock_seconds = require "clock" !clock in
    let* budget_start_seconds = require "budget_start" !budget_start in
    let* iterations = require "iterations" !iterations in
    let* workers = require "workers" !workers in
    let* consecutive_invalid = require "consecutive_invalid" !consecutive_invalid in
    let* cache_capacity = require "cache_capacity" !cache_capacity in
    let entries = List.rev !entries in
    let inflight = List.rev !inflight in
    let cache = List.rev !cache in
    let* () =
      if List.length entries = iterations then Ok ()
      else Error (Malformed "entry count does not match iterations")
    in
    let* () = if workers >= 1 then Ok () else Error (Malformed "bad workers field") in
    let* () =
      if cache_capacity >= 1 then Ok () else Error (Malformed "bad cache_capacity field")
    in
    let* () =
      if List.length cache <= cache_capacity then Ok ()
      else Error (Malformed "cached entries exceed cache_capacity")
    in
    let* () =
      let keys = List.map fst cache in
      if List.length (List.sort_uniq String.compare keys) = List.length keys then Ok ()
      else Error (Malformed "duplicate cached key")
    in
    let* () =
      if List.for_all (fun i -> i.slot < workers) inflight then Ok ()
      else Error (Malformed "inflight slot out of range")
    in
    Ok
      { seed;
        rng_state;
        clock_seconds;
        budget_start_seconds;
        iterations;
        workers;
        consecutive_invalid;
        cache_capacity;
        cache;
        strikes = List.rev !strikes;
        quarantined = List.rev !quarantined;
        entries;
        inflight;
        pareto = List.rev !pareto;
        trace_cursor = !trace_cursor })

let of_string s =
  (* The version check precedes the envelope check: files written by
     earlier format versions predate the CRC trailer and must still be
     rejected with the typed [Unsupported_version], not "missing
     trailer". *)
  let header =
    match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s
  in
  let* () =
    match String.split_on_char ' ' header with
    | [ "wayfinder-checkpoint"; v ] -> (
      match int_of_string_opt v with
      | Some found when found <> version ->
        Error (Unsupported_version { found; expected = version })
      | _ -> Ok ())
    | _ -> Ok ()
  in
  match split_envelope s with Ok body -> of_body body | Error _ as e -> e

let load_from ~backend ~path =
  match backend.Durable.read path with
  | exception Durable.Io_error e -> Error (Malformed (Durable.io_error_to_string e))
  | s -> of_string s

let load ~path = load_from ~backend:Durable.fs ~path

type notice =
  | Recovered_from_generation of {
      generation : int;
      loaded_from : string;
      dropped : (string * error) list;
    }

let notice_to_string = function
  | Recovered_from_generation { generation; loaded_from; dropped } ->
    Printf.sprintf "recovered from generation %d (%s); dropped: %s" generation loaded_from
      (String.concat "; "
         (List.map (fun (p, e) -> Printf.sprintf "%s: %s" p (error_to_string e)) dropped))

let load_latest ?(backend = Durable.fs) path =
  let rec go gen dropped =
    if gen > max_generations then
      match List.rev dropped with
      | [] -> Error (Malformed (Printf.sprintf "no checkpoint found at %s" path))
      | (_, primary_error) :: _ -> Error primary_error
    else
      let p = generation_path path gen in
      if not (backend.Durable.exists p) then
        (* Generations are contiguous in normal operation, but fsck may
           have pruned one: probe the whole window. *)
        go (gen + 1) dropped
      else
        match load_from ~backend ~path:p with
        | Ok t ->
          let dropped = List.rev dropped in
          let notice =
            if gen = 0 && dropped = [] then None
            else Some (Recovered_from_generation { generation = gen; loaded_from = p; dropped })
          in
          Ok (t, notice)
        | Error e -> go (gen + 1) ((p, e) :: dropped)
  in
  go 0 []
