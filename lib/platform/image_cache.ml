(* Shared content-addressed cache of built images (see DESIGN.md §11).

   Keys are [Space.stage_key] content-addresses of a configuration's
   non-runtime projection; values record whether that image built (and on
   which slot) or failed deterministically.  Recency is a doubly-linked
   list threaded through the hash-table nodes: head = most recently used,
   tail = next to evict.  Everything is deterministic — no wall clock, no
   hashing order dependence — so the driver's virtual trajectories stay
   reproducible and the cache state can be checkpointed and restored
   exactly. *)

type status = Built | Build_failed of Failure.t

type entry = { status : status; origin : int }

type config = { capacity : int }

let capacity n =
  if n < 1 then invalid_arg "Image_cache.capacity: capacity must be at least 1";
  { capacity = n }

type node = {
  key : string;
  mutable value : entry;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
}

let create { capacity } = { cap = capacity; tbl = Hashtbl.create 64; head = None; tail = None }

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let peek t key = Option.map (fun n -> n.value) (Hashtbl.find_opt t.tbl key)

let touch t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some node ->
    unlink t node;
    push_front t node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let add t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    node.value <- value;
    unlink t node;
    push_front t node;
    None
  | None ->
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    push_front t node;
    if Hashtbl.length t.tbl <= t.cap then None
    else begin
      match t.tail with
      | None -> assert false
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.key;
        Some (lru.key, lru.value)
    end

let mem t key = Hashtbl.mem t.tbl key
let length t = Hashtbl.length t.tbl
let cap t = t.cap

let to_alist t =
  let rec go acc = function None -> List.rev acc | Some n -> go ((n.key, n.value) :: acc) n.next in
  go [] t.head

let of_alist config alist =
  if List.length alist > config.capacity then
    invalid_arg "Image_cache.of_alist: more entries than capacity";
  let t = create config in
  (* Insert LRU-first so the head of [alist] ends up most recently used. *)
  List.iter
    (fun (k, v) ->
      if mem t k then invalid_arg "Image_cache.of_alist: duplicate key";
      ignore (add t k v))
    (List.rev alist);
  t
