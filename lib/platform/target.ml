module Space = Wayfinder_configspace.Space
module Faults = Wayfinder_simos.Faults

type eval_result = {
  value : (float, Failure.t) result;
  build_s : float;
  boot_s : float;
  run_s : float;
  objectives : float array;
}

type t = {
  target_name : string;
  space : Space.t;
  metric : Metric.t;
  objective_spec : Objective.spec;
  evaluate : trial:int -> Space.configuration -> eval_result;
}

let make ~name ~space ~metric ?(objective_spec = [||]) evaluate =
  { target_name = name; space; metric; objective_spec; evaluate }

(* Transient faults strike evaluations that would otherwise have gone the
   distance: a config that deterministically fails to build never reaches
   the stage where the testbed could flake on it.  Keeping the two failure
   sources disjoint is what lets the crash-gating train on deterministic
   failures only. *)
let with_faults ~plan target =
  { target with
    evaluate =
      (fun ~trial config ->
        let r = target.evaluate ~trial config in
        match r.value with
        | Error _ -> r
        | Ok v -> (
          match Faults.draw plan ~trial with
          | None -> r
          | Some (Faults.Boot_hang { stall_s }) ->
            { r with
              value = Error Failure.Boot_hang;
              boot_s = stall_s;
              run_s = 0.;
              objectives = [||] }
          | Some Faults.Flaky_build ->
            (* The build dies partway: half the build cost is sunk, nothing
               later runs. *)
            { value = Error Failure.Flaky_build;
              build_s = 0.5 *. r.build_s;
              boot_s = 0.;
              run_s = 0.;
              objectives = [||] }
          | Some Faults.Spurious_failure ->
            { r with value = Error Failure.Spurious_failure; objectives = [||] }
          | Some (Faults.Outlier { factor }) -> { r with value = Ok (v *. factor) })) }
