module Space = Wayfinder_configspace.Space
module Rng = Wayfinder_tensor.Rng
module Obs = Wayfinder_obs

exception Space_exhausted

type context = {
  space : Space.t;
  metric : Metric.t;
  history : History.t;
  rng : Rng.t;
  obs : Obs.Recorder.t;
}

type t = {
  algo_name : string;
  propose : context -> Space.configuration;
  propose_batch : (context -> k:int -> Space.configuration list) option;
  observe : context -> History.entry -> unit;
}

let make ~name ~propose ?propose_batch ?(observe = fun _ _ -> ()) () =
  { algo_name = name; propose; propose_batch; observe }

let propose_many t ctx ~k =
  if k <= 0 then invalid_arg "Search_algorithm.propose_many: k must be positive";
  match t.propose_batch with
  | Some batch when k > 1 -> ( try batch ctx ~k with Space_exhausted -> [])
  | Some _ | None ->
    let rec go acc i =
      if i = k then List.rev acc
      else
        match t.propose ctx with
        | config -> go (config :: acc) (i + 1)
        | exception Space_exhausted -> List.rev acc
    in
    go [] 0
