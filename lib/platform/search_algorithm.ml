module Space = Wayfinder_configspace.Space
module Rng = Wayfinder_tensor.Rng
module Obs = Wayfinder_obs

type context = {
  space : Space.t;
  metric : Metric.t;
  history : History.t;
  rng : Rng.t;
  obs : Obs.Recorder.t;
}

type t = {
  algo_name : string;
  propose : context -> Space.configuration;
  observe : context -> History.entry -> unit;
}

let make ~name ~propose ?(observe = fun _ _ -> ()) () = { algo_name = name; propose; observe }
