module Space = Wayfinder_configspace.Space
module Rng = Wayfinder_tensor.Rng
module Obs = Wayfinder_obs

exception Space_exhausted

type context = {
  space : Space.t;
  metric : Metric.t;
  history : History.t;
  rng : Rng.t;
  obs : Obs.Recorder.t;
}

type belief = {
  crash_probability : float option;
  predicted_value : float option;
  predicted_uncertainty : float option;
  belief_source : string;
}

type t = {
  algo_name : string;
  propose : context -> Space.configuration;
  propose_batch : (context -> k:int -> Space.configuration list) option;
  observe : context -> History.entry -> unit;
  predict : (context -> Space.configuration -> belief) option;
}

let make ~name ~propose ?propose_batch ?(observe = fun _ _ -> ()) ?predict () =
  { algo_name = name; propose; propose_batch; observe; predict }

let propose_many t ctx ~k =
  if k <= 0 then invalid_arg "Search_algorithm.propose_many: k must be positive";
  match t.propose_batch with
  | Some batch when k > 1 -> ( try batch ctx ~k with Space_exhausted -> [])
  | Some _ | None ->
    let rec go acc i =
      if i = k then List.rev acc
      else
        match t.propose ctx with
        | config -> go (config :: acc) (i + 1)
        | exception Space_exhausted -> List.rev acc
    in
    go [] 0
