type t =
  | Weighted_sum of float array
  | Epsilon_constraint of { primary : int; bounds : float array }

let validate t ~n =
  match t with
  | Weighted_sum w ->
    if Array.length w <> n then
      Error
        (Printf.sprintf "scalarize: %d weights for %d objectives" (Array.length w) n)
    else if Array.exists (fun x -> not (Float.is_finite x)) w then
      Error "scalarize: weights must be finite"
    else if Array.for_all (fun x -> x = 0.) w && n > 0 then
      Error "scalarize: at least one weight must be non-zero"
    else Ok ()
  | Epsilon_constraint { primary; bounds } ->
    if Array.length bounds <> n then
      Error
        (Printf.sprintf "scalarize: %d bounds for %d objectives" (Array.length bounds) n)
    else if primary < 0 || primary >= n then
      Error (Printf.sprintf "scalarize: primary objective %d out of range" primary)
    else if Array.exists (fun b -> (not (Float.is_nan b)) && not (Float.is_finite b)) bounds
    then
      (* NaN means "no bound" and is skipped by [apply]; an infinite
         bound would flow into the soft-barrier shortfall and poison the
         scalarized score with ±inf. *)
      Error "scalarize: bounds must be finite (NaN for no bound)"
    else Ok ()

let apply t ~spec v =
  let n = Array.length spec in
  if Array.length v <> n then invalid_arg "Scalarize.apply: vector/spec length mismatch";
  match t with
  | Weighted_sum w ->
    if Array.length w <> n then invalid_arg "Scalarize.apply: weight/spec length mismatch";
    (* Zero-weight terms are skipped entirely and a lone unit weight is
       returned unscaled, so (1, 0, ..., 0) reproduces objective 0's
       score bit-for-bit — the degenerate case existing oracles pin. *)
    let acc = ref None in
    Array.iteri
      (fun i wi ->
        if wi <> 0. then begin
          let s = Metric.score spec.(i) v.(i) in
          let term = if wi = 1. then s else wi *. s in
          acc := Some (match !acc with None -> term | Some a -> a +. term)
        end)
      w;
    (match !acc with Some a -> a | None -> 0.)
  | Epsilon_constraint { primary; bounds } ->
    if Array.length bounds <> n then
      invalid_arg "Scalarize.apply: bound/spec length mismatch";
    let violation = ref 0. in
    Array.iteri
      (fun i b ->
        if not (Float.is_nan b) then begin
          let shortfall = Metric.score spec.(i) b -. Metric.score spec.(i) v.(i) in
          if shortfall > 0. then violation := !violation +. shortfall
        end)
      bounds;
    Metric.score spec.(primary) v.(primary) -. (1e6 *. !violation)

let describe = function
  | Weighted_sum w ->
    Printf.sprintf "weighted-sum(%s)"
      (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%g") w)))
  | Epsilon_constraint { primary; bounds } ->
    Printf.sprintf "epsilon-constraint(primary=%d, bounds=%s)" primary
      (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%g") bounds)))
