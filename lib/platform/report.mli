(** Human-readable run reports.

    §3.5 expects an engineer to review a configuration before it ships;
    this module renders everything that review needs from a finished
    {!Driver.result}: the headline (best value, relative improvement, time
    to find), the crash statistics, the timing breakdown, and the exact
    diff of the best configuration against the default. *)

type t = {
  target_name : string;
  algorithm_name : string;
  iterations : int;
  virtual_seconds : float;
  crash_rate : float;
  late_crash_rate : float;  (** Over the final 50 iterations. *)
  transient_rate : float;
      (** Share of iterations lost to the testbed (transient faults and
          timeouts) rather than the configuration. *)
  retries : int;  (** Retry attempts charged ([driver.retries]). *)
  quarantined_configs : int;  (** Configurations given up on. *)
  builds_charged : int;
  mean_decide_seconds : float;
  phase_seconds : (string * float) list;
      (** Virtual seconds charged per driver phase (build/boot/run/invalid/
          retry/quarantined/replay), from the run's obs metrics — the
          timing footer. *)
  best : best option;
}

and best = {
  value : float;
  relative : relative option;
      (** vs the supplied default, higher-is-better.  [None] when no
          default was supplied; [Some Not_applicable] when a default was
          supplied but the ratio is undefined (zero or non-finite
          denominator, or a non-finite best value) — rendered as "n/a",
          never as [inf]/[nan]. *)
  found_at_iteration : int;
  found_at_seconds : float;
  changed : (string * string * string) list;  (** (param, default, chosen). *)
}

and relative = Ratio of float | Not_applicable

val of_result :
  ?default:float -> algorithm:string -> target:Target.t -> Driver.result -> t
(** [default] enables the relative-improvement figure. *)

val to_text : t -> string
(** Plain-text rendering (what the CLI prints). *)

val to_markdown : t -> string
(** A markdown section suitable for a PR or review document. *)
