module Stat = Wayfinder_tensor.Stat

type point = { index : int; objectives : float array }

type t = { spec : Objective.spec; points : point list (* ascending index *) }

let create ~spec = { spec; points = [] }
let spec t = t.spec
let points t = t.points
let size t = List.length t.points
let is_empty t = t.points = []

let insert t ~index ~objectives =
  let beaten_by p =
    Objective.dominates t.spec p.objectives objectives
    || (Objective.equal_vec p.objectives objectives && p.index <= index)
  in
  if List.exists beaten_by t.points then t
  else
    let survives p =
      not
        (Objective.dominates t.spec objectives p.objectives
        || (Objective.equal_vec p.objectives objectives && index < p.index))
    in
    let points =
      List.merge
        (fun a b -> compare a.index b.index)
        [ { index; objectives } ]
        (List.filter survives t.points)
    in
    { t with points }

let to_list t = List.map (fun p -> (p.index, p.objectives)) t.points

let of_list ~spec l =
  List.fold_left (fun t (index, objectives) -> insert t ~index ~objectives) (create ~spec) l

let hypervolume_proxy t =
  match t.points with
  | [] -> 0.
  | points ->
    let n = Array.length t.spec in
    let scores =
      List.map (fun p -> Objective.scores t.spec p.objectives) points
    in
    let lo = Array.make n infinity and hi = Array.make n neg_infinity in
    List.iter
      (fun s ->
        Array.iteri
          (fun i x ->
            if x < lo.(i) then lo.(i) <- x;
            if x > hi.(i) then hi.(i) <- x)
          s)
      scores;
    List.fold_left
      (fun acc s ->
        let volume = ref 1. in
        Array.iteri
          (fun i x -> volume := !volume *. Stat.min_max_norm ~lo:lo.(i) ~hi:hi.(i) x)
          s;
        acc +. !volume)
      0. scores
