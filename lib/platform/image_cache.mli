(** A deterministic, bounded, shared cache of built images.

    The paper's §3.1 rebuild-skip used to be a per-slot "last built image"
    baseline, so a multi-worker run rebuilt an image another slot had just
    built and every fresh or resumed run started cold.  This cache is
    shared by all virtual evaluation slots and keyed by
    {!Wayfinder_configspace.Space.stage_key} — the canonical
    content-address of a configuration's non-runtime projection — so any
    slot can skip the build phase when {e any} slot already built that
    image, and runtime-only variation never invalidates an entry.

    Eviction is exact LRU under a fixed capacity.  Deterministic build
    failures are {e negative-cached} ({!Build_failed}): re-proposing a
    configuration whose image is known not to build costs a floor charge
    instead of a doomed build.  The structure is fully deterministic
    (recency is an intrusive doubly-linked list, never a clock), and
    {!to_alist}/{!of_alist} round-trip contents {e and} recency order so
    checkpoint format 3 can persist it and a resumed run continues with
    the exact warm cache the killed run held. *)

type status =
  | Built  (** The image exists; the build phase can be skipped. *)
  | Build_failed of Failure.t
      (** The image deterministically fails to build; re-evaluations are
          served this failure at a floor charge (negative caching). *)

type entry = {
  status : status;
  origin : int;  (** The evaluation slot that produced the entry. *)
}

type config
(** Cache configuration (today: just a validated capacity). *)

val capacity : int -> config
(** @raise Invalid_argument when the capacity is below 1. *)

type t
(** The cache; mutable. *)

val create : config -> t

val peek : t -> string -> entry option
(** Lookup {e without} promoting the entry (recency unchanged). *)

val touch : t -> string -> unit
(** Promote the key to most recently used, if present. *)

val find : t -> string -> entry option
(** Lookup and promote ([peek] + [touch]). *)

val add : t -> string -> entry -> (string * entry) option
(** Insert (or overwrite) the entry and promote it to most recently used;
    returns the evicted least-recently-used binding when the insert
    overflowed the capacity. *)

val mem : t -> string -> bool
val length : t -> int

val cap : t -> int
(** The configured capacity. *)

val to_alist : t -> (string * entry) list
(** Contents in recency order, most recently used first. *)

val of_alist : config -> (string * entry) list -> t
(** Rebuild a cache from a most-recently-used-first listing (the exact
    inverse of {!to_alist}).
    @raise Invalid_argument on duplicate keys or more entries than the
    capacity. *)
