module Space = Wayfinder_configspace.Space
module Encoding = Wayfinder_configspace.Encoding
module Mat = Wayfinder_tensor.Mat
module Gp = Wayfinder_gp.Gp
module Kernel = Wayfinder_gp.Kernel
module Obs = Wayfinder_obs

type state = {
  encoding : Encoding.t;
  mutable xs : float array list;  (* newest first *)
  mutable ys : float list;  (* scores, higher better *)
  mutable worst : float;
  mutable model : (Gp.t * float * float) option;
      (* Last fitted surrogate with its target standardisation (mean, std)
         — kept solely for the pure [predict] introspection hook. *)
}

let create ?favor ?(n_init = 8) ?(pool = 200) ?(max_points = 200) ?(lengthscale = 1.5)
    ?(seed = 0) () =
  ignore seed;
  let state = ref None in
  let get_state space =
    match !state with
    | Some st -> st
    | None ->
      let st =
        { encoding = Encoding.create space; xs = []; ys = []; worst = 0.; model = None }
      in
      state := Some st;
      st
  in
  let pick st ctx =
    let space = ctx.Search_algorithm.space in
    let rng = ctx.Search_algorithm.rng in
    let n = List.length st.ys in
    if n < n_init then Random_search.sampler ?favor space rng
    else begin
      let take k l =
        let rec go k = function x :: rest when k > 0 -> x :: go (k - 1) rest | _ -> [] in
        go k l
      in
      let xs = take max_points st.xs and ys = take max_points st.ys in
      let x = Mat.of_rows (Array.of_list xs) in
      let y = Array.of_list ys in
      let kernel = Kernel.Squared_exponential { lengthscale; variance = 1. } in
      (* Standardise targets so the unit-variance prior is sane. *)
      let mean, std = Wayfinder_tensor.Stat.zscore_params y in
      let y_std = Array.map (fun v -> (v -. mean) /. std) y in
      let gp =
        (* O(n³) fit — the cost Figure 7 compares against; worth a span. *)
        Obs.Recorder.with_span ctx.Search_algorithm.obs
          ~attrs:[ Obs.Attr.int "points" (Array.length y) ]
          "bayes.gp_fit"
          (fun () -> Gp.fit ~noise:1e-3 kernel x y_std)
      in
      st.model <- Some (gp, mean, std);
      Obs.Recorder.observe ctx.Search_algorithm.obs ~quiet:true "bayes.model_points"
        (float_of_int (Array.length y));
      Obs.Recorder.observe ctx.Search_algorithm.obs ~quiet:true "bayes.pool_size"
        (float_of_int pool);
      let best = Array.fold_left max neg_infinity y_std in
      let best_config = ref (Random_search.sampler ?favor space rng) in
      let best_ei = ref neg_infinity in
      for _ = 0 to pool - 1 do
        (* Textbook BO: EI maximised over a random candidate pool (no
           model-free exploitation seeds — that is DeepTune's trick). *)
        let candidate = Random_search.sampler ?favor space rng in
        let ei = Gp.expected_improvement gp ~best (Encoding.encode st.encoding candidate) in
        if ei > !best_ei then begin
          best_ei := ei;
          best_config := candidate
        end
      done;
      !best_config
    end
  in
  let propose ctx = pick (get_state ctx.Search_algorithm.space) ctx in
  (* Constant-liar batching (CL-max): after each pick, pretend it came back
     at the incumbent best score, refit, and maximise EI again — the fake
     observation flattens EI around the pick so the batch spreads out
     instead of piling onto one point.  The lies are popped before the
     real outcomes arrive through [observe]. *)
  let propose_batch ctx ~k =
    let st = get_state ctx.Search_algorithm.space in
    let picks = ref [] in
    let lies = ref 0 in
    for _ = 1 to k do
      let c = pick st ctx in
      picks := c :: !picks;
      let lie =
        match st.ys with [] -> 0. | ys -> List.fold_left max neg_infinity ys
      in
      st.xs <- Encoding.encode st.encoding c :: st.xs;
      st.ys <- lie :: st.ys;
      incr lies
    done;
    let rec drop n l =
      if n = 0 then l else match l with _ :: rest -> drop (n - 1) rest | [] -> []
    in
    st.xs <- drop !lies st.xs;
    st.ys <- drop !lies st.ys;
    List.rev !picks
  in
  let observe ctx entry =
    let st = get_state ctx.Search_algorithm.space in
    match entry.History.failure with
    | Some f when not (Failure.counts_as_crash f) ->
      (* Transient faults and timeouts say nothing about the configuration;
         feeding them to the GP as pessimistic points would poison the
         surrogate around perfectly good regions. *)
      ()
    | Some _ | None ->
      let score =
        match entry.History.value with
        | Some v -> Metric.score ctx.Search_algorithm.metric v
        | None ->
          (* Deterministic failures become a pessimistic observation: BO
             has no dedicated crash model (§2.3). *)
          st.worst -. 1.
      in
      st.xs <- Encoding.encode st.encoding entry.History.config :: st.xs;
      st.ys <- score :: st.ys;
      if score < st.worst || List.length st.ys = 1 then st.worst <- score
  in
  (* Pure introspection: read the cached surrogate (the one the last pick
     maximised EI over), never refit, never touch [ctx.rng].  Before the
     first fit (random warm-up phase) the searcher has no stated belief. *)
  let predict ctx config =
    let st = get_state ctx.Search_algorithm.space in
    match st.model with
    | None ->
      { Search_algorithm.crash_probability = None; predicted_value = None;
        predicted_uncertainty = None; belief_source = "gp" }
    | Some (gp, mean, std) ->
      let mu, var = Gp.predict gp (Encoding.encode st.encoding config) in
      { Search_algorithm.crash_probability = None;
        predicted_value = Some ((mu *. std) +. mean);
        predicted_uncertainty = Some (sqrt (Float.max 0. var) *. std);
        belief_source = "gp" }
  in
  Search_algorithm.make ~name:"bayesian" ~propose ~propose_batch ~observe ~predict ()
