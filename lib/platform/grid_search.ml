module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Obs = Wayfinder_obs

let candidates ~steps (p : Param.t) =
  match p.Param.kind with
  | Param.Kbool -> [| Param.Vbool false; Param.Vbool true |]
  | Param.Ktristate -> [| Param.Vtristate 0; Param.Vtristate 1; Param.Vtristate 2 |]
  | Param.Kcategorical choices -> Array.init (Array.length choices) (fun i -> Param.Vcat i)
  | Param.Kint { lo; hi; log_scale } ->
    if hi - lo + 1 <= steps then Array.init (hi - lo + 1) (fun i -> Param.Vint (lo + i))
    else begin
      let value k =
        let frac = float_of_int k /. float_of_int (steps - 1) in
        if log_scale && lo >= 0 then begin
          let l v = log10 (float_of_int (max 1 v)) in
          int_of_float (10. ** (l lo +. (frac *. (l hi -. l lo))))
        end
        else lo + int_of_float (frac *. float_of_int (hi - lo))
      in
      let vals = Array.init steps (fun k -> max lo (min hi (value k))) in
      (* Deduplicate while keeping order. *)
      let seen = Hashtbl.create steps in
      Array.of_list
        (Array.to_list vals
        |> List.filter_map (fun v ->
               if Hashtbl.mem seen v then None
               else begin
                 Hashtbl.add seen v ();
                 Some (Param.Vint v)
               end))
    end

type state = {
  space : Space.t;
  grids : Param.value array array;
  counter : int array;
  mutable exhausted : bool;
}

let grid_size ?(steps = 4) space =
  let params = Space.params space in
  let acc = ref 1. in
  Array.iteri
    (fun i p ->
      match Space.fixed_value space i with
      | Some _ -> ()
      | None -> acc := !acc *. float_of_int (Array.length (candidates ~steps p)))
    params;
  !acc

let create ?(steps = 4) () =
  let state = ref None in
  let init space =
    let params = Space.params space in
    let grids =
      Array.mapi
        (fun i p ->
          match Space.fixed_value space i with
          | Some v -> [| v |]
          | None -> candidates ~steps p)
        params
    in
    { space; grids; counter = Array.make (Array.length params) 0; exhausted = false }
  in
  let get_state ctx =
    match !state with
    | Some st when st.space == ctx.Search_algorithm.space -> st
    | Some _ | None ->
      let st = init ctx.Search_algorithm.space in
      state := Some st;
      Obs.Recorder.observe ctx.Search_algorithm.obs ~quiet:true "grid.size"
        (Array.fold_left (fun acc g -> acc *. float_of_int (Array.length g)) 1. st.grids);
      st
  in
  (* One grid point, advancing the counter.  A mixed-radix increment that
     overflows the most significant position marks the grid exhausted —
     the next ask raises rather than silently wrapping around to
     re-propose the origin. *)
  let next_point st ctx =
    Obs.Recorder.incr ctx.Search_algorithm.obs ~quiet:true "grid.proposals";
    let config = Array.mapi (fun i grid -> grid.(st.counter.(i))) st.grids in
    (* Mixed-radix increment: first parameter varies fastest. *)
    let rec bump i =
      if i >= Array.length st.counter then st.exhausted <- true
      else begin
        st.counter.(i) <- st.counter.(i) + 1;
        if st.counter.(i) >= Array.length st.grids.(i) then begin
          st.counter.(i) <- 0;
          bump (i + 1)
        end
      end
    in
    bump 0;
    config
  in
  let propose ctx =
    let st = get_state ctx in
    if st.exhausted then raise Search_algorithm.Space_exhausted;
    next_point st ctx
  in
  (* Native batch: the next [k] points of the same enumeration, cut short
     at the grid's end (a final partial batch). *)
  let propose_batch ctx ~k =
    let st = get_state ctx in
    if st.exhausted then raise Search_algorithm.Space_exhausted;
    let out = ref [] in
    let n = ref 0 in
    while !n < k && not st.exhausted do
      out := next_point st ctx :: !out;
      incr n
    done;
    List.rev !out
  in
  Search_algorithm.make ~name:"grid" ~propose ~propose_batch ()
