module Trace = Wayfinder_simos.Trace

type t = {
  trace : Trace.t;
  stride : int;
  span : int;
  mutable cursor : int;
}

let create ?(stride = 0) ?span trace =
  if stride < 0 then invalid_arg "Scenario.create: negative stride";
  let span = Option.value span ~default:(Array.length trace.Trace.loads) in
  if span < 0 || (span = 0 && Array.length trace.Trace.loads > 0) then
    invalid_arg "Scenario.create: span must be positive";
  { trace; stride; span; cursor = 0 }

let trace t = t.trace
let stride t = t.stride
let cursor t = t.cursor
let set_cursor t c = t.cursor <- c
let advance t = t.cursor <- t.cursor + t.stride

let slice t =
  let n = Array.length t.trace.Trace.loads in
  if n = 0 then t.trace
  else
    { t.trace with
      Trace.loads = Array.init t.span (fun i -> t.trace.Trace.loads.((t.cursor + i) mod n))
    }
