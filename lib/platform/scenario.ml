module Trace = Wayfinder_simos.Trace

type t = {
  trace : Trace.t;
  stride : int;
  span : int;
  mutable cursor : int;
}

let create ?(stride = 0) ?span ?(cursor = 0) trace =
  if stride < 0 then invalid_arg "Scenario.create: negative stride";
  if cursor < 0 then invalid_arg "Scenario.create: negative cursor";
  let span = Option.value span ~default:(Array.length trace.Trace.loads) in
  if span < 0 || (span = 0 && Array.length trace.Trace.loads > 0) then
    invalid_arg "Scenario.create: span must be positive";
  { trace; stride; span; cursor }

let trace t = t.trace
let stride t = t.stride
let cursor t = t.cursor

let set_cursor t c =
  if c < 0 then invalid_arg "Scenario.set_cursor: negative cursor";
  t.cursor <- c

let advance t = t.cursor <- t.cursor + t.stride

(* Euclidean modulo: always in [0, n).  OCaml's [mod] truncates toward
   zero, so a negative dividend yields a negative remainder — an
   out-of-bounds index if it ever reached [Array.get].  The cursor is
   validated non-negative on entry, but slice stays total anyway so a
   future caller can't reintroduce the crash. *)
let emod a n =
  let r = a mod n in
  if r < 0 then r + n else r

let slice t =
  let n = Array.length t.trace.Trace.loads in
  if n = 0 then t.trace
  else
    { t.trace with
      Trace.loads = Array.init t.span (fun i -> t.trace.Trace.loads.(emod (t.cursor + i) n))
    }
