module Space = Wayfinder_configspace.Space

type entry = {
  index : int;
  config : Space.configuration;
  value : float option;
  failure : Failure.t option;
  at_seconds : float;
  eval_seconds : float;
  built : bool;
  decide_seconds : float;
  objectives : float array option;
}

type t = { metric : Metric.t; mutable entries : entry list; mutable count : int }

let create metric = { metric; entries = []; count = 0 }
let metric t = t.metric

let add t e =
  t.entries <- e :: t.entries;
  t.count <- t.count + 1

let size t = t.count

let entries t =
  let a = Array.of_list t.entries in
  let n = Array.length a in
  Array.init n (fun i -> a.(n - 1 - i))

let last t = match t.entries with [] -> None | e :: _ -> Some e

let crashes t =
  List.fold_left (fun acc e -> if e.failure <> None then acc + 1 else acc) 0 t.entries

let crash_rate t = if t.count = 0 then 0. else float_of_int (crashes t) /. float_of_int t.count

let count_class t klass =
  List.fold_left
    (fun acc e ->
      match e.failure with
      | Some f when Failure.klass f = klass -> acc + 1
      | Some _ | None -> acc)
    0 t.entries

let deterministic_crashes t = count_class t Failure.Deterministic
let transient_failures t = count_class t Failure.Transient + count_class t Failure.Timeout

let transient_rate t =
  if t.count = 0 then 0. else float_of_int (transient_failures t) /. float_of_int t.count

let windowed_crash_rate t ~window =
  let rec take n = function
    | e :: rest when n > 0 -> e :: take (n - 1) rest
    | _ :: _ | [] -> []
  in
  let recent = take window t.entries in
  match recent with
  | [] -> 0.
  | _ :: _ ->
    let c = List.fold_left (fun acc e -> if e.failure <> None then acc + 1 else acc) 0 recent in
    float_of_int c /. float_of_int (List.length recent)

let best t =
  List.fold_left
    (fun acc e ->
      match (e.value, acc) with
      | None, _ -> acc
      | Some _, None -> Some e
      | Some v, Some b -> (
        match b.value with
        | Some bv when Metric.better t.metric v bv -> Some e
        | Some _ | None -> acc))
    None t.entries

let best_value t = Option.bind (best t) (fun e -> e.value)
let time_to_best t = Option.map (fun e -> e.at_seconds) (best t)

let values_series t =
  let es = entries t in
  let n = Array.length es in
  let out = Array.make n nan in
  (* First successful value backfills leading failures. *)
  let first_success =
    Array.fold_left (fun acc e -> match (acc, e.value) with None, Some v -> Some v | _ -> acc)
      None es
  in
  let prev = ref (Option.value ~default:0. first_success) in
  for i = 0 to n - 1 do
    (match es.(i).value with Some v -> prev := v | None -> ());
    out.(i) <- !prev
  done;
  out

let best_so_far_series t =
  let es = entries t in
  let n = Array.length es in
  let out = Array.make n nan in
  let best = ref None in
  for i = 0 to n - 1 do
    (match es.(i).value with
    | Some v -> (
      match !best with
      | None -> best := Some v
      | Some b -> if Metric.better t.metric v b then best := Some v)
    | None -> ());
    out.(i) <- Option.value ~default:nan !best
  done;
  out

let crash_indicator t =
  Array.map (fun e -> if e.failure <> None then 1. else 0.) (entries t)

let builds_charged t =
  List.fold_left (fun acc e -> if e.built then acc + 1 else acc) 0 t.entries

let total_eval_seconds t = List.fold_left (fun acc e -> acc +. e.eval_seconds) 0. t.entries

let mean_decide_seconds t =
  if t.count = 0 then 0.
  else List.fold_left (fun acc e -> acc +. e.decide_seconds) 0. t.entries /. float_of_int t.count

(* RFC 4180: fields containing separators, quotes or line breaks are
   wrapped in double quotes, with embedded quotes doubled. *)
let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 4) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "index,value,failure,failure_class,at_s,eval_s,built,decide_s\n";
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%.1f,%.1f,%b,%.6f\n" e.index
           (match e.value with Some v -> Printf.sprintf "%.3f" v | None -> "")
           (csv_field (match e.failure with Some f -> Failure.to_string f | None -> ""))
           (csv_field
              (match e.failure with
              | Some f -> Failure.klass_to_string (Failure.klass f)
              | None -> ""))
           e.at_seconds e.eval_seconds e.built e.decide_seconds))
    (entries t);
  Buffer.contents buf
