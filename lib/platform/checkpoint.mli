(** Driver checkpoints: kill a search, resume it, get the same answer.

    A checkpoint captures everything the driver needs to continue a search
    as if it had never stopped: the exploration history (every entry,
    configs included), the virtual clock, the budget origin, the RNG
    state, the rebuild-skip baseline image, the invalid-proposal streak
    and the quarantine bookkeeping.

    Search-algorithm state (DeepTune's network, a GP's observations) is
    deliberately {e not} serialized.  Resume instead {e replays}: the
    algorithm is recreated from the same seed and fed the recorded history
    through its normal [propose]/[observe] path, skipping only the
    (expensive) target evaluations — on a real testbed those are hours of
    VM time; everything else is deterministic, so the rebuilt state is
    bit-identical to the moment the checkpoint was written.  The stored
    RNG state and the replayed proposals double as integrity checks: a
    resume under different flags, seed or code fails loudly instead of
    silently diverging.

    The on-disk format is a versioned line-oriented text file; floats are
    hex literals ([%h]) so every double round-trips exactly, and files are
    written to a temporary name and renamed so a crash mid-write never
    corrupts the previous checkpoint. *)

module Space = Wayfinder_configspace.Space

type t = {
  seed : int;
  rng_state : int64;  (** Driver RNG state at checkpoint time (verification). *)
  clock_seconds : float;  (** Virtual clock reading. *)
  budget_start_seconds : float;  (** Clock reading when the run started. *)
  iterations : int;
  consecutive_invalid : int;
  last_built : Space.configuration option;  (** Rebuild-skip baseline. *)
  strikes : (int * int) list;  (** Config key → exhausted-retry episodes. *)
  quarantined : int list;  (** Quarantined config keys. *)
  entries : History.entry list;  (** Oldest first. *)
}

val version : int

val to_string : t -> string
val of_string : string -> (t, string) result

val save : path:string -> t -> unit
(** Atomic: writes [path ^ ".tmp"], then renames. *)

val load : path:string -> (t, string) result
