(** Driver checkpoints: kill a search, resume it, get the same answer.

    A checkpoint captures everything the driver needs to continue a search
    as if it had never stopped: the exploration history (every entry,
    configs included), the virtual clock, the budget origin, the RNG
    state, the invalid-proposal streak, the quarantine bookkeeping, the
    tasks that were still {e in flight} on the multi-worker engine's
    virtual evaluation slots when the file was written (since format
    version 2) — and, since format version 3, the shared
    {!Image_cache} contents {e and recency order}, so a killed
    [~workers:n] run resumes mid-batch with the exact warm cache it held
    and reproduces the uninterrupted trajectory exactly.

    Search-algorithm state (DeepTune's network, a GP's observations) is
    deliberately {e not} serialized.  Resume instead {e replays}: the
    algorithm is recreated from the same seed and fed the recorded history
    through its normal [propose]/[observe] path, skipping only the
    (expensive) target evaluations — on a real testbed those are hours of
    VM time; everything else is deterministic, so the rebuilt state is
    bit-identical to the moment the checkpoint was written.  The stored
    RNG state and the replayed proposals double as integrity checks: a
    resume under different flags, seed or code fails loudly instead of
    silently diverging.

    The on-disk format is a versioned line-oriented text file; floats are
    hex literals ([%h]) so every double round-trips exactly, and files are
    written to a temporary name and renamed so a crash mid-write never
    corrupts the previous checkpoint.  Files written by other format
    versions are rejected with {!Unsupported_version} — never an
    exception. *)

module Space = Wayfinder_configspace.Space

type inflight = {
  index : int;  (** Proposal sequence number (equals [entry.index]). *)
  slot : int;  (** The virtual evaluation slot the task occupies. *)
  start_seconds : float;  (** Clock reading when the task was launched. *)
  entry : History.entry;
      (** The task's precomputed outcome; [entry.at_seconds] is its
          (future) completion time.  Evaluation is a pure function of
          (trial, configuration), so the driver computes the whole
          outcome at launch and only reveals it at completion — which is
          what lets an interrupted task be persisted at all. *)
}

type t = {
  seed : int;
  rng_state : int64;  (** Driver RNG state at checkpoint time (verification). *)
  clock_seconds : float;  (** Virtual clock reading. *)
  budget_start_seconds : float;  (** Clock reading when the run started. *)
  iterations : int;  (** Completed (recorded) evaluations. *)
  workers : int;  (** Virtual evaluation slots of the writing run. *)
  consecutive_invalid : int;
  cache_capacity : int;  (** Image-cache capacity of the writing run. *)
  cache : (string * Image_cache.entry) list;
      (** Shared image-cache contents in recency order, most recently used
          first (exactly {!Image_cache.to_alist}); at most
          [cache_capacity] bindings with distinct keys. *)
  strikes : (string * int) list;
      (** Canonical config key ({!Param.config_key}) → exhausted-retry
          episodes, sorted by key. *)
  quarantined : string list;  (** Quarantined canonical config keys, sorted. *)
  entries : History.entry list;  (** Completion order, oldest first. *)
  inflight : inflight list;  (** Launched but not yet completed tasks. *)
}

type error =
  | Unsupported_version of { found : int; expected : int }
      (** The file is a wayfinder checkpoint, but written by a different
          format version. *)
  | Malformed of string  (** Unreadable file or corrupt content. *)

val error_to_string : error -> string

val version : int
(** Current format version: 4.  Files written by earlier versions are
    rejected with {!Unsupported_version} (v2 persisted per-slot baseline
    images instead of the shared cache; v3 keyed quarantine strikes on
    the truncated polymorphic hash, which conflated configurations
    differing past the ~10th parameter). *)

val to_string : t -> string
val of_string : string -> (t, error) result

val save : path:string -> t -> unit
(** Atomic: writes [path ^ ".tmp"], then renames. *)

val load : path:string -> (t, error) result
