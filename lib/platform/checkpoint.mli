(** Driver checkpoints: kill a search, resume it, get the same answer.

    A checkpoint captures everything the driver needs to continue a search
    as if it had never stopped: the exploration history (every entry,
    configs included), the virtual clock, the budget origin, the RNG
    state, the invalid-proposal streak, the quarantine bookkeeping, the
    tasks that were still {e in flight} on the multi-worker engine's
    virtual evaluation slots when the file was written (since format
    version 2) — and, since format version 3, the shared
    {!Image_cache} contents {e and recency order}, so a killed
    [~workers:n] run resumes mid-batch with the exact warm cache it held
    and reproduces the uninterrupted trajectory exactly.

    Search-algorithm state (DeepTune's network, a GP's observations) is
    deliberately {e not} serialized.  Resume instead {e replays}: the
    algorithm is recreated from the same seed and fed the recorded history
    through its normal [propose]/[observe] path, skipping only the
    (expensive) target evaluations — on a real testbed those are hours of
    VM time; everything else is deterministic, so the rebuilt state is
    bit-identical to the moment the checkpoint was written.  The stored
    RNG state and the replayed proposals double as integrity checks: a
    resume under different flags, seed or code fails loudly instead of
    silently diverging.

    The on-disk format is a versioned line-oriented text file; floats are
    hex literals ([%h]) so every double round-trips exactly.  The file is
    a {e sealed envelope}: the versioned body followed by a mandatory
    CRC-32 trailer line over the body bytes, so truncations and bit flips
    are rejected with a typed {!Malformed} instead of being misparsed.
    Writes go through {!Durable}: tmp-write + fsync + rename +
    directory-fsync, with optional {e generation rotation}
    ([path], [path.1], …) so a corrupt or torn primary falls back to the
    newest older generation that validates ({!load_latest}) instead of
    killing the resume.  Files written by other format versions are
    rejected with {!Unsupported_version} — never an exception. *)

module Space = Wayfinder_configspace.Space

type inflight = {
  index : int;  (** Proposal sequence number (equals [entry.index]). *)
  slot : int;  (** The virtual evaluation slot the task occupies. *)
  start_seconds : float;  (** Clock reading when the task was launched. *)
  entry : History.entry;
      (** The task's precomputed outcome; [entry.at_seconds] is its
          (future) completion time.  Evaluation is a pure function of
          (trial, configuration), so the driver computes the whole
          outcome at launch and only reveals it at completion — which is
          what lets an interrupted task be persisted at all. *)
}

type t = {
  seed : int;
  rng_state : int64;  (** Driver RNG state at checkpoint time (verification). *)
  clock_seconds : float;  (** Virtual clock reading. *)
  budget_start_seconds : float;  (** Clock reading when the run started. *)
  iterations : int;  (** Completed (recorded) evaluations. *)
  workers : int;  (** Virtual evaluation slots of the writing run. *)
  consecutive_invalid : int;
  cache_capacity : int;  (** Image-cache capacity of the writing run. *)
  cache : (string * Image_cache.entry) list;
      (** Shared image-cache contents in recency order, most recently used
          first (exactly {!Image_cache.to_alist}); at most
          [cache_capacity] bindings with distinct keys. *)
  strikes : (string * int) list;
      (** Canonical config key ({!Param.config_key}) → exhausted-retry
          episodes, sorted by key. *)
  quarantined : string list;  (** Quarantined canonical config keys, sorted. *)
  entries : History.entry list;  (** Completion order, oldest first. *)
  inflight : inflight list;  (** Launched but not yet completed tasks. *)
  pareto : (int * float array) list;
      (** Pareto archive of a multi-objective run: [(entry index, raw
          objective vector)] sorted by index (exactly
          {!Pareto.to_list}); empty for scalar runs. *)
  trace_cursor : int option;
      (** Scenario trace position ({!Scenario.cursor}) at checkpoint
          time; [None] when the run had no scenario. *)
}

type error =
  | Unsupported_version of { found : int; expected : int }
      (** The file is a wayfinder checkpoint, but written by a different
          format version. *)
  | Malformed of string  (** Unreadable file or corrupt content. *)

val error_to_string : error -> string

val version : int
(** Current format version: 5.  Files written by earlier versions are
    rejected with {!Unsupported_version} (v2 persisted per-slot baseline
    images instead of the shared cache; v3 keyed quarantine strikes on
    the truncated polymorphic hash, which conflated configurations
    differing past the ~10th parameter; v4 predates objective vectors,
    the Pareto archive and the scenario trace cursor, all of which v5
    entry lines and body fields carry). *)

val to_string : t -> string
(** The sealed envelope: the versioned body plus the CRC-32 trailer
    line. *)

val of_string : string -> (t, error) result
(** Verifies the CRC trailer before parsing; a file without one (torn
    write, truncation at the trailer) is {!Malformed}. *)

val generation_path : string -> int -> string
(** [generation_path path 0 = path]; [generation_path path i] is
    ["path.i"] for [i >= 1]. *)

val max_generations : int
(** The probe window of {!load_latest}: 64. *)

val save : ?backend:Durable.backend -> ?keep:int -> path:string -> t -> unit
(** Durable atomic publish via [backend] (default {!Durable.fs}): stage
    to [path ^ ".tmp"], fsync, rotate generations when [keep > 1]
    ([path] → [path.1] → … up to [path.(keep-1)]), rename into place,
    fsync the directory.  A crash at any boundary leaves a complete
    generation loadable by {!load_latest}; a failed write removes the
    staging file and leaves every existing generation untouched.
    @raise Durable.Io_error on I/O failure (after cleanup).
    @raise Invalid_argument if [keep < 1]. *)

val load : path:string -> (t, error) result
(** {!load_from} on the real filesystem. *)

val load_from : backend:Durable.backend -> path:string -> (t, error) result

type notice =
  | Recovered_from_generation of {
      generation : int;  (** The generation that validated (1 = [path.1] …). *)
      loaded_from : string;
      dropped : (string * error) list;
          (** Newer generations that exist but failed validation, newest
              first — the evidence for the fallback. *)
    }
      (** Surfaced by {!load_latest} when the primary did not load
          cleanly; [wayfinder run --resume] prints it instead of dying
          on a corrupt primary. *)

val notice_to_string : notice -> string

val load_latest :
  ?backend:Durable.backend -> string -> (t * notice option, error) result
(** Load the newest generation that validates: tries [path], then
    [path.1], [path.2], … within {!max_generations}.  [None] notice
    means the primary loaded cleanly.  [Error] carries the {e primary}'s
    error when every generation is corrupt, or {!Malformed} when no
    generation exists at all. *)
