type klass = Deterministic | Transient | Timeout

type t =
  | Invalid_configuration
  | Build_failure
  | Boot_failure
  | Runtime_crash
  | Flaky_build
  | Spurious_failure
  | Boot_hang
  | Build_timeout
  | Boot_timeout
  | Run_timeout
  | Quarantined
  | Non_finite_measurement
  | Other of string

let klass = function
  | Invalid_configuration | Build_failure | Boot_failure | Runtime_crash
  | Non_finite_measurement | Other _ ->
    Deterministic
  | Flaky_build | Spurious_failure | Boot_hang | Quarantined -> Transient
  | Build_timeout | Boot_timeout | Run_timeout -> Timeout

let klass_to_string = function
  | Deterministic -> "deterministic"
  | Transient -> "transient"
  | Timeout -> "timeout"

(* Only config-caused failures carry a learnable signal: DeepTune's crash
   head trains on these and must never see transient noise (a flaked VM
   says nothing about the configuration). *)
let counts_as_crash f = klass f = Deterministic

let retryable f =
  match f with
  | Quarantined -> false  (* already given up on — retrying defeats the point *)
  | _ -> ( match klass f with Transient | Timeout -> true | Deterministic -> false)

(* Failures that leave no bootable image behind: the previously built image
   stays the rebuild-skip baseline. *)
let is_build_stage = function
  | Build_failure | Flaky_build | Build_timeout -> true
  | Invalid_configuration | Boot_failure | Runtime_crash | Spurious_failure | Boot_hang
  | Boot_timeout | Run_timeout | Quarantined | Non_finite_measurement | Other _ ->
    false

let to_string = function
  | Invalid_configuration -> "invalid-configuration"
  | Build_failure -> "build-failure"
  | Boot_failure -> "boot-failure"
  | Runtime_crash -> "runtime-crash"
  | Flaky_build -> "flaky-build"
  | Spurious_failure -> "spurious-failure"
  | Boot_hang -> "boot-hang"
  | Build_timeout -> "build-timeout"
  | Boot_timeout -> "boot-timeout"
  | Run_timeout -> "run-timeout"
  | Quarantined -> "quarantined"
  | Non_finite_measurement -> "non-finite-measurement"
  | Other s -> s

let of_string = function
  | "invalid-configuration" -> Invalid_configuration
  | "build-failure" -> Build_failure
  | "boot-failure" -> Boot_failure
  | "runtime-crash" -> Runtime_crash
  | "flaky-build" -> Flaky_build
  | "spurious-failure" -> Spurious_failure
  | "boot-hang" -> Boot_hang
  | "build-timeout" -> Build_timeout
  | "boot-timeout" -> Boot_timeout
  | "run-timeout" -> Run_timeout
  | "quarantined" -> Quarantined
  | "non-finite-measurement" -> Non_finite_measurement
  | s -> Other s

let all_named =
  [ Invalid_configuration; Build_failure; Boot_failure; Runtime_crash; Flaky_build;
    Spurious_failure; Boot_hang; Build_timeout; Boot_timeout; Run_timeout; Quarantined;
    Non_finite_measurement ]
