(** Exploration history.

    The platform records every evaluated configuration, its outcome and its
    timing; search algorithms read the history through their API (§3.1),
    and the evaluation figures are series over it (best-so-far, smoothed
    values, crash rates). *)

module Space = Wayfinder_configspace.Space

type entry = {
  index : int;  (** 0-based iteration. *)
  config : Space.configuration;
  value : float option;  (** Raw metric; [None] on failure. *)
  failure : Failure.t option;  (** Typed failure kind (see {!Failure.klass}). *)
  at_seconds : float;  (** Virtual clock when the evaluation finished. *)
  eval_seconds : float;  (** Virtual cost charged for this iteration. *)
  built : bool;  (** Whether an image build was charged (rebuild-skip). *)
  decide_seconds : float;  (** Real time the search algorithm spent. *)
  objectives : float array option;
      (** Raw objective vector for multi-objective targets; [None] on
          scalar targets and on failed evaluations.  Not serialized by
          {!to_csv} (the CSV schema is scalar and byte-stable); ledgers
          carry it. *)
}

type t

val create : Metric.t -> t
val metric : t -> Metric.t
val add : t -> entry -> unit
val size : t -> int
val entries : t -> entry array
(** Oldest first. *)

val last : t -> entry option

val crashes : t -> int
(** Entries with any failure, of any class. *)

val crash_rate : t -> float

val deterministic_crashes : t -> int
(** Entries whose failure is config-caused ({!Failure.Deterministic}) —
    the paper's crash statistics. *)

val transient_failures : t -> int
(** Entries lost to the testbed rather than the configuration: transient
    faults and timeouts. *)

val transient_rate : t -> float
val windowed_crash_rate : t -> window:int -> float
(** Crash rate over the last [window] entries. *)

val best : t -> entry option
(** Best *successful* entry under the metric. *)

val best_value : t -> float option
val time_to_best : t -> float option
(** Virtual time at which the best entry was found. *)

val values_series : t -> float array
(** Per-iteration raw values; failures repeat the previous value (or the
    first success) so plots stay connected, matching how the paper draws
    Figure 6. *)

val best_so_far_series : t -> float array
val crash_indicator : t -> float array
(** 1.0 at crashing iterations, 0.0 otherwise (smoothed by the caller). *)

val builds_charged : t -> int
val total_eval_seconds : t -> float
val mean_decide_seconds : t -> float

val csv_field : string -> string
(** RFC 4180 field quoting: the string unchanged unless it contains a
    comma, quote or line break, in which case it is double-quoted with
    embedded quotes doubled. *)

val to_csv : t -> string
(** One row per entry:
    [index,value,failure,failure_class,at_s,eval_s,built,decide_s].
    [failure_class] is {!Failure.klass_to_string} of the failure's class
    (empty on success), so offline analytics ([wayfinder analyze
    --from-csv]) can distinguish crashes from transients without
    re-parsing failure names.  String fields are RFC 4180-quoted. *)
