type spec = Metric.t array

let spec_names spec = Array.to_list (Array.map (fun m -> m.Metric.metric_name) spec)

let builtin = function
  | "throughput" -> Some (Metric.make ~name:"throughput" ~unit_name:"req/s" ())
  | "p50" -> Some (Metric.make ~maximize:false ~name:"p50" ~unit_name:"s" ())
  | "p95" -> Some (Metric.make ~maximize:false ~name:"p95" ~unit_name:"s" ())
  | "p99" -> Some (Metric.make ~maximize:false ~name:"p99" ~unit_name:"s" ())
  | "memory" -> Some (Metric.make ~maximize:false ~name:"memory" ~unit_name:"MiB" ())
  | _ -> None

let spec_of_names names =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | name :: rest -> (
      match builtin name with
      | Some m -> go (m :: acc) rest
      | None ->
        Error
          (Printf.sprintf
             "unknown objective %S (known: throughput, p50, p95, p99, memory)" name))
  in
  go [] names

let scores spec v =
  if Array.length spec <> Array.length v then
    invalid_arg "Objective.scores: spec/vector length mismatch";
  Array.mapi (fun i x -> Metric.score spec.(i) x) v

let dominates spec a b =
  let sa = scores spec a and sb = scores spec b in
  let ge = ref true and gt = ref false in
  Array.iteri
    (fun i x ->
      if x < sb.(i) then ge := false;
      if x > sb.(i) then gt := true)
    sa;
  !ge && !gt

let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal_vec a b = Array.length a = Array.length b && Array.for_all2 float_eq a b
