(* Persistent model registry.  See the .mli for the format contract and
   DESIGN.md §16 for the fingerprint and staleness policy. *)

module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param

type fingerprint = { app : string; space_text : string; key : string }

type meta = {
  algo : string;
  seed : int;
  samples : int;
  metric_name : string;
  unit_name : string;
  maximize : bool;
  objectives : string list;
  best_value : float option;
  mean_value : float;
  crash_rate : float;
  ledger : string option;
}

type t = {
  fp : fingerprint;
  meta : meta;
  model_kind : string;
  model : float array;
  incumbents : Space.configuration list;
  sealed : bool;
}

type error =
  | Unsupported_version of { found : int; expected : int }
  | Malformed of string
  | Fingerprint_mismatch of { expected : string; found : string }
  | Io of Durable.io_error

let error_to_string = function
  | Unsupported_version { found; expected } ->
    Printf.sprintf "model entry format version %d (this build reads %d)" found expected
  | Malformed msg -> "malformed model entry: " ^ msg
  | Fingerprint_mismatch { expected; found } ->
    Printf.sprintf
      "fingerprint mismatch: entry was trained on a different app/space (expected %s, entry \
       verifies as %s)"
      expected found
  | Io e -> Durable.io_error_to_string e

let version = 1

(* ------------------------------------------------------------------ *)
(* Field codecs (shared conventions with Checkpoint)                   *)
(* ------------------------------------------------------------------ *)

(* %h hex floats: every double round-trips bitwise. *)
let float_field x = Printf.sprintf "%h" x

let float_of_field s =
  match float_of_string_opt s with
  | Some x -> Ok x
  | None -> Error (Malformed ("bad float field " ^ s))

(* Percent-encode the characters the line format reserves. *)
let encode_string s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' | '\t' | '\n' | '\r' | ' ' ->
        Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_string s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> Buffer.add_string buf (String.sub s i 3));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

(* "." denotes the empty configuration (a config field is never ""). *)
let config_field config =
  if Array.length config = 0 then "."
  else String.concat " " (Array.to_list (Array.map Param.value_token config))

let config_of_field s =
  if s = "." then Ok [||]
  else
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | tok :: rest -> (
        match Param.value_of_token tok with
        | Some v -> go (v :: acc) rest
        | None -> Error (Malformed ("bad value token " ^ tok)))
    in
    go [] (String.split_on_char ' ' s)

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let key_of ~app ~space_text = Crc32.to_hex (Crc32.digest (app ^ "\n" ^ space_text))

let fingerprint ~app space =
  let space_text = Space.canonical_description space in
  { app; space_text; key = key_of ~app ~space_text }

let entry_path ~dir fp = Filename.concat dir (fp.key ^ ".model")

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let to_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "wayfinder-model %d" version;
  line "key %s" t.fp.key;
  line "app %s" (encode_string t.fp.app);
  line "algo %s" (encode_string t.meta.algo);
  line "seed %d" t.meta.seed;
  line "samples %d" t.meta.samples;
  line "metric %s %s %d"
    (encode_string t.meta.metric_name)
    (encode_string t.meta.unit_name)
    (if t.meta.maximize then 1 else 0);
  List.iter (fun o -> line "objective %s" (encode_string o)) t.meta.objectives;
  line "best %s" (match t.meta.best_value with Some v -> float_field v | None -> "-");
  line "mean %s" (float_field t.meta.mean_value);
  line "crash_rate %s" (float_field t.meta.crash_rate);
  (match t.meta.ledger with Some l -> line "ledger %s" (encode_string l) | None -> ());
  line "model_kind %s" (encode_string t.model_kind);
  line "model_dim %d" (Array.length t.model);
  let n = Array.length t.model in
  let i = ref 0 in
  while !i < n do
    let k = min 8 (n - !i) in
    line "model %s"
      (String.concat " " (List.init k (fun j -> float_field t.model.(!i + j))));
    i := !i + k
  done;
  List.iter (fun c -> line "incumbent %s" (config_field c)) t.incumbents;
  line "space %s" (encode_string t.fp.space_text);
  line "end";
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "crc %s\n" (Crc32.to_hex (Crc32.digest body))

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Peel the [crc] trailer if present.  A body without one is loadable
   but unsealed; a trailer that does not verify is corrupt. *)
let split_envelope s =
  let n = String.length s in
  let stop = if n > 0 && s.[n - 1] = '\n' then n - 1 else n in
  if stop = 0 then `No_trailer s
  else
    let line_start =
      match String.rindex_from_opt s (stop - 1) '\n' with Some i -> i + 1 | None -> 0
    in
    let last = String.sub s line_start (stop - line_start) in
    if String.length last > 4 && String.sub last 0 4 = "crc " then begin
      let hex = String.sub last 4 (String.length last - 4) in
      let body = String.sub s 0 line_start in
      match Crc32.of_hex hex with
      | None -> `Bad (Malformed ("bad crc trailer " ^ hex))
      | Some stored ->
        if Crc32.digest body = stored then `Sealed body
        else
          `Bad
            (Malformed
               (Printf.sprintf "crc mismatch (stored %s, computed %s): corrupt model entry"
                  hex
                  (Crc32.to_hex (Crc32.digest body))))
    end
    else `No_trailer s

let of_body ~sealed body =
  match String.split_on_char '\n' body with
  | [] -> Error (Malformed "empty model entry")
  | header :: rest -> (
    let* () =
      match String.split_on_char ' ' header with
      | [ "wayfinder-model"; v ] -> (
        match int_of_string_opt v with
        | Some v when v = version -> Ok ()
        | Some found -> Error (Unsupported_version { found; expected = version })
        | None -> Error (Malformed "bad version field"))
      | _ -> Error (Malformed "not a wayfinder model entry")
    in
    let key = ref None
    and app = ref None
    and algo = ref None
    and seed = ref None
    and samples = ref None
    and metric = ref None
    and objectives = ref []
    and best = ref None
    and mean = ref None
    and crash_rate = ref None
    and ledger = ref None
    and model_kind = ref None
    and model_dim = ref None
    and model = ref []
    and incumbents = ref []
    and space_text = ref None
    and ended = ref false in
    let int_field name r rest =
      match int_of_string_opt rest with
      | Some v ->
        r := Some v;
        Ok ()
      | None -> Error (Malformed ("bad " ^ name ^ " field"))
    in
    let field l =
      let tag, rest =
        match String.index_opt l ' ' with
        | Some i -> (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
        | None -> (l, "")
      in
      match tag with
      | "key" ->
        key := Some rest;
        Ok ()
      | "app" ->
        app := Some (decode_string rest);
        Ok ()
      | "algo" ->
        algo := Some (decode_string rest);
        Ok ()
      | "seed" -> int_field "seed" seed rest
      | "samples" -> int_field "samples" samples rest
      | "metric" -> (
        match String.split_on_char ' ' rest with
        | [ name; unit_name; maximize ] when maximize = "0" || maximize = "1" ->
          metric := Some (decode_string name, decode_string unit_name, maximize = "1");
          Ok ()
        | _ -> Error (Malformed "bad metric field"))
      | "objective" ->
        objectives := decode_string rest :: !objectives;
        Ok ()
      | "best" ->
        if rest = "-" then begin
          best := Some None;
          Ok ()
        end
        else
          let* v = float_of_field rest in
          best := Some (Some v);
          Ok ()
      | "mean" ->
        let* v = float_of_field rest in
        mean := Some v;
        Ok ()
      | "crash_rate" ->
        let* v = float_of_field rest in
        crash_rate := Some v;
        Ok ()
      | "ledger" ->
        ledger := Some (decode_string rest);
        Ok ()
      | "model_kind" ->
        model_kind := Some (decode_string rest);
        Ok ()
      | "model_dim" -> int_field "model_dim" model_dim rest
      | "model" ->
        let rec go = function
          | [] -> Ok ()
          | tok :: more ->
            let* v = float_of_field tok in
            model := v :: !model;
            go more
        in
        go (String.split_on_char ' ' rest)
      | "incumbent" ->
        let* c = config_of_field rest in
        incumbents := c :: !incumbents;
        Ok ()
      | "space" ->
        space_text := Some (decode_string rest);
        Ok ()
      | "end" ->
        ended := true;
        Ok ()
      | other -> Error (Malformed ("unknown model entry field " ^ other))
    in
    let rec consume = function
      | [] -> Ok ()
      | [ "" ] -> Ok ()
      | _ when !ended -> Error (Malformed "content after end marker")
      | l :: rest ->
        let* () = field l in
        consume rest
    in
    let* () = consume rest in
    if not !ended then Error (Malformed "missing end marker (truncated model entry)")
    else
      let require name = function
        | Some v -> Ok v
        | None -> Error (Malformed ("missing " ^ name ^ " field"))
      in
      let* key = require "key" !key in
      let* app = require "app" !app in
      let* algo = require "algo" !algo in
      let* seed = require "seed" !seed in
      let* samples = require "samples" !samples in
      let* metric_name, unit_name, maximize = require "metric" !metric in
      let* best_value = require "best" !best in
      let* mean_value = require "mean" !mean in
      let* crash_rate = require "crash_rate" !crash_rate in
      let* model_kind = require "model_kind" !model_kind in
      let* model_dim = require "model_dim" !model_dim in
      let* space_text = require "space" !space_text in
      let model = Array.of_list (List.rev !model) in
      if Array.length model <> model_dim then
        Error
          (Malformed
             (Printf.sprintf "model_dim %d but %d floats present" model_dim
                (Array.length model)))
      else if key <> key_of ~app ~space_text then
        (* The filename stem must be derivable from the verified
           identity; a disagreement means the entry was tampered with or
           mis-assembled.  Never trust the stored hash alone. *)
        Error (Malformed "key does not match app/space text")
      else
        Ok
          { fp = { app; space_text; key };
            meta =
              { algo;
                seed;
                samples;
                metric_name;
                unit_name;
                maximize;
                objectives = List.rev !objectives;
                best_value;
                mean_value;
                crash_rate;
                ledger = !ledger };
            model_kind;
            model;
            incumbents = List.rev !incumbents;
            sealed })

let of_string s =
  match split_envelope s with
  | `Sealed body -> of_body ~sealed:true body
  | `No_trailer body -> of_body ~sealed:false body
  | `Bad e -> Error e

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(* ------------------------------------------------------------------ *)

let save ?backend ?keep ~dir t =
  let path = entry_path ~dir t.fp in
  match Durable.atomic_publish ?backend ?keep ~path (to_string t) with
  | () -> Ok path
  | exception Durable.Io_error e -> Error (Io e)

let load ?backend path =
  match Durable.read_file ?backend path with
  | Error e -> Error (Io e)
  | Ok s -> of_string s

let load_for ?backend ~dir fp =
  let* entry = load ?backend (entry_path ~dir fp) in
  if entry.fp.app = fp.app && entry.fp.space_text = fp.space_text then Ok entry
  else Error (Fingerprint_mismatch { expected = fp.key; found = entry.fp.key })

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

type quality =
  | Exact
  | Overlap of { shared : int; donor_params : int; target_params : int }

let quality_to_string = function
  | Exact -> "exact"
  | Overlap { shared; donor_params; target_params } ->
    Printf.sprintf "overlap %d/%d donor, %d target params" shared donor_params target_params

(* The transferable identity of a canonical param line: name, stage and
   kind — everything before " default=".  A re-defaulted or re-pinned
   parameter is still the same search dimension. *)
let param_identity line =
  let marker = " default=" in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then line else if String.sub line i m = marker then String.sub line 0 i else find (i + 1)
  in
  find 0

let param_lines text =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' text)

let space_overlap ~donor ~target =
  let donor_ids = Hashtbl.create 32 in
  List.iter (fun l -> Hashtbl.replace donor_ids (param_identity l) ()) (param_lines donor);
  List.fold_left
    (fun acc l -> if Hashtbl.mem donor_ids (param_identity l) then acc + 1 else acc)
    0 (param_lines target)

let list ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun name -> Filename.check_suffix name ".model")
    |> List.sort String.compare
    |> List.map (fun name ->
           let path = Filename.concat dir name in
           (path, load path))

let lookup ~dir ~app space =
  let target = Space.canonical_description space in
  let target_params = List.length (param_lines target) in
  let candidates =
    List.filter_map
      (fun (path, r) ->
        match r with
        | Error _ -> None
        | Ok e ->
          if e.fp.app = app && e.fp.space_text = target then Some (path, e, Exact)
          else
            let shared = space_overlap ~donor:e.fp.space_text ~target in
            if shared = 0 then None
            else
              Some
                ( path,
                  e,
                  Overlap
                    { shared;
                      donor_params = List.length (param_lines e.fp.space_text);
                      target_params } ))
      (list ~dir)
  in
  let rank (_, e, q) =
    match q with
    | Exact -> (2, 0, 0)
    | Overlap { shared; _ } -> ((if e.fp.app = app then 1 else 0), shared, 0)
  in
  List.stable_sort (fun a b -> compare (rank b) (rank a)) candidates

(* ------------------------------------------------------------------ *)
(* Projection                                                          *)
(* ------------------------------------------------------------------ *)

(* Donor parameter names in positional order, decoded from the stored
   canonical text ("param <escaped-name> stage=..."). *)
let donor_param_names entry =
  List.filter_map
    (fun l ->
      match String.split_on_char ' ' l with
      | "param" :: name :: _ -> Some (decode_string name)
      | _ -> None)
    (param_lines entry.fp.space_text)

let project_incumbents entry target =
  let names = Array.of_list (donor_param_names entry) in
  let donor_n = Array.length names in
  let by_name = Hashtbl.create donor_n in
  List.filter_map
    (fun c ->
      if Array.length c <> donor_n then None
      else begin
        Hashtbl.reset by_name;
        Array.iteri (fun i name -> Hashtbl.replace by_name name c.(i)) names;
        let out = Space.defaults target in
        Array.iteri
          (fun i p ->
            (* Pins win: a fixed parameter keeps its pinned value however
               the donor set it. *)
            if Space.fixed_value target i = None then
              match Hashtbl.find_opt by_name p.Param.name with
              | None -> ()
              | Some v ->
                if Param.value_ok p.Param.kind v then out.(i) <- v
                else (
                  (* Same dimension, shifted range: clamp into the new
                     domain; a kind change falls back to the default. *)
                  match Param.clamp p.Param.kind v with
                  | v -> out.(i) <- v
                  | exception Invalid_argument _ -> ()))
          (Space.params target);
        Some out
      end)
    entry.incumbents
