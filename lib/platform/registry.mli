(** Persistent model registry: trained search models, on disk, reusable.

    [Deeptune.export]/[create_from] (§3.3) transfer knowledge between
    searches, but only within one process.  The registry makes the
    export durable: a versioned, CRC-sealed entry per
    (application, configuration space) {e fingerprint} under a registry
    directory, so any later search — hours or machines away — can
    warm-start from the nearest donor instead of from scratch.  This is
    the "tuning as a continuous service" direction of SemaTune/TuneAgent:
    learned knowledge outlives the run that produced it.

    {b Fingerprints are verifiable, never trusted.}  A fingerprint is
    the pair of the application/hardware identity (the target name, e.g.
    ["sim-unikraft/nginx"]) and the {e full canonical space text}
    ({!Wayfinder_configspace.Space.canonical_description}: every
    parameter's name, stage, kind, ranges, default and pin).  The CRC-32
    [key] over both is only the {e filename}; every load re-compares the
    stored text against the requesting space, so a hash collision can
    never smuggle a donor trained on a different space into a search
    (the truncated-hash lesson of the quarantine-key bug).

    {b Entry layout} is a checkpoint-style sealed envelope: a versioned
    line-oriented body ([wayfinder-model 1] header; training metadata —
    algorithm, seed, samples, metric, objective spec, summary statistics
    and ledger provenance; the model as a flat [%h]-hex float snapshot
    tagged with its kind; the incumbent configurations as value tokens;
    the percent-encoded space text) followed by a [crc] trailer line.
    Floats round-trip bitwise, so a reloaded model predicts bit-for-bit
    identically.  A body without a trailer still loads ([sealed =
    false]) — fsck reports it Unsealed; a trailer that does not match is
    a typed [Malformed], never a misparse.

    {b Writes} go through {!Durable.atomic_publish}: staged tmp write,
    fsync, generation rotation ([key.model] → [key.model.1] → …), rename,
    directory fsync — a crash leaves the old or the new entry, never a
    torn one.

    The model payload is deliberately {e opaque} here (a kind tag plus a
    flat float array, exactly [Dtm.snapshot_to_floats]): the platform
    layer cannot depend on the search core, so the CLI glues
    [Registry] ↔ [Dtm.snapshot_of_floats] ↔ [Deeptune.create_from]. *)

module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param

type fingerprint = {
  app : string;  (** Application/hardware identity, e.g. ["sim-unikraft/nginx"]. *)
  space_text : string;  (** {!Space.canonical_description} of the space. *)
  key : string;  (** CRC-32 hex over [app] and [space_text] — the filename stem. *)
}

type meta = {
  algo : string;  (** Search algorithm that trained the model. *)
  seed : int;
  samples : int;  (** Evaluations the model was trained on. *)
  metric_name : string;
  unit_name : string;
  maximize : bool;
  objectives : string list;  (** Objective-spec names; empty for scalar runs. *)
  best_value : float option;  (** Best raw metric value seen (None: no success). *)
  mean_value : float;  (** Mean raw metric value over successful samples. *)
  crash_rate : float;  (** Crash fraction of the training run, in [0, 1]. *)
  ledger : string option;  (** Provenance: the run ledger path, if recorded. *)
}

type t = {
  fp : fingerprint;
  meta : meta;
  model_kind : string;  (** ["dtm"] or ["dtm-multi"]. *)
  model : float array;  (** Flat snapshot floats (opaque to the platform). *)
  incumbents : Space.configuration list;  (** Best configurations, best first. *)
  sealed : bool;  (** False when the CRC trailer was missing (torn tail). *)
}

type error =
  | Unsupported_version of { found : int; expected : int }
  | Malformed of string  (** Unreadable file or corrupt content. *)
  | Fingerprint_mismatch of { expected : string; found : string }
      (** The entry's verified identity does not match the requesting
          fingerprint — the stored canonical text disagrees, whatever
          the filename said. *)
  | Io of Durable.io_error

val error_to_string : error -> string

val version : int
(** Current entry format version: 1. *)

val fingerprint : app:string -> Space.t -> fingerprint

val entry_path : dir:string -> fingerprint -> string
(** [dir ^ "/" ^ key ^ ".model"]. *)

val to_string : t -> string
(** The sealed envelope (body + CRC trailer); [sealed] is ignored —
    rendering always seals. *)

val of_string : string -> (t, error) result
(** Verifies the CRC trailer when present ([sealed = true]); a parseable
    body without a trailer loads with [sealed = false]; anything else is
    typed [Malformed]. *)

val save :
  ?backend:Durable.backend -> ?keep:int -> dir:string -> t -> (string, error) result
(** Durable atomic publish of the sealed entry at
    [entry_path ~dir t.fp], rotating [keep] generations
    ({!Durable.atomic_publish}); returns the path written.  The
    directory must already exist (the CLI creates it). *)

val load : ?backend:Durable.backend -> string -> (t, error) result
(** Load one entry by path (no fingerprint check — see {!load_for}). *)

val load_for :
  ?backend:Durable.backend -> dir:string -> fingerprint -> (t, error) result
(** Load the entry for a fingerprint and {e verify} it: the stored app
    and full canonical space text must equal the request's, else
    {!Fingerprint_mismatch}.  Never trusts the filename hash. *)

(** How well a donor entry matches a requesting space. *)
type quality =
  | Exact  (** Same app, byte-identical canonical space text. *)
  | Overlap of { shared : int; donor_params : int; target_params : int }
      (** [shared] parameters agree in name, stage, kind and ranges. *)

val quality_to_string : quality -> string

val space_overlap : donor:string -> target:string -> int
(** Shared-parameter count between two canonical space texts: lines that
    agree in name, stage and kind (defaults and pins may differ — a
    re-defaulted parameter is still transferable). *)

val list : dir:string -> (string * (t, error) result) list
(** Every primary entry ([*.model], no rotated [.N], [.tmp] or [.bak]
    suffix) in the directory, sorted by filename; real filesystem only.
    An empty or missing directory lists nothing. *)

val lookup : dir:string -> app:string -> Space.t -> (string * t * quality) list
(** Donor candidates for a search, best first: exact-fingerprint matches,
    then same-app entries by descending shared-parameter overlap, then
    other-app entries by overlap.  Entries that fail to load and donors
    sharing no parameter are skipped.  Real filesystem only. *)

val project_incumbents : t -> Space.t -> Space.configuration list
(** The donor's incumbent configurations re-expressed in a (possibly
    grown or shrunk) target space: shared parameters keep the donor's
    value (clamped into the target range), new parameters take their
    defaults, dropped parameters vanish.  Order preserved, best first. *)
