(* Crash-safe storage with pluggable backends.  See the .mli for the
   protocol contract and DESIGN.md §14 for the durability model. *)

type io_error = { op : string; path : string; reason : string }

exception Io_error of io_error

let io_error_to_string e = Printf.sprintf "%s: %s: %s" e.op e.path e.reason

type backend = {
  name : string;
  read : string -> string;
  write : string -> string -> unit;
  append : string -> string -> unit;
  fsync : string -> unit;
  rename : src:string -> dst:string -> unit;
  fsync_dir : string -> unit;
  remove : string -> unit;
  exists : string -> bool;
}

(* ------------------------------------------------------------------ *)
(* Real filesystem                                                     *)
(* ------------------------------------------------------------------ *)

let fail op path reason = raise (Io_error { op; path; reason })

let wrap op path f =
  try f () with
  | Unix.Unix_error (err, _, _) -> fail op path (Unix.error_message err)
  | Sys_error msg -> fail op path msg

let write_all fd path s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    match Unix.write_substring fd s !written (n - !written) with
    | 0 -> fail "write" path "zero-length write"
    | k -> written := !written + k
  done

let fs_open_write path flags =
  wrap "open" path (fun () -> Unix.openfile path flags 0o644)

let fs =
  { name = "fs";
    read =
      (fun path ->
        wrap "read" path (fun () ->
            In_channel.with_open_bin path In_channel.input_all));
    write =
      (fun path data ->
        let fd = fs_open_write path Unix.[ O_WRONLY; O_CREAT; O_TRUNC ] in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> wrap "write" path (fun () -> write_all fd path data)));
    append =
      (fun path data ->
        let fd = fs_open_write path Unix.[ O_WRONLY; O_CREAT; O_APPEND ] in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> wrap "append" path (fun () -> write_all fd path data)));
    fsync =
      (fun path ->
        let fd = wrap "open" path (fun () -> Unix.openfile path [ Unix.O_WRONLY ] 0) in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> wrap "fsync" path (fun () -> Unix.fsync fd)));
    rename =
      (fun ~src ~dst -> wrap "rename" src (fun () -> Sys.rename src dst));
    fsync_dir =
      (fun path ->
        let dir = Filename.dirname path in
        match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
        | exception Unix.Unix_error (err, _, _) -> fail "open" dir (Unix.error_message err)
        | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (* Best-effort: some filesystems reject fsync on a
                 directory fd; there is nothing better to do there. *)
              try Unix.fsync fd with Unix.Unix_error _ -> ()));
    remove =
      (fun path ->
        try Sys.remove path with
        | Sys_error _ when not (Sys.file_exists path) -> ()
        | Sys_error msg -> fail "remove" path msg);
    exists = (fun path -> Sys.file_exists path) }

(* ------------------------------------------------------------------ *)
(* Protocols                                                           *)
(* ------------------------------------------------------------------ *)

let atomic_write ?(backend = fs) ~path data =
  let tmp = path ^ ".tmp" in
  match
    backend.write tmp data;
    backend.fsync tmp;
    backend.rename ~src:tmp ~dst:path;
    backend.fsync_dir path
  with
  | () -> Ok ()
  | exception Io_error e ->
    (* Never leave the staging file behind — not even on disk-full. *)
    (try backend.remove tmp with Io_error _ -> ());
    Error e

let atomic_write_exn ?backend ~path data =
  match atomic_write ?backend ~path data with Ok () -> () | Error e -> raise (Io_error e)

let generation_path path i = if i = 0 then path else Printf.sprintf "%s.%d" path i

let atomic_publish ?(backend = fs) ?(keep = 1) ~path data =
  if keep < 1 then invalid_arg "Durable.atomic_publish: keep must be >= 1";
  let tmp = path ^ ".tmp" in
  try
    (* Stage durably first: once the tmp bytes are fsynced, every later
       step is a rename, and a crash between any two of them leaves a
       complete generation under some name. *)
    backend.write tmp data;
    backend.fsync tmp;
    if keep > 1 && backend.exists path then begin
      (* Rotate: path.(keep-2) -> path.(keep-1), ..., path -> path.1;
         the oldest generation is overwritten by the shift. *)
      for i = keep - 1 downto 2 do
        let src = generation_path path (i - 1) in
        if backend.exists src then backend.rename ~src ~dst:(generation_path path i)
      done;
      backend.rename ~src:path ~dst:(generation_path path 1)
    end;
    backend.rename ~src:tmp ~dst:path;
    backend.fsync_dir path
  with Io_error _ as e ->
    (* A failed publish (disk full, permissions) must not leave the
       staging file behind; the previous generations are untouched. *)
    (try backend.remove tmp with Io_error _ -> ());
    raise e

let read_file ?(backend = fs) path =
  match backend.read path with s -> Ok s | exception Io_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Deterministic fault backend                                         *)
(* ------------------------------------------------------------------ *)

module Mem = struct
  (* Per-file state: [content] is what the writing process sees;
     [synced] is the prefix length guaranteed durable.  Writes and
     appends extend [content] without moving [synced]; [fsync] promotes
     the whole content.  A crash truncates every file to its durable
     prefix (or keeps the un-fsynced tail, per the plan) and optionally
     rolls back renames/unlinks not yet sealed by a directory fsync. *)
  type mfile = { mutable content : string; mutable synced : int }

  type fs = {
    files : (string, mfile) Hashtbl.t;
    mutable fuel : int option;  (* remaining I/O cost before the crash *)
    mutable spent : int;
    mutable undo : (unit -> unit) list;  (* un-fsynced rename/unlink rollback *)
    keep_unsynced : bool;
    keep_renames : bool;
  }

  exception Crashed

  let create ?fuel ?(keep_unsynced = false) ?(keep_renames = false) () =
    { files = Hashtbl.create 16;
      fuel;
      spent = 0;
      undo = [];
      keep_unsynced;
      keep_renames }

  let set_fuel t fuel = t.fuel <- Some fuel

  exception Torn of int
  (* Internal: a write interrupted mid-op; carries the bytes that landed. *)

  (* Charge cost units; returns how many of the op's [divisible] units
     (bytes) may be applied.  A fixed op costs 1 (divisible = 0): either
     it happens or Crashed. *)
  let charge t ~fixed ~divisible =
    t.spent <- t.spent + fixed + divisible;
    match t.fuel with
    | None -> divisible
    | Some f ->
      if f >= fixed + divisible then begin
        t.fuel <- Some (f - fixed - divisible);
        divisible
      end
      else begin
        t.fuel <- Some 0;
        if f < fixed then raise Crashed
        else
          (* Torn mid-op: the first [f - fixed] bytes land, then the kill. *)
          raise_notrace (Torn (f - fixed))
      end

  let find t path = Hashtbl.find_opt t.files path

  let snapshot t path =
    match find t path with
    | None -> fun () -> Hashtbl.remove t.files path
    | Some f ->
      let content = f.content and synced = f.synced in
      fun () -> Hashtbl.replace t.files path { content; synced }

  let mem_write t path data =
    let apply keep =
      let kept = if keep = String.length data then data else String.sub data 0 keep in
      (* Truncate-and-rewrite destroys the old bytes immediately: the
         simulated disk deliberately punishes non-atomic in-place
         rewrites, which is why every publisher stages to a .tmp. *)
      Hashtbl.replace t.files path { content = kept; synced = 0 }
    in
    match charge t ~fixed:1 ~divisible:(String.length data) with
    | full -> apply full
    | exception Torn k ->
      apply k;
      raise Crashed

  let mem_append t path data =
    let base = match find t path with Some f -> f | None -> { content = ""; synced = 0 } in
    let apply keep =
      let kept = if keep = String.length data then data else String.sub data 0 keep in
      Hashtbl.replace t.files path { base with content = base.content ^ kept }
    in
    match charge t ~fixed:1 ~divisible:(String.length data) with
    | full -> apply full
    | exception Torn k ->
      apply k;
      raise Crashed

  let mem_fsync t path =
    ignore (charge t ~fixed:1 ~divisible:0);
    match find t path with
    | Some f -> f.synced <- String.length f.content
    | None -> fail "fsync" path "no such file"

  let mem_rename t ~src ~dst =
    ignore (charge t ~fixed:1 ~divisible:0);
    match find t src with
    | None -> fail "rename" src "no such file"
    | Some f ->
      let undo_src = snapshot t src and undo_dst = snapshot t dst in
      t.undo <- (fun () -> undo_dst (); undo_src ()) :: t.undo;
      Hashtbl.remove t.files src;
      Hashtbl.replace t.files dst f

  let mem_remove t path =
    ignore (charge t ~fixed:1 ~divisible:0);
    match find t path with
    | None -> ()
    | Some _ ->
      let undo = snapshot t path in
      t.undo <- undo :: t.undo;
      Hashtbl.remove t.files path

  let mem_fsync_dir t _path =
    ignore (charge t ~fixed:1 ~divisible:0);
    (* Directory fsync seals every pending rename/unlink. *)
    t.undo <- []

  let mem_read t path =
    ignore (charge t ~fixed:1 ~divisible:0);
    match find t path with
    | Some f -> f.content
    | None -> fail "read" path "no such file"

  let mem_exists t path =
    ignore (charge t ~fixed:1 ~divisible:0);
    find t path <> None

  let backend t =
    { name = "mem";
      read = mem_read t;
      write = mem_write t;
      append = mem_append t;
      fsync = mem_fsync t;
      rename = mem_rename t;
      fsync_dir = mem_fsync_dir t;
      remove = mem_remove t;
      exists = mem_exists t }

  let crash t =
    (* Un-fsynced renames and unlinks: roll back unless the plan says
       the directory happened to hit the platter first. *)
    if not t.keep_renames then List.iter (fun undo -> undo ()) t.undo;
    t.undo <- [];
    (* Un-fsynced bytes: lost (lost-page-cache plan) or kept up to the
       kill point (torn-tail plan). *)
    Hashtbl.iter
      (fun _ f ->
        if t.keep_unsynced then f.synced <- String.length f.content
        else begin
          if f.synced < String.length f.content then f.content <- String.sub f.content 0 f.synced
        end)
      t.files;
    (* Files created but never fsynced collapse to "" rather than
       disappearing: an empty inode is exactly what a crashed create
       leaves behind. *)
    t.fuel <- None

  let cost t = t.spent
  let set_file t path content = Hashtbl.replace t.files path { content; synced = String.length content }
  let get_file t path = Option.map (fun f -> f.content) (find t path)

  let list_files t =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.files [])

  let flip_bit t path bit =
    match find t path with
    | None -> invalid_arg "Mem.flip_bit: no such file"
    | Some f ->
      let byte = bit / 8 in
      if byte >= String.length f.content then invalid_arg "Mem.flip_bit: out of range";
      let b = Bytes.of_string f.content in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (0x80 lsr (bit mod 8))));
      f.content <- Bytes.to_string b;
      f.synced <- min f.synced (String.length f.content)
end
