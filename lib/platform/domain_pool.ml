(* Re-export so platform consumers (driver, CLI) can say
   [Wayfinder_platform.Domain_pool] without depending on the tensor
   library directly. *)
include Wayfinder_tensor.Domain_pool
