(** Scalarization: collapse an objective vector into the single score a
    searcher maximizes.

    Applied at the target boundary (see {!Targets}), never inside the
    driver: the driver and every search algorithm stay single-objective,
    and multi-objective search is "scalarize at the evaluator, archive
    the vectors" — the {!Pareto} archive preserves what the collapse
    discards.

    The degenerate weighted sum [(1, 0, 0, ...)] reproduces the first
    objective's score bit-for-bit: zero-weight terms are skipped (never
    multiplied in), and a single term with weight 1 is returned without
    arithmetic, so single-objective trajectories are byte-identical to a
    plain scalar run. *)

type t =
  | Weighted_sum of float array
      (** [sum_i w_i *. score_i], skipping [w_i = 0.] terms. *)
  | Epsilon_constraint of { primary : int; bounds : float array }
      (** Maximize objective [primary] subject to per-objective bounds
          (raw values; [nan] means unconstrained).  A violated bound
          subtracts [1e6 *.] the score-space violation — a soft barrier
          that keeps the scalar finite and totally ordered. *)

val validate : t -> n:int -> (unit, string) result
(** Check arity against an [n]-objective spec: weight/bound lengths
    match, weights are finite, [primary] is in range. *)

val apply : t -> spec:Objective.spec -> float array -> float
(** Collapse a raw vector.  @raise Invalid_argument on arity mismatch
    (call {!validate} first at the API boundary). *)

val describe : t -> string
