(** The Wayfinder core loop (§3.1), hardened against a faulty testbed
    and generalized to [workers] concurrent virtual evaluation slots.

    Iteratively: (1) ask the search algorithm for configurations — one at
    a time, or up to [batch] per ask through the algorithm's native
    [propose_batch] — (2) build and boot each image and benchmark the
    application — virtual durations advance the
    {!Wayfinder_simos.Vclock}, and with [workers > 1] the build / boot /
    benchmark pipelines of several slots overlap on its discrete-event
    scheduler — and (3) record each outcome as it completes and update
    the algorithm.  The build task is skipped when the new configuration
    differs from the slot's last *built* image only in runtime
    parameters (each slot models its own testbed machine).  The loop
    stops when the budget (iterations or virtual time) is exhausted, the
    algorithm exhausts its space, or the invalid cap trips, and returns
    the best configuration found.

    A {!Resilience.policy} governs how the loop treats the testbed:
    per-phase virtual timeouts (a hung boot becomes a [Boot_timeout]
    charged at the cap), bounded retry with exponential backoff for
    {!Failure.retryable} outcomes, corroborating re-measurement with
    median outlier rejection, and quarantine of configurations that
    repeatedly exhaust their retries.  The default policy
    ({!Resilience.none}) reproduces the pre-resilience semantics exactly.

    Passing [checkpoint_path] persists a {!Checkpoint.t} every
    [checkpoint_every] iterations (and once at the end); passing
    [resume_from] replays a checkpoint through the algorithm's normal
    propose/observe path and then continues the run — a killed search
    resumed this way reproduces the uninterrupted run bit-for-bit.

    Every iteration is traced through a {!Wayfinder_obs.Recorder} as a
    [driver.iteration] span split into phases — [driver.propose],
    [driver.validate], [driver.evaluate] and [driver.observe] carry wall
    durations; [driver.build], [driver.boot], [driver.run],
    [driver.invalid], [driver.retry], [driver.quarantined] and
    [driver.replay] carry the virtual seconds charged to the budget (the
    build span notes when the §3.1 rebuild-skip fired).  Counters track
    iterations, builds charged, rebuild skips, invalid proposals,
    retries, re-measurements, outlier rejections, quarantines and
    per-kind failures; the aggregated snapshot is returned on
    {!result.metrics}. *)

module Space = Wayfinder_configspace.Space
module Vclock = Wayfinder_simos.Vclock
module Obs = Wayfinder_obs

type budget = Iterations of int | Virtual_seconds of float

type stop_reason =
  | Budget_exhausted  (** The iteration or virtual-time budget ran out. *)
  | Invalid_cap
      (** [max_consecutive_invalid] invalid proposals in a row — the
          algorithm is stuck outside the valid space and further spend
          would be wasted. *)
  | Space_exhausted
      (** The algorithm raised {!Search_algorithm.Space_exhausted} (or
          returned a partial batch): every configuration it will ever
          propose has been evaluated — a finite grid ran out before the
          budget did. *)

type result = {
  history : History.t;
  best : History.entry option;
  clock : Vclock.t;
  iterations : int;
  stop_reason : stop_reason;
  metrics : Obs.Metrics.snapshot;
      (** Aggregated counters and per-phase timing histograms for the
          run.  The virtual-phase sums (see {!virtual_phases}) equal
          {!History.total_eval_seconds}. *)
}

val virtual_phases : (string * string) list
(** [(label, span name)] for every phase charged to the virtual clock:
    build, boot, run, invalid, retry, quarantined, replay. *)

val default_invalid_floor_s : float
(** 1 virtual second. *)

val default_max_consecutive_invalid : int
(** 1000. *)

val default_checkpoint_every : int
(** 10 iterations. *)

val run :
  ?seed:int ->
  ?clock:Vclock.t ->
  ?on_iteration:(History.entry -> unit) ->
  ?obs:Obs.Recorder.t ->
  ?invalid_floor_s:float ->
  ?max_consecutive_invalid:int ->
  ?resilience:Resilience.policy ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?resume_from:Checkpoint.t ->
  ?workers:int ->
  ?batch:int ->
  target:Target.t ->
  algorithm:Search_algorithm.t ->
  budget:budget ->
  unit ->
  result
(** Deterministic given [seed] (including for [workers > 1]: completions
    sit on the clock's min-heap with FIFO tie-break, so the interleaving
    is fully reproducible).  [on_iteration] observes each entry as it is
    recorded (useful for live series); replayed entries of a resumed run
    are not re-announced.  [obs] attaches an external recorder (e.g.
    with a JSONL sink); by default a private sink-less recorder feeds
    {!result.metrics}.  Invalid proposals (violating the space or its
    pins) are recorded as {!Failure.Invalid_configuration} and charged
    [invalid_floor_s] virtual seconds (default
    {!default_invalid_floor_s}) so a [Virtual_seconds] budget always
    terminates; after [max_consecutive_invalid] consecutive invalid
    proposals (default {!default_max_consecutive_invalid}) the run stops
    with {!Invalid_cap}.  A [Virtual_seconds] budget is measured relative
    to the clock reading at start, so a caller-supplied, already-advanced
    clock gets the full budget.

    [workers] (default 1) is the number of virtual evaluation slots kept
    busy; [batch] (default [workers]) caps how many proposals are asked
    for per fill — when the algorithm has a native [propose_batch] and
    more than one slot is free, a single ask returns up to [batch]
    configurations, otherwise proposals fall back to sequential
    [propose] calls.  Entries are recorded in {e completion} order;
    [History.entry.index] is the proposal sequence number, so with
    [workers > 1] history indices need not be monotone.  An
    {!Iterations} budget counts proposals (all of which complete); the
    invalid cap and a [Virtual_seconds] budget stop new launches, and
    tasks already in flight drain to completion and are recorded.  With
    [workers = 1] the engine is byte-for-byte equivalent to
    {!run_sequential}.  With [workers > 1] the recorder additionally
    carries a [driver.batch.size] histogram (proposals obtained per
    ask), a [driver.worker.busy] histogram (busy slots at each
    completion) and per-slot [driver.worker] spans.

    [resilience] defaults to {!Resilience.none}.  [checkpoint_path]
    enables periodic checkpointing — since checkpoint format 2 the file
    also persists in-flight slot state, so a killed multi-worker run
    resumes mid-batch; [resume_from] requires a fresh clock positioned
    at the checkpoint's budget origin and an algorithm / seed /
    [workers] / [batch] identical to the checkpointed run.

    @raise Invalid_argument if [invalid_floor_s <= 0],
    [max_consecutive_invalid <= 0], [checkpoint_every <= 0],
    [workers <= 0], [batch <= 0], the policy fails
    {!Resilience.validate}, or a resume replay diverges from the
    checkpoint. *)

val run_sequential :
  ?seed:int ->
  ?clock:Vclock.t ->
  ?on_iteration:(History.entry -> unit) ->
  ?obs:Obs.Recorder.t ->
  ?invalid_floor_s:float ->
  ?max_consecutive_invalid:int ->
  ?resilience:Resilience.policy ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?resume_from:Checkpoint.t ->
  target:Target.t ->
  algorithm:Search_algorithm.t ->
  budget:budget ->
  unit ->
  result
(** The legacy strictly-sequential loop — one proposal, one synchronous
    evaluation, one observe per step — kept as the executable
    specification of the engine's [workers = 1] semantics: the
    conformance suite asserts [run ~workers:1] produces a byte-identical
    history, metrics snapshot and virtual trajectory.  Only resumes
    checkpoints written with [workers = 1] and no in-flight tasks. *)

val phase_virtual_seconds : result -> (string * float) list
(** Virtual seconds charged per phase, in {!virtual_phases} order. *)

val best_relative_to : result -> default:float -> float option
(** Best value divided by a reference (e.g. the default configuration's
    performance) — Table 2's "Relative Perf." column.  [None] when there
    is no successful entry or the reference is zero or non-finite. *)
