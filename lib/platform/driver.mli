(** The Wayfinder core loop (§3.1).

    Iteratively: (1) ask the search algorithm for a configuration, (2)
    build and boot the image and benchmark the application — virtual
    durations advance the {!Wayfinder_simos.Vclock} — and (3) record the
    outcome and update the algorithm.  The build task is skipped when the
    new configuration differs from the last *built* image only in runtime
    parameters.  The loop stops when the budget (iterations or virtual
    time) is exhausted and returns the best configuration found.

    Every iteration is traced through a {!Wayfinder_obs.Recorder} as a
    [driver.iteration] span split into phases — [driver.propose],
    [driver.validate], [driver.evaluate] and [driver.observe] carry wall
    durations; [driver.build], [driver.boot], [driver.run] and
    [driver.invalid] carry the virtual seconds charged to the budget (the
    build span notes when the §3.1 rebuild-skip fired).  Counters track
    iterations, builds charged, rebuild skips, invalid proposals and
    per-kind failures; the aggregated snapshot is returned on
    {!result.metrics}. *)

module Space = Wayfinder_configspace.Space
module Vclock = Wayfinder_simos.Vclock
module Obs = Wayfinder_obs

type budget = Iterations of int | Virtual_seconds of float

type stop_reason =
  | Budget_exhausted  (** The iteration or virtual-time budget ran out. *)
  | Invalid_cap
      (** [max_consecutive_invalid] invalid proposals in a row — the
          algorithm is stuck outside the valid space and further spend
          would be wasted. *)

type result = {
  history : History.t;
  best : History.entry option;
  clock : Vclock.t;
  iterations : int;
  stop_reason : stop_reason;
  metrics : Obs.Metrics.snapshot;
      (** Aggregated counters and per-phase timing histograms for the
          run.  The virtual-phase sums ([driver.build.virtual_s] +
          [driver.boot.virtual_s] + [driver.run.virtual_s] +
          [driver.invalid.virtual_s]) equal
          {!History.total_eval_seconds}. *)
}

val default_invalid_floor_s : float
(** 1 virtual second. *)

val default_max_consecutive_invalid : int
(** 1000. *)

val run :
  ?seed:int ->
  ?clock:Vclock.t ->
  ?on_iteration:(History.entry -> unit) ->
  ?obs:Obs.Recorder.t ->
  ?invalid_floor_s:float ->
  ?max_consecutive_invalid:int ->
  target:Target.t ->
  algorithm:Search_algorithm.t ->
  budget:budget ->
  unit ->
  result
(** Deterministic given [seed].  [on_iteration] observes each entry as it
    is recorded (useful for live series).  [obs] attaches an external
    recorder (e.g. with a JSONL sink); by default a private sink-less
    recorder feeds {!result.metrics}.  Invalid proposals (violating the
    space or its pins) are recorded as ["invalid-configuration"] failures
    and charged [invalid_floor_s] virtual seconds (default
    {!default_invalid_floor_s}) so a [Virtual_seconds] budget always
    terminates; after [max_consecutive_invalid] consecutive invalid
    proposals (default {!default_max_consecutive_invalid}) the run stops
    with {!Invalid_cap}.

    @raise Invalid_argument if [invalid_floor_s <= 0] or
    [max_consecutive_invalid <= 0]. *)

val phase_virtual_seconds : result -> (string * float) list
(** Virtual seconds charged per phase, in order: [build], [boot], [run],
    [invalid]. *)

val best_relative_to : result -> default:float -> float option
(** Best value divided by a reference (e.g. the default configuration's
    performance) — Table 2's "Relative Perf." column. *)
