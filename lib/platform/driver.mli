(** The Wayfinder core loop (§3.1), hardened against a faulty testbed
    and generalized to [workers] concurrent virtual evaluation slots.

    Iteratively: (1) ask the search algorithm for configurations — one at
    a time, or up to [batch] per ask through the algorithm's native
    [propose_batch] — (2) build and boot each image and benchmark the
    application — virtual durations advance the
    {!Wayfinder_simos.Vclock}, and with [workers > 1] the build / boot /
    benchmark pipelines of several slots overlap on its discrete-event
    scheduler — and (3) record each outcome as it completes and update
    the algorithm.  The build task is skipped when a shared
    {!Image_cache} — keyed by {!Space.stage_key}, the content-address of
    the configuration's non-runtime projection — already holds the image
    {e any} slot built; deterministic build failures are negative-cached
    and served at a floor charge.  The loop stops when the budget
    (iterations or virtual time) is exhausted, the algorithm exhausts
    its space, or the invalid cap trips, and returns the best
    configuration found.

    A {!Resilience.policy} governs how the loop treats the testbed:
    per-phase virtual timeouts (a hung boot becomes a [Boot_timeout]
    charged at the cap), bounded retry with exponential backoff for
    {!Failure.retryable} outcomes, corroborating re-measurement with
    median outlier rejection, and quarantine of configurations that
    repeatedly exhaust their retries.  The default policy
    ({!Resilience.none}) reproduces the pre-resilience semantics exactly.

    Passing [checkpoint_path] persists a {!Checkpoint.t} every
    [checkpoint_every] iterations (and once at the end); passing
    [resume_from] replays a checkpoint through the algorithm's normal
    propose/observe path and then continues the run — a killed search
    resumed this way reproduces the uninterrupted run bit-for-bit.

    Every iteration is traced through a {!Wayfinder_obs.Recorder} as a
    [driver.iteration] span split into phases — [driver.propose],
    [driver.validate], [driver.evaluate] and [driver.observe] carry wall
    durations; [driver.build], [driver.boot], [driver.run],
    [driver.invalid], [driver.retry], [driver.quarantined],
    [driver.negative_cache] and [driver.replay] carry the virtual
    seconds charged to the budget (the build span's [rebuild_skipped] /
    [cache_hit] attrs note when the §3.1 rebuild-skip fired).  Counters
    track iterations, builds charged, rebuild skips, image-cache
    activity ([driver.image_cache.hits] / [.misses] / [.evictions] /
    [.negative_hits], and [.cross_slot_hits] when another slot built the
    image), invalid proposals, retries, re-measurements, outlier
    rejections, quarantines and per-kind failures; the aggregated
    snapshot is returned on {!result.metrics}. *)

module Space = Wayfinder_configspace.Space
module Vclock = Wayfinder_simos.Vclock
module Obs = Wayfinder_obs

type budget = Iterations of int | Virtual_seconds of float

type stop_reason =
  | Budget_exhausted  (** The iteration or virtual-time budget ran out. *)
  | Invalid_cap
      (** [max_consecutive_invalid] invalid proposals in a row — the
          algorithm is stuck outside the valid space and further spend
          would be wasted. *)
  | Space_exhausted
      (** The algorithm raised {!Search_algorithm.Space_exhausted} (or
          returned a partial batch): every configuration it will ever
          propose has been evaluated — a finite grid ran out before the
          budget did. *)

type result = {
  history : History.t;
  best : History.entry option;
  clock : Vclock.t;
  iterations : int;
  stop_reason : stop_reason;
  pareto : Pareto.t;
      (** Non-dominated front of every successful objective vector a
          multi-objective target reported, tagged by entry index.  Empty
          (with an empty spec) for scalar targets.  Deterministic across
          worker counts: the archive is a pure function of the set of
          completed points. *)
  metrics : Obs.Metrics.snapshot;
      (** Aggregated counters and per-phase timing histograms for the
          run.  The virtual-phase sums (see {!virtual_phases}) equal
          {!History.total_eval_seconds}. *)
}

val virtual_phases : (string * string) list
(** [(label, span name)] for every phase charged to the virtual clock:
    build, boot, run, invalid, retry, quarantined, negative-cache,
    replay. *)

val default_invalid_floor_s : float
(** 1 virtual second. *)

val default_max_consecutive_invalid : int
(** 1000. *)

val default_checkpoint_every : int
(** 10 iterations. *)

val run :
  ?seed:int ->
  ?clock:Vclock.t ->
  ?on_iteration:(History.entry -> unit) ->
  ?on_record:(History.entry -> Search_algorithm.belief option -> unit) ->
  ?obs:Obs.Recorder.t ->
  ?invalid_floor_s:float ->
  ?max_consecutive_invalid:int ->
  ?resilience:Resilience.policy ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?checkpoint_keep:int ->
  ?resume_from:Checkpoint.t ->
  ?workers:int ->
  ?batch:int ->
  ?image_cache:Image_cache.config ->
  ?pool:Wayfinder_tensor.Domain_pool.t ->
  ?scenario:Scenario.t ->
  target:Target.t ->
  algorithm:Search_algorithm.t ->
  budget:budget ->
  unit ->
  result
(** Deterministic given [seed] (including for [workers > 1]: completions
    sit on the clock's min-heap with FIFO tie-break, so the interleaving
    is fully reproducible).  [on_iteration] observes each entry as it is
    recorded (useful for live series); replayed entries of a resumed run
    are not re-announced.  [on_record] additionally receives the
    searcher's pre-evaluation {!Search_algorithm.belief} about the
    entry's configuration — captured at launch time via the algorithm's
    pure [predict] hook, delivered at completion — and is the hook the
    run-ledger writer attaches to.  [predict] is only consulted when
    [on_record] is present, so recorded runs stay byte-for-byte
    identical to unrecorded ones; like [on_iteration], [on_record] is
    not re-fired for replayed entries.  [obs] attaches an external recorder (e.g.
    with a JSONL sink); by default a private sink-less recorder feeds
    {!result.metrics}.  Invalid proposals (violating the space or its
    pins) are recorded as {!Failure.Invalid_configuration} and charged
    [invalid_floor_s] virtual seconds (default
    {!default_invalid_floor_s}) so a [Virtual_seconds] budget always
    terminates; after [max_consecutive_invalid] consecutive invalid
    proposals (default {!default_max_consecutive_invalid}) the run stops
    with {!Invalid_cap}.  A [Virtual_seconds] budget is measured relative
    to the clock reading at start, so a caller-supplied, already-advanced
    clock gets the full budget.

    [workers] (default 1) is the number of virtual evaluation slots kept
    busy; [batch] (default [workers]) caps how many proposals are asked
    for per fill — when the algorithm has a native [propose_batch] and
    more than one slot is free, a single ask returns up to [batch]
    configurations, otherwise proposals fall back to sequential
    [propose] calls.  Entries are recorded in {e completion} order;
    [History.entry.index] is the proposal sequence number, so with
    [workers > 1] history indices need not be monotone.  An
    {!Iterations} budget counts proposals (all of which complete); the
    invalid cap and a [Virtual_seconds] budget stop new launches, and
    tasks already in flight drain to completion and are recorded.  With
    [workers = 1] the engine is byte-for-byte equivalent to
    {!run_sequential}.  With [workers > 1] the recorder additionally
    carries a [driver.batch.size] histogram (proposals obtained per
    ask), a [driver.worker.busy] histogram (busy slots at each
    completion) and per-slot [driver.worker] spans.

    [image_cache] configures the shared image cache (default capacity:
    [workers] — pooled, where the pre-cache engine kept one baseline
    image per slot).  With [workers = 1] and capacity 1 the cache {e is}
    the historical single-baseline rebuild-skip, byte-for-byte.  Larger
    capacities let images survive across intervening builds and across
    slots: any slot whose proposal shares a {!Space.stage_key} with a
    cached image skips the build phase entirely (0 build seconds,
    [driver.image_cache.hits]; [.cross_slot_hits] when another slot
    built it); evictions are exact LRU.

    [pool] enables {e wall-clock} parallel evaluation on OCaml domains:
    each fill round's first-attempt evaluations are speculatively
    computed on the pool before the launches run, and consumed from a
    memo keyed by deterministic trial number.  Because evaluation is a
    pure function of (trial, configuration) and the prefetch touches
    neither the RNG, the recorder nor the virtual clock, a pooled run is
    byte-for-byte identical to the same run without a pool — the
    conformance suite pins this for every algorithm × worker count.
    Retries and corroborating re-measurements (distinct trial numbers)
    still evaluate inline.  With a [scenario] the prefetch is disabled
    entirely — the target reads the trace cursor at evaluation time, so
    speculative out-of-order evaluation would replay the wrong slice.

    [scenario] attaches trace-driven workload state: the cursor advances
    by the scenario's stride exactly once per real evaluation launched
    (floor-charged outcomes — invalid, quarantined, negative-cached —
    consume no trace time), in proposal order, so the trace slice each
    trial replays is identical across worker counts.  Checkpoints
    persist the cursor (and the Pareto archive); resuming a scenario run
    requires passing an equivalent [scenario], and resuming a
    scenario-less checkpoint with one (or vice versa) fails loudly.

    [resilience] defaults to {!Resilience.none}.  [checkpoint_path]
    enables periodic checkpointing — the checkpoint persists
    in-flight slot state {e and} the image cache (contents + recency
    order), so a killed multi-worker run resumes mid-batch with its
    warm cache; [resume_from] requires a fresh clock positioned at the
    checkpoint's budget origin and an algorithm / seed / [workers] /
    [batch] / image-cache capacity identical to the checkpointed run.
    [checkpoint_keep] (default 1) is the number of checkpoint
    generations retained: each save rotates the previous file to
    [path.1], [path.2], …, so {!Checkpoint.load_latest} can fall back
    past a corrupt primary.

    @raise Invalid_argument if [invalid_floor_s <= 0],
    [max_consecutive_invalid <= 0], [checkpoint_every <= 0],
    [checkpoint_keep < 1], [workers <= 0], [batch <= 0], the policy fails
    {!Resilience.validate}, or a resume replay diverges from the
    checkpoint. *)

val run_sequential :
  ?seed:int ->
  ?clock:Vclock.t ->
  ?on_iteration:(History.entry -> unit) ->
  ?on_record:(History.entry -> Search_algorithm.belief option -> unit) ->
  ?obs:Obs.Recorder.t ->
  ?invalid_floor_s:float ->
  ?max_consecutive_invalid:int ->
  ?resilience:Resilience.policy ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?checkpoint_keep:int ->
  ?resume_from:Checkpoint.t ->
  ?image_cache:Image_cache.config ->
  ?scenario:Scenario.t ->
  target:Target.t ->
  algorithm:Search_algorithm.t ->
  budget:budget ->
  unit ->
  result
(** The legacy strictly-sequential loop — one proposal, one synchronous
    evaluation, one observe per step — kept as the executable
    specification of the engine's [workers = 1] semantics: the
    conformance suite asserts [run ~workers:1] produces a byte-identical
    history, metrics snapshot and virtual trajectory.  [image_cache]
    defaults to capacity 1 (the historical "last built image" baseline).
    Only resumes checkpoints written with [workers = 1] and no in-flight
    tasks. *)

val phase_virtual_seconds : result -> (string * float) list
(** Virtual seconds charged per phase, in {!virtual_phases} order. *)

val best_relative_to : result -> default:float -> float option
(** Best value divided by a reference (e.g. the default configuration's
    performance) — Table 2's "Relative Perf." column.  [None] when there
    is no successful entry or the reference is zero or non-finite. *)
