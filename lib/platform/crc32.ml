type t = int32

(* Reflected polynomial 0xEDB88320; table entry i is the CRC of the
   single byte i. *)
let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let init = 0xFFFFFFFFl

let update state s =
  let table = Lazy.force table in
  let crc = ref state in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl) in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  !crc

let finish state = Int32.logxor state 0xFFFFFFFFl
let digest s = finish (update init s)
let to_hex v = Printf.sprintf "%08lx" v

let of_hex s =
  if String.length s <> 8 then None
  else
    match Int32.of_string_opt ("0x" ^ s) with
    | Some v -> Some v
    | None -> None
