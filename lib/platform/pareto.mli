(** Incremental non-dominated archive.

    The driver inserts every successfully evaluated objective vector;
    the archive retains exactly the non-dominated set, tagged by entry
    index.  The result is a pure function of the {e set} of inserted
    points — insertion order cannot change it — and ties (bitwise-equal
    vectors) keep the smallest entry index.  Together these make the
    archive deterministic across worker counts: the engine completes
    evaluations in different orders at different parallelism, but the
    set of completed points is identical, so the archive is too. *)

type point = { index : int; objectives : float array }

type t

val create : spec:Objective.spec -> t
val spec : t -> Objective.spec

val insert : t -> index:int -> objectives:float array -> t
(** Add a point; drops it if dominated (or duplicated by a
    smaller-index point), evicts any point it dominates. *)

val points : t -> point list
(** The current front, sorted by ascending entry index. *)

val size : t -> int
val is_empty : t -> bool

val to_list : t -> (int * float array) list
(** Checkpoint view: [(index, raw vector)] sorted by index. *)

val of_list : spec:Objective.spec -> (int * float array) list -> t
(** Rebuild from a checkpoint; re-inserts every point, so a dominated
    point in the input is silently dropped rather than trusted. *)

val hypervolume_proxy : t -> float
(** A deterministic scalar summary of front quality: objective scores
    are min-max normalized over the archive (constant components map
    to 0.5), and the proxy is the sum over points of the product of
    normalized scores.  Not a true hypervolume (no reference point),
    but monotone enough to trend archive growth in analytics; 0 for an
    empty archive. *)
