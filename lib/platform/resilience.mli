(** Driver resilience policy.

    How the platform loop survives a testbed that throws transient faults
    ({!Wayfinder_simos.Faults}) at it:

    - {e per-phase virtual timeouts} — a hung boot is cut off at
      [boot_timeout_s] and recorded as a [Boot_timeout] failure charged at
      the cap, instead of advancing the virtual clock by the full stall;
    - {e retry with exponential backoff} — failures whose
      {!Failure.retryable} holds are re-attempted up to [retries] times,
      each preceded by a virtual backoff of
      [backoff_base_s * backoff_factor^attempt] capped at [backoff_max_s]
      (all charged to the budget and traced as [driver.retry] spans);
    - {e repeated measurement with outlier rejection} — when
      [measure_repeats >= 2], a successful measurement is corroborated by
      a second one; if their relative disagreement exceeds
      [outlier_threshold], up to [measure_repeats] samples are taken and
      the median is used, rejecting heavy-tailed outliers;
    - {e quarantine} — a configuration that exhausts its retries
      [quarantine_after] separate times is quarantined: further proposals
      of it are recorded as [Quarantined] at a floor charge without
      touching the testbed ([0] disables quarantine). *)

type policy = {
  retries : int;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_max_s : float;
  build_timeout_s : float option;  (** [None] = unbounded. *)
  boot_timeout_s : float option;
  run_timeout_s : float option;
  measure_repeats : int;  (** Maximum measurements per evaluation; 1 = off. *)
  outlier_threshold : float;  (** Relative disagreement triggering re-measurement. *)
  quarantine_after : int;  (** Exhausted-retry episodes before quarantine; 0 = off. *)
}

val none : policy
(** No retries, no timeouts, single measurements, no quarantine — the
    pre-resilience driver semantics, and the default. *)

val default_resilient : policy
(** 3 retries with 30 s base / 2x / 600 s cap backoff, 600/120/300 s
    build/boot/run timeouts, up to 3 measurements at a 10 % disagreement
    threshold, quarantine after 2 exhausted episodes. *)

val validate : policy -> unit
(** @raise Invalid_argument on nonsensical fields (negative retries,
    non-positive timeouts, [measure_repeats < 1], ...). *)

val backoff_s : policy -> attempt:int -> float
(** Virtual backoff charged before retry [attempt] (0-based). *)

val disagreement : float array -> float
(** Relative disagreement of a sample set: worst absolute deviation from
    the median over the median's magnitude (0 for fewer than 2 samples). *)
