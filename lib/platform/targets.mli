(** Adapters turning the {!Wayfinder_simos} models into platform targets. *)

module Simos = Wayfinder_simos

val failure_of_stage : Simos.Sim_linux.failure_stage -> Failure.t
(** The simulator's failure stages mapped onto the platform taxonomy
    (all three are {!Failure.klass} [Deterministic]). *)

val of_sim_linux : Simos.Sim_linux.t -> app:Simos.App.t -> Target.t
(** Metric taken from the application (throughput or latency). *)

val of_sim_linux_memory : Simos.Sim_linux.t -> app:Simos.App.t -> Target.t
(** Same kernel, but the metric is the image's memory footprint (crashes
    still come from the run attempt). *)

val of_sim_unikraft : Simos.Sim_unikraft.t -> Target.t
val of_sim_riscv : Simos.Sim_riscv.t -> Target.t

val of_cozart :
  Simos.Cozart.t -> score:(throughput:float -> memory_mb:float -> float) -> Target.t
(** The §4.4 co-optimization target: evaluation yields the composite score
    of throughput and memory (eq. 4's normalisation is supplied by the
    caller, typically over the running history). *)

val nominal_capacity_rps : float
(** Service rate of the default configuration in trace-load units: 1000
    requests/second.  Trace loads for {!of_sim_linux_trace} are offered
    against this scale — a configuration's capacity is
    [nominal_capacity_rps] times its relative performance versus the
    default configuration. *)

val of_sim_linux_trace :
  Simos.Sim_linux.t ->
  app:Simos.App.t ->
  scenario:Scenario.t ->
  objectives:Objective.spec ->
  ?scalarize:Scalarize.t ->
  unit ->
  Target.t
(** Trace-driven multi-objective target: each evaluation runs the
    analytic model once (crashes and noise as usual), derives a service
    model — capacity from relative performance, base latency inflated by
    the image's memory footprint — and replays the scenario's current
    trace slice through {!Simos.Trace_replay}, reporting the objective
    vector named by [objectives] (any of [throughput]/[p50]/[p95]/[p99]
    in trace units, [memory] in MiB; see {!Objective.builtin}).  The
    scalar value is [scalarize] (default: equal weights) applied to the
    vector under a synthetic maximized "score" metric — except with a
    single objective, where the value is the raw objective under its own
    metric, the exact degenerate scalar case.  The run phase charges the
    replayed slice's virtual duration.
    @raise Invalid_argument on an empty or unmeasurable objective list,
    or a [scalarize] that fails {!Scalarize.validate}. *)
