(** Adapters turning the {!Wayfinder_simos} models into platform targets. *)

module Simos = Wayfinder_simos

val failure_of_stage : Simos.Sim_linux.failure_stage -> Failure.t
(** The simulator's failure stages mapped onto the platform taxonomy
    (all three are {!Failure.klass} [Deterministic]). *)

val of_sim_linux : Simos.Sim_linux.t -> app:Simos.App.t -> Target.t
(** Metric taken from the application (throughput or latency). *)

val of_sim_linux_memory : Simos.Sim_linux.t -> app:Simos.App.t -> Target.t
(** Same kernel, but the metric is the image's memory footprint (crashes
    still come from the run attempt). *)

val of_sim_unikraft : Simos.Sim_unikraft.t -> Target.t
val of_sim_riscv : Simos.Sim_riscv.t -> Target.t

val of_cozart :
  Simos.Cozart.t -> score:(throughput:float -> memory_mb:float -> float) -> Target.t
(** The §4.4 co-optimization target: evaluation yields the composite score
    of throughput and memory (eq. 4's normalisation is supplied by the
    caller, typically over the running history). *)
