(** The platform's failure taxonomy.

    Evaluations used to fail with raw strings ("build-failure", ...),
    which made it impossible to tell a config-caused crash from a flaked
    VM — and a typo in a match arm could silently change driver behaviour.
    This variant is shared by {!Target.eval_result}, {!History.entry} and
    the driver, and every failure belongs to one of three classes:

    - {e Deterministic} — a property of the configuration (does not build,
      does not boot, crashes under load).  These are what DeepTune's crash
      head learns from.
    - {e Transient} — the testbed's fault, not the configuration's
      ({!Wayfinder_simos.Faults}): flaked builds, hung VMs, benchmark
      interference.  Retried by the driver, excluded from crash training.
    - {e Timeout} — a per-phase virtual timeout tripped; charged at the
      cap and retried (the underlying cause is usually transient). *)

type klass = Deterministic | Transient | Timeout

type t =
  | Invalid_configuration  (** Proposal rejected by {!Wayfinder_configspace.Space.validate}. *)
  | Build_failure
  | Boot_failure
  | Runtime_crash
  | Flaky_build
  | Spurious_failure
  | Boot_hang  (** Unbounded boot stall (no timeout configured to cap it). *)
  | Build_timeout
  | Boot_timeout
  | Run_timeout
  | Quarantined
      (** The configuration exhausted its retries repeatedly and is skipped
          without evaluation. *)
  | Non_finite_measurement
      (** The target reported [Ok v] with a non-finite [v] (NaN/inf from a
          degenerate target or composite metric).  The driver rejects such
          measurements instead of letting NaN corrupt the corroboration
          median or the history — the explicit NaN policy. *)
  | Other of string  (** Escape hatch for custom targets. *)

val klass : t -> klass
val klass_to_string : klass -> string

val counts_as_crash : t -> bool
(** True exactly for {!Deterministic} failures — the ones crash statistics
    and DeepTune's crash-gating should see. *)

val retryable : t -> bool
(** Transient and timeout failures (except {!Quarantined}) are worth
    re-attempting. *)

val is_build_stage : t -> bool
(** Failures that never produced an image; the driver keeps the previous
    image as the rebuild-skip baseline. *)

val to_string : t -> string
val of_string : string -> t
(** Total inverse of {!to_string}: unrecognised strings become {!Other}. *)

val all_named : t list
(** Every constructor except [Other] — for exhaustive round-trip tests. *)
