(** The pluggable search-algorithm API (§3.1).

    The platform exposes the space, the metric and the full exploration
    history; an algorithm proposes the next configuration to evaluate and
    is notified of each result.  Random search, grid search, Bayesian
    optimization ({!Bayes_search}) and DeepTune
    ({!Wayfinder_deeptune.Deeptune}) all implement this interface.

    The context also carries the platform's observability recorder:
    algorithms report what only they can see — candidate-pool sizes,
    model-fit timings, per-epoch training losses — under their own metric
    namespace ([random.*], [grid.*], [bayes.*], [deeptune.*]). *)

module Space = Wayfinder_configspace.Space
module Rng = Wayfinder_tensor.Rng
module Obs = Wayfinder_obs

type context = {
  space : Space.t;
  metric : Metric.t;
  history : History.t;
  rng : Rng.t;
  obs : Obs.Recorder.t;  (** The driver's recorder; never [None] — a
                             sink-less recorder is effectively free. *)
}

type t = {
  algo_name : string;
  propose : context -> Space.configuration;
  observe : context -> History.entry -> unit;
}

val make :
  name:string ->
  propose:(context -> Space.configuration) ->
  ?observe:(context -> History.entry -> unit) ->
  unit ->
  t
(** [observe] defaults to a no-op (memoryless algorithms). *)
