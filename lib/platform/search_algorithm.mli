(** The pluggable search-algorithm API (§3.1).

    The platform exposes the space, the metric and the full exploration
    history; an algorithm proposes the next configuration to evaluate and
    is notified of each result.  Random search, grid search, Bayesian
    optimization ({!Bayes_search}) and DeepTune
    ({!Wayfinder_deeptune.Deeptune}) all implement this interface.

    Batched ("ask/tell") proposal: an algorithm may additionally provide
    [propose_batch], returning [k] configurations at once so a
    multi-worker driver can keep several virtual evaluation slots busy
    between [observe] calls.  Algorithms without a native batch are
    served by {!propose_many}, which falls back to [k] sequential
    [propose] calls.

    The context also carries the platform's observability recorder:
    algorithms report what only they can see — candidate-pool sizes,
    model-fit timings, per-epoch training losses — under their own metric
    namespace ([random.*], [grid.*], [bayes.*], [deeptune.*]). *)

module Space = Wayfinder_configspace.Space
module Rng = Wayfinder_tensor.Rng
module Obs = Wayfinder_obs

exception Space_exhausted
(** Raised by [propose] (and [propose_batch]) when the algorithm has
    enumerated every configuration it will ever propose — a finite grid
    run past its last point.  The driver turns this into the
    [Space_exhausted] stop reason instead of letting it escape. *)

type context = {
  space : Space.t;
  metric : Metric.t;
  history : History.t;
  rng : Rng.t;
  obs : Obs.Recorder.t;  (** The driver's recorder; never [None] — a
                             sink-less recorder is effectively free. *)
}

type belief = {
  crash_probability : float option;  (** Predicted crash probability [k̂]
      (DeepTune's crash head); [None] for model-free searchers. *)
  predicted_value : float option;  (** Predicted metric value in metric
      units — DeepTune's de-normalised [ŷ], the GP posterior mean. *)
  predicted_uncertainty : float option;  (** Stated uncertainty on the
      prediction, in the algorithm's own scale — DeepTune's RBF [σ̂ ∈
      \[0, 1\]], the GP posterior standard deviation. *)
  belief_source : string;  (** Which model stated it ("deeptune", "gp"). *)
}
(** A searcher's {e pre-evaluation} belief about a proposal — what the
    model thought {e before} the testbed answered.  The run ledger records
    beliefs next to outcomes, making model-calibration diagnostics (Brier
    score, reliability bins, uncertainty–error correlation) computable
    from any recorded run. *)

type t = {
  algo_name : string;
  propose : context -> Space.configuration;
  propose_batch : (context -> k:int -> Space.configuration list) option;
      (** Native ask/tell batch: return [k] distinct proposals in one
          call.  May return fewer than [k] — or raise
          {!Space_exhausted} — only when the proposal space is
          exhausted (a final partial batch).  [None] means the driver
          falls back to [k] sequential [propose] calls. *)
  observe : context -> History.entry -> unit;
  predict : (context -> Space.configuration -> belief) option;
      (** Introspection hook: state the model's current belief about a
          configuration.  MUST be pure — no mutation of the algorithm's
          state and no draws from [ctx.rng] — because the driver only
          calls it when a ledger (or other consumer) is attached, and a
          recorded run must stay byte-for-byte identical to an unrecorded
          one.  [None] for algorithms with no predictive model. *)
}

val make :
  name:string ->
  propose:(context -> Space.configuration) ->
  ?propose_batch:(context -> k:int -> Space.configuration list) ->
  ?observe:(context -> History.entry -> unit) ->
  ?predict:(context -> Space.configuration -> belief) ->
  unit ->
  t
(** [observe] defaults to a no-op (memoryless algorithms);
    [propose_batch] to [None] (sequential fallback); [predict] to [None]
    (no stated beliefs). *)

val propose_many : t -> context -> k:int -> Space.configuration list
(** Ask for [k] proposals: the native [propose_batch] when available (and
    [k > 1]), otherwise [k] sequential [propose] calls.  Returns fewer
    than [k] configurations — possibly none — exactly when the algorithm
    exhausts its proposal space; {!Space_exhausted} never escapes.
    @raise Invalid_argument when [k <= 0]. *)
