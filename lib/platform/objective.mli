(** Multi-objective evaluation vectors.

    A multi-objective target reports a raw value vector alongside its
    scalar value; the [spec] names each component and fixes its
    direction (a {!Metric.t} per component).  Dominance and
    scalarization always operate in score space — every component
    mapped through {!Metric.score} so that higher is uniformly better —
    which keeps minimized objectives (latency, memory) and maximized
    ones (throughput) composable without special cases. *)

type spec = Metric.t array
(** One metric per objective, in vector order.  The empty spec denotes
    a single-objective (scalar-only) target. *)

val spec_names : spec -> string list

val builtin : string -> Metric.t option
(** Objectives the trace-replay targets know how to measure:
    ["throughput"] (req/s, maximize), ["p50"]/["p95"]/["p99"] (latency
    seconds, minimize), ["memory"] (MiB, minimize). *)

val spec_of_names : string list -> (spec, string) result
(** Resolve a list of {!builtin} names; [Error] names the first
    unknown objective. *)

val scores : spec -> float array -> float array
(** Map a raw vector into score space (componentwise {!Metric.score}).
    @raise Invalid_argument on length mismatch. *)

val dominates : spec -> float array -> float array -> bool
(** [dominates spec a b]: raw vector [a] is at least as good as [b] on
    every objective and strictly better on at least one. *)

val equal_vec : float array -> float array -> bool
(** Componentwise bitwise float equality (NaN-safe). *)
