module Space = Wayfinder_configspace.Space
module Obs = Wayfinder_obs

let sampler ?favor ?(strong = 0.6) ?(weak = 0.05) space rng =
  match favor with
  | None -> Space.random space rng
  | Some stage -> Space.sample_biased space rng ~vary_probability:(Space.favor_stage stage ~strong ~weak)

let create ?favor ?strong ?weak () =
  Search_algorithm.make ~name:"random"
    ~propose:(fun ctx ->
      Obs.Recorder.incr ctx.Search_algorithm.obs ~quiet:true "random.proposals";
      sampler ?favor ?strong ?weak ctx.Search_algorithm.space ctx.Search_algorithm.rng)
    ()
