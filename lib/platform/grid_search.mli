(** Grid search (§3.1): systematic enumeration, one parameter value after
    the other.

    The grid is the cross product of per-parameter candidate lists (full
    domains for booleans/tristates/categoricals, up to [steps] log-spaced
    values for integers).  Enumeration order varies the *first* parameter
    fastest.  Once every point has been proposed the algorithm raises
    {!Search_algorithm.Space_exhausted} (the driver stops with the
    [Space_exhausted] stop reason) instead of wrapping around and
    re-proposing duplicates.  Known to be inferior to random search on
    large spaces (§4) — included for completeness. *)

val create : ?steps:int -> unit -> Search_algorithm.t
(** [steps] (default 4) caps the candidate values per integer parameter.
    The returned algorithm has a native [propose_batch]: the next [k]
    points of the enumeration, with a final partial batch (fewer than
    [k]) when the grid runs out mid-ask. *)

val grid_size : ?steps:int -> Wayfinder_configspace.Space.t -> float
(** Number of grid points (as a float; can be astronomically large). *)
