(** Scenario state: a workload trace plus the search's position in it.

    A scenario connects the driver to a trace-replay target.  The
    driver advances the cursor by [stride] windows once per real
    evaluation launched (replayed, cache-served, and invalid proposals
    do not consume trace time), and the target reads the cursor at
    evaluation time to pick which slice of the trace the trial replays.
    With [stride = 0] (the default) every trial replays the same slice
    — a stationary scenario; with [stride > 0] the workload shifts
    under the search as it would under live traffic.

    Launches are ordered by proposal index in both driver loops, so the
    cursor sequence — and therefore every evaluation — is deterministic
    across worker counts.  The cursor is persisted in checkpoint
    format 5 and restored on resume, keeping kill-and-resume runs
    bitwise identical. *)

type t

val create : ?stride:int -> ?span:int -> ?cursor:int -> Wayfinder_simos.Trace.t -> t
(** [span] is the number of windows each evaluation replays (default:
    the whole trace).  @raise Invalid_argument on negative [stride],
    negative [cursor], or non-positive [span]. *)

val trace : t -> Wayfinder_simos.Trace.t
val stride : t -> int
val cursor : t -> int

val set_cursor : t -> int -> unit
(** @raise Invalid_argument on a negative cursor — a corrupted or
    hand-edited checkpoint must be rejected at the boundary, not crash
    deep inside replay. *)

val advance : t -> unit

val slice : t -> Wayfinder_simos.Trace.t
(** The trace slice the next evaluation should replay: [span] windows
    starting at [cursor mod length], wrapping around the trace.  The
    empty trace slices to itself. *)
