(** Streaming CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over strings.

    The durability layer seals on-disk artifacts — checkpoint envelopes,
    ledger [fin] records — with this checksum so [wayfinder fsck] and the
    loaders can tell a bit-flipped or torn file from a valid one with a
    typed error instead of a parse crash (or worse, a silent
    misparse).  Self-contained table-driven implementation: the
    toolchain bakes in no checksum library, and 8 lines of fold beat a
    dependency. *)

type t = int32
(** Running digest state (pre-conditioned; not the final value). *)

val init : t
(** The empty-string state. *)

val update : t -> string -> t
(** Fold a chunk into the digest.  [update (update init a) b] equals
    [update init (a ^ b)] — the streaming property the ledger writer
    relies on to seal without re-reading the file. *)

val finish : t -> int32
(** Final CRC-32 value of everything folded in so far. *)

val digest : string -> int32
(** [digest s = finish (update init s)]. *)

val to_hex : int32 -> string
(** Fixed-width 8-digit lowercase hex — the on-disk rendering. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
