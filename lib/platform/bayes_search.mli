(** Bayesian optimization baseline (§2.3, §4.4).

    A Gaussian process is fitted over the feature encodings of evaluated
    configurations and the next candidate is chosen by Expected Improvement
    over a random candidate pool.  Faithful to the limitations the paper
    measures: every observation triggers a *full* O(n³) refit, there is no
    crash model (failures are folded in as a pessimistic score), and
    one-hot categorical dimensions dilute the kernel — which is why it only
    competes on small spaces like Unikraft's (Figure 9).

    Supports the ask/tell batch interface through constant-liar batching:
    each pick is temporarily recorded as a fake observation at the
    incumbent best score, so within a batch the EI maximisation spreads the
    picks apart; the lies are removed before real outcomes are observed. *)

val create :
  ?favor:Wayfinder_configspace.Param.stage ->
  ?n_init:int ->
  ?pool:int ->
  ?max_points:int ->
  ?lengthscale:float ->
  ?seed:int ->
  unit ->
  Search_algorithm.t
(** [n_init] random warm-up draws (default 8); [pool] candidates per
    iteration (default 200); [max_points] caps the GP training set at the
    most recent observations (default 200) so the cubic refit stays
    tractable; [lengthscale] defaults to 1.5. *)
