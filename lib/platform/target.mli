(** Systems under test.

    A target bundles a configuration space, the metric being optimized, and
    an evaluation function returning either the measured value or a typed
    {!Failure.t}, plus the virtual durations of the build/boot/run tasks
    (§3.1).  Adapters over the {!Wayfinder_simos} models live in
    {!Targets}; {!with_faults} layers the transient-fault model over any
    target. *)

module Space = Wayfinder_configspace.Space
module Faults = Wayfinder_simos.Faults

type eval_result = {
  value : (float, Failure.t) result;  (** [Error f] on build/boot/run failure. *)
  build_s : float;
  boot_s : float;
  run_s : float;
}

type t = {
  target_name : string;
  space : Space.t;
  metric : Metric.t;
  evaluate : trial:int -> Space.configuration -> eval_result;
}

val make :
  name:string ->
  space:Space.t ->
  metric:Metric.t ->
  (trial:int -> Space.configuration -> eval_result) ->
  t

val with_faults : plan:Faults.t -> t -> t
(** Wrap a target with the transient-fault injector: evaluations that
    would have succeeded may instead hang at boot (huge [boot_s], failure
    [Boot_hang]), flake the build ([Flaky_build], half the build cost
    sunk), die spuriously after running ([Spurious_failure]), or return a
    corrupted measurement (value scaled by a heavy-tailed factor).
    Deterministic failures of the underlying target pass through
    untouched.  The schedule is a pure function of the plan and the trial
    number, so wrapped targets stay deterministic. *)
