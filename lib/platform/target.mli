(** Systems under test.

    A target bundles a configuration space, the metric being optimized, and
    an evaluation function returning either the measured value or a typed
    {!Failure.t}, plus the virtual durations of the build/boot/run tasks
    (§3.1).  Adapters over the {!Wayfinder_simos} models live in
    {!Targets}; {!with_faults} layers the transient-fault model over any
    target.

    A multi-objective target additionally reports a raw objective vector
    per evaluation ([objectives], interpreted by [objective_spec]); the
    scalar [value] is then a scalarization of that vector.  Scalar targets
    leave both empty, and everything downstream treats them exactly as
    before — the scalar path is the degenerate zero-objective case. *)

module Space = Wayfinder_configspace.Space
module Faults = Wayfinder_simos.Faults

type eval_result = {
  value : (float, Failure.t) result;  (** [Error f] on build/boot/run failure. *)
  build_s : float;
  boot_s : float;
  run_s : float;
  objectives : float array;
      (** Raw objective vector for multi-objective targets; [[||]] for
          scalar targets and for failed evaluations. *)
}

type t = {
  target_name : string;
  space : Space.t;
  metric : Metric.t;
  objective_spec : Objective.spec;
      (** Interpretation of [eval_result.objectives]; [[||]] for scalar
          targets. *)
  evaluate : trial:int -> Space.configuration -> eval_result;
}

val make :
  name:string ->
  space:Space.t ->
  metric:Metric.t ->
  ?objective_spec:Objective.spec ->
  (trial:int -> Space.configuration -> eval_result) ->
  t

val with_faults : plan:Faults.t -> t -> t
(** Wrap a target with the transient-fault injector: evaluations that
    would have succeeded may instead hang at boot (huge [boot_s], failure
    [Boot_hang]), flake the build ([Flaky_build], half the build cost
    sunk), die spuriously after running ([Spurious_failure]), or return a
    corrupted measurement (value scaled by a heavy-tailed factor).
    Deterministic failures of the underlying target pass through
    untouched — and a fault that voids the measurement also clears the
    objective vector, while an outlier corrupts only the scalar (the
    vector keeps the clean measurement, mirroring a testbed whose
    per-window samples were sound but whose summary was mangled).  The
    schedule is a pure function of the plan and the trial number, so
    wrapped targets stay deterministic. *)
