module Space = Wayfinder_configspace.Space

type t = {
  target_name : string;
  algorithm_name : string;
  iterations : int;
  virtual_seconds : float;
  crash_rate : float;
  late_crash_rate : float;
  transient_rate : float;
  retries : int;
  quarantined_configs : int;
  builds_charged : int;
  mean_decide_seconds : float;
  phase_seconds : (string * float) list;
  best : best option;
}

and best = {
  value : float;
  relative : relative option;
  found_at_iteration : int;
  found_at_seconds : float;
  changed : (string * string * string) list;
}

and relative = Ratio of float | Not_applicable

let of_result ?default ~algorithm ~target result =
  let history = result.Driver.history in
  let metric = target.Target.metric in
  let best =
    match History.best history with
    | None -> None
    | Some entry ->
      Option.map
        (fun value ->
          let relative =
            (* Guard the division exactly as Driver.best_relative_to does:
               a zero or non-finite denominator (or a non-finite best)
               must render as "n/a", never as inf/nan. *)
            Option.map
              (fun d ->
                let num, den =
                  if metric.Metric.maximize then (value, d) else (d, value)
                in
                if
                  (not (Float.is_finite num))
                  || (not (Float.is_finite den))
                  || den = 0.
                then Not_applicable
                else Ratio (num /. den))
              default
          in
          { value;
            relative;
            found_at_iteration = entry.History.index;
            found_at_seconds = entry.History.at_seconds;
            changed =
              Space.diff target.Target.space
                (Space.defaults target.Target.space)
                entry.History.config })
        entry.History.value
  in
  { target_name = target.Target.target_name;
    algorithm_name = algorithm;
    iterations = History.size history;
    virtual_seconds = History.total_eval_seconds history;
    crash_rate = History.crash_rate history;
    late_crash_rate = History.windowed_crash_rate history ~window:50;
    transient_rate = History.transient_rate history;
    retries =
      int_of_float (Wayfinder_obs.Metrics.counter result.Driver.metrics "driver.retries");
    quarantined_configs =
      int_of_float (Wayfinder_obs.Metrics.counter result.Driver.metrics "driver.quarantines");
    builds_charged = History.builds_charged history;
    mean_decide_seconds = History.mean_decide_seconds history;
    phase_seconds = Driver.phase_virtual_seconds result;
    best }

let render ~heading ~bullet ~emphasis t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s %s specialized by %s" heading t.target_name t.algorithm_name;
  line "%s%d iterations over %.1f virtual hours (%d image builds charged)" bullet t.iterations
    (t.virtual_seconds /. 3600.) t.builds_charged;
  line "%scrash rate %.2f overall, %.2f over the last 50 iterations" bullet t.crash_rate
    t.late_crash_rate;
  if t.transient_rate > 0. || t.retries > 0 || t.quarantined_configs > 0 then
    line "%stestbed faults: %.2f of iterations lost to transient failures, %d retries, %d \
          configs quarantined"
      bullet t.transient_rate t.retries t.quarantined_configs;
  line "%smean decision time %.3f s per iteration" bullet t.mean_decide_seconds;
  (let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. t.phase_seconds in
   if total > 0. then
     line "%svirtual time by phase: %s" bullet
       (String.concat " | "
          (List.map
             (fun (phase, v) ->
               Printf.sprintf "%s %.0fs (%.0f%%)" phase v (100. *. v /. total))
             t.phase_seconds)));
  (match t.best with
  | None -> line "%sno valid configuration found" bullet
  | Some b ->
    line "%sbest value %s%.2f%s at iteration %d (t = %.0f s)%s" bullet emphasis b.value emphasis
      b.found_at_iteration b.found_at_seconds
      (match b.relative with
      | Some (Ratio r) -> Printf.sprintf " — %.2fx the default" r
      | Some Not_applicable -> " — n/a vs the default"
      | None -> "");
    if b.changed <> [] then begin
      line "%schanged parameters (%d):" bullet (List.length b.changed);
      List.iter
        (fun (name, from_v, to_v) -> line "%s  %s: %s -> %s" bullet name from_v to_v)
        b.changed
    end);
  Buffer.contents buf

let to_text t = render ~heading:"==" ~bullet:"  " ~emphasis:"" t
let to_markdown t = render ~heading:"##" ~bullet:"- " ~emphasis:"**" t
