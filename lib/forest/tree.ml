module Mat = Wayfinder_tensor.Mat
module Vec = Wayfinder_tensor.Vec
module Rng = Wayfinder_tensor.Rng

type node =
  | Leaf of float
  | Split of {
      feature : int;
      threshold : float;
      gain : float;  (* impurity decrease, weighted by sample fraction *)
      left : node;
      right : node;
    }

type t = { root : node; n_features : int }

let sse_stats indices y =
  let n = Array.length indices in
  let sum = ref 0. in
  Array.iter (fun i -> sum := !sum +. y.(i)) indices;
  let mean = !sum /. float_of_int n in
  let sse = ref 0. in
  Array.iter
    (fun i ->
      let d = y.(i) -. mean in
      sse := !sse +. (d *. d))
    indices;
  (mean, !sse)

let threshold_candidates = 16

(* Candidate thresholds for one feature over the active rows: midpoints of
   evenly spaced order statistics (cheap quantile sketch). *)
let candidates_for x indices feature =
  let values = Array.map (fun i -> Mat.get x i feature) indices in
  (* Float.compare: total with NaN (polymorphic compare is not).  NaN
     values sort first and can never become thresholds — [cur > prev] is
     false whenever either side is NaN — so split-point selection stays
     deterministic on degenerate inputs. *)
  Array.sort Float.compare values;
  let n = Array.length values in
  if n < 2 || values.(0) = values.(n - 1) then [||]
  else begin
    let out = ref [] in
    let steps = min threshold_candidates (n - 1) in
    for s = 1 to steps do
      let idx = s * (n - 1) / steps in
      let prev = values.(max 0 (idx - 1)) and cur = values.(idx) in
      if cur > prev then out := ((prev +. cur) /. 2.) :: !out
    done;
    Array.of_list (List.sort_uniq Float.compare !out)
  end

let best_split x y indices features total_n =
  let _, parent_sse = sse_stats indices y in
  if parent_sse <= 1e-12 then None
  else begin
    let best = ref None in
    Array.iter
      (fun feature ->
        Array.iter
          (fun threshold ->
            (* Single pass: split statistics on both sides. *)
            let nl = ref 0 and suml = ref 0. and sumsql = ref 0. in
            let nr = ref 0 and sumr = ref 0. and sumsqr = ref 0. in
            Array.iter
              (fun i ->
                let v = Mat.get x i feature and t = y.(i) in
                if v <= threshold then begin
                  incr nl;
                  suml := !suml +. t;
                  sumsql := !sumsql +. (t *. t)
                end
                else begin
                  incr nr;
                  sumr := !sumr +. t;
                  sumsqr := !sumsqr +. (t *. t)
                end)
              indices;
            if !nl > 0 && !nr > 0 then begin
              let sse_of n sum sumsq = sumsq -. (sum *. sum /. float_of_int n) in
              let child_sse = sse_of !nl !suml !sumsql +. sse_of !nr !sumr !sumsqr in
              let decrease = parent_sse -. child_sse in
              match !best with
              | Some (_, _, best_decrease) when best_decrease >= decrease -> ()
              | Some _ | None ->
                if decrease > 1e-12 then best := Some (feature, threshold, decrease)
            end)
          (candidates_for x indices feature))
      features;
    match !best with
    | None -> None
    | Some (feature, threshold, decrease) ->
      let gain = decrease *. float_of_int (Array.length indices) /. float_of_int total_n in
      Some (feature, threshold, gain)
  end

let fit ?(max_depth = 12) ?(min_samples = 4) ?features_per_split rng x y =
  if x.Mat.rows = 0 then invalid_arg "Tree.fit: empty data";
  if x.Mat.rows <> Array.length y then invalid_arg "Tree.fit: row/target mismatch";
  let d = x.Mat.cols in
  let k = match features_per_split with None -> d | Some k -> max 1 (min k d) in
  let total_n = x.Mat.rows in
  let pick_features () =
    if k = d then Array.init d (fun i -> i) else Rng.sample_without_replacement rng k d
  in
  let rec grow indices depth =
    let mean, _ = sse_stats indices y in
    if depth >= max_depth || Array.length indices < min_samples then Leaf mean
    else
      match best_split x y indices (pick_features ()) total_n with
      | None -> Leaf mean
      | Some (feature, threshold, gain) ->
        let left = Array.of_list (List.filter (fun i -> Mat.get x i feature <= threshold) (Array.to_list indices)) in
        let right = Array.of_list (List.filter (fun i -> Mat.get x i feature > threshold) (Array.to_list indices)) in
        if Array.length left = 0 || Array.length right = 0 then Leaf mean
        else
          Split
            { feature; threshold; gain;
              left = grow left (depth + 1);
              right = grow right (depth + 1) }
  in
  { root = grow (Array.init total_n (fun i -> i)) 0; n_features = d }

let predict t v =
  let rec walk = function
    | Leaf value -> value
    | Split { feature; threshold; left; right; _ } ->
      if v.(feature) <= threshold then walk left else walk right
  in
  walk t.root

let depth t =
  let rec go = function
    | Leaf _ -> 0
    | Split { left; right; _ } -> 1 + max (go left) (go right)
  in
  go t.root

let leaf_count t =
  let rec go = function Leaf _ -> 1 | Split { left; right; _ } -> go left + go right in
  go t.root

let accumulate_importance t acc =
  if Array.length acc < t.n_features then
    invalid_arg "Tree.accumulate_importance: accumulator too short";
  let rec go = function
    | Leaf _ -> ()
    | Split { feature; gain; left; right; _ } ->
      acc.(feature) <- acc.(feature) +. gain;
      go left;
      go right
  in
  go t.root
