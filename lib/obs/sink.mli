(** Pluggable event sinks.

    A sink consumes the {!Event.t} stream a {!Recorder} produces.  Three
    are provided: a bounded in-memory ring (tests, live dashboards), a
    JSONL writer (offline analysis of long unattended runs), and a tee.
    Recorders with no sinks still aggregate {!Metrics} — event fan-out is
    strictly opt-in. *)

type t

val make : ?flush:(unit -> unit) -> emit:(Event.t -> unit) -> unit -> t
(** A custom sink.  [flush] defaults to a no-op. *)

val emit : t -> Event.t -> unit
val flush : t -> unit

val null : t
(** Swallows everything. *)

val tee : t list -> t
(** Forwards each event to every sink, in order. *)

val schema_version : int
(** Version of the JSONL trace format; bumped on incompatible change. *)

val schema_header : kind:string -> string
(** The self-describing first line every JSONL artifact starts with,
    e.g. [{"wayfinder_schema":1,"kind":"trace"}] (no trailing newline).
    Readers reject unknown versions with a typed error instead of a parse
    crash. *)

val jsonl : ?flush:(unit -> unit) -> (string -> unit) -> t
(** [jsonl write] renders each event as one JSON line (newline included)
    and passes it to [write] — wrap an [out_channel], a [Buffer], or a
    socket.  The {!schema_header} line is written immediately at sink
    creation.  [flush] (default no-op) is invoked by {!val-flush}: pass the
    callback owner's flush so buffered lines reach stable storage — a sink
    whose owner buffers but never flushes loses the tail on crash. *)

val jsonl_channel : out_channel -> t
(** JSONL straight to a channel; [flush] flushes the channel.  Writes the
    {!schema_header} line at creation. *)

(** Bounded in-memory ring buffer.  When full, the oldest events are
    dropped (and counted) — a test or a live status page wants the recent
    tail, not an unbounded log. *)
module Memory : sig
  type store

  val create : ?capacity:int -> unit -> store
  (** Default capacity 4096 events. *)

  val sink : store -> t
  val events : store -> Event.t list
  (** Oldest retained first. *)

  val length : store -> int
  val dropped : store -> int
  (** Events evicted by the capacity bound. *)

  val clear : store -> unit
end
