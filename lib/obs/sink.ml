type t = { emit : Event.t -> unit; flush : unit -> unit }

let make ?(flush = fun () -> ()) ~emit () = { emit; flush }

let emit t e = t.emit e
let flush t = t.flush ()

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let tee sinks =
  { emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks) }

(* Every JSONL artifact the platform writes opens with a self-describing
   schema line, so readers can reject files from a different era with a
   typed error instead of a parse crash further down. *)
let schema_version = 1

let schema_header ~kind =
  Printf.sprintf "{\"wayfinder_schema\":%d,\"kind\":%s}" schema_version
    (Attr.json_of_value (Attr.String kind))

let jsonl ?(flush = fun () -> ()) write =
  write (schema_header ~kind:"trace" ^ "\n");
  { emit = (fun e -> write (Event.to_json e ^ "\n")); flush }

let jsonl_channel oc =
  output_string oc (schema_header ~kind:"trace" ^ "\n");
  { emit = (fun e -> output_string oc (Event.to_json e ^ "\n"));
    flush = (fun () -> Stdlib.flush oc) }

module Memory = struct
  type store = {
    capacity : int;
    ring : Event.t option array;
    mutable next : int;  (* total events ever stored *)
    mutable n_dropped : int;
  }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Sink.Memory.create: capacity must be positive";
    { capacity; ring = Array.make capacity None; next = 0; n_dropped = 0 }

  let sink store =
    { emit =
        (fun e ->
          if store.next >= store.capacity then store.n_dropped <- store.n_dropped + 1;
          store.ring.(store.next mod store.capacity) <- Some e;
          store.next <- store.next + 1);
      flush = (fun () -> ()) }

  let length store = min store.next store.capacity

  let events store =
    let n = length store in
    let first = store.next - n in
    List.init n (fun i ->
        match store.ring.((first + i) mod store.capacity) with
        | Some e -> e
        | None -> assert false)

  let dropped store = store.n_dropped

  let clear store =
    Array.fill store.ring 0 store.capacity None;
    store.next <- 0;
    store.n_dropped <- 0
end
