(** Trace events.

    Everything a {!Recorder} observes flows to its sinks as one of three
    event kinds, each stamped with both clocks the platform runs on: the
    monotonic wall clock (real seconds spent deciding, fitting models,
    writing files) and the {!Wayfinder_simos.Vclock} virtual clock (the
    simulated build/boot/run durations the budget experiments charge). *)

type stamp = { wall_s : float; virtual_s : float }
(** A point in time on both clocks.  [wall_s] is seconds on the recorder's
    monotonic source (not an epoch); [virtual_s] is the virtual clock. *)

type t =
  | Span of {
      name : string;
      attrs : Attr.t;
      began : stamp;  (** When the span opened. *)
      wall_duration_s : float;
      virtual_duration_s : float;
    }  (** A completed span: a named phase with measured durations. *)
  | Count of { name : string; delta : float; at : stamp }
      (** A counter increment. *)
  | Sample of { name : string; value : float; at : stamp }
      (** One histogram observation. *)
  | Alert of { rule : string; message : string; at : stamp }
      (** An alert rule firing (see [Wayfinder_monitor.Rules]): [rule] is
          the rule's name, [message] the human-readable condition. *)

val name : t -> string
(** The event's name; for [Alert] this is the rule name. *)

val to_json : t -> string
(** One-line JSON rendering (no trailing newline) — the JSONL sink writes
    exactly this per event.  Example:
    [{"type":"span","name":"driver.build","wall_s":0.0021,"virtual_s":112.5,
      "began_wall_s":0.93,"began_virtual_s":4031.2,"attrs":{"built":true}}] *)
