(** Human-readable metrics rendering.

    Turns a {!Metrics.snapshot} into the plain-text footer the CLI and the
    bench figures print: counters first, then one line per histogram with
    count, total, mean and approximate tail quantiles. *)

val si : float -> string
(** Compact duration rendering, microseconds to hours: ["850us"],
    ["12.5ms"], ["42.00s"], ["1.5m"] (everything from 60 s up renders in
    minutes), ["2.3h"].  The sign of a negative duration sits outside the
    unit conversion (["-1.5m"]); non-finite values render as ["nan"] /
    ["inf"] / ["-inf"], never as a formatted garbage number. *)

val to_text : ?title:string -> Metrics.snapshot -> string
(** Deterministic: counters and histograms render sorted by name even if
    the snapshot was assembled unsorted. *)

val phase_line :
  Metrics.snapshot -> phases:(string * string) list -> suffix:string -> string
(** One-line breakdown, e.g.
    [phase_line s ~phases:["build", "driver.build"; ...] ~suffix:".virtual_s"]
    renders ["build 812.0s (54%) | boot 96.1s (6%) | ..."] from the
    histogram sums.  Phases with no samples render as 0. *)
