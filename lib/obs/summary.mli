(** Human-readable metrics rendering.

    Turns a {!Metrics.snapshot} into the plain-text footer the CLI and the
    bench figures print: counters first, then one line per histogram with
    count, total, mean and approximate tail quantiles. *)

val to_text : ?title:string -> Metrics.snapshot -> string

val phase_line :
  Metrics.snapshot -> phases:(string * string) list -> suffix:string -> string
(** One-line breakdown, e.g.
    [phase_line s ~phases:["build", "driver.build"; ...] ~suffix:".virtual_s"]
    renders ["build 812.0s (54%) | boot 96.1s (6%) | ..."] from the
    histogram sums.  Phases with no samples render as 0. *)
