(** Span and event attributes.

    A small typed key/value vocabulary shared by every trace event: rich
    enough for the platform's needs (names, flags, sizes, durations),
    flat enough to serialise to a single JSON line. *)

type value = String of string | Float of float | Int of int | Bool of bool

type t = (string * value) list
(** Ordered; duplicate keys keep the first binding. *)

val empty : t

(** Binding constructors, e.g. [[Attr.string "phase" "build"; Attr.int "pool" 96]]. *)

val string : string -> string -> string * value
val float : string -> float -> string * value
val int : string -> int -> string * value
val bool : string -> bool -> string * value

val find : t -> string -> value option

val json_of_value : value -> string
(** JSON fragment for a value: strings are escaped and quoted; non-finite
    floats become [null] (JSON has no NaN/infinity). *)

val to_json : t -> string
(** The whole list as a JSON object, e.g. [{"phase":"build","pool":96}]. *)
