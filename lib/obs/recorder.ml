type t = {
  now : unit -> float;
  mutable virtual_now : unit -> float;
  mutable sinks : Sink.t list;
  metrics : Metrics.t;
}

let create ?(now = Unix.gettimeofday) ?(virtual_now = fun () -> 0.) ?(sinks = []) () =
  (* Wall stamps are offsets from recorder creation, not epoch times:
     durations are unaffected and trace files stay readable. *)
  let epoch = now () in
  { now = (fun () -> now () -. epoch); virtual_now; sinks; metrics = Metrics.create () }

let null () = create ~now:(fun () -> 0.) ()

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

let set_virtual_now t f = t.virtual_now <- f

let metrics t = t.metrics
let snapshot t = Metrics.snapshot t.metrics

let stamp t = { Event.wall_s = t.now (); virtual_s = t.virtual_now () }

let emit t e = List.iter (fun s -> Sink.emit s e) t.sinks

let incr t ?(by = 1.) ?(quiet = false) name =
  Metrics.incr t.metrics ~by name;
  if (not quiet) && t.sinks <> [] then
    emit t (Event.Count { name; delta = by; at = stamp t })

let observe t ?(quiet = false) name value =
  Metrics.observe t.metrics name value;
  if (not quiet) && t.sinks <> [] then emit t (Event.Sample { name; value; at = stamp t })

let alert t ~rule message =
  Metrics.incr t.metrics ("alerts." ^ rule);
  if t.sinks <> [] then emit t (Event.Alert { rule; message; at = stamp t })

type span = { span_name : string; span_attrs : Attr.t; span_began : Event.stamp }

let span_begin t ?(attrs = Attr.empty) name =
  { span_name = name; span_attrs = attrs; span_began = stamp t }

let record_span t ~name ~attrs ~began ~wall ~vrt =
  (match wall with
  | Some w -> Metrics.observe t.metrics (name ^ ".wall_s") w
  | None -> ());
  (match vrt with
  | Some v -> Metrics.observe t.metrics (name ^ ".virtual_s") v
  | None -> ());
  if t.sinks <> [] then
    emit t
      (Event.Span
         { name;
           attrs;
           began;
           wall_duration_s = Option.value ~default:0. wall;
           virtual_duration_s = Option.value ~default:0. vrt })

let span_end t ?(attrs = Attr.empty) span =
  let ended = stamp t in
  let wall = ended.Event.wall_s -. span.span_began.Event.wall_s in
  let vrt = ended.Event.virtual_s -. span.span_began.Event.virtual_s in
  record_span t ~name:span.span_name ~attrs:(span.span_attrs @ attrs)
    ~began:span.span_began ~wall:(Some wall)
    ~vrt:(if vrt <> 0. then Some vrt else None)

let with_span t ?attrs name f =
  let span = span_begin t ?attrs name in
  match f () with
  | result ->
    span_end t span;
    result
  | exception exn ->
    span_end t ~attrs:[ Attr.bool "error" true ] span;
    raise exn

let timed t ?attrs name f =
  let span = span_begin t ?attrs name in
  match f () with
  | result ->
    let wall = t.now () -. span.span_began.Event.wall_s in
    span_end t span;
    (result, wall)
  | exception exn ->
    span_end t ~attrs:[ Attr.bool "error" true ] span;
    raise exn

let emit_span t ?(attrs = Attr.empty) ?wall_s ?virtual_s name =
  record_span t ~name ~attrs ~began:(stamp t) ~wall:wall_s ~vrt:virtual_s

let flush t = List.iter Sink.flush t.sinks
