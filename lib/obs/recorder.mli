(** The tracing and metrics front-end.

    A recorder stamps every operation with both clocks (monotonic wall
    time and the platform's virtual clock), aggregates {!Metrics}
    in-process, and fans events out to any attached {!Sink}s.  With no
    sinks attached the per-operation cost is a hashtable update — the
    driver can record unconditionally.

    Spans name the phases of work.  Wall-clock phases (propose, validate,
    model updates) are measured with {!with_span}/{!timed}; phases whose
    duration is *virtual* (simulated build/boot/run seconds) are reported
    after the fact with {!emit_span}.  Every span feeds two histograms,
    [<name>.wall_s] and [<name>.virtual_s] (each only when that duration
    was actually measured), so phase totals fall out of
    {!Metrics.sum}. *)

type t

val create :
  ?now:(unit -> float) ->
  ?virtual_now:(unit -> float) ->
  ?sinks:Sink.t list ->
  unit ->
  t
(** [now] defaults to [Unix.gettimeofday]; [virtual_now] defaults to a
    constant 0 until {!set_virtual_now} wires in a real clock.  Event
    wall-clock stamps are offsets from recorder creation (durations are
    differences, so the origin never matters). *)

val null : unit -> t
(** A fresh sink-less recorder (still aggregates metrics). *)

val add_sink : t -> Sink.t -> unit

val set_virtual_now : t -> (unit -> float) -> unit
(** The driver calls this with [fun () -> Vclock.now clock] so events are
    stamped with virtual time. *)

val metrics : t -> Metrics.t
val snapshot : t -> Metrics.snapshot

val incr : t -> ?by:float -> ?quiet:bool -> string -> unit
(** Bump a counter; emits a [Count] event unless [quiet] (default false). *)

val observe : t -> ?quiet:bool -> string -> float -> unit
(** Record a histogram sample; emits a [Sample] event unless [quiet]. *)

val alert : t -> rule:string -> string -> unit
(** Record an alert-rule firing: bumps the [alerts.<rule>] counter and, if
    sinks are attached, emits a typed [Alert] event into the trace. *)

type span

val span_begin : t -> ?attrs:Attr.t -> string -> span
val span_end : t -> ?attrs:Attr.t -> span -> unit
(** Close the span: durations are measured on both clocks, the [Span]
    event carries the begin-time [attrs] followed by the end-time ones,
    and the [<name>.wall_s] (always) and [<name>.virtual_s] (only if
    virtual time advanced) histograms are fed. *)

val with_span : t -> ?attrs:Attr.t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] wraps [f] in a span; if [f] raises, the span is
    closed with an [error=true] attribute and the exception re-raised. *)

val timed : t -> ?attrs:Attr.t -> string -> (unit -> 'a) -> 'a * float
(** Like {!with_span} but also returns the wall-clock seconds [f] took —
    for callers that fold the measurement into their own accounting. *)

val emit_span :
  t -> ?attrs:Attr.t -> ?wall_s:float -> ?virtual_s:float -> string -> unit
(** Report an already-measured span (e.g. the simulator's virtual build
    duration).  Only the durations passed are recorded into the
    corresponding histograms. *)

val flush : t -> unit
