type value = String of string | Float of float | Int of int | Bool of bool

type t = (string * value) list

let empty = []

let string k v = (k, String v)
let float k v = (k, Float v)
let int k v = (k, Int v)
let bool k v = (k, Bool v)

let find t k = Option.map snd (List.find_opt (fun (k', _) -> k' = k) t)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Exact round-trip: a reader that sums trace durations must recover the
   bit-identical floats the recorder fed its histograms (the span
   profiler reconciles the two), so shortest-exact beats fixed width. *)
let json_of_float v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let json_of_value = function
  | String s -> Printf.sprintf "\"%s\"" (escape_string s)
  | Float v -> json_of_float v
  | Int i -> string_of_int i
  | Bool b -> if b then "true" else "false"

let to_json t =
  let fields =
    List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape_string k) (json_of_value v)) t
  in
  "{" ^ String.concat "," fields ^ "}"
