let si v =
  (* Compact seconds rendering: microseconds to hours.  The sign is
     applied outside the unit conversion so negative durations render as
     e.g. "-1.5m", never as a sign buried inside a scaled mantissa; the
     minute boundary is exactly 60 s (90 s is "1.5m", not "90.00s"). *)
  if v = 0. then "0"
  else if Float.is_nan v then "nan"
  else if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else begin
    let sign = if v < 0. then "-" else "" in
    let v = Float.abs v in
    let body =
      if v < 1e-3 then Printf.sprintf "%.0fus" (v *. 1e6)
      else if v < 1. then Printf.sprintf "%.1fms" (v *. 1e3)
      else if v < 60. then Printf.sprintf "%.2fs" v
      else if v < 7200. then Printf.sprintf "%.1fm" (v /. 60.)
      else Printf.sprintf "%.1fh" (v /. 3600.)
    in
    sign ^ body
  end

(* Defensive: {!Metrics.snapshot} already sorts, but a hand-built snapshot
   (tests, external producers) must render deterministically too. *)
let by_name (a, _) (b, _) = compare (a : string) b

let to_text ?title snapshot =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match title with Some t -> line "%s" t | None -> ());
  if snapshot.Metrics.counters <> [] then begin
    line "counters:";
    List.iter
      (fun (name, v) ->
        if Float.is_integer v then line "  %-36s %12.0f" name v
        else line "  %-36s %12.3f" name v)
      (List.sort by_name snapshot.Metrics.counters)
  end;
  if snapshot.Metrics.histograms <> [] then begin
    line "distributions:";
    line "  %-36s %8s %10s %10s %10s %10s" "name" "count" "total" "mean" "p50" "p95";
    List.iter
      (fun (name, h) ->
        (* Histograms named [..._s] hold seconds and get the compact
           duration rendering; anything else (losses, pool sizes) is a
           plain number. *)
        let fmt =
          let n = String.length name in
          if n >= 2 && String.sub name (n - 2) 2 = "_s" then si
          else fun v -> Printf.sprintf "%.4g" v
        in
        line "  %-36s %8d %10s %10s %10s %10s" name h.Metrics.count (fmt h.Metrics.sum)
          (fmt (Metrics.mean h))
          (fmt (Metrics.quantile h 0.5))
          (fmt (Metrics.quantile h 0.95)))
      (List.sort by_name snapshot.Metrics.histograms)
  end;
  Buffer.contents buf

let phase_line snapshot ~phases ~suffix =
  let totals =
    List.map (fun (label, name) -> (label, Metrics.sum snapshot (name ^ suffix))) phases
  in
  let grand = List.fold_left (fun acc (_, v) -> acc +. v) 0. totals in
  String.concat " | "
    (List.map
       (fun (label, v) ->
         let pct = if grand > 0. then 100. *. v /. grand else 0. in
         Printf.sprintf "%s %s (%.0f%%)" label (si v) pct)
       totals)
