(* Bucket layout: index 0 catches samples <= 2^min_exp (including zero and
   negatives); indices 1..n-2 are (2^(e-1), 2^e]; the last index catches
   everything above 2^max_exp.  The range 2^-20 (~1 µs) to 2^20 (~12 virtual
   days) covers both wall-clock decision times and virtual build/run
   durations. *)
let min_exp = -20
let max_exp = 20
let n_buckets = max_exp - min_exp + 2

let bucket_index v =
  if not (v > 0.) then 0
  else begin
    let e = int_of_float (Float.ceil (Float.log2 v)) in
    if e <= min_exp then 0
    else if e > max_exp then n_buckets - 1
    else e - min_exp
  end

let bucket_bound i =
  if i >= n_buckets - 1 then infinity else Float.pow 2. (float_of_int (min_exp + i))

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  counts : int array;
}

type t = {
  counters_tbl : (string, float ref) Hashtbl.t;
  hists_tbl : (string, hist) Hashtbl.t;
}

let create () = { counters_tbl = Hashtbl.create 16; hists_tbl = Hashtbl.create 16 }

let incr t ?(by = 1.) name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some r -> r := !r +. by
  | None -> Hashtbl.add t.counters_tbl name (ref by)

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists_tbl name with
    | Some h -> h
    | None ->
      let h =
        { h_count = 0; h_sum = 0.; h_min = infinity; h_max = neg_infinity;
          counts = Array.make n_buckets 0 }
      in
      Hashtbl.add t.hists_tbl name h;
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.counts.(i) <- h.counts.(i) + 1

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) array;
}

let mean h = if h.count = 0 then 0. else h.sum /. float_of_int h.count

let quantile h q =
  if h.count = 0 then 0.
  else begin
    let target = Float.max 1. (Float.ceil (q *. float_of_int h.count)) in
    let acc = ref 0 and result = ref h.max in
    (try
       Array.iter
         (fun (bound, c) ->
           let before = !acc in
           acc := !acc + c;
           if float_of_int !acc >= target then begin
             (* Linear interpolation inside the power-of-two bucket: assume
                the c samples are spread evenly over (lo, bound].  Returning
                [bound] outright — the old behaviour — overestimates by up
                to 2x for samples near the bucket's lower edge. *)
             let lo =
               if bound = infinity then Float.pow 2. (float_of_int max_exp)
               else if bound <= Float.pow 2. (float_of_int min_exp) then 0.
               else bound /. 2.
             in
             let frac = (target -. float_of_int before) /. float_of_int c in
             result :=
               (if Float.is_finite bound then lo +. (frac *. (bound -. lo))
                else lo);
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    Float.max h.min (Float.min h.max !result)
  end

type snapshot = {
  counters : (string * float) list;
  histograms : (string * histogram) list;
}

let snapshot t =
  let by_name (a, _) (b, _) = compare (a : string) b in
  let counters =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters_tbl []
    |> List.sort by_name
  in
  let histograms =
    Hashtbl.fold
      (fun name h acc ->
        let buckets = ref [] in
        for i = n_buckets - 1 downto 0 do
          if h.counts.(i) > 0 then buckets := (bucket_bound i, h.counts.(i)) :: !buckets
        done;
        ( name,
          { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max;
            buckets = Array.of_list !buckets } )
        :: acc)
      t.hists_tbl []
    |> List.sort by_name
  in
  { counters; histograms }

let counter s name =
  match List.assoc_opt name s.counters with Some v -> v | None -> 0.

let histogram s name = List.assoc_opt name s.histograms

let sum s name = match histogram s name with Some h -> h.sum | None -> 0.
