type stamp = { wall_s : float; virtual_s : float }

type t =
  | Span of {
      name : string;
      attrs : Attr.t;
      began : stamp;
      wall_duration_s : float;
      virtual_duration_s : float;
    }
  | Count of { name : string; delta : float; at : stamp }
  | Sample of { name : string; value : float; at : stamp }
  | Alert of { rule : string; message : string; at : stamp }

let name = function
  | Span { name; _ } | Count { name; _ } | Sample { name; _ } -> name
  | Alert { rule; _ } -> rule

let fl = Attr.json_of_value

let to_json = function
  | Span { name; attrs; began; wall_duration_s; virtual_duration_s } ->
    Printf.sprintf
      "{\"type\":\"span\",\"name\":%s,\"wall_s\":%s,\"virtual_s\":%s,\"began_wall_s\":%s,\"began_virtual_s\":%s%s}"
      (fl (Attr.String name))
      (fl (Attr.Float wall_duration_s))
      (fl (Attr.Float virtual_duration_s))
      (fl (Attr.Float began.wall_s))
      (fl (Attr.Float began.virtual_s))
      (if attrs = [] then "" else ",\"attrs\":" ^ Attr.to_json attrs)
  | Count { name; delta; at } ->
    Printf.sprintf
      "{\"type\":\"count\",\"name\":%s,\"delta\":%s,\"wall_s\":%s,\"virtual_s\":%s}"
      (fl (Attr.String name)) (fl (Attr.Float delta))
      (fl (Attr.Float at.wall_s)) (fl (Attr.Float at.virtual_s))
  | Sample { name; value; at } ->
    Printf.sprintf
      "{\"type\":\"sample\",\"name\":%s,\"value\":%s,\"wall_s\":%s,\"virtual_s\":%s}"
      (fl (Attr.String name)) (fl (Attr.Float value))
      (fl (Attr.Float at.wall_s)) (fl (Attr.Float at.virtual_s))
  | Alert { rule; message; at } ->
    Printf.sprintf
      "{\"type\":\"alert\",\"rule\":%s,\"message\":%s,\"wall_s\":%s,\"virtual_s\":%s}"
      (fl (Attr.String rule)) (fl (Attr.String message))
      (fl (Attr.Float at.wall_s)) (fl (Attr.Float at.virtual_s))
