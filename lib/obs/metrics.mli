(** Aggregated metrics: named counters and histograms.

    The in-process side of the observability layer: cheap to update on
    every driver iteration, summarised once at the end of a run.
    Histograms keep exact count/sum/min/max plus power-of-two buckets, so
    quantiles are approximate (within a factor of 2) but memory per
    histogram is constant — thousands of VM boots cost nothing. *)

type t
(** Mutable registry. *)

val min_exp : int
(** Smallest bucket exponent: bucket 0 catches samples [<= 2^min_exp]
    (including zero, negatives, and NaN). *)

val max_exp : int
(** Largest finite bucket exponent; the last bucket catches everything
    above [2^max_exp]. *)

val n_buckets : int
(** Total bucket count, [max_exp - min_exp + 2]. *)

val bucket_index : float -> int
(** The bucket a sample lands in.  Non-positive values and NaN land in
    bucket 0. *)

val bucket_bound : int -> float
(** Inclusive upper bound of a bucket; [infinity] for the last. *)

val create : unit -> t

val incr : t -> ?by:float -> string -> unit
(** Add [by] (default 1.0) to a counter, creating it at 0. *)

val observe : t -> string -> float -> unit
(** Record one histogram sample. *)

type histogram = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when [count = 0]. *)
  max : float;  (** [neg_infinity] when [count = 0]. *)
  buckets : (float * int) array;
      (** Non-empty buckets as (inclusive upper bound, samples) pairs,
          ascending.  Bounds are powers of two; samples [<= 0] land in the
          first bucket. *)
}

val mean : histogram -> float
(** [sum / count]; 0 when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1]: linearly interpolated within the
    power-of-two bucket containing the [q]-th sample (assuming samples
    spread evenly across the bucket), clamped to [[h.min, h.max]].  The
    estimate and the exact quantile always share a bucket, so the error is
    bounded by one bucket width (a factor of 2 for positive in-range
    samples).  0 when empty. *)

type snapshot = {
  counters : (string * float) list;  (** Sorted by name. *)
  histograms : (string * histogram) list;  (** Sorted by name. *)
}

val snapshot : t -> snapshot
(** An immutable copy of the current state; the registry keeps counting. *)

val counter : snapshot -> string -> float
(** Counter value, 0 if absent. *)

val histogram : snapshot -> string -> histogram option

val sum : snapshot -> string -> float
(** Histogram sum, 0 if absent — the total virtual/wall seconds of a
    span-backed histogram. *)
