(** Descriptive statistics and normalization helpers.

    Used throughout Wayfinder: z-score normalization of DTM inputs (§3.2 of
    the paper prescribes z-scored features with RBF smoothing γ = 0.1),
    min-max normalization for the throughput/memory score of §4.4
    (eq. 4), and the smoothing applied to the published curves. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divides by [n]). *)

val std : float array -> float
val min : float array -> float
val max : float array -> float
val median : float array -> float
val mad : float array -> float
(** Median absolute deviation from the median — the robust spread estimate
    the platform's repeated-measurement outlier rejection uses.
    @raise Invalid_argument on empty input. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0, 1\]], linear interpolation.  Sorts
    with [Float.compare] (total with NaN); NaN propagates — if any sample
    is NaN the result is NaN, never a silently corrupted order statistic
    (and the same holds for {!median} and {!mad}, which derive from it).
    @raise Invalid_argument on empty input or [q] outside [\[0, 1\]]. *)

val zscore_params : float array -> float * float
(** [(mean, std)] with [std] floored at a small epsilon so that dividing is
    always safe. *)

val zscore : mean:float -> std:float -> float -> float

val min_max_norm : lo:float -> hi:float -> float -> float
(** The paper's [mXNorm]: maps [lo] to 0 and [hi] to 1; constant ranges map
    to 0.5. *)

val moving_average : int -> float array -> float array
(** [moving_average w xs] smooths with a centred window of half-width [w]
    (the "smoothed for readability" treatment of the paper's figures).
    Returns an array of the same length. *)

val exp_smooth : float -> float array -> float array
(** Exponential smoothing with factor [alpha] in (0, 1]. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either input is constant. *)

val ranks : float array -> float array
(** 1-based fractional ranks; ties receive the average (mid-) rank of the
    positions they occupy. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation: Pearson over {!ranks}.  0 when either input
    is constant (or empty); NaN if any sample is NaN (the NaN policy —
    propagate, never silently rank).
    @raise Invalid_argument on length mismatch. *)

val argmax : float array -> int
val argmin : float array -> int

val mae : float array -> float array -> float
(** Mean absolute error between predictions and targets. *)

val normalized_mae : float array -> float array -> float
(** MAE divided by the target range ([max - min]); the paper's Table 3
    metric. *)
