(** Deterministic pseudo-random number generation.

    Every stochastic component of Wayfinder draws from this module so that
    experiments are reproducible given a seed.  The generator is SplitMix64
    (Steele, Lea & Flood 2014): a tiny, fast, well-distributed 64-bit
    generator whose state is a single integer, which makes independent
    streams ({!split}) trivial to derive. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield identical
    streams.  The seed is pre-mixed through one SplitMix64 finalizer step,
    so nearby seeds (0, 1, 2, …) still start from well-separated states —
    seed 0 in particular does not start the underlying Weyl sequence at
    state 0. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state : t -> int64
(** The raw 64-bit state, for checkpointing.  Restoring it with
    {!set_state} resumes the stream exactly where it left off. *)

val set_state : t -> int64 -> unit

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val normal : t -> ?mu:float -> ?sigma:float -> unit -> float
(** Gaussian sample via the Box–Muller transform.  Defaults: [mu = 0.],
    [sigma = 1.]. *)

val log_normal : t -> mu:float -> sigma:float -> float
(** Sample of [exp X] with [X ~ N(mu, sigma)]. *)

val exponential : t -> rate:float -> float
(** Exponential sample with the given [rate]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val choice_weighted : t -> ('a * float) array -> 'a
(** Element sampled proportionally to its non-negative weight.
    @raise Invalid_argument if the array is empty or total weight is 0. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is [k] distinct indices drawn
    uniformly from [\[0, n)].  @raise Invalid_argument if [k > n]. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [\[0, n)]. *)
