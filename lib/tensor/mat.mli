(** Dense row-major float matrices on Bigarray storage.

    Provides the matrix algebra needed by the neural network ({!Nn}), the
    Gaussian process ({!Gp}: Cholesky factorization and triangular solves),
    and the causal-inference baseline (correlation matrices).  Storage is
    an unboxed, GC-opaque [float64] {!Bigarray.Array1}, so large buffers
    impose no marking work and can be shared read-only across domains.
    {!matmul} runs row-parallel on the ambient {!Domain_pool} when one is
    installed, with results bitwise identical to the sequential kernel. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : buffer }
(** Row-major storage: element [(i, j)] lives at [data.{i * cols + j}]. *)

val create : int -> int -> float -> t
val zeros : int -> int -> t
val eye : int -> t
val init : int -> int -> (int -> int -> float) -> t
val copy : t -> t

val numel : t -> int
(** [rows * cols]. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val get_flat : t -> int -> float
(** Flat row-major access: [get_flat m i = m.data.{i}]. *)

val set_flat : t -> int -> float -> unit

val fill : t -> float -> unit
(** Set every element. *)

val to_array : t -> float array
(** Fresh flat row-major copy of the contents. *)

val of_array : int -> int -> float array -> t
(** [of_array rows cols a] copies the flat row-major [a].
    @raise Invalid_argument if [Array.length a <> rows * cols]. *)

val blit_from_array : ?src_pos:int -> float array -> t -> unit
(** Overwrite the matrix from a flat row-major array slice. *)

val row : t -> int -> Vec.t
(** Fresh copy of row [i]. *)

val col : t -> int -> Vec.t
val set_row : t -> int -> Vec.t -> unit

val of_rows : Vec.t array -> t
(** @raise Invalid_argument if rows have differing lengths or there are none. *)

val to_rows : t -> Vec.t array
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val hadamard : t -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Elementwise combination of two same-shape matrices. *)

val add_into : dst:t -> t -> unit
(** [add_into ~dst src] accumulates [src] into [dst] elementwise. *)

val matmul : t -> t -> t
(** [matmul a b] with [a : m×k] and [b : k×n] is [m×n].  Uses a
    transposed, row-blocked kernel; when an ambient {!Domain_pool} is
    installed and the product is large enough, rows are computed in
    parallel with bitwise-identical results.
    @raise Invalid_argument on inner-dimension mismatch. *)

val mat_vec : t -> Vec.t -> Vec.t
(** [mat_vec a x = a · x]. *)

val vec_mat : Vec.t -> t -> Vec.t
(** [vec_mat x a = xᵀ · a]. *)

val map : (float -> float) -> t -> t
val trace : t -> float
val frobenius : t -> float

val add_jitter : t -> float -> t
(** [add_jitter a eps] adds [eps] to the diagonal (numerical stabilisation
    before a Cholesky factorization). *)

val cholesky : t -> t
(** Lower-triangular Cholesky factor [L] with [L·Lᵀ = A].
    @raise Failure if the matrix is not (numerically) positive definite. *)

val solve_lower : t -> Vec.t -> Vec.t
(** [solve_lower l b] solves [L·x = b] by forward substitution. *)

val solve_upper : t -> Vec.t -> Vec.t
(** [solve_upper u b] solves [U·x = b] by back substitution, where [u] is
    interpreted as the transpose of a lower-triangular factor. *)

val cholesky_solve : t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [A·x = b] given the Cholesky factor [l]. *)

val log_det_from_cholesky : t -> float
(** [log det A] computed from its Cholesky factor. *)

val inverse_spd : t -> t
(** Inverse of a symmetric positive-definite matrix via Cholesky. *)

val pp : Format.formatter -> t -> unit
