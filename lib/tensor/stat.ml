let mean xs =
  if Array.length xs = 0 then 0.
  else Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  if Array.length xs = 0 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (Array.length xs)
  end

let std xs = sqrt (variance xs)

let fold_nonempty name f xs =
  if Array.length xs = 0 then invalid_arg ("Stat." ^ name ^ ": empty input")
  else Array.fold_left f xs.(0) (Array.sub xs 1 (Array.length xs - 1))

let min xs = fold_nonempty "min" Stdlib.min xs
let max xs = fold_nonempty "max" Stdlib.max xs

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stat.quantile: empty input";
  if q < 0. || q > 1. then invalid_arg "Stat.quantile: q outside [0, 1]";
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: the latter is not a total
     order in the presence of NaN, so a single NaN sample silently
     corrupts the sort.  Float.compare sorts NaN first; the NaN policy is
     to propagate — any NaN sample makes the quantile NaN. *)
  Array.sort Float.compare sorted;
  if Float.is_nan sorted.(0) then Float.nan
  else
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let mad xs =
  let m = median xs in
  median (Array.map (fun x -> Float.abs (x -. m)) xs)

let epsilon_std = 1e-9

let zscore_params xs =
  let s = std xs in
  (mean xs, if s < epsilon_std then epsilon_std else s)

let zscore ~mean ~std x = (x -. mean) /. std

let min_max_norm ~lo ~hi x =
  if hi -. lo < epsilon_std then 0.5 else (x -. lo) /. (hi -. lo)

let moving_average w xs =
  let n = Array.length xs in
  Array.init n (fun i ->
      let lo = Stdlib.max 0 (i - w) in
      let hi = Stdlib.min (n - 1) (i + w) in
      let acc = ref 0. in
      for j = lo to hi do
        acc := !acc +. xs.(j)
      done;
      !acc /. float_of_int (hi - lo + 1))

let exp_smooth alpha xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n xs.(0) in
    for i = 1 to n - 1 do
      out.(i) <- (alpha *. xs.(i)) +. ((1. -. alpha) *. out.(i - 1))
    done;
    out
  end

let pearson xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Stat.pearson: length mismatch";
  let sx = std xs and sy = std ys in
  if sx < epsilon_std || sy < epsilon_std then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0. in
    Array.iteri (fun i x -> acc := !acc +. ((x -. mx) *. (ys.(i) -. my))) xs;
    !acc /. (float_of_int (Array.length xs) *. sx *. sy)
  end

(* Fractional (mid-) ranks: ties share the average of the positions they
   occupy, the standard treatment that keeps Spearman's rho in [-1, 1]
   under ties. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) order;
  let out = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do incr j done;
    (* Positions !i..!j (0-based) hold equal values: mid-rank, 1-based. *)
    let r = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      out.(order.(k)) <- r
    done;
    i := !j + 1
  done;
  out

let spearman xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Stat.spearman: length mismatch";
  if Array.length xs = 0 then 0.
  else if Array.exists Float.is_nan xs || Array.exists Float.is_nan ys then Float.nan
  else pearson (ranks xs) (ranks ys)

let argmax xs = Vec.max_index xs
let argmin xs = Vec.min_index xs

let mae preds targets =
  if Array.length preds <> Array.length targets then invalid_arg "Stat.mae: length mismatch";
  if Array.length preds = 0 then 0.
  else begin
    let acc = ref 0. in
    Array.iteri (fun i p -> acc := !acc +. abs_float (p -. targets.(i))) preds;
    !acc /. float_of_int (Array.length preds)
  end

let normalized_mae preds targets =
  (* [mae] is empty-safe (returns 0.) but [max]/[min] are not: guard the
     empty case before touching the range so the empty-input convention
     matches [mean]/[mae]. *)
  if Array.length targets = 0 then mae preds targets
  else
    let range = max targets -. min targets in
    if range < epsilon_std then mae preds targets
    else mae preds targets /. range
