type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output function (forward declaration used by [create]): the
   mixing lives in [bits64] below. *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  (* Pre-mix the seed through one SplitMix64 step.  Raw small seeds make
     poor initial states: seed 0 starts the Weyl sequence at 0, and
     consecutive seeds differ by a single low bit, so their streams start
     from strongly correlated states.  One mix step diffuses every seed
     bit across the whole state. *)
  { state = mix64 (Int64.add (Int64.of_int seed) golden_gamma) }

let copy t = { state = t.state }

let state t = t.state
let set_state t s = t.state <- s

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take 62 high bits (so the value fits OCaml's native int range), modulo
     the bound.  The modulo bias is negligible for the bounds used here. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1), then scaled. *)
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  raw /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let normal t ?(mu = 0.) ?(sigma = 1.) () =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 0. then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
  in
  mu +. (sigma *. draw ())

let log_normal t ~mu ~sigma = exp (normal t ~mu ~sigma ())

let exponential t ~rate =
  let rec positive () =
    let u = float t 1.0 in
    if u <= 0. then positive () else u
  in
  -.log (positive ()) /. rate

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let choice_weighted t a =
  if Array.length a = 0 then invalid_arg "Rng.choice_weighted: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. a in
  if total <= 0. then invalid_arg "Rng.choice_weighted: total weight is 0";
  let target = float t total in
  let rec scan i acc =
    if i = Array.length a - 1 then fst a.(i)
    else
      let acc = acc +. snd a.(i) in
      if target < acc then fst a.(i) else scan (i + 1) acc
  in
  scan 0 0.

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  (* Partial Fisher–Yates: only the first [k] slots need to be settled. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k
