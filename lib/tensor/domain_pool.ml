(* A small fixed-size pool of OCaml 5 domains for data-parallel loops.

   The pool exists to make *pure* computation wall-clock parallel without
   perturbing any observable result: callers hand it an index range whose
   iterations are independent, the pool splits the range into chunks and
   lets every lane (the calling domain plus [size - 1] spawned workers)
   steal chunks off a shared atomic counter.  Because each iteration
   computes exactly what it would have computed sequentially — same code,
   same inputs, same floating-point operation order — results are bitwise
   identical for every pool size, including the degenerate size-1 pool
   that runs inline.  Determinism is therefore a property of the work
   partitioning (by index, not by timing), not of scheduling luck.

   Concurrency-safety notes:
   - [parallel_for] is claimed by at most one coordinator at a time via an
     atomic flag; a second concurrent call (or a nested call from inside a
     worker chunk) simply runs its range inline on the calling domain, so
     re-entrancy can never deadlock the pool.
   - Worker exceptions are captured (first one wins) and re-raised on the
     calling domain after the range completes.
   - Chunk completion is counted with an atomic, which also provides the
     happens-before edge publishing the workers' writes to the caller. *)

type job = {
  n : int;
  chunk : int;
  f : int -> int -> unit;  (* [f lo hi] processes indices [lo, hi). *)
  next : int Atomic.t;     (* next unclaimed index *)
  completed : int Atomic.t;  (* indices fully processed (even on failure) *)
  failed : exn option Atomic.t;
}

type t = {
  size : int;  (* total lanes, including the calling domain *)
  mutable workers : unit Domain.t array;
  mu : Mutex.t;
  cv : Condition.t;
  mutable generation : int;  (* bumped under [mu] whenever a job is published *)
  mutable job : job option;
  mutable stopped : bool;
  coordinating : bool Atomic.t;
}

(* True while the current domain is executing chunks of some job; a nested
   [parallel_for] from such a context runs inline. *)
let busy_key = Domain.DLS.new_key (fun () -> false)

let run_chunks j =
  let was_busy = Domain.DLS.get busy_key in
  Domain.DLS.set busy_key true;
  let rec loop () =
    let lo = Atomic.fetch_and_add j.next j.chunk in
    if lo < j.n then begin
      let hi = min (lo + j.chunk) j.n in
      (if Atomic.get j.failed = None then
         try j.f lo hi
         with e -> ignore (Atomic.compare_and_set j.failed None (Some e)));
      (* Count even failed chunks so the coordinator never hangs. *)
      ignore (Atomic.fetch_and_add j.completed (hi - lo));
      loop ()
    end
  in
  loop ();
  Domain.DLS.set busy_key was_busy

let rec worker_loop t seen_gen =
  Mutex.lock t.mu;
  while (not t.stopped) && t.generation = seen_gen do
    Condition.wait t.cv t.mu
  done;
  let gen = t.generation and job = t.job and stopped = t.stopped in
  Mutex.unlock t.mu;
  if not stopped then begin
    (match job with Some j -> run_chunks j | None -> ());
    worker_loop t gen
  end

let create size =
  let size = max 1 size in
  let t =
    { size;
      workers = [||];
      mu = Mutex.create ();
      cv = Condition.create ();
      generation = 0;
      job = None;
      stopped = false;
      coordinating = Atomic.make false }
  in
  if size > 1 then
    t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mu;
  let already = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  if not already then Array.iter Domain.join t.workers

let parallel_for ?chunk t n f =
  if n <= 0 then ()
  else if
    t.size <= 1 || n = 1 || t.stopped
    || Domain.DLS.get busy_key
    || not (Atomic.compare_and_set t.coordinating false true)
  then f 0 n
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None ->
        (* A few chunks per lane balances load without much steal traffic. *)
        max 1 (n / (t.size * 4))
    in
    let job =
      { n; chunk; f;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        failed = Atomic.make None }
    in
    Mutex.lock t.mu;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    run_chunks job;
    while Atomic.get job.completed < n do
      Domain.cpu_relax ()
    done;
    Mutex.lock t.mu;
    t.job <- None;
    Mutex.unlock t.mu;
    Atomic.set t.coordinating false;
    match Atomic.get job.failed with Some e -> raise e | None -> ()
  end

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f xs.(i))
        done);
    Array.map
      (function Some y -> y | None -> assert false (* parallel_for covered [0, n) *))
      out
  end

(* ------------------------------------------------------------------ *)
(* Ambient default pool                                                *)
(* ------------------------------------------------------------------ *)

(* Hot kernels (notably [Mat.matmul]) consult an ambient pool so that the
   whole stack parallelizes without threading a pool through every call
   site — the same pattern as a BLAS thread-count global.  This is safe
   precisely because pooled results are bitwise equal to sequential ones. *)

let default : t option Atomic.t = Atomic.make None
let set_default p = Atomic.set default p
let get_default () = Atomic.get default

let with_default p f =
  let saved = Atomic.get default in
  Atomic.set default p;
  Fun.protect ~finally:(fun () -> Atomic.set default saved) f
