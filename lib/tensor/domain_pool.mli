(** Fixed-size pool of OCaml 5 domains for deterministic data-parallel loops.

    The pool runs {e pure} index-parallel work on multiple cores while
    guaranteeing results bitwise identical to a sequential run: iterations
    are partitioned by index (never by timing), each iteration executes
    exactly the code it would execute sequentially, and nothing about
    chunk scheduling is observable in the output.  A pool of size 1 (or a
    nested/concurrent call) degrades to inline execution on the calling
    domain. *)

type t

val create : int -> t
(** [create size] spawns [size - 1] worker domains; the calling domain is
    the remaining lane.  [size <= 1] creates an inline pool that spawns
    nothing. *)

val size : t -> int
(** Total lanes, including the calling domain. *)

val parallel_for : ?chunk:int -> t -> int -> (int -> int -> unit) -> unit
(** [parallel_for t n f] partitions [0, n) into chunks and calls
    [f lo hi] for disjoint ranges covering every index, in parallel across
    the pool's lanes.  Iterations must be independent; [f] must not assume
    any ordering between chunks.  Returns once all [n] indices are
    processed.  The first exception raised by any chunk is re-raised on
    the calling domain.  Nested or concurrent calls run inline. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] is [Array.map f xs] with the applications of [f] spread
    across the pool. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  The pool must not be
    used afterwards (calls degrade to inline execution). *)

(** {1 Ambient default pool}

    Hot kernels ({!Mat.matmul}) consult an ambient pool so the whole stack
    parallelizes without plumbing a pool argument through every layer —
    safe because pooled results are bitwise equal to sequential ones. *)

val set_default : t option -> unit
val get_default : unit -> t option

val with_default : t option -> (unit -> 'a) -> 'a
(** [with_default p f] runs [f] with the ambient pool set to [p],
    restoring the previous ambient pool afterwards (also on exceptions). *)
