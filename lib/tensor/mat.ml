type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : buffer }

let alloc n : buffer = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let create rows cols x =
  let data = alloc (rows * cols) in
  Bigarray.Array1.fill data x;
  { rows; cols; data }

let zeros rows cols = create rows cols 0.

let numel m = m.rows * m.cols
let get_flat m i = m.data.{i}
let set_flat m i x = m.data.{i} <- x
let fill m x = Bigarray.Array1.fill m.data x

let init rows cols f =
  let data = alloc (rows * cols) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.{(i * cols) + j} <- f i j
    done
  done;
  { rows; cols; data }

let eye n = init n n (fun i j -> if i = j then 1. else 0.)

let copy m =
  let data = alloc (numel m) in
  Bigarray.Array1.blit m.data data;
  { m with data }

let get m i j = m.data.{(i * m.cols) + j}
let set m i j x = m.data.{(i * m.cols) + j} <- x

let to_array m = Array.init (numel m) (fun i -> m.data.{i})

let of_array rows cols a =
  if Array.length a <> rows * cols then invalid_arg "Mat.of_array: length mismatch";
  let data = alloc (rows * cols) in
  Array.iteri (fun i x -> data.{i} <- x) a;
  { rows; cols; data }

let blit_from_array ?(src_pos = 0) a m =
  let n = numel m in
  if src_pos < 0 || src_pos + n > Array.length a then
    invalid_arg "Mat.blit_from_array: source too short";
  for i = 0 to n - 1 do
    m.data.{i} <- a.(src_pos + i)
  done

let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i v =
  if Array.length v <> m.cols then invalid_arg "Mat.set_row: dimension mismatch";
  let base = i * m.cols in
  Array.iteri (fun j x -> m.data.{base + j} <- x) v

let of_rows rows =
  match Array.length rows with
  | 0 -> invalid_arg "Mat.of_rows: no rows"
  | n ->
    let cols = Array.length rows.(0) in
    let m = zeros n cols in
    Array.iteri
      (fun i r ->
        if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows";
        set_row m i r)
      rows;
    m

let to_rows m = Array.init m.rows (row m)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows a.cols b.rows b.cols)

let elementwise name f a b =
  check_same name a b;
  let c = { a with data = alloc (numel a) } in
  for i = 0 to numel a - 1 do
    c.data.{i} <- f a.data.{i} b.data.{i}
  done;
  c

let add a b = elementwise "add" ( +. ) a b
let sub a b = elementwise "sub" ( -. ) a b
let hadamard a b = elementwise "hadamard" ( *. ) a b
let map2 f a b = elementwise "map2" f a b

let scale s m =
  let c = { m with data = alloc (numel m) } in
  for i = 0 to numel m - 1 do
    c.data.{i} <- s *. m.data.{i}
  done;
  c

let map f m =
  let c = { m with data = alloc (numel m) } in
  for i = 0 to numel m - 1 do
    c.data.{i} <- f m.data.{i}
  done;
  c

let add_into ~dst src =
  check_same "add_into" dst src;
  for i = 0 to numel dst - 1 do
    dst.data.{i} <- dst.data.{i} +. src.data.{i}
  done

(* ------------------------------------------------------------------ *)
(* Matrix product                                                      *)
(* ------------------------------------------------------------------ *)

(* Products below this many multiply-adds are not worth a trip through
   the domain pool; the pool round-trip costs on the order of a small
   matmul itself. *)
let par_flop_threshold = 32_768

(* [a : m×k], [b : k×n].  The kernel materializes Bᵀ so both operands
   stream sequentially (the "transposed" layout), then computes each
   output element as a dot product with [k] ascending.  Because every
   c(i,j) is produced by exactly one lane using the identical
   accumulation order, the result is bitwise identical whether the row
   range [0, m) is processed inline or split across any number of
   domains — which is what lets the ambient pool stay invisible to the
   engine's determinism oracle.  Row chunks double as cache blocking. *)
let matmul a b =
  if a.cols <> b.rows then
    invalid_arg (Printf.sprintf "Mat.matmul: inner dimension mismatch (%d vs %d)" a.cols b.rows);
  let m = a.rows and n = b.cols and kd = a.cols in
  let c = zeros m n in
  let bt = transpose b in
  let ad = a.data and btd = bt.data and cd = c.data in
  let rows lo hi =
    for i = lo to hi - 1 do
      let abase = i * kd and cbase = i * n in
      for j = 0 to n - 1 do
        let bbase = j * kd in
        let acc = ref 0. in
        for k = 0 to kd - 1 do
          acc :=
            !acc
            +. Bigarray.Array1.unsafe_get ad (abase + k)
               *. Bigarray.Array1.unsafe_get btd (bbase + k)
        done;
        Bigarray.Array1.unsafe_set cd (cbase + j) !acc
      done
    done
  in
  (match Domain_pool.get_default () with
  | Some pool when m >= 2 && m * n * kd >= par_flop_threshold ->
    Domain_pool.parallel_for pool m rows
  | _ -> rows 0 m);
  c

let mat_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mat_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (get a i j *. x.(j))
      done;
      !acc)

let vec_mat x a =
  if a.rows <> Array.length x then invalid_arg "Mat.vec_mat: dimension mismatch";
  Array.init a.cols (fun j ->
      let acc = ref 0. in
      for i = 0 to a.rows - 1 do
        acc := !acc +. (x.(i) *. get a i j)
      done;
      !acc)

let trace m =
  let n = min m.rows m.cols in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let frobenius m =
  let acc = ref 0. in
  for i = 0 to numel m - 1 do
    let x = m.data.{i} in
    acc := !acc +. (x *. x)
  done;
  sqrt !acc

let add_jitter m eps =
  let c = copy m in
  for i = 0 to min m.rows m.cols - 1 do
    set c i i (get c i i +. eps)
  done;
  c

let cholesky a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky: not square";
  let n = a.rows in
  let l = zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then failwith "Mat.cholesky: matrix not positive definite";
        set l i i (sqrt !acc)
      end
      else set l i j (!acc /. get l j j)
    done
  done;
  l

let solve_lower l b =
  let n = l.rows in
  if Array.length b <> n then invalid_arg "Mat.solve_lower: dimension mismatch";
  let x = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get l i j *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

let solve_upper l b =
  let n = l.rows in
  if Array.length b <> n then invalid_arg "Mat.solve_upper: dimension mismatch";
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      (* Interpreting [l] as lower-triangular, [Lᵀ] has entry (i,j) = L(j,i). *)
      acc := !acc -. (get l j i *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

let cholesky_solve l b = solve_upper l (solve_lower l b)

let log_det_from_cholesky l =
  let acc = ref 0. in
  for i = 0 to l.rows - 1 do
    acc := !acc +. log (get l i i)
  done;
  2. *. !acc

let inverse_spd a =
  let n = a.rows in
  let l = cholesky a in
  let inv = zeros n n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    let x = cholesky_solve l e in
    for i = 0 to n - 1 do
      set inv i j x.(i)
    done
  done;
  inv

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Vec.pp ppf (row m i)
  done;
  Format.fprintf ppf "@]"
