(** Stale-model detection for registry warm-starts.

    A registry entry records the {e training distribution} its model saw:
    the crash rate and the mean successful metric value of the run that
    trained it.  Before auto-warm-starting from a donor, the CLI can
    probe a {e live} ledger of the same workload (e.g. yesterday's
    production run) against those recorded statistics: if the workload
    has drifted — configurations crash much more often than the donor
    ever saw, or the metric distribution has shifted — the donor's
    beliefs are actively misleading and the search is better off cold.
    This is the registry's staleness policy (DESIGN.md §16): drift
    {e downgrades} an [auto] warm-start to a cold start with a warning,
    never silently.

    The probe is windowed: only the trailing [window] rows of the live
    series vote, so an old ledger whose tail has recovered does not keep
    flagging a long-dead incident. *)

type verdict =
  | Fresh
  | Stale of string list  (** Human-readable drift reasons, at least one. *)

type probe = {
  live_crash_rate : float;  (** Trailing-window crash rate of the live series. *)
  donor_crash_rate : float;  (** The donor's recorded training crash rate. *)
  live_mean : float;  (** Mean successful raw value in the window; NaN if none. *)
  donor_mean : float;  (** The donor's recorded mean successful value. *)
  window : int;  (** Rows that actually voted (≤ the requested window). *)
  verdict : verdict;
}

val probe :
  ?window:int ->
  ?crash_margin:float ->
  ?mean_margin:float ->
  ?min_samples:int ->
  donor_crash_rate:float ->
  donor_mean:float ->
  Series.t ->
  probe
(** [window] trailing rows considered (default 20).  Drift is declared
    when the live windowed crash rate exceeds the donor's by more than
    [crash_margin] (absolute, default 0.25), or the live mean successful
    value shifts from the donor's by more than [mean_margin] relative
    (default 0.5).  Fewer than [min_samples] live rows (default 5) is
    never drift — absence of evidence keeps the warm-start. *)

val verdict_to_string : verdict -> string
val to_string : probe -> string
(** One-line report for the CLI warning. *)
