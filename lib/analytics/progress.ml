module Metric = Wayfinder_platform.Metric
module Obs = Wayfinder_obs

type snapshot = {
  iteration : int;
  best : float option;
  regret_slope : float;
  crash_rate : float;
  cache_hit_rate : float option;
  worker_busy : float option;
  virtual_seconds : float;
}

let default_window = 25

let of_series ?(window = default_window) ?metrics ?workers (s : Series.t) =
  let cache_hit_rate =
    match metrics with
    | None -> None
    | Some m ->
      let hits = Obs.Metrics.counter m "driver.image_cache.hits" in
      let misses = Obs.Metrics.counter m "driver.image_cache.misses" in
      if hits +. misses <= 0. then None else Some (hits /. (hits +. misses))
  in
  let worker_busy =
    match (metrics, workers) with
    | Some m, Some w when w > 1 -> (
      match Obs.Metrics.histogram m "driver.worker.busy" with
      | Some h when h.Obs.Metrics.count > 0 ->
        Some (Obs.Metrics.mean h /. float_of_int w)
      | Some _ | None -> None)
    | _ -> None
  in
  { iteration = Series.length s;
    best = Option.map snd (Series.best s);
    regret_slope = Series.regret_slope s ~window;
    crash_rate = Series.crash_rate s;
    cache_hit_rate;
    worker_busy;
    virtual_seconds = Series.last_at_seconds s }

let to_line ?(alerts = []) ~metric snap =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Printf.sprintf "[iter %d]" snap.iteration);
  Buffer.add_string buf
    (match snap.best with
    | Some v -> Printf.sprintf " best %.3f %s" v metric.Metric.unit_name
    | None -> " best -");
  Buffer.add_string buf (Printf.sprintf " | slope %+.3g/it" snap.regret_slope);
  Buffer.add_string buf (Printf.sprintf " | crash %.0f%%" (100. *. snap.crash_rate));
  (match snap.cache_hit_rate with
  | Some r -> Buffer.add_string buf (Printf.sprintf " | cache %.0f%%" (100. *. r))
  | None -> ());
  (match snap.worker_busy with
  | Some r -> Buffer.add_string buf (Printf.sprintf " | busy %.0f%%" (100. *. r))
  | None -> ());
  Buffer.add_string buf (Printf.sprintf " | vt %s" (Obs.Summary.si snap.virtual_seconds));
  if alerts <> [] then
    Buffer.add_string buf (" | ALERT " ^ String.concat "," alerts);
  Buffer.contents buf
