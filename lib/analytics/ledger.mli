(** The run ledger — a versioned, self-describing JSONL record of a
    search run, one line per completed iteration.

    Layout:
    - line 1: the shared schema header
      [{"wayfinder_schema":N,"kind":"ledger"}] ({!Wayfinder_obs.Sink});
    - line 2: a [meta] record — algorithm name, metric (name, unit,
      direction), seed, and the space's parameter names and stages in
      positional order;
    - every further line: an [iter] record — the configuration as
      kind-independent value tokens ({!Wayfinder_configspace.Param.value_token}),
      the outcome (value / typed failure and its class), the virtual
      timings, the built flag, and the searcher's pre-evaluation
      {!Wayfinder_platform.Search_algorithm.belief} when the algorithm
      stated one.

    Floats are written with the exact-round-trip codec of {!Json}, so a
    ledger read back yields bit-identical numbers — the property the
    analytics conformance tests pin.

    A cleanly closed ledger additionally ends with a [fin] {e seal}:
    [{"type":"fin","rows":N,"crc":"xxxxxxxx"}], the row count plus a
    CRC-32 over every preceding byte of the file.  The seal lets a
    reader (and [wayfinder fsck]) distinguish a complete file from a
    truncated or bit-flipped one; a ledger {e without} a seal is still
    valid — a killed run is the normal case — and is reported as
    {!t.sealed}[ = false].  Read errors are anchored to the exact line
    and byte offset where parsing stopped, and {!salvage} recovers the
    fully-written prefix of a torn or corrupt file with per-drop
    diagnostics. *)

module Param = Wayfinder_configspace.Param
module Space = Wayfinder_configspace.Space
module History = Wayfinder_platform.History
module Metric = Wayfinder_platform.Metric
module Failure = Wayfinder_platform.Failure
module Search_algorithm = Wayfinder_platform.Search_algorithm

val kind : string
(** ["ledger"], the header's kind tag. *)

val schema_version : int
(** The schema this build writes and reads (= {!Wayfinder_obs.Sink.schema_version}). *)

type error =
  | Missing_header  (** Line 1 is not a wayfinder schema header. *)
  | Unsupported_schema of int
      (** Header carries a version this build does not read. *)
  | Malformed of string  (** Anything else, with a line-anchored message. *)

val error_to_string : error -> string

type row = {
  index : int;
  tokens : string array;  (** {!Param.value_token} per position. *)
  value : float option;
  failure : Failure.t option;
  at_seconds : float;
  eval_seconds : float;
  built : bool;
  decide_seconds : float;
  belief : Search_algorithm.belief option;
  objectives : float array option;
      (** Raw objective vector (the row's ["obj"] key) for
          multi-objective runs; [None] on scalar rows.  The key is only
          emitted when present, so scalar ledgers are byte-identical to
          pre-objective ones. *)
}

type meta = {
  algo : string;
  metric : Metric.t;
  seed : int option;
  params : (string * Param.stage) list;  (** Positional (name, stage). *)
  objectives : Metric.t list;
      (** Objective spec of a multi-objective run (the meta
          ["objectives"] key), in vector order; [[]] for scalar runs. *)
}

type t = {
  meta : meta;
  rows : row list;
  sealed : bool;
      (** The file ended with a verified [fin] seal: row count matched
          and the CRC-32 over every preceding byte checked out.  [false]
          for a ledger whose writer was killed before [close_writer] —
          a normal, fully usable ledger that simply cannot prove it is
          complete. *)
}

val row_of_entry : History.entry -> Search_algorithm.belief option -> row
(** The exact row {!record} writes — exposed so live analytics can build
    the same rows without a file round-trip. *)

(** {1 Writing} *)

type writer

val create_writer :
  ?seed:int ->
  ?objectives:Metric.t list ->
  algo:string ->
  space:Space.t ->
  metric:Metric.t ->
  string ->
  writer
(** Opens (truncating) the path and writes the header and meta lines.
    [objectives] (default [[]]) declares the objective spec recorded in
    the meta line of a multi-objective run. *)

val record : writer -> History.entry -> Search_algorithm.belief option -> unit
(** Appends one iter line and flushes — a crashed run keeps every
    completed iteration.  The signature matches the driver's [?on_record]
    callback: [Driver.run ~on_record:(Ledger.record w)].
    @raise Invalid_argument on a closed writer. *)

val close_writer : writer -> unit
(** Writes the [fin] seal (row count + CRC-32 over every byte written)
    and closes the channel.  Idempotent. *)

val with_writer :
  ?seed:int ->
  ?objectives:Metric.t list ->
  algo:string ->
  space:Space.t ->
  metric:Metric.t ->
  string ->
  (writer -> 'a) ->
  'a

(** {1 Reading} *)

val load : string -> (t, error) result
val of_string : string -> (t, error) result
val of_lines : string list -> (t, error) result
(** Blank lines between records are tolerated; an unknown schema version
    is rejected with {!Unsupported_schema} before any row is parsed.
    {!Malformed} messages name the line number and byte offset where
    parsing stopped (["line 17 (byte 2310): ..."]). *)

(** {1 Incremental reading}

    The pieces a line-at-a-time reader (e.g. [Monitor.Tail]) needs to
    consume a growing ledger without re-parsing the whole file on every
    poll.  They accept exactly what the whole-file readers accept. *)

val parse_header : string -> (unit, error) result
(** Validate line 1: schema version and ["ledger"] kind. *)

val parse_meta : offset:int -> string -> (meta, error) result
(** Parse line 2.  [offset] is the byte offset of the line's start, used
    only to anchor error messages. *)

type line =
  | Iter_line of row
  | Fin_line of {
      fin_rows : int option;  (** [None] when the seal is missing it. *)
      fin_crc : Wayfinder_platform.Crc32.t option;
          (** [None] when missing or not valid hex. *)
    }  (** A [fin] seal — {e unverified}: the caller checks row count and
           CRC against what it actually read. *)
  | Blank_line

val parse_line : string -> (line, error) result
(** Classify one body line (line 3 onwards, no trailing newline).
    Errors are [Malformed] with no position anchor — the caller knows its
    own line number and byte offset. *)

(** {1 Salvage}

    Recovery for torn or corrupt ledgers: keep every parseable record,
    report every dropped line with its position and reason, and expose
    the {e clean prefix} — the bytes up to the first damage — which is
    what [wayfinder fsck --repair] truncates to. *)

type drop = {
  line : int;  (** 1-based line number of the dropped line. *)
  offset : int;  (** Byte offset of the start of the dropped line. *)
  reason : string;
}

type salvage = {
  ledger : t;  (** Every row that parsed, in file order; [sealed] only
                   if a valid fin seal was present. *)
  dropped : drop list;  (** In file order; empty for a healthy file. *)
  clean_prefix_rows : int;
      (** Rows strictly before the first drop (or fin seal). *)
  clean_prefix_bytes : int;
      (** Bytes strictly before the first drop (or fin seal) — always a
          whole number of lines. *)
}

val salvage : string -> (salvage, error) result
(** Lenient load from a path.  [Error] only when the header or meta line
    is unreadable — without the meta record the rows cannot be
    interpreted, so such a file is unsalvageable. *)

val salvage_string : string -> (salvage, error) result

val repair_string : string -> (string * salvage, error) result
(** The repaired file content: the clean prefix re-sealed with a fresh
    [fin] record over exactly those bytes — plus the salvage report that
    produced it.  Loading the repaired content always yields a sealed
    ledger with [clean_prefix_rows] rows. *)
