(** A minimal self-contained JSON codec for the analytics layer.

    The toolchain has no JSON library baked in, and the ledger needs one
    property an off-the-shelf printer would not promise anyway: {e exact}
    float round-trip.  Numbers render with [%.17g] (the shortest printf
    format that reconstructs any IEEE-754 double bit-for-bit through
    [float_of_string]), integer-valued floats as plain integers, and
    non-finite floats as the bare tokens [NaN] / [Infinity] /
    [-Infinity] — a documented deviation from RFC 8259, which cannot
    represent them; {!parse} accepts the same tokens.  This is what makes
    the ledger round-trip property ("series recomputed from a ledger are
    byte-identical to series computed live") testable at all. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace); object fields keep their order. *)

val number_to_string : float -> string
(** The float codec used by {!to_string}, exposed for CSV writers that
    need the same exact-round-trip guarantee. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON value ([Error] carries a message with
    the byte offset).  Accepts the non-finite tokens {!to_string} emits.
    [\u] escapes are decoded to UTF-8. *)

exception Parse_error of string

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

(** {1 Accessors} — shape-checked projections, [None] on mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
(** [Num] with an integer value only. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
