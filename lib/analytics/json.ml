type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Integer-valued floats render without an exponent or fraction ("42");
   everything else uses %.17g, the shortest printf format guaranteed to
   round-trip an IEEE-754 double exactly through [float_of_string].
   Non-finite floats render as the bare tokens NaN / Infinity /
   -Infinity — a deliberate deviation from RFC 8259 (which has no
   representation for them at all) so a ledger row never silently
   corrupts a recorded value; the parser below accepts the same tokens. *)
let number_to_string v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "Infinity"
  else if v = Float.neg_infinity then "-Infinity"
  else if Float.is_integer v && Float.abs v < 1e16 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number_to_string v)
  | Str s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg pos))

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode a BMP code point (escaped \uXXXX sequences). *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          if !pos >= n then fail !pos "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
            advance ();
            if !pos + 4 > n then fail !pos "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            let cp =
              try int_of_string ("0x" ^ hex)
              with _ -> fail !pos "bad \\u escape"
            in
            pos := !pos + 4;
            add_code_point buf cp
          | c -> fail !pos (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_num_char c =
      match c with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let token = String.sub s start (!pos - start) in
    match float_of_string_opt token with
    | Some v -> Num v
    | None -> fail start (Printf.sprintf "bad number %S" token)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'N' -> literal "NaN" (Num Float.nan)
    | Some 'I' -> literal "Infinity" (Num Float.infinity)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail !pos "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail !pos "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '-' when !pos + 1 < n && s.[!pos + 1] = 'I' ->
      advance ();
      literal "Infinity" (Num Float.neg_infinity)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List items -> Some items | _ -> None
