(* Stale-model probe: live ledger tail vs. the donor's recorded training
   distribution.  See the .mli and DESIGN.md §16 for the policy. *)

type verdict = Fresh | Stale of string list

type probe = {
  live_crash_rate : float;
  donor_crash_rate : float;
  live_mean : float;
  donor_mean : float;
  window : int;
  verdict : verdict;
}

let probe ?(window = 20) ?(crash_margin = 0.25) ?(mean_margin = 0.5) ?(min_samples = 5)
    ~donor_crash_rate ~donor_mean series =
  if window <= 0 then invalid_arg "Drift.probe: window must be positive";
  let n = Series.length series in
  let voting = min window n in
  let tail_rows = Array.sub series.Series.rows (n - voting) voting in
  let live_crash_rate =
    if n = 0 then 0.
    else
      let wcr = Series.windowed_crash_rate series ~window in
      wcr.(n - 1)
  in
  let successes =
    Array.of_list
      (List.filter_map
         (fun (r : Series.row) ->
           match (r.Series.value, r.Series.failure) with
           | Some v, None -> Some v
           | _ -> None)
         (Array.to_list tail_rows))
  in
  let live_mean =
    if Array.length successes = 0 then Float.nan
    else Array.fold_left ( +. ) 0. successes /. float_of_int (Array.length successes)
  in
  let reasons = ref [] in
  if voting >= min_samples then begin
    if live_crash_rate > donor_crash_rate +. crash_margin then
      reasons :=
        Printf.sprintf
          "crash rate drifted: %.0f%% in the live window vs %.0f%% at training time"
          (100. *. live_crash_rate) (100. *. donor_crash_rate)
        :: !reasons;
    (* A mean shift only counts when both sides actually measured
       successes; all-crash windows are the crash check's business. *)
    if
      (not (Float.is_nan live_mean))
      && (not (Float.is_nan donor_mean))
      && Float.abs (live_mean -. donor_mean)
         > mean_margin *. Float.max (Float.abs donor_mean) 1e-9
    then
      reasons :=
        Printf.sprintf
          "metric distribution drifted: live mean %g vs %g at training time" live_mean
          donor_mean
        :: !reasons
  end;
  { live_crash_rate;
    donor_crash_rate;
    live_mean;
    donor_mean;
    window = voting;
    verdict = (match List.rev !reasons with [] -> Fresh | rs -> Stale rs) }

let verdict_to_string = function
  | Fresh -> "fresh"
  | Stale reasons -> "stale (" ^ String.concat "; " reasons ^ ")"

let to_string p =
  Printf.sprintf "drift probe over %d rows: %s [crash %.0f%% vs %.0f%%; mean %g vs %g]"
    p.window (verdict_to_string p.verdict) (100. *. p.live_crash_rate)
    (100. *. p.donor_crash_rate) p.live_mean p.donor_mean
