module Metric = Wayfinder_platform.Metric
module Failure = Wayfinder_platform.Failure
module Search_algorithm = Wayfinder_platform.Search_algorithm
module Stat = Wayfinder_tensor.Stat

type reliability_bin = {
  lo : float;
  hi : float;
  count : int;
  mean_predicted : float;
  observed_rate : float;
}

type t = {
  crash_pairs : int;
  brier : float option;
  reliability : reliability_bin array;
  value_pairs : int;
  mae : float option;
  uncertainty_pairs : int;
  uncertainty_spearman : float option;
}

let default_bins = 10

(* ------------------------------------------------------------------ *)
(* Pair extraction                                                     *)
(* ------------------------------------------------------------------ *)

(* Crash-calibration pairs (k̂, crashed?).  The label must be knowable
   and config-caused:
   - a successful evaluation is a clean 0;
   - a deterministic failure is a clean 1 — except Invalid_configuration
     and Quarantined, which were never evaluated (the testbed refused or
     gave up, so the prediction was never tested);
   - transient faults and timeouts are the testbed's doing: the
     configuration's true label is unknowable and the pair is dropped. *)
let crash_pairs (s : Series.t) =
  Array.to_list s.Series.rows
  |> List.filter_map (fun (r : Series.row) ->
         match r.Series.belief with
         | Some { Search_algorithm.crash_probability = Some p; _ } -> (
           match r.Series.failure with
           | None -> Some (p, false)
           | Some (Failure.Invalid_configuration | Failure.Quarantined) -> None
           | Some f when Failure.counts_as_crash f -> Some (p, true)
           | Some _ -> None)
         | Some _ | None -> None)

(* Value-prediction pairs (ŷ, score(y)) over successful evaluations.
   Beliefs state predicted values in metric-score units (DeepTune's
   de-normalised head, the GP's target space), so realized values are
   scored before comparison. *)
let value_pairs (s : Series.t) =
  Array.to_list s.Series.rows
  |> List.filter_map (fun (r : Series.row) ->
         match (r.Series.belief, r.Series.value) with
         | Some { Search_algorithm.predicted_value = Some p; _ }, Some v ->
           Some (p, Metric.score s.Series.metric v)
         | _ -> None)

(* Uncertainty pairs (σ̂, |ŷ − score(y)|): does stated uncertainty rank
   realized error? *)
let uncertainty_pairs (s : Series.t) =
  Array.to_list s.Series.rows
  |> List.filter_map (fun (r : Series.row) ->
         match (r.Series.belief, r.Series.value) with
         | ( Some
               { Search_algorithm.predicted_value = Some p;
                 predicted_uncertainty = Some u;
                 _ },
             Some v ) ->
           Some (u, Float.abs (p -. Metric.score s.Series.metric v))
         | _ -> None)

(* ------------------------------------------------------------------ *)
(* Scores                                                              *)
(* ------------------------------------------------------------------ *)

let brier pairs =
  match pairs with
  | [] -> None
  | _ ->
    let n = float_of_int (List.length pairs) in
    Some
      (List.fold_left
         (fun acc (p, label) ->
           let y = if label then 1. else 0. in
           acc +. ((p -. y) ** 2.))
         0. pairs
      /. n)

let reliability ?(bins = default_bins) pairs =
  if bins <= 0 then invalid_arg "Calibration.reliability: bins must be positive";
  let width = 1. /. float_of_int bins in
  let counts = Array.make bins 0 in
  let pred_sum = Array.make bins 0. in
  let crash_sum = Array.make bins 0 in
  List.iter
    (fun (p, label) ->
      (* Clamp: p = 1.0 (and any out-of-range prediction) lands in an
         edge bin instead of out of bounds. *)
      let b = max 0 (min (bins - 1) (int_of_float (p /. width))) in
      counts.(b) <- counts.(b) + 1;
      pred_sum.(b) <- pred_sum.(b) +. p;
      if label then crash_sum.(b) <- crash_sum.(b) + 1)
    pairs;
  Array.init bins (fun b ->
      { lo = float_of_int b *. width;
        hi = float_of_int (b + 1) *. width;
        count = counts.(b);
        mean_predicted = (if counts.(b) = 0 then nan else pred_sum.(b) /. float_of_int counts.(b));
        observed_rate =
          (if counts.(b) = 0 then nan
           else float_of_int crash_sum.(b) /. float_of_int counts.(b)) })

let mae pairs =
  match pairs with
  | [] -> None
  | _ ->
    let n = float_of_int (List.length pairs) in
    Some (List.fold_left (fun acc (p, y) -> acc +. Float.abs (p -. y)) 0. pairs /. n)

let uncertainty_spearman pairs =
  match pairs with
  | [] | [ _ ] -> None (* rank correlation needs at least two points *)
  | _ ->
    let us = Array.of_list (List.map fst pairs) in
    let errs = Array.of_list (List.map snd pairs) in
    Some (Stat.spearman us errs)

let of_series ?(bins = default_bins) s =
  let cp = crash_pairs s in
  let vp = value_pairs s in
  let up = uncertainty_pairs s in
  { crash_pairs = List.length cp;
    brier = brier cp;
    reliability = (match cp with [] -> [||] | _ -> reliability ~bins cp);
    value_pairs = List.length vp;
    mae = mae vp;
    uncertainty_pairs = List.length up;
    uncertainty_spearman = uncertainty_spearman up }
