(** The [wayfinder compare] table: several runs' best-so-far curves
    aligned on shared sample budgets, with a winner per budget.

    Budgets are clipped to the shortest run so every column compares the
    runs at a budget they all actually spent; the winner at a budget is
    the run whose running best is ahead under the (shared) metric. *)

module Metric = Wayfinder_platform.Metric

type t = {
  metric : Metric.t;
  labels : string array;
  budgets : int array;
  best_at : float array array;
      (** [best_at.(run).(budget_i)] — running best raw value after
          [budgets.(budget_i)] samples; NaN before the first success. *)
  winners : int option array;
      (** Per budget: index into [labels]; [None] when no run has
          succeeded yet. *)
  finals : (int * float) option array;
      (** Per run: (samples to its best, best raw value). *)
  hypervolumes : float option array;
      (** Per run: final hypervolume proxy, only when every run shares
          the same non-empty objective spec; all [None] otherwise. *)
}

val make : ?budgets:int list -> (string * Series.t) list -> (t, string) result
(** [Error] when runs measure different metrics, no run has an
    iteration, or no requested budget fits the shortest run. *)

val default_budgets : max_len:int -> int list
(** 5, 10, 25, 50, 100, ... clipped below [max_len], plus [max_len]. *)

val to_text : t -> string
val to_json : t -> Json.t
