module Metric = Wayfinder_platform.Metric

type t = {
  metric : Metric.t;
  labels : string array;
  budgets : int array;
  best_at : float array array;  (** [best_at.(run).(budget)]; NaN = no success yet. *)
  winners : int option array;  (** Per budget, index into [labels]. *)
  finals : (int * float) option array;  (** Per run: (samples, best value). *)
  hypervolumes : float option array;
      (** Per run: final hypervolume proxy, when every run shares the same
          non-empty objective spec; all [None] otherwise. *)
}

(* Default sample budgets: 5, 10, 25, 50, 100, 250, ... clipped to the
   shortest run, plus the shortest run's full length — so every column
   compares runs at a budget they all actually spent. *)
let default_budgets ~max_len =
  if max_len <= 0 then []
  else begin
    let rec steps acc = function
      | [] -> acc
      | b :: rest -> if b < max_len then steps (b :: acc) rest else acc
    in
    let bases =
      [ 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000; 50000; 100000 ]
    in
    List.rev (max_len :: steps [] bases)
  end

let make ?budgets runs =
  match runs with
  | [] -> Error "compare needs at least one run"
  | (_, (first : Series.t)) :: rest ->
    let metric = first.Series.metric in
    let mismatched =
      List.filter
        (fun (_, (s : Series.t)) ->
          s.Series.metric.Metric.metric_name <> metric.Metric.metric_name
          || s.Series.metric.Metric.maximize <> metric.Metric.maximize)
        rest
    in
    (match mismatched with
    | (label, _) :: _ ->
      Error
        (Printf.sprintf "run %S measures a different metric than %S" label
           (fst (List.hd runs)))
    | [] ->
      let min_len =
        List.fold_left (fun acc (_, s) -> min acc (Series.length s)) (Series.length first) rest
      in
      if min_len = 0 then Error "compare needs runs with at least one iteration"
      else begin
        let budgets =
          match budgets with
          | Some bs ->
            List.sort_uniq compare (List.filter (fun b -> b > 0 && b <= min_len) bs)
          | None -> default_budgets ~max_len:min_len
        in
        match budgets with
        | [] -> Error "no budget is within every run's length"
        | _ ->
          let budgets = Array.of_list budgets in
          let labels = Array.of_list (List.map fst runs) in
          let curves = List.map (fun (_, s) -> Series.best_so_far s) runs in
          let best_at =
            Array.of_list
              (List.map
                 (fun curve -> Array.map (fun b -> curve.(b - 1)) budgets)
                 curves)
          in
          let winners =
            Array.init (Array.length budgets) (fun bi ->
                let best = ref None in
                Array.iteri
                  (fun run _ ->
                    let v = best_at.(run).(bi) in
                    if not (Float.is_nan v) then
                      match !best with
                      | None -> best := Some (run, v)
                      | Some (_, bv) -> if Metric.better metric v bv then best := Some (run, v))
                  labels;
                Option.map fst !best)
          in
          let finals =
            Array.of_list
              (List.map
                 (fun (_, s) ->
                   Option.map
                     (fun (_, v) ->
                       (Option.value ~default:(Series.length s) (Series.samples_to_best s), v))
                     (Series.best s))
                 runs)
          in
          (* Hypervolume proxies are only comparable when every run
             measured the same objectives. *)
          let spec_names (s : Series.t) =
            Array.to_list
              (Array.map (fun (m : Metric.t) -> m.Metric.metric_name) s.Series.objectives)
          in
          let shared_spec =
            spec_names first <> []
            && List.for_all (fun (_, s) -> spec_names s = spec_names first) rest
          in
          let hypervolumes =
            Array.of_list
              (List.map
                 (fun (_, s) -> if shared_spec then Series.hypervolume_proxy s else None)
                 runs)
          in
          Ok { metric; labels; budgets; best_at; winners; finals; hypervolumes }
      end)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_text t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "metric: %s [%s, %s]" t.metric.Metric.metric_name t.metric.Metric.unit_name
    (if t.metric.Metric.maximize then "maximize" else "minimize");
  line "best-so-far per sample budget (winner starred):";
  Buffer.add_string buf (Printf.sprintf "%10s" "budget");
  Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf " %16s" l)) t.labels;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun bi b ->
      Buffer.add_string buf (Printf.sprintf "%10d" b);
      Array.iteri
        (fun run _ ->
          let v = t.best_at.(run).(bi) in
          let cell =
            if Float.is_nan v then "-"
            else
              Printf.sprintf "%.3f%s" v (if t.winners.(bi) = Some run then "*" else "")
          in
          Buffer.add_string buf (Printf.sprintf " %16s" cell))
        t.labels;
      Buffer.add_char buf '\n')
    t.budgets;
  (* Deltas of each run vs the winner at the largest shared budget. *)
  let last = Array.length t.budgets - 1 in
  (match t.winners.(last) with
  | None -> line "no run succeeded within the shared budget"
  | Some w ->
    line "at budget %d, %s leads:" t.budgets.(last) t.labels.(w);
    Array.iteri
      (fun run label ->
        if run <> w then begin
          let v = t.best_at.(run).(last) and bv = t.best_at.(w).(last) in
          if Float.is_nan v then line "  %-16s no successful evaluation" label
          else begin
            let gap = Metric.score t.metric bv -. Metric.score t.metric v in
            line "  %-16s behind by %.3f (score units)" label gap
          end
        end)
      t.labels);
  if Array.exists Option.is_some t.hypervolumes then begin
    line "hypervolume proxy (shared objectives):";
    Array.iteri
      (fun run label ->
        match t.hypervolumes.(run) with
        | Some hv -> line "  %-16s %.4f" label hv
        | None -> line "  %-16s -" label)
      t.labels
  end;
  Buffer.contents buf

let to_json t =
  (* Appended only when present, keeping scalar comparisons byte-stable. *)
  let hv_members =
    if not (Array.exists Option.is_some t.hypervolumes) then []
    else
      [ ( "hypervolume_proxy",
          Json.Obj
            (Array.to_list
               (Array.mapi
                  (fun run label ->
                    ( label,
                      match t.hypervolumes.(run) with
                      | Some hv -> Json.Num hv
                      | None -> Json.Null ))
                  t.labels)) ) ]
  in
  Json.Obj
    ([ ( "metric",
        Json.Obj
          [ ("name", Json.Str t.metric.Metric.metric_name);
            ("unit", Json.Str t.metric.Metric.unit_name);
            ("maximize", Json.Bool t.metric.Metric.maximize) ] );
      ("labels", Json.List (Array.to_list (Array.map (fun l -> Json.Str l) t.labels)));
      ( "budgets",
        Json.List (Array.to_list (Array.map (fun b -> Json.Num (float_of_int b)) t.budgets)) );
      ( "best_at",
        Json.Obj
          (Array.to_list
             (Array.mapi
                (fun run label ->
                  ( label,
                    Json.List
                      (Array.to_list (Array.map (fun v -> Json.Num v) t.best_at.(run))) ))
                t.labels)) );
      ( "winners",
        Json.List
          (Array.to_list
             (Array.map
                (function Some w -> Json.Str t.labels.(w) | None -> Json.Null)
                t.winners)) );
      ( "finals",
        Json.Obj
          (Array.to_list
             (Array.mapi
                (fun run label ->
                  ( label,
                    match t.finals.(run) with
                    | Some (samples, v) ->
                      Json.Obj
                        [ ("samples_to_best", Json.Num (float_of_int samples));
                          ("best", Json.Num v) ]
                    | None -> Json.Null ))
                t.labels)) ) ]
     @ hv_members)
