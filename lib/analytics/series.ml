module Param = Wayfinder_configspace.Param
module Space = Wayfinder_configspace.Space
module History = Wayfinder_platform.History
module Metric = Wayfinder_platform.Metric
module Failure = Wayfinder_platform.Failure
module Search_algorithm = Wayfinder_platform.Search_algorithm
module Pareto = Wayfinder_platform.Pareto
module Stat = Wayfinder_tensor.Stat

type row = Ledger.row = {
  index : int;
  tokens : string array;
  value : float option;
  failure : Failure.t option;
  at_seconds : float;
  eval_seconds : float;
  built : bool;
  decide_seconds : float;
  belief : Search_algorithm.belief option;
  objectives : float array option;
}

type t = {
  metric : Metric.t;
  names : string array;
  stages : Param.stage array;
  rows : row array;
  objectives : Metric.t array;
}

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let of_history ?(beliefs = fun _ -> None) ?(objectives = [||]) ~space history =
  let entries = History.entries history in
  { metric = History.metric history;
    names = Array.map (fun (p : Param.t) -> p.Param.name) (Space.params space);
    stages = Array.map (fun (p : Param.t) -> p.Param.stage) (Space.params space);
    rows =
      Array.map
        (fun (e : History.entry) -> Ledger.row_of_entry e (beliefs e.History.index))
        entries;
    objectives }

let of_ledger (ledger : Ledger.t) =
  let params = Array.of_list ledger.Ledger.meta.Ledger.params in
  { metric = ledger.Ledger.meta.Ledger.metric;
    names = Array.map fst params;
    stages = Array.map snd params;
    rows = Array.of_list ledger.Ledger.rows;
    objectives = Array.of_list ledger.Ledger.meta.Ledger.objectives }

(* --from-csv: reconstruct what History.to_csv preserves.  The CSV has no
   configurations or beliefs, so coverage and calibration degenerate to
   empty — convergence and failure-rate series still work. *)

let csv_records s =
  (* Full RFC 4180 state machine: quoted fields may contain commas,
     quotes (doubled) and line breaks. *)
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length s in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = s.[!i] in
    (if !in_quotes then
       match c with
       | '"' ->
         if !i + 1 < n && s.[!i + 1] = '"' then begin
           Buffer.add_char buf '"';
           incr i
         end
         else in_quotes := false
       | c -> Buffer.add_char buf c
     else
       match c with
       | '"' -> in_quotes := true
       | ',' -> flush_field ()
       | '\n' -> flush_record ()
       | '\r' -> ()
       | c -> Buffer.add_char buf c);
    incr i
  done;
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  List.rev !records

let of_csv ~metric s =
  match csv_records s with
  | [] -> Error "empty CSV"
  | header :: data ->
    let col name =
      let rec find i = function
        | [] -> None
        | h :: _ when h = name -> Some i
        | _ :: rest -> find (i + 1) rest
      in
      find 0 header
    in
    let require name =
      match col name with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "CSV has no %S column" name)
    in
    let ( let* ) = Result.bind in
    let* i_index = require "index" in
    let* i_value = require "value" in
    let* i_failure = require "failure" in
    let* i_at = require "at_s" in
    let* i_eval = require "eval_s" in
    let* i_built = require "built" in
    let* i_decide = require "decide_s" in
    let parse_row lineno fields =
      let arr = Array.of_list fields in
      let get i =
        if i < Array.length arr then Ok arr.(i)
        else Error (Printf.sprintf "CSV line %d: missing column %d" lineno i)
      in
      let num what i =
        let* s = get i in
        match float_of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "CSV line %d: bad %s %S" lineno what s)
      in
      let* index = num "index" i_index in
      let* value_s = get i_value in
      let* value =
        if value_s = "" then Ok None
        else
          match float_of_string_opt value_s with
          | Some v -> Ok (Some v)
          | None -> Error (Printf.sprintf "CSV line %d: bad value %S" lineno value_s)
      in
      let* failure_s = get i_failure in
      let failure = if failure_s = "" then None else Some (Failure.of_string failure_s) in
      let* at_seconds = num "at_s" i_at in
      let* eval_seconds = num "eval_s" i_eval in
      let* built_s = get i_built in
      let* built =
        match bool_of_string_opt built_s with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "CSV line %d: bad built %S" lineno built_s)
      in
      let* decide_seconds = num "decide_s" i_decide in
      Ok
        { index = int_of_float index;
          tokens = [||];
          value;
          failure;
          at_seconds;
          eval_seconds;
          built;
          decide_seconds;
          belief = None;
          objectives = None }
    in
    let* rows =
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | [ "" ] :: rest -> go (lineno + 1) acc rest
        | fields :: rest ->
          let* row = parse_row lineno fields in
          go (lineno + 1) (row :: acc) rest
      in
      go 2 [] data
    in
    Ok { metric; names = [||]; stages = [||]; rows = Array.of_list rows; objectives = [||] }

(* ------------------------------------------------------------------ *)
(* Convergence series                                                  *)
(* ------------------------------------------------------------------ *)

let length t = Array.length t.rows

let best t =
  let best = ref None in
  Array.iter
    (fun r ->
      match r.value with
      | None -> ()
      | Some v -> (
        match !best with
        | None -> best := Some (r.index, v)
        | Some (_, bv) -> if Metric.better t.metric v bv then best := Some (r.index, v)))
    t.rows;
  !best

let best_so_far t =
  let n = length t in
  let out = Array.make n nan in
  let best = ref None in
  for i = 0 to n - 1 do
    (match t.rows.(i).value with
    | Some v -> (
      match !best with
      | None -> best := Some v
      | Some b -> if Metric.better t.metric v b then best := Some v)
    | None -> ());
    out.(i) <- (match !best with Some b -> b | None -> nan)
  done;
  out

(* Simple regret in score units (higher-is-better view): distance of the
   running best from the run's final best.  NaN before the first
   success; 0 from the iteration the final best was found. *)
let simple_regret t =
  let bsf = best_so_far t in
  match best t with
  | None -> bsf (* all NaN already *)
  | Some (_, final) ->
    let final_score = Metric.score t.metric final in
    Array.map
      (fun v -> if Float.is_nan v then nan else final_score -. Metric.score t.metric v)
      bsf

(* First iteration whose running best lands within [epsilon] (relative,
   on score magnitude) of the run's final best.  Returns the number of
   samples spent, i.e. index + 1. *)
let within_threshold t ~epsilon =
  match best t with
  | None -> None
  | Some (_, final) ->
    let final_score = Metric.score t.metric final in
    let threshold = final_score -. (epsilon *. Float.abs final_score) in
    let bsf = best_so_far t in
    let n = Array.length bsf in
    let rec go i =
      if i >= n then None
      else if (not (Float.is_nan bsf.(i))) && Metric.score t.metric bsf.(i) >= threshold then
        Some i
      else go (i + 1)
    in
    go 0

let samples_to_within t ~epsilon =
  Option.map (fun i -> i + 1) (within_threshold t ~epsilon)

let virtual_seconds_to_within t ~epsilon =
  Option.map (fun i -> t.rows.(i).at_seconds) (within_threshold t ~epsilon)

let samples_to_best t =
  match best t with
  | None -> None
  | Some (index, _) ->
    (* Position in completion order, not the proposal index (they differ
       under multi-worker interleaving). *)
    let rec go i =
      if i >= length t then None
      else if t.rows.(i).index = index then Some (i + 1)
      else go (i + 1)
    in
    go 0

(* ------------------------------------------------------------------ *)
(* History-compatible plotting series                                  *)
(* ------------------------------------------------------------------ *)

(* Mirrors History.values_series: failures repeat the previous value,
   leading failures are backfilled with the first success. *)
let values t =
  let n = length t in
  let out = Array.make n nan in
  let first_success =
    Array.fold_left
      (fun acc r -> match (acc, r.value) with None, Some v -> Some v | _ -> acc)
      None t.rows
  in
  let prev = ref (Option.value ~default:0. first_success) in
  for i = 0 to n - 1 do
    (match t.rows.(i).value with Some v -> prev := v | None -> ());
    out.(i) <- !prev
  done;
  out

(* Mirrors History.crash_indicator: 1.0 at any failed iteration. *)
let crash_indicator t =
  Array.map (fun r -> if r.failure <> None then 1. else 0.) t.rows

(* Best-so-far over virtual time, bucketed: bin i covers
   [i*bucket_s, (i+1)*bucket_s); gaps forward-fill (matching the paper's
   Figure 9 rendering). *)
let best_over_time t ~bucket_s ~horizon_s =
  if bucket_s <= 0. then invalid_arg "Series.best_over_time: bucket_s must be positive";
  let n_buckets = int_of_float (horizon_s /. bucket_s) + 1 in
  let out = Array.make n_buckets nan in
  let bsf = best_so_far t in
  Array.iteri
    (fun i r ->
      let b = int_of_float (r.at_seconds /. bucket_s) in
      if b >= 0 && b < n_buckets then out.(b) <- bsf.(i))
    t.rows;
  let prev = ref nan in
  Array.iteri (fun i v -> if Float.is_nan v then out.(i) <- !prev else prev := v) out;
  out

(* ------------------------------------------------------------------ *)
(* Failure rates                                                       *)
(* ------------------------------------------------------------------ *)

let is_crash r = match r.failure with Some f -> Failure.counts_as_crash f | None -> false

let is_transient r =
  match r.failure with
  | Some f -> ( match Failure.klass f with Failure.Transient | Failure.Timeout -> true | Failure.Deterministic -> false)
  | None -> false

let rate pred t =
  let n = length t in
  if n = 0 then 0.
  else
    float_of_int (Array.fold_left (fun acc r -> if pred r then acc + 1 else acc) 0 t.rows)
    /. float_of_int n

let crash_rate = rate is_crash
let transient_rate = rate is_transient

let windowed_rate pred t ~window =
  if window <= 0 then invalid_arg "Series.windowed_rate: window must be positive";
  let n = length t in
  let out = Array.make n 0. in
  let in_window = ref 0 in
  for i = 0 to n - 1 do
    if pred t.rows.(i) then incr in_window;
    if i >= window && pred t.rows.(i - window) then decr in_window;
    out.(i) <- float_of_int !in_window /. float_of_int (min (i + 1) window)
  done;
  out

let windowed_crash_rate = windowed_rate is_crash
let windowed_transient_rate = windowed_rate is_transient

let failure_counts t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      match r.failure with
      | None -> ()
      | Some f ->
        let k = Failure.to_string f in
        Hashtbl.replace tbl k ((try Hashtbl.find tbl k with Not_found -> 0) + 1))
    t.rows;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* ------------------------------------------------------------------ *)
(* Space coverage                                                      *)
(* ------------------------------------------------------------------ *)

type coverage = {
  evaluated : int;
  distinct_configs : int;
  distinct_stage_keys : int;
  marginals : (string * (string * int) list) array;
}

(* The non-runtime projection key: positional tokens of compile- and
   boot-time parameters.  Two configurations share a key iff they differ
   only in runtime parameters — the same equivalence
   Space.stage_key/Image_cache use, recomputable from a ledger alone. *)
let stage_key_of t (r : row) =
  let buf = Buffer.create 32 in
  Array.iteri
    (fun i tok ->
      if i < Array.length t.stages && t.stages.(i) <> Param.Runtime then begin
        Buffer.add_string buf tok;
        Buffer.add_char buf ';'
      end)
    r.tokens;
  Buffer.contents buf

let coverage t =
  let configs = Hashtbl.create 64 in
  let keys = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      Hashtbl.replace configs (String.concat ";" (Array.to_list r.tokens)) ();
      Hashtbl.replace keys (stage_key_of t r) ())
    t.rows;
  let n_params = Array.length t.names in
  let marginals =
    Array.init n_params (fun p ->
        let counts = Hashtbl.create 8 in
        Array.iter
          (fun r ->
            if p < Array.length r.tokens then begin
              let tok = r.tokens.(p) in
              Hashtbl.replace counts tok ((try Hashtbl.find counts tok with Not_found -> 0) + 1)
            end)
          t.rows;
        ( t.names.(p),
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []) ))
  in
  { evaluated = length t;
    distinct_configs = (if length t = 0 then 0 else Hashtbl.length configs);
    distinct_stage_keys = (if length t = 0 then 0 else Hashtbl.length keys);
    marginals }

(* ------------------------------------------------------------------ *)
(* Progress helpers                                                    *)
(* ------------------------------------------------------------------ *)

(* Least-squares slope (score units per sample) of the running best over
   the trailing [window] finite points — the convergence speedometer the
   --progress line shows.  0 with fewer than two finite points. *)
let regret_slope t ~window =
  if window <= 0 then invalid_arg "Series.regret_slope: window must be positive";
  let bsf = best_so_far t in
  let n = Array.length bsf in
  let lo = max 0 (n - window) in
  let xs = ref [] and ys = ref [] in
  for i = lo to n - 1 do
    if not (Float.is_nan bsf.(i)) then begin
      xs := float_of_int i :: !xs;
      ys := Metric.score t.metric bsf.(i) :: !ys
    end
  done;
  let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
  let k = Array.length xs in
  if k < 2 then 0.
  else begin
    let mx = Stat.mean xs and my = Stat.mean ys in
    let num = ref 0. and den = ref 0. in
    for i = 0 to k - 1 do
      num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
      den := !den +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
    done;
    if !den = 0. then 0. else !num /. !den
  end

let total_eval_seconds t = Array.fold_left (fun acc r -> acc +. r.eval_seconds) 0. t.rows

let last_at_seconds t =
  if length t = 0 then 0. else t.rows.(length t - 1).at_seconds

(* ------------------------------------------------------------------ *)
(* Objective series                                                    *)
(* ------------------------------------------------------------------ *)

let objective_count t = Array.length t.objectives

let objective_of i (r : row) =
  match r.objectives with
  | Some v when i < Array.length v -> Some v.(i)
  | Some _ | None -> None

let objective_best t i =
  let m = t.objectives.(i) in
  let best = ref None in
  Array.iter
    (fun r ->
      match objective_of i r with
      | None -> ()
      | Some v -> (
        match !best with
        | None -> best := Some (r.index, v)
        | Some (_, bv) -> if Metric.better m v bv then best := Some (r.index, v)))
    t.rows;
  !best

let objective_best_so_far t i =
  let m = t.objectives.(i) in
  let n = length t in
  let out = Array.make n nan in
  let best = ref None in
  for j = 0 to n - 1 do
    (match objective_of i t.rows.(j) with
    | Some v -> (
      match !best with
      | None -> best := Some v
      | Some b -> if Metric.better m v b then best := Some v)
    | None -> ());
    out.(j) <- (match !best with Some b -> b | None -> nan)
  done;
  out

let pareto t =
  if objective_count t = 0 then None
  else begin
    let archive = ref (Pareto.create ~spec:t.objectives) in
    Array.iter
      (fun (r : row) ->
        match r.objectives with
        | Some v when r.failure = None && Array.length v = objective_count t ->
          archive := Pareto.insert !archive ~index:r.index ~objectives:v
        | Some _ | None -> ())
      t.rows;
    Some !archive
  end

let hypervolume_proxy t = Option.map Pareto.hypervolume_proxy (pareto t)
