module Checkpoint = Wayfinder_platform.Checkpoint
module Registry = Wayfinder_platform.Registry
module Durable = Wayfinder_platform.Durable
module Obs = Wayfinder_obs

type kind = Checkpoint_gen | Ledger | Jsonl_stream | Json_report | Model_entry | Tmp

let kind_to_string = function
  | Checkpoint_gen -> "checkpoint"
  | Ledger -> "ledger"
  | Jsonl_stream -> "jsonl"
  | Json_report -> "report"
  | Model_entry -> "model"
  | Tmp -> "tmp"

type status = Valid | Unsealed | Corrupt | Stray

let status_to_string = function
  | Valid -> "valid"
  | Unsealed -> "unsealed"
  | Corrupt -> "corrupt"
  | Stray -> "stray"

type finding = {
  path : string;
  kind : kind;
  status : status;
  detail : string;
  action : string option;
}

type report = {
  findings : finding list;
  scanned : int;
  valid : int;
  unsealed : int;
  corrupt : int;
  stray : int;
  repaired : int;
  clean : bool;
}

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(* "search.ckpt" or a rotated generation "search.ckpt.3"; likewise for
   registry entries ("<key>.model", "<key>.model.3"). *)
let is_generation_name suffix base =
  Filename.check_suffix base suffix
  ||
  let stem = Filename.remove_extension base in
  let ext = Filename.extension base in
  Filename.check_suffix stem suffix
  && String.length ext > 1
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub ext 1 (String.length ext - 1))

let is_checkpoint_name base = is_generation_name ".ckpt" base
let is_model_name base = is_generation_name ".model" base

let first_line s =
  match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s

(* The kind tag of a JSONL schema header line, if that is what this is. *)
let sniff_stream_kind content =
  match Json.parse (first_line content) with
  | Error _ -> None
  | Ok j ->
    if Json.member "wayfinder_schema" j = None then None
    else Some (Option.value ~default:"" (Option.bind (Json.member "kind" j) Json.to_str))

let classify path content =
  let base = Filename.basename path in
  (* [.bak] files are our own quarantine output (damaged originals kept
     for post-mortem) — re-flagging them would make a repaired tree
     permanently dirty. *)
  if Filename.check_suffix base ".bak" then None
  else if Filename.check_suffix base ".tmp" then Some Tmp
  else if is_checkpoint_name base then Some Checkpoint_gen
  else if is_model_name base then Some Model_entry
  else if Filename.check_suffix base ".jsonl" then
    Some (match sniff_stream_kind content with Some "ledger" -> Ledger | _ -> Jsonl_stream)
  else if Filename.check_suffix base ".json" then Some Json_report
  else if
    (* Name gives no hint — sniff the content. *)
    String.length content >= 21 && String.sub content 0 21 = "wayfinder-checkpoint "
  then Some Checkpoint_gen
  else if String.length content >= 16 && String.sub content 0 16 = "wayfinder-model "
  then Some Model_entry
  else
    match sniff_stream_kind content with
    | Some "ledger" -> Some Ledger
    | Some _ -> Some Jsonl_stream
    | None -> None

(* ------------------------------------------------------------------ *)
(* Per-kind validation                                                 *)
(* ------------------------------------------------------------------ *)

let check_checkpoint content =
  match Checkpoint.of_string content with
  | Ok t ->
    (Valid, Printf.sprintf "%d iterations, %d in flight" t.Checkpoint.iterations
       (List.length t.Checkpoint.inflight))
  | Error e -> (Corrupt, Checkpoint.error_to_string e)

let check_ledger content =
  match Ledger.of_string content with
  | Ok t when t.Ledger.sealed ->
    (Valid, Printf.sprintf "sealed, %d rows" (List.length t.Ledger.rows))
  | Ok t ->
    (Unsealed, Printf.sprintf "%d rows, no fin seal (writer not closed cleanly)"
       (List.length t.Ledger.rows))
  | Error e ->
    let diag =
      match Ledger.salvage_string content with
      | Ok r ->
        Printf.sprintf "; salvageable: %d clean rows, %d dropped lines"
          r.Ledger.clean_prefix_rows (List.length r.Ledger.dropped)
      | Error _ -> "; unsalvageable (header or meta damage)"
    in
    (Corrupt, Ledger.error_to_string e ^ diag)

(* A schema-headed JSONL stream of another kind (e.g. a trace): every
   line must be JSON, starting with the schema header itself — a stream
   truncated into (or to nothing of) its header is damage, not an empty
   file. *)
let check_jsonl content =
  if sniff_stream_kind content = None then
    (Corrupt, "missing or damaged schema header line")
  else
  let lines = String.split_on_char '\n' content in
  let rec go lineno offset n = function
    | [] -> (Valid, Printf.sprintf "%d records" n)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) (offset + String.length line + 1) n rest
      else (
        match Json.parse line with
        | Ok _ -> go (lineno + 1) (offset + String.length line + 1) (n + 1) rest
        | Error msg ->
          (Corrupt, Printf.sprintf "line %d (byte %d): %s" lineno offset msg))
  in
  go 1 0 0 lines

let check_report content =
  match Json.parse content with
  | Ok _ -> (Valid, Printf.sprintf "%d bytes of well-formed JSON" (String.length content))
  | Error msg -> (Corrupt, msg)

let check_model content =
  match Registry.of_string content with
  | Ok e when e.Registry.sealed ->
    (Valid,
     Printf.sprintf "sealed, %s on %s, %d samples, %d model floats"
       e.Registry.meta.Registry.algo e.Registry.fp.Registry.app
       e.Registry.meta.Registry.samples (Array.length e.Registry.model))
  | Ok e ->
    (Unsealed,
     Printf.sprintf "%s on %s parses but carries no crc seal (torn trailer?)"
       e.Registry.meta.Registry.algo e.Registry.fp.Registry.app)
  | Error e -> (Corrupt, Registry.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Repair                                                              *)
(* ------------------------------------------------------------------ *)

let quarantine path =
  let bak = path ^ ".bak" in
  Sys.rename path bak;
  bak

let repair_finding ~content path kind status =
  match (kind, status) with
  | Tmp, Stray ->
    Sys.remove path;
    Some "removed stray staging file"
  | Checkpoint_gen, Corrupt ->
    let bak = quarantine path in
    Some (Printf.sprintf "pruned corrupt generation (kept at %s)" bak)
  | Model_entry, Corrupt ->
    (* Like a corrupt checkpoint generation: quarantine so registry
       lookups skip it, keep the bytes for post-mortem. *)
    let bak = quarantine path in
    Some (Printf.sprintf "quarantined corrupt model entry (kept at %s)" bak)
  | Ledger, Corrupt -> (
    match Ledger.repair_string content with
    | Ok (fixed, r) ->
      let bak = quarantine path in
      Durable.atomic_write_exn ~path fixed;
      Some
        (Printf.sprintf "truncated to clean prefix (%d rows, %d lines dropped; original at %s)"
           r.Ledger.clean_prefix_rows (List.length r.Ledger.dropped) bak)
    | Error _ ->
      let bak = quarantine path in
      Some (Printf.sprintf "quarantined unsalvageable ledger (kept at %s)" bak))
  | _ -> None (* Reports and foreign streams are flagged, never modified. *)

(* ------------------------------------------------------------------ *)
(* The scan                                                            *)
(* ------------------------------------------------------------------ *)

let rec walk acc path =
  if Sys.file_exists path && Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left (fun acc name -> walk acc (Filename.concat path name)) acc entries
  else if Sys.file_exists path then path :: acc
  else acc

let check_file ~repair path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
    Some { path; kind = Json_report; status = Corrupt; detail = "unreadable: " ^ msg; action = None }
  | content -> (
    match classify path content with
    | None -> None
    | Some kind ->
      let status, detail =
        match kind with
        | Tmp -> (Stray, "staging file from an interrupted atomic write")
        | Checkpoint_gen -> check_checkpoint content
        | Ledger -> check_ledger content
        | Jsonl_stream -> check_jsonl content
        | Json_report -> check_report content
        | Model_entry -> check_model content
      in
      let action =
        if repair then (
          try repair_finding ~content path kind status
          with Sys_error msg | Durable.Io_error { reason = msg; _ } ->
            Some ("repair failed: " ^ msg))
      else None
      in
      Some { path; kind; status; detail; action })

let is_repaired f =
  match f.action with
  | Some a -> not (String.length a >= 13 && String.sub a 0 13 = "repair failed")
  | None -> false

let scan ?(repair = false) paths =
  let files = List.rev (List.fold_left walk [] paths) in
  let findings = List.filter_map (check_file ~repair) files in
  let count st = List.length (List.filter (fun f -> f.status = st) findings) in
  let repaired = List.length (List.filter is_repaired findings) in
  let unrepaired_corrupt =
    List.filter (fun f -> f.status = Corrupt && not (is_repaired f)) findings
  in
  { findings;
    scanned = List.length findings;
    valid = count Valid;
    unsealed = count Unsealed;
    corrupt = count Corrupt;
    stray = count Stray;
    repaired;
    clean = unrepaired_corrupt = [] }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let finding_to_string f =
  Printf.sprintf "%-10s %-8s %s — %s%s" (kind_to_string f.kind) (status_to_string f.status)
    f.path f.detail
    (match f.action with Some a -> " [" ^ a ^ "]" | None -> "")

let finding_json f =
  Json.Obj
    [ ("path", Json.Str f.path);
      ("kind", Json.Str (kind_to_string f.kind));
      ("status", Json.Str (status_to_string f.status));
      ("detail", Json.Str f.detail);
      ("action", match f.action with Some a -> Json.Str a | None -> Json.Null) ]

let report_json r =
  Json.Obj
    [ ("scanned", Json.Num (float_of_int r.scanned));
      ("valid", Json.Num (float_of_int r.valid));
      ("unsealed", Json.Num (float_of_int r.unsealed));
      ("corrupt", Json.Num (float_of_int r.corrupt));
      ("stray", Json.Num (float_of_int r.stray));
      ("repaired", Json.Num (float_of_int r.repaired));
      ("clean", Json.Bool r.clean);
      ("findings", Json.List (List.map finding_json r.findings)) ]
