(** Model-calibration diagnostics: how honest were the searcher's
    pre-evaluation beliefs?

    Computed over the (belief, outcome) pairs a ledger records:
    - {e crash calibration} — Brier score and reliability bins of the
      predicted crash probability [k̂] against the realized config-caused
      crash label.  Entries that were never evaluated
      ([Invalid_configuration], [Quarantined]) or failed for testbed
      reasons (transients, timeouts) carry no knowable label and are
      excluded;
    - {e value accuracy} — mean absolute error of the predicted value
      against the realized score, over successful evaluations (beliefs
      state values in metric-score units);
    - {e uncertainty honesty} — Spearman rank correlation between stated
      uncertainty [σ̂] and realized absolute error: a well-calibrated
      model is {e more} wrong where it {e says} it is less sure. *)

type reliability_bin = {
  lo : float;
  hi : float;  (** Predictions in [\[lo, hi)]; the last bin includes 1. *)
  count : int;
  mean_predicted : float;  (** NaN when the bin is empty. *)
  observed_rate : float;  (** Realized crash rate; NaN when empty. *)
}

type t = {
  crash_pairs : int;  (** Labelled (k̂, outcome) pairs available. *)
  brier : float option;  (** Mean squared error of k̂; [None] without pairs. *)
  reliability : reliability_bin array;  (** Empty without pairs. *)
  value_pairs : int;
  mae : float option;
  uncertainty_pairs : int;
  uncertainty_spearman : float option;
      (** [None] with fewer than two pairs (rank correlation undefined). *)
}

val default_bins : int
(** 10. *)

val of_series : ?bins:int -> Series.t -> t

(** {1 Pieces} — exposed for unit tests and custom reports. *)

val crash_pairs : Series.t -> (float * bool) list
val value_pairs : Series.t -> (float * float) list
val uncertainty_pairs : Series.t -> (float * float) list

val brier : (float * bool) list -> float option

val reliability : ?bins:int -> (float * bool) list -> reliability_bin array
(** Equal-width bins over [\[0, 1\]]; out-of-range predictions clamp to
    the edge bins.  @raise Invalid_argument if [bins <= 0]. *)

val mae : (float * float) list -> float option
val uncertainty_spearman : (float * float) list -> float option
