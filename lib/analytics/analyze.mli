(** The [wayfinder analyze] report: every diagnostic the analytics layer
    derives from one run, in one record, renderable as text or JSON. *)

module Metric = Wayfinder_platform.Metric

val default_epsilon : float
(** 0.01 — "within 1% of the run's best". *)

val default_window : int
(** 25 — trailing window for the windowed failure-rate series. *)

type report = {
  label : string;
  algo : string option;
  metric : Metric.t;
  iterations : int;
  best : (int * float) option;
  final_regret : float;
  epsilon : float;
  samples_to_within : int option;
  virtual_seconds_to_within : float option;
  samples_to_best : int option;
  total_virtual_seconds : float;
  crash_rate : float;
  transient_rate : float;
  failure_counts : (string * int) list;
  coverage : Series.coverage;
  calibration : Calibration.t;
  objective_best : (Metric.t * (int * float) option) array;
      (** Per objective of a multi-objective run: best (iteration, raw
          value) under that objective's own metric; [[||]] for scalar
          runs. *)
  pareto_size : int option;  (** Points on the non-dominated front. *)
  hypervolume_proxy : float option;  (** {!Series.hypervolume_proxy}. *)
}

val of_series : ?label:string -> ?algo:string -> ?epsilon:float -> Series.t -> report

val to_text : report -> string
(** Human-readable multi-line report; marginals and failure counts are
    rendered sorted, so output is deterministic. *)

val to_json : report -> Json.t

val series_csv : ?window:int -> Series.t -> string
(** Per-iteration derived series —
    [iteration,value,best_so_far,simple_regret,crash_rate_wN,transient_rate_wN,at_s]
    — with floats in the exact-round-trip codec of {!Json}.
    Multi-objective runs append one [best_<name>] running-best column per
    objective; scalar output is unchanged byte-for-byte. *)
