module Param = Wayfinder_configspace.Param
module Space = Wayfinder_configspace.Space
module History = Wayfinder_platform.History
module Metric = Wayfinder_platform.Metric
module Failure = Wayfinder_platform.Failure
module Search_algorithm = Wayfinder_platform.Search_algorithm
module Obs = Wayfinder_obs

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

(* Line 1: the shared JSONL schema header ({!Obs.Sink.schema_header},
   kind "ledger").  Line 2: a meta record describing the run.  Every
   following line is one "iter" record, written in completion order. *)

let kind = "ledger"
let schema_version = Obs.Sink.schema_version

type error =
  | Missing_header
  | Unsupported_schema of int
  | Malformed of string

let error_to_string = function
  | Missing_header -> "not a wayfinder ledger: missing schema header line"
  | Unsupported_schema v ->
    Printf.sprintf "unsupported ledger schema version %d (this build reads version %d)" v
      schema_version
  | Malformed msg -> "malformed ledger: " ^ msg

(* ------------------------------------------------------------------ *)
(* Rows                                                                *)
(* ------------------------------------------------------------------ *)

type row = {
  index : int;
  tokens : string array;
  value : float option;
  failure : Failure.t option;
  at_seconds : float;
  eval_seconds : float;
  built : bool;
  decide_seconds : float;
  belief : Search_algorithm.belief option;
}

type meta = {
  algo : string;
  metric : Metric.t;
  seed : int option;
  params : (string * Param.stage) list;
}

type t = { meta : meta; rows : row list }

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let opt_num = function Some v -> Json.Num v | None -> Json.Null
let opt_str = function Some s -> Json.Str s | None -> Json.Null

let meta_json m =
  Json.Obj
    [ ("type", Json.Str "meta");
      ("algo", Json.Str m.algo);
      ("metric", Json.Str m.metric.Metric.metric_name);
      ("unit", Json.Str m.metric.Metric.unit_name);
      ("maximize", Json.Bool m.metric.Metric.maximize);
      ("seed", (match m.seed with Some s -> Json.Num (float_of_int s) | None -> Json.Null));
      ( "params",
        Json.List
          (List.map
             (fun (name, stage) ->
               Json.Obj
                 [ ("name", Json.Str name);
                   ("stage", Json.Str (Param.stage_to_string stage)) ])
             m.params) ) ]

let belief_json (b : Search_algorithm.belief) =
  Json.Obj
    [ ("crash_p", opt_num b.Search_algorithm.crash_probability);
      ("value", opt_num b.Search_algorithm.predicted_value);
      ("sigma", opt_num b.Search_algorithm.predicted_uncertainty);
      ("source", Json.Str b.Search_algorithm.belief_source) ]

let row_json r =
  Json.Obj
    [ ("type", Json.Str "iter");
      ("i", Json.Num (float_of_int r.index));
      ("config", Json.List (Array.to_list (Array.map (fun t -> Json.Str t) r.tokens)));
      ("value", opt_num r.value);
      ("failure", opt_str (Option.map Failure.to_string r.failure));
      ( "failure_class",
        opt_str (Option.map (fun f -> Failure.klass_to_string (Failure.klass f)) r.failure) );
      ("at_s", Json.Num r.at_seconds);
      ("eval_s", Json.Num r.eval_seconds);
      ("built", Json.Bool r.built);
      ("decide_s", Json.Num r.decide_seconds);
      ("belief", match r.belief with Some b -> belief_json b | None -> Json.Null) ]

let row_of_entry (e : History.entry) belief =
  { index = e.History.index;
    tokens = Array.map Param.value_token e.History.config;
    value = e.History.value;
    failure = e.History.failure;
    at_seconds = e.History.at_seconds;
    eval_seconds = e.History.eval_seconds;
    built = e.History.built;
    decide_seconds = e.History.decide_seconds;
    belief }

type writer = { oc : out_channel; mutable closed : bool }

let create_writer ?seed ~algo ~space ~metric path =
  let oc = open_out path in
  output_string oc (Obs.Sink.schema_header ~kind);
  output_char oc '\n';
  let params =
    Array.to_list
      (Array.map (fun (p : Param.t) -> (p.Param.name, p.Param.stage)) (Space.params space))
  in
  output_string oc (Json.to_string (meta_json { algo; metric; seed; params }));
  output_char oc '\n';
  { oc; closed = false }

let record w (e : History.entry) belief =
  if w.closed then invalid_arg "Ledger.record: writer is closed";
  output_string w.oc (Json.to_string (row_json (row_of_entry e belief)));
  output_char w.oc '\n';
  (* A ledger is a liveness artifact — a crashed run should still leave
     every completed iteration on disk. *)
  flush w.oc

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

let with_writer ?seed ~algo ~space ~metric path f =
  let w = create_writer ?seed ~algo ~space ~metric path in
  Fun.protect ~finally:(fun () -> close_writer w) (fun () -> f w)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let req what = function Some v -> Ok v | None -> Error (Malformed ("missing or ill-typed " ^ what))

let parse_header line =
  match Json.parse line with
  | Error _ -> Error Missing_header  (* Line 1 is not even JSON — not a header. *)
  | Ok j -> (
    match Option.bind (Json.member "wayfinder_schema" j) Json.to_int with
    | None -> Error Missing_header
    | Some v when v <> schema_version -> Error (Unsupported_schema v)
    | Some _ -> (
      match Option.bind (Json.member "kind" j) Json.to_str with
      | Some k when k = kind -> Ok ()
      | Some k -> Error (Malformed (Printf.sprintf "kind %S is not a ledger" k))
      | None -> Error (Malformed "header has no kind")))

let parse_meta line =
  match Json.parse line with
  | Error msg -> Error (Malformed ("meta: " ^ msg))
  | Ok j ->
    let* () =
      match Option.bind (Json.member "type" j) Json.to_str with
      | Some "meta" -> Ok ()
      | Some _ | None -> Error (Malformed "second line is not a meta record")
    in
    let* algo = req "meta.algo" (Option.bind (Json.member "algo" j) Json.to_str) in
    let* name = req "meta.metric" (Option.bind (Json.member "metric" j) Json.to_str) in
    let* unit_name = req "meta.unit" (Option.bind (Json.member "unit" j) Json.to_str) in
    let* maximize = req "meta.maximize" (Option.bind (Json.member "maximize" j) Json.to_bool) in
    let seed = Option.bind (Json.member "seed" j) Json.to_int in
    let* params = req "meta.params" (Option.bind (Json.member "params" j) Json.to_list) in
    let* params =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* name = req "param.name" (Option.bind (Json.member "name" p) Json.to_str) in
          let* stage_s = req "param.stage" (Option.bind (Json.member "stage" p) Json.to_str) in
          let* stage =
            match Param.stage_of_string stage_s with
            | Some s -> Ok s
            | None -> Error (Malformed (Printf.sprintf "unknown stage %S" stage_s))
          in
          Ok ((name, stage) :: acc))
        (Ok []) params
    in
    Ok
      { algo;
        metric = Metric.make ~maximize ~name ~unit_name ();
        seed;
        params = List.rev params }

let parse_belief = function
  | Json.Null -> Ok None
  | j ->
    let* source = req "belief.source" (Option.bind (Json.member "source" j) Json.to_str) in
    Ok
      (Some
         { Search_algorithm.crash_probability =
             Option.bind (Json.member "crash_p" j) Json.to_float;
           predicted_value = Option.bind (Json.member "value" j) Json.to_float;
           predicted_uncertainty = Option.bind (Json.member "sigma" j) Json.to_float;
           belief_source = source })

let parse_row ~lineno line =
  match Json.parse line with
  | Error msg -> Error (Malformed (Printf.sprintf "line %d: %s" lineno msg))
  | Ok j ->
    let* () =
      match Option.bind (Json.member "type" j) Json.to_str with
      | Some "iter" -> Ok ()
      | Some _ | None ->
        Error (Malformed (Printf.sprintf "line %d: not an iter record" lineno))
    in
    let* index = req "i" (Option.bind (Json.member "i" j) Json.to_int) in
    let* config = req "config" (Option.bind (Json.member "config" j) Json.to_list) in
    let* tokens =
      List.fold_left
        (fun acc t ->
          let* acc = acc in
          let* s = req "config token" (Json.to_str t) in
          Ok (s :: acc))
        (Ok []) config
    in
    let tokens = Array.of_list (List.rev tokens) in
    let value = Option.bind (Json.member "value" j) Json.to_float in
    let failure =
      Option.map Failure.of_string (Option.bind (Json.member "failure" j) Json.to_str)
    in
    let* at_seconds = req "at_s" (Option.bind (Json.member "at_s" j) Json.to_float) in
    let* eval_seconds = req "eval_s" (Option.bind (Json.member "eval_s" j) Json.to_float) in
    let* built = req "built" (Option.bind (Json.member "built" j) Json.to_bool) in
    let* decide_seconds =
      req "decide_s" (Option.bind (Json.member "decide_s" j) Json.to_float)
    in
    let* belief =
      parse_belief (Option.value ~default:Json.Null (Json.member "belief" j))
    in
    Ok { index; tokens; value; failure; at_seconds; eval_seconds; built; decide_seconds; belief }

let of_lines lines =
  match lines with
  | [] -> Error Missing_header
  | header :: rest ->
    let* () = parse_header header in
    (match rest with
    | [] -> Error (Malformed "ledger has no meta record")
    | meta_line :: rows_lines ->
      let* meta = parse_meta meta_line in
      let* rows =
        let rec go lineno acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest when String.trim line = "" -> go (lineno + 1) acc rest
          | line :: rest ->
            let* row = parse_row ~lineno line in
            go (lineno + 1) (row :: acc) rest
        in
        go 3 [] rows_lines
      in
      Ok { meta; rows })

let of_string s =
  of_lines (String.split_on_char '\n' s)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error (Malformed msg)
