module Param = Wayfinder_configspace.Param
module Space = Wayfinder_configspace.Space
module History = Wayfinder_platform.History
module Metric = Wayfinder_platform.Metric
module Failure = Wayfinder_platform.Failure
module Search_algorithm = Wayfinder_platform.Search_algorithm
module Crc32 = Wayfinder_platform.Crc32
module Obs = Wayfinder_obs

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

(* Line 1: the shared JSONL schema header ({!Obs.Sink.schema_header},
   kind "ledger").  Line 2: a meta record describing the run.  Every
   following line is one "iter" record, written in completion order.  A
   cleanly closed ledger ends with a "fin" seal — row count plus a
   CRC-32 over every preceding byte — so fsck can tell a complete file
   from a truncated or bit-flipped one; a ledger without the seal is
   still valid (a killed run is the normal case, not the exception). *)

let kind = "ledger"
let schema_version = Obs.Sink.schema_version

type error =
  | Missing_header
  | Unsupported_schema of int
  | Malformed of string

let error_to_string = function
  | Missing_header -> "not a wayfinder ledger: missing schema header line"
  | Unsupported_schema v ->
    Printf.sprintf "unsupported ledger schema version %d (this build reads version %d)" v
      schema_version
  | Malformed msg -> "malformed ledger: " ^ msg

(* ------------------------------------------------------------------ *)
(* Rows                                                                *)
(* ------------------------------------------------------------------ *)

type row = {
  index : int;
  tokens : string array;
  value : float option;
  failure : Failure.t option;
  at_seconds : float;
  eval_seconds : float;
  built : bool;
  decide_seconds : float;
  belief : Search_algorithm.belief option;
  objectives : float array option;
}

type meta = {
  algo : string;
  metric : Metric.t;
  seed : int option;
  params : (string * Param.stage) list;
  objectives : Metric.t list;
      (** Objective spec of a multi-objective run; [[]] for scalar runs.
          Additive: scalar ledgers never emit the key, so their bytes
          are unchanged and old readers (which ignore unknown keys) can
          still consume multi-objective files. *)
}

type t = { meta : meta; rows : row list; sealed : bool }

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let opt_num = function Some v -> Json.Num v | None -> Json.Null
let opt_str = function Some s -> Json.Str s | None -> Json.Null

let objective_json (m : Metric.t) =
  Json.Obj
    [ ("name", Json.Str m.Metric.metric_name);
      ("unit", Json.Str m.Metric.unit_name);
      ("maximize", Json.Bool m.Metric.maximize) ]

let meta_json m =
  Json.Obj
    ([ ("type", Json.Str "meta");
      ("algo", Json.Str m.algo);
      ("metric", Json.Str m.metric.Metric.metric_name);
      ("unit", Json.Str m.metric.Metric.unit_name);
      ("maximize", Json.Bool m.metric.Metric.maximize);
      ("seed", (match m.seed with Some s -> Json.Num (float_of_int s) | None -> Json.Null));
      ( "params",
        Json.List
          (List.map
             (fun (name, stage) ->
               Json.Obj
                 [ ("name", Json.Str name);
                   ("stage", Json.Str (Param.stage_to_string stage)) ])
             m.params) ) ]
    @
    (* Appended only when present, keeping scalar meta lines byte-stable. *)
    match m.objectives with
    | [] -> []
    | objectives -> [ ("objectives", Json.List (List.map objective_json objectives)) ])

let belief_json (b : Search_algorithm.belief) =
  Json.Obj
    [ ("crash_p", opt_num b.Search_algorithm.crash_probability);
      ("value", opt_num b.Search_algorithm.predicted_value);
      ("sigma", opt_num b.Search_algorithm.predicted_uncertainty);
      ("source", Json.Str b.Search_algorithm.belief_source) ]

let row_json r =
  Json.Obj
    ([ ("type", Json.Str "iter");
      ("i", Json.Num (float_of_int r.index));
      ("config", Json.List (Array.to_list (Array.map (fun t -> Json.Str t) r.tokens)));
      ("value", opt_num r.value);
      ("failure", opt_str (Option.map Failure.to_string r.failure));
      ( "failure_class",
        opt_str (Option.map (fun f -> Failure.klass_to_string (Failure.klass f)) r.failure) );
      ("at_s", Json.Num r.at_seconds);
      ("eval_s", Json.Num r.eval_seconds);
      ("built", Json.Bool r.built);
      ("decide_s", Json.Num r.decide_seconds);
      ("belief", (match r.belief with Some b -> belief_json b | None -> Json.Null)) ]
    @
    match r.objectives with
    | None -> []
    | Some v ->
      [ ("obj", Json.List (Array.to_list (Array.map (fun x -> Json.Num x) v))) ])

let row_of_entry (e : History.entry) belief =
  { index = e.History.index;
    tokens = Array.map Param.value_token e.History.config;
    value = e.History.value;
    failure = e.History.failure;
    at_seconds = e.History.at_seconds;
    eval_seconds = e.History.eval_seconds;
    built = e.History.built;
    decide_seconds = e.History.decide_seconds;
    belief;
    objectives = e.History.objectives }

let fin_json ~rows ~crc =
  Json.Obj
    [ ("type", Json.Str "fin");
      ("rows", Json.Num (float_of_int rows));
      ("crc", Json.Str (Crc32.to_hex crc)) ]

type writer = {
  oc : out_channel;
  mutable closed : bool;
  (* Streaming CRC-32 of every byte written so far (newlines included):
     the seal is computed without re-reading the file. *)
  mutable crc : Crc32.t;
  mutable rows : int;
}

let emit w s =
  output_string w.oc s;
  w.crc <- Crc32.update w.crc s

let create_writer ?seed ?(objectives = []) ~algo ~space ~metric path =
  let oc = open_out path in
  let w = { oc; closed = false; crc = Crc32.init; rows = 0 } in
  emit w (Obs.Sink.schema_header ~kind);
  emit w "\n";
  let params =
    Array.to_list
      (Array.map (fun (p : Param.t) -> (p.Param.name, p.Param.stage)) (Space.params space))
  in
  emit w (Json.to_string (meta_json { algo; metric; seed; params; objectives }));
  emit w "\n";
  w

let record w (e : History.entry) belief =
  if w.closed then invalid_arg "Ledger.record: writer is closed";
  emit w (Json.to_string (row_json (row_of_entry e belief)));
  emit w "\n";
  w.rows <- w.rows + 1;
  (* A ledger is a liveness artifact — a crashed run should still leave
     every completed iteration on disk. *)
  flush w.oc

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    (* Seal: a reader (or fsck) can now distinguish "cleanly closed"
       from "truncated" and detect any bit flip in the body. *)
    output_string w.oc
      (Json.to_string (fin_json ~rows:w.rows ~crc:(Crc32.finish w.crc)));
    output_char w.oc '\n';
    close_out w.oc
  end

let with_writer ?seed ?objectives ~algo ~space ~metric path f =
  let w = create_writer ?seed ?objectives ~algo ~space ~metric path in
  Fun.protect ~finally:(fun () -> close_writer w) (fun () -> f w)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let req what = function Some v -> Ok v | None -> Error (Malformed ("missing or ill-typed " ^ what))

let parse_header line =
  match Json.parse line with
  | Error _ -> Error Missing_header  (* Line 1 is not even JSON — not a header. *)
  | Ok j -> (
    match Option.bind (Json.member "wayfinder_schema" j) Json.to_int with
    | None -> Error Missing_header
    | Some v when v <> schema_version -> Error (Unsupported_schema v)
    | Some _ -> (
      match Option.bind (Json.member "kind" j) Json.to_str with
      | Some k when k = kind -> Ok ()
      | Some k -> Error (Malformed (Printf.sprintf "kind %S is not a ledger" k))
      | None -> Error (Malformed "header has no kind")))

let parse_meta ~offset line =
  let fail reason = Error (Malformed (Printf.sprintf "line 2 (byte %d): %s" offset reason)) in
  match Json.parse line with
  | Error msg -> fail ("meta: " ^ msg)
  | Ok j ->
    let* () =
      match Option.bind (Json.member "type" j) Json.to_str with
      | Some "meta" -> Ok ()
      | Some _ | None -> fail "second line is not a meta record"
    in
    let* algo = req "meta.algo" (Option.bind (Json.member "algo" j) Json.to_str) in
    let* name = req "meta.metric" (Option.bind (Json.member "metric" j) Json.to_str) in
    let* unit_name = req "meta.unit" (Option.bind (Json.member "unit" j) Json.to_str) in
    let* maximize = req "meta.maximize" (Option.bind (Json.member "maximize" j) Json.to_bool) in
    let seed = Option.bind (Json.member "seed" j) Json.to_int in
    let* params = req "meta.params" (Option.bind (Json.member "params" j) Json.to_list) in
    let* params =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* name = req "param.name" (Option.bind (Json.member "name" p) Json.to_str) in
          let* stage_s = req "param.stage" (Option.bind (Json.member "stage" p) Json.to_str) in
          let* stage =
            match Param.stage_of_string stage_s with
            | Some s -> Ok s
            | None -> Error (Malformed (Printf.sprintf "unknown stage %S" stage_s))
          in
          Ok ((name, stage) :: acc))
        (Ok []) params
    in
    let* objectives =
      match Json.member "objectives" j with
      | None -> Ok []
      | Some l ->
        let* items = req "meta.objectives" (Json.to_list l) in
        let* objectives =
          List.fold_left
            (fun acc o ->
              let* acc = acc in
              let* name = req "objective.name" (Option.bind (Json.member "name" o) Json.to_str) in
              let* unit_name =
                req "objective.unit" (Option.bind (Json.member "unit" o) Json.to_str)
              in
              let* maximize =
                req "objective.maximize" (Option.bind (Json.member "maximize" o) Json.to_bool)
              in
              Ok (Metric.make ~maximize ~name ~unit_name () :: acc))
            (Ok []) items
        in
        Ok (List.rev objectives)
    in
    Ok
      { algo;
        metric = Metric.make ~maximize ~name ~unit_name ();
        seed;
        params = List.rev params;
        objectives }

let parse_belief = function
  | Json.Null -> Ok None
  | j ->
    let* source = req "belief.source" (Option.bind (Json.member "source" j) Json.to_str) in
    Ok
      (Some
         { Search_algorithm.crash_probability =
             Option.bind (Json.member "crash_p" j) Json.to_float;
           predicted_value = Option.bind (Json.member "value" j) Json.to_float;
           predicted_uncertainty = Option.bind (Json.member "sigma" j) Json.to_float;
           belief_source = source })

(* Parse one iter record; reasons carry no position — the caller anchors
   them to its line number and byte offset. *)
let parse_row j =
  let* () =
      match Option.bind (Json.member "type" j) Json.to_str with
      | Some "iter" -> Ok ()
      | Some _ | None -> Error (Malformed "not an iter record")
    in
    let* index = req "i" (Option.bind (Json.member "i" j) Json.to_int) in
    let* config = req "config" (Option.bind (Json.member "config" j) Json.to_list) in
    let* tokens =
      List.fold_left
        (fun acc t ->
          let* acc = acc in
          let* s = req "config token" (Json.to_str t) in
          Ok (s :: acc))
        (Ok []) config
    in
    let tokens = Array.of_list (List.rev tokens) in
    let value = Option.bind (Json.member "value" j) Json.to_float in
    let failure =
      Option.map Failure.of_string (Option.bind (Json.member "failure" j) Json.to_str)
    in
    let* at_seconds = req "at_s" (Option.bind (Json.member "at_s" j) Json.to_float) in
    let* eval_seconds = req "eval_s" (Option.bind (Json.member "eval_s" j) Json.to_float) in
    let* built = req "built" (Option.bind (Json.member "built" j) Json.to_bool) in
    let* decide_seconds =
      req "decide_s" (Option.bind (Json.member "decide_s" j) Json.to_float)
    in
    let* belief =
      parse_belief (Option.value ~default:Json.Null (Json.member "belief" j))
    in
    let* objectives =
      match Json.member "obj" j with
      | None -> Ok None
      | Some l ->
        let* items = req "obj" (Json.to_list l) in
        let* vs =
          List.fold_left
            (fun acc x ->
              let* acc = acc in
              let* v = req "obj component" (Json.to_float x) in
              Ok (v :: acc))
            (Ok []) items
        in
        Ok (Some (Array.of_list (List.rev vs)))
    in
    Ok
      { index;
        tokens;
        value;
        failure;
        at_seconds;
        eval_seconds;
        built;
        decide_seconds;
        belief;
        objectives }

(* One body line, classified — the incremental reader (Monitor.Tail)
   consumes the file line-at-a-time through this instead of re-running
   the whole-file readers below on every poll. *)
type line =
  | Iter_line of row
  | Fin_line of { fin_rows : int option; fin_crc : Crc32.t option }
  | Blank_line

let parse_line s =
  if String.trim s = "" then Ok Blank_line
  else
    match Json.parse s with
    | Error msg -> Error (Malformed msg)
    | Ok j -> (
      match Option.bind (Json.member "type" j) Json.to_str with
      | Some "fin" ->
        Ok
          (Fin_line
             { fin_rows = Option.bind (Json.member "rows" j) Json.to_int;
               fin_crc =
                 Option.bind
                   (Option.bind (Json.member "crc" j) Json.to_str)
                   Crc32.of_hex })
      | _ -> Result.map (fun r -> Iter_line r) (parse_row j))

type drop = { line : int; offset : int; reason : string }

type salvage = {
  ledger : t;
  dropped : drop list;
  clean_prefix_rows : int;
  clean_prefix_bytes : int;
}

(* Shared core of the strict reader and the salvage reader.  Tracks the
   byte offset and a streaming CRC so (a) every error names the exact
   line and byte where parsing stopped, (b) the fin seal can be verified
   against the actual bytes read, and (c) salvage knows where the clean
   prefix ends.  In lenient mode bad lines become [drop]s instead of
   fatal errors; header/meta damage is unsalvageable either way, since
   without the meta record the rows cannot be interpreted. *)
let parse_body ~lenient lines =
  match lines with
  | [] -> Error Missing_header
  | header :: rest ->
    let* () = parse_header header in
    let offset0 = String.length header + 1 in
    (match rest with
    | [] ->
      Error
        (Malformed
           (Printf.sprintf "line 2 (byte %d): ledger has no meta record (truncated after header)"
              offset0))
    | meta_line :: rows_lines ->
      let* meta = parse_meta ~offset:offset0 meta_line in
      let crc =
        ref
          (List.fold_left Crc32.update Crc32.init [ header; "\n"; meta_line; "\n" ])
      in
      let offset = ref (offset0 + String.length meta_line + 1) in
      let lineno = ref 3 in
      let rows = ref [] in
      let nrows = ref 0 in
      let drops = ref [] in
      let sealed = ref false in
      (* Rows and bytes strictly before the first drop or the fin line —
         the portion a repair keeps (and re-seals). *)
      let prefix_end = ref None in
      let mark_prefix () =
        if !prefix_end = None then prefix_end := Some (!nrows, !offset)
      in
      let fail reason =
        if lenient then begin
          mark_prefix ();
          drops := { line = !lineno; offset = !offset; reason } :: !drops;
          Ok ()
        end
        else Error (Malformed (Printf.sprintf "line %d (byte %d): %s" !lineno !offset reason))
      in
      let handle_fin j =
        let stored_rows = Option.bind (Json.member "rows" j) Json.to_int in
        let stored_crc =
          Option.bind (Option.bind (Json.member "crc" j) Json.to_str) Crc32.of_hex
        in
        match (stored_rows, stored_crc) with
        | None, _ | _, None -> fail "fin seal is missing rows or crc"
        | Some r, Some c ->
          if r <> !nrows then
            fail
              (Printf.sprintf "fin seal claims %d rows but %d were read (truncated body?)" r
                 !nrows)
          else begin
            let computed = Crc32.finish !crc in
            if c <> computed then
              fail
                (Printf.sprintf "fin seal crc mismatch (stored %s, computed %s)"
                   (Crc32.to_hex c) (Crc32.to_hex computed))
            else begin
              mark_prefix ();
              sealed := true;
              Ok ()
            end
          end
      in
      let rec go = function
        | [] -> Ok ()
        | line :: rest ->
          let* () =
            if String.trim line = "" then Ok ()
            else if !sealed then fail "content after fin seal"
            else
              match Json.parse line with
              | Error msg -> fail msg
              | Ok j -> (
                match Option.bind (Json.member "type" j) Json.to_str with
                | Some "fin" -> handle_fin j
                | _ -> (
                  match parse_row j with
                  | Ok row ->
                    rows := row :: !rows;
                    incr nrows;
                    Ok ()
                  | Error (Malformed reason) -> fail reason
                  | Error e -> Error e))
          in
          crc := Crc32.update (Crc32.update !crc line) "\n";
          offset := !offset + String.length line + 1;
          incr lineno;
          go rest
      in
      let* () = go rows_lines in
      let clean_prefix_rows, clean_prefix_bytes =
        match !prefix_end with Some p -> p | None -> (!nrows, !offset)
      in
      Ok
        ( { meta; rows = List.rev !rows; sealed = !sealed },
          List.rev !drops,
          clean_prefix_rows,
          clean_prefix_bytes ))

let of_lines lines =
  let* ledger, _, _, _ = parse_body ~lenient:false lines in
  Ok ledger

let of_string s =
  of_lines (String.split_on_char '\n' s)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error (Malformed msg)

let salvage_string s =
  let* ledger, dropped, clean_prefix_rows, clean_prefix_bytes =
    parse_body ~lenient:true (String.split_on_char '\n' s)
  in
  (* The scanner overcounts the final offset by one when the file lacks a
     trailing newline; clamp so the prefix is always a real substring. *)
  Ok
    { ledger;
      dropped;
      clean_prefix_rows;
      clean_prefix_bytes = min clean_prefix_bytes (String.length s) }

let salvage path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> salvage_string contents
  | exception Sys_error msg -> Error (Malformed msg)

let repair_string s =
  let* r = salvage_string s in
  let prefix = String.sub s 0 r.clean_prefix_bytes in
  let prefix =
    if prefix = "" || prefix.[String.length prefix - 1] = '\n' then prefix else prefix ^ "\n"
  in
  let fin =
    Json.to_string (fin_json ~rows:r.clean_prefix_rows ~crc:(Crc32.digest prefix))
  in
  Ok (prefix ^ fin ^ "\n", r)
