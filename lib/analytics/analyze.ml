module Metric = Wayfinder_platform.Metric
module Obs = Wayfinder_obs

let default_epsilon = 0.01
let default_window = 25

type report = {
  label : string;
  algo : string option;
  metric : Metric.t;
  iterations : int;
  best : (int * float) option;
  final_regret : float;  (** Always 0 when any success exists; NaN otherwise. *)
  epsilon : float;
  samples_to_within : int option;
  virtual_seconds_to_within : float option;
  samples_to_best : int option;
  total_virtual_seconds : float;
  crash_rate : float;
  transient_rate : float;
  failure_counts : (string * int) list;
  coverage : Series.coverage;
  calibration : Calibration.t;
  objective_best : (Metric.t * (int * float) option) array;
      (** Per objective of a multi-objective run: best (iteration, raw
          value) under that objective's own metric.  [[||]] for scalar
          runs. *)
  pareto_size : int option;
  hypervolume_proxy : float option;
}

let of_series ?(label = "run") ?algo ?(epsilon = default_epsilon) (s : Series.t) =
  let regret = Series.simple_regret s in
  let n = Array.length regret in
  { label;
    algo;
    metric = s.Series.metric;
    iterations = Series.length s;
    best = Series.best s;
    final_regret = (if n = 0 then nan else regret.(n - 1));
    epsilon;
    samples_to_within = Series.samples_to_within s ~epsilon;
    virtual_seconds_to_within = Series.virtual_seconds_to_within s ~epsilon;
    samples_to_best = Series.samples_to_best s;
    total_virtual_seconds = Series.last_at_seconds s;
    crash_rate = Series.crash_rate s;
    transient_rate = Series.transient_rate s;
    failure_counts = Series.failure_counts s;
    coverage = Series.coverage s;
    calibration = Calibration.of_series s;
    objective_best =
      Array.mapi (fun i m -> (m, Series.objective_best s i)) s.Series.objectives;
    pareto_size =
      Option.map Wayfinder_platform.Pareto.size (Series.pareto s);
    hypervolume_proxy = Series.hypervolume_proxy s }

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let pct v = Printf.sprintf "%.1f%%" (100. *. v)

let opt_f fmt = function Some v -> fmt v | None -> "-"
let opt_int = opt_f string_of_int

let to_text r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "run: %s%s" r.label (match r.algo with Some a -> Printf.sprintf " (%s)" a | None -> "");
  line "metric: %s [%s, %s]" r.metric.Metric.metric_name r.metric.Metric.unit_name
    (if r.metric.Metric.maximize then "maximize" else "minimize");
  line "iterations: %d (virtual %s)" r.iterations (Obs.Summary.si r.total_virtual_seconds);
  (match r.best with
  | Some (i, v) -> line "best: %.3f %s at iteration %d" v r.metric.Metric.unit_name i
  | None -> line "best: - (no successful evaluation)");
  line "samples to within %.1f%% of best: %s (virtual %s)" (100. *. r.epsilon)
    (opt_int r.samples_to_within)
    (opt_f Obs.Summary.si r.virtual_seconds_to_within);
  line "samples to best: %s" (opt_int r.samples_to_best);
  if r.objective_best <> [||] then begin
    line "objectives:";
    Array.iter
      (fun ((m : Metric.t), best) ->
        match best with
        | Some (i, v) ->
          line "  %-12s best %.3f %s at iteration %d" m.Metric.metric_name v
            m.Metric.unit_name i
        | None -> line "  %-12s best - (no measurement)" m.Metric.metric_name)
      r.objective_best;
    (match (r.pareto_size, r.hypervolume_proxy) with
    | Some n, Some hv -> line "  pareto front: %d points, hypervolume proxy %.4f" n hv
    | _ -> ())
  end;
  line "crash rate: %s   transient rate: %s" (pct r.crash_rate) (pct r.transient_rate);
  if r.failure_counts <> [] then
    line "failures: %s"
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) r.failure_counts));
  let c = r.coverage in
  line "coverage: %d evaluated, %d distinct configs, %d distinct images (stage keys)"
    c.Series.evaluated c.Series.distinct_configs c.Series.distinct_stage_keys;
  Array.iter
    (fun (name, counts) ->
      if counts <> [] then
        line "  %-24s %s" name
          (String.concat " "
             (List.map (fun (tok, n) -> Printf.sprintf "%s:%d" tok n) counts)))
    c.Series.marginals;
  let cal = r.calibration in
  line "calibration:";
  line "  crash pairs: %d   Brier: %s" cal.Calibration.crash_pairs
    (opt_f (Printf.sprintf "%.4f") cal.Calibration.brier);
  if cal.Calibration.reliability <> [||] then begin
    line "  reliability (predicted -> observed):";
    Array.iter
      (fun (b : Calibration.reliability_bin) ->
        if b.Calibration.count > 0 then
          line "    [%.1f,%.1f) n=%-4d predicted %.3f observed %.3f" b.Calibration.lo
            b.Calibration.hi b.Calibration.count b.Calibration.mean_predicted
            b.Calibration.observed_rate)
      cal.Calibration.reliability
  end;
  line "  value pairs: %d   MAE: %s" cal.Calibration.value_pairs
    (opt_f (Printf.sprintf "%.4f") cal.Calibration.mae);
  line "  uncertainty pairs: %d   Spearman(sigma, |err|): %s"
    cal.Calibration.uncertainty_pairs
    (opt_f (Printf.sprintf "%.4f") cal.Calibration.uncertainty_spearman);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let opt_num = function Some v -> Json.Num v | None -> Json.Null
let opt_num_i = function Some v -> Json.Num (float_of_int v) | None -> Json.Null

let to_json r =
  let cal = r.calibration in
  (* Objective members are appended, and only for multi-objective runs, so
     scalar reports serialize byte-identically to earlier versions. *)
  let objective_members =
    if r.objective_best = [||] then []
    else
      [ ( "objectives",
          Json.List
            (Array.to_list
               (Array.map
                  (fun ((m : Metric.t), best) ->
                    Json.Obj
                      [ ("name", Json.Str m.Metric.metric_name);
                        ("unit", Json.Str m.Metric.unit_name);
                        ("maximize", Json.Bool m.Metric.maximize);
                        ( "best",
                          match best with
                          | Some (i, v) ->
                            Json.Obj
                              [ ("iteration", Json.Num (float_of_int i));
                                ("value", Json.Num v) ]
                          | None -> Json.Null ) ])
                  r.objective_best)) );
        ("pareto_size", opt_num_i r.pareto_size);
        ("hypervolume_proxy", opt_num r.hypervolume_proxy) ]
  in
  Json.Obj
    ([ ("label", Json.Str r.label);
      ("algo", (match r.algo with Some a -> Json.Str a | None -> Json.Null));
      ( "metric",
        Json.Obj
          [ ("name", Json.Str r.metric.Metric.metric_name);
            ("unit", Json.Str r.metric.Metric.unit_name);
            ("maximize", Json.Bool r.metric.Metric.maximize) ] );
      ("iterations", Json.Num (float_of_int r.iterations));
      ( "best",
        match r.best with
        | Some (i, v) ->
          Json.Obj [ ("iteration", Json.Num (float_of_int i)); ("value", Json.Num v) ]
        | None -> Json.Null );
      ("final_regret", Json.Num r.final_regret);
      ("epsilon", Json.Num r.epsilon);
      ("samples_to_within", opt_num_i r.samples_to_within);
      ("virtual_seconds_to_within", opt_num r.virtual_seconds_to_within);
      ("samples_to_best", opt_num_i r.samples_to_best);
      ("total_virtual_seconds", Json.Num r.total_virtual_seconds);
      ("crash_rate", Json.Num r.crash_rate);
      ("transient_rate", Json.Num r.transient_rate);
      ( "failure_counts",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) r.failure_counts) );
      ( "coverage",
        Json.Obj
          [ ("evaluated", Json.Num (float_of_int r.coverage.Series.evaluated));
            ("distinct_configs", Json.Num (float_of_int r.coverage.Series.distinct_configs));
            ( "distinct_stage_keys",
              Json.Num (float_of_int r.coverage.Series.distinct_stage_keys) );
            ( "marginals",
              Json.Obj
                (Array.to_list
                   (Array.map
                      (fun (name, counts) ->
                        ( name,
                          Json.Obj
                            (List.map (fun (tok, n) -> (tok, Json.Num (float_of_int n))) counts)
                        ))
                      r.coverage.Series.marginals)) ) ] );
      ( "calibration",
        Json.Obj
          [ ("crash_pairs", Json.Num (float_of_int cal.Calibration.crash_pairs));
            ("brier", opt_num cal.Calibration.brier);
            ( "reliability",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun (b : Calibration.reliability_bin) ->
                        Json.Obj
                          [ ("lo", Json.Num b.Calibration.lo);
                            ("hi", Json.Num b.Calibration.hi);
                            ("count", Json.Num (float_of_int b.Calibration.count));
                            ("mean_predicted", Json.Num b.Calibration.mean_predicted);
                            ("observed_rate", Json.Num b.Calibration.observed_rate) ])
                      cal.Calibration.reliability)) );
            ("value_pairs", Json.Num (float_of_int cal.Calibration.value_pairs));
            ("mae", opt_num cal.Calibration.mae);
            ("uncertainty_pairs", Json.Num (float_of_int cal.Calibration.uncertainty_pairs));
            ("uncertainty_spearman", opt_num cal.Calibration.uncertainty_spearman) ] ) ]
     @ objective_members)

(* ------------------------------------------------------------------ *)
(* Per-iteration series CSV                                            *)
(* ------------------------------------------------------------------ *)

let series_csv ?(window = default_window) (s : Series.t) =
  let bsf = Series.best_so_far s in
  let regret = Series.simple_regret s in
  let crash_w = Series.windowed_crash_rate s ~window in
  let transient_w = Series.windowed_transient_rate s ~window in
  (* Per-objective best-so-far columns are appended only for
     multi-objective runs, so scalar CSVs stay byte-identical. *)
  let n_obj = Series.objective_count s in
  let obj_bsf = Array.init n_obj (Series.objective_best_so_far s) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "iteration,value,best_so_far,simple_regret,crash_rate_w%d,transient_rate_w%d,at_s"
       window window);
  Array.iter
    (fun (m : Metric.t) ->
      Buffer.add_string buf (Printf.sprintf ",best_%s" m.Metric.metric_name))
    s.Series.objectives;
  Buffer.add_char buf '\n';
  let num v = Json.number_to_string v in
  Array.iteri
    (fun i (r : Series.row) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%s,%s,%s" r.Series.index
           (match r.Series.value with Some v -> num v | None -> "")
           (num bsf.(i)) (num regret.(i)) (num crash_w.(i)) (num transient_w.(i))
           (num r.Series.at_seconds));
      Array.iter (fun col -> Buffer.add_string buf ("," ^ num col.(i))) obj_bsf;
      Buffer.add_char buf '\n')
    s.Series.rows;
  Buffer.contents buf
