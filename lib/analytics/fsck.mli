(** [wayfinder fsck] — validate every durable artifact a search leaves
    behind: checkpoint generations (sealed CRC envelopes), run ledgers
    (fin seals, torn tails), JSON reports and JSONL streams, plus stray
    [.tmp] staging files from interrupted atomic writes.

    The scanner classifies each file by name ([*.ckpt], [*.ckpt.N],
    [*.jsonl], [*.json], [*.tmp]) with a content sniff as fallback, so a
    directory of mixed artifacts can be checked in one pass.  With
    [repair] it truncates torn ledger tails to the clean prefix
    (re-sealed; the original kept as [path.bak]), quarantines corrupt
    checkpoint generations to [path.bak] (so {!Checkpoint.load_latest}
    falls back past them), and removes stray staging files.  Corrupt
    JSON reports are flagged but never modified — there is no prefix
    semantics to repair them by. *)

type kind =
  | Checkpoint_gen  (** A checkpoint primary or rotated generation. *)
  | Ledger
  | Jsonl_stream  (** A schema-headed JSONL file of another kind (trace). *)
  | Json_report  (** A single-document JSON file (analyze / bench output). *)
  | Model_entry
      (** A registry model entry ([*.model], or a rotated generation):
          validated through {!Wayfinder_platform.Registry} — Valid when
          sealed and self-consistent, Unsealed when the body parses but
          the crc trailer is missing, Corrupt otherwise.  [--repair]
          quarantines corrupt entries to [.bak] so lookups skip them. *)
  | Tmp  (** A [.tmp] staging file from an interrupted atomic write. *)

val kind_to_string : kind -> string

type status =
  | Valid
  | Unsealed
      (** A ledger (or stream) without a fin seal: every record parses,
          but the file cannot prove it is complete — the normal state of
          a killed run, reported distinctly from corruption. *)
  | Corrupt
  | Stray  (** A leftover [.tmp] file; loaders ignore it. *)

val status_to_string : status -> string

type finding = {
  path : string;
  kind : kind;
  status : status;
  detail : string;  (** Human diagnosis: row counts, the exact parse error… *)
  action : string option;  (** The repair applied, when [repair] was set. *)
}

type report = {
  findings : finding list;  (** One per scanned file, in scan order. *)
  scanned : int;
  valid : int;
  unsealed : int;
  corrupt : int;
  stray : int;
  repaired : int;
  clean : bool;
      (** No unrepaired corruption remains — the CLI's exit status.
          Unsealed ledgers and (repaired) strays do not dirty a tree. *)
}

val scan : ?repair:bool -> string list -> report
(** Check every file under [paths] (directories are walked recursively,
    in sorted order; files are taken as given).  Unrecognized files —
    and [.bak] quarantine files from an earlier [--repair] — are skipped
    silently.  [repair] defaults to [false] — a plain scan never
    modifies anything. *)

val report_json : report -> Json.t
(** The machine-readable report ([wayfinder fsck --json], uploaded as a
    CI artifact). *)

val finding_to_string : finding -> string
