(** The [--progress N] one-line live snapshot.

    Built from the same {!Series} code the [analyze] subcommand uses —
    there is deliberately no duplicated math here: the line is a
    projection of {!Series.best}, {!Series.regret_slope},
    {!Series.crash_rate} and two observability aggregates (image-cache
    hit rate, mean worker busyness). *)

module Metric = Wayfinder_platform.Metric
module Obs = Wayfinder_obs

type snapshot = {
  iteration : int;
  best : float option;
  regret_slope : float;  (** Score units per sample, trailing window. *)
  crash_rate : float;
  cache_hit_rate : float option;
      (** [hits / (hits + misses)] of the shared image cache; [None]
          before the first lookup or without metrics. *)
  worker_busy : float option;
      (** Mean busy fraction of the worker pool; [None] unless
          [workers > 1] and the histogram has samples. *)
  virtual_seconds : float;
}

val default_window : int
(** 25 — trailing window for the slope. *)

val of_series :
  ?window:int -> ?metrics:Obs.Metrics.snapshot -> ?workers:int -> Series.t -> snapshot

val to_line : ?alerts:string list -> metric:Metric.t -> snapshot -> string
(** e.g. [[iter 120] best 812.300 req/s | slope +0.42/it | crash 18% |
    cache 37% | busy 86% | vt 3.4h].  [alerts] (default none) appends the
    active alert-rule names: [... | ALERT crash,stall]. *)
