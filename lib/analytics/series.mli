(** Derived analytics series — one implementation, three sources.

    A {!t} is built from a live {!Wayfinder_platform.History.t} (plus its
    space), from a loaded {!Ledger.t}, or from a [History.to_csv] export;
    every downstream consumer (the [analyze]/[compare] subcommands, the
    [--progress] line, the figure benches) computes on the same rows with
    the same code.  The analytics conformance property pins the first two
    sources to byte-identical rows and series for the same run. *)

module Param = Wayfinder_configspace.Param
module Space = Wayfinder_configspace.Space
module History = Wayfinder_platform.History
module Metric = Wayfinder_platform.Metric
module Failure = Wayfinder_platform.Failure
module Search_algorithm = Wayfinder_platform.Search_algorithm
module Pareto = Wayfinder_platform.Pareto

type row = Ledger.row = {
  index : int;
  tokens : string array;
  value : float option;
  failure : Failure.t option;
  at_seconds : float;
  eval_seconds : float;
  built : bool;
  decide_seconds : float;
  belief : Search_algorithm.belief option;
  objectives : float array option;
      (** Raw objective vector (multi-objective ledgers only); [None] from
          CSV and on scalar rows. *)
}

type t = {
  metric : Metric.t;
  names : string array;  (** Positional parameter names; [[||]] from CSV. *)
  stages : Param.stage array;  (** Aligned with [names]. *)
  rows : row array;  (** Completion order. *)
  objectives : Metric.t array;
      (** Objective spec of a multi-objective run; [[||]] for scalar runs
          (and from CSV, which does not carry vectors). *)
}

(** {1 Constructors} *)

val of_history :
  ?beliefs:(int -> Search_algorithm.belief option) ->
  ?objectives:Metric.t array ->
  space:Space.t ->
  History.t ->
  t
(** [beliefs] looks up the recorded pre-evaluation belief by iteration
    index (as collected through [Driver.run ~on_record]); defaults to
    none.  [objectives] is the target's objective spec (defaults to
    scalar, [[||]]). *)

val of_ledger : Ledger.t -> t

val of_csv : metric:Metric.t -> string -> (t, string) result
(** Parses a [History.to_csv] export (RFC 4180, columns located by
    header name).  Configurations and beliefs are absent from CSV, so
    {!coverage} and calibration degenerate to empty. *)

(** {1 Convergence} *)

val length : t -> int

val best : t -> (int * float) option
(** Best successful (iteration index, raw value) under the metric. *)

val best_so_far : t -> float array
(** Running best raw value; NaN before the first success. *)

val simple_regret : t -> float array
(** Score-space distance of the running best from the run's final best;
    NaN before the first success, 0 once the final best is found. *)

val samples_to_within : t -> epsilon:float -> int option
(** Samples spent until the running best scores within [epsilon]
    (relative, on score magnitude) of the final best; [None] when the run
    never succeeds. *)

val virtual_seconds_to_within : t -> epsilon:float -> float option
(** Virtual clock reading at that same iteration. *)

val samples_to_best : t -> int option
(** Samples spent (in completion order) until the best entry itself. *)

(** {1 History-compatible plotting series}

    Same semantics as the corresponding {!History} functions, so the
    figure benches can compute them from any source. *)

val values : t -> float array
val crash_indicator : t -> float array

val best_over_time : t -> bucket_s:float -> horizon_s:float -> float array
(** Running best bucketed over virtual time, gaps forward-filled (the
    Figure 9 rendering).  @raise Invalid_argument if [bucket_s <= 0]. *)

(** {1 Failure rates} *)

val crash_rate : t -> float
(** Fraction of config-caused ({!Failure.counts_as_crash}) failures. *)

val transient_rate : t -> float
(** Fraction of transient/timeout failures. *)

val windowed_crash_rate : t -> window:int -> float array
(** Trailing-window crash rate per iteration (window truncated at the
    start of the run).  @raise Invalid_argument if [window <= 0]. *)

val windowed_transient_rate : t -> window:int -> float array

val failure_counts : t -> (string * int) list
(** Failure name → occurrences, sorted by name. *)

(** {1 Space coverage} *)

type coverage = {
  evaluated : int;
  distinct_configs : int;
  distinct_stage_keys : int;
      (** Distinct non-runtime projections — images the run needed. *)
  marginals : (string * (string * int) list) array;
      (** Per parameter: value token → times proposed, sorted by token. *)
}

val coverage : t -> coverage

(** {1 Progress helpers} *)

val regret_slope : t -> window:int -> float
(** Least-squares slope (score units per sample) of the running best over
    the trailing [window] finite points; 0 with fewer than two.
    @raise Invalid_argument if [window <= 0]. *)

val total_eval_seconds : t -> float
val last_at_seconds : t -> float
(** Virtual clock at the last completed iteration; 0 when empty. *)

(** {1 Objective series}

    All of these index into the run's objective spec ([t.objectives]);
    rows whose vector is absent (failures, scalar rows) are skipped. *)

val objective_count : t -> int

val objective_best : t -> int -> (int * float) option
(** Best (iteration index, raw value) of objective [i] under that
    objective's own metric. *)

val objective_best_so_far : t -> int -> float array
(** Running best of objective [i]; NaN before its first measurement. *)

val pareto : t -> Pareto.t option
(** Non-dominated front over all successful rows with a full objective
    vector; [None] for scalar runs. *)

val hypervolume_proxy : t -> float option
(** {!Pareto.hypervolume_proxy} of {!pareto}; [None] for scalar runs. *)
