module Mat = Wayfinder_tensor.Mat
module Rng = Wayfinder_tensor.Rng
module Vec = Wayfinder_tensor.Vec

type spec = [ `Dense of int | `Relu | `Dropout of float ]

type layer =
  | L_dense of Layer.Dense.t
  | L_relu of Layer.Relu.t
  | L_dropout of Layer.Dropout.t

type t = {
  layers : layer array;
  in_dim : int;
  out_dim : int;
  mutable hidden : Mat.t list;  (* dense outputs of the last forward, reversed *)
}

let create rng ~in_dim spec =
  (match spec with
  | [] -> invalid_arg "Network.create: empty spec"
  | `Dense _ :: _ -> ()
  | (`Relu | `Dropout _) :: _ -> invalid_arg "Network.create: first layer must be `Dense");
  let width = ref in_dim in
  let layers =
    List.map
      (fun s ->
        match s with
        | `Dense n ->
          let l = Layer.Dense.create rng ~in_dim:!width ~out_dim:n in
          width := n;
          L_dense l
        | `Relu -> L_relu (Layer.Relu.create ())
        | `Dropout rate -> L_dropout (Layer.Dropout.create ~rate))
      spec
  in
  { layers = Array.of_list layers; in_dim; out_dim = !width; hidden = [] }

let in_dim t = t.in_dim
let out_dim t = t.out_dim

let forward t ?(train = true) rng x =
  t.hidden <- [];
  Array.fold_left
    (fun acc layer ->
      match layer with
      | L_dense l ->
        let y = Layer.Dense.forward l acc in
        t.hidden <- y :: t.hidden;
        y
      | L_relu l -> Layer.Relu.forward l acc
      | L_dropout l -> Layer.Dropout.forward l ~train rng acc)
    x t.layers

let forward_vec t rng v =
  let batch = Mat.of_rows [| v |] in
  Mat.row (forward t ~train:false rng batch) 0

let backward t dy =
  let acc = ref dy in
  for i = Array.length t.layers - 1 downto 0 do
    acc :=
      (match t.layers.(i) with
      | L_dense l -> Layer.Dense.backward l !acc
      | L_relu l -> Layer.Relu.backward l !acc
      | L_dropout l -> Layer.Dropout.backward l !acc)
  done;
  !acc

let params t =
  Array.to_list t.layers
  |> List.concat_map (function
       | L_dense l -> Layer.Dense.params l
       | L_relu _ | L_dropout _ -> [])

let copy t =
  { layers =
      Array.map
        (function
          | L_dense l -> L_dense (Layer.Dense.copy l)
          | L_relu _ -> L_relu (Layer.Relu.create ())
          | L_dropout l -> L_dropout (Layer.Dropout.create ~rate:(Layer.Dropout.rate l)))
        t.layers;
    in_dim = t.in_dim;
    out_dim = t.out_dim;
    hidden = [] }

let hidden_after_forward t =
  if t.hidden = [] then invalid_arg "Network.hidden_after_forward: no forward pass recorded";
  List.rev t.hidden

let save_weights t =
  let chunks = List.map (fun p -> Mat.to_array p.Layer.value) (params t) in
  Array.concat chunks

let load_weights t flat =
  let expected = List.fold_left (fun acc p -> acc + Mat.numel p.Layer.value) 0 (params t) in
  if Array.length flat <> expected then
    invalid_arg
      (Printf.sprintf "Network.load_weights: expected %d values, got %d" expected
         (Array.length flat));
  let pos = ref 0 in
  List.iter
    (fun p ->
      let n = Mat.numel p.Layer.value in
      Mat.blit_from_array ~src_pos:!pos flat p.Layer.value;
      pos := !pos + n)
    (params t)
