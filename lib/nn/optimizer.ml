module Mat = Wayfinder_tensor.Mat

type algorithm =
  | Sgd of { momentum : float; velocity : float array array }
  | Adam of {
      beta1 : float;
      beta2 : float;
      epsilon : float;
      m : float array array;
      v : float array array;
      mutable step_count : int;
    }

type t = {
  mutable lr : float;
  weight_decay : float;
  params : Layer.tensor array;
  algorithm : algorithm;
}

let state_like params = Array.map (fun p -> Array.make (Mat.numel p.Layer.value) 0.) params

let sgd ?(momentum = 0.) ?(weight_decay = 0.) ~lr params =
  let params = Array.of_list params in
  { lr; weight_decay; params; algorithm = Sgd { momentum; velocity = state_like params } }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(epsilon = 1e-8) ?(weight_decay = 0.) ~lr params =
  let params = Array.of_list params in
  { lr;
    weight_decay;
    params;
    algorithm = Adam { beta1; beta2; epsilon; m = state_like params; v = state_like params; step_count = 0 } }

let zero_grads t = Array.iter Layer.zero_grad t.params

let step t =
  (match t.algorithm with
  | Sgd { momentum; velocity } ->
    Array.iteri
      (fun pi p ->
        let value = p.Layer.value.Mat.data and grad = p.Layer.grad.Mat.data in
        let vel = velocity.(pi) in
        for i = 0 to Mat.numel p.Layer.value - 1 do
          vel.(i) <- (momentum *. vel.(i)) -. (t.lr *. grad.{i});
          value.{i} <- value.{i} +. vel.(i)
        done)
      t.params
  | Adam ({ beta1; beta2; epsilon; m; v; _ } as state) ->
    state.step_count <- state.step_count + 1;
    let k = float_of_int state.step_count in
    let corr1 = 1. -. (beta1 ** k) and corr2 = 1. -. (beta2 ** k) in
    Array.iteri
      (fun pi p ->
        let value = p.Layer.value.Mat.data and grad = p.Layer.grad.Mat.data in
        let mp = m.(pi) and vp = v.(pi) in
        for i = 0 to Mat.numel p.Layer.value - 1 do
          mp.(i) <- (beta1 *. mp.(i)) +. ((1. -. beta1) *. grad.{i});
          vp.(i) <- (beta2 *. vp.(i)) +. ((1. -. beta2) *. grad.{i} *. grad.{i});
          let m_hat = mp.(i) /. corr1 and v_hat = vp.(i) /. corr2 in
          value.{i} <- value.{i} -. (t.lr *. m_hat /. (sqrt v_hat +. epsilon))
        done)
      t.params);
  (* Decoupled weight decay (AdamW-style), applied to every parameter. *)
  if t.weight_decay > 0. then
    Array.iter
      (fun p ->
        let value = p.Layer.value.Mat.data in
        for i = 0 to Mat.numel p.Layer.value - 1 do
          value.{i} <- value.{i} *. (1. -. (t.lr *. t.weight_decay))
        done)
      t.params;
  zero_grads t

let set_lr t lr = t.lr <- lr
let lr t = t.lr
