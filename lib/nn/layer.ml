module Mat = Wayfinder_tensor.Mat
module Rng = Wayfinder_tensor.Rng

type tensor = { value : Mat.t; grad : Mat.t }

let tensor_zeros rows cols = { value = Mat.zeros rows cols; grad = Mat.zeros rows cols }

let zero_grad t = Mat.fill t.grad 0.

module Dense = struct
  type t = {
    w : tensor;  (* in_dim × out_dim *)
    b : tensor;  (* 1 × out_dim *)
    mutable last_input : Mat.t option;
  }

  let create rng ~in_dim ~out_dim =
    let scale = sqrt (2. /. float_of_int in_dim) in
    let w = tensor_zeros in_dim out_dim in
    for i = 0 to Mat.numel w.value - 1 do
      Mat.set_flat w.value i (Rng.normal rng ~sigma:scale ())
    done;
    { w; b = tensor_zeros 1 out_dim; last_input = None }

  let in_dim t = t.w.value.Mat.rows
  let out_dim t = t.w.value.Mat.cols

  let forward t x =
    t.last_input <- Some x;
    let y = Mat.matmul x t.w.value in
    for i = 0 to y.Mat.rows - 1 do
      for j = 0 to y.Mat.cols - 1 do
        Mat.set y i j (Mat.get y i j +. Mat.get t.b.value 0 j)
      done
    done;
    y

  let backward t dy =
    let x =
      match t.last_input with
      | Some x -> x
      | None -> invalid_arg "Dense.backward: no forward pass recorded"
    in
    (* dW += xᵀ · dy ; db += column sums of dy ; dX = dy · Wᵀ *)
    let dw = Mat.matmul (Mat.transpose x) dy in
    Mat.add_into ~dst:t.w.grad dw;
    for j = 0 to dy.Mat.cols - 1 do
      let acc = ref 0. in
      for i = 0 to dy.Mat.rows - 1 do
        acc := !acc +. Mat.get dy i j
      done;
      Mat.set t.b.grad 0 j (Mat.get t.b.grad 0 j +. !acc)
    done;
    Mat.matmul dy (Mat.transpose t.w.value)

  let params t = [ t.w; t.b ]

  let copy t =
    { w = { value = Mat.copy t.w.value; grad = Mat.zeros t.w.value.Mat.rows t.w.value.Mat.cols };
      b = { value = Mat.copy t.b.value; grad = Mat.zeros 1 t.b.value.Mat.cols };
      last_input = None }

  let weights t = t.w.value
end

module Relu = struct
  type t = { mutable last_input : Mat.t option }

  let create () = { last_input = None }

  let forward t x =
    t.last_input <- Some x;
    Mat.map (fun v -> if v > 0. then v else 0.) x

  let backward t dy =
    match t.last_input with
    | None -> invalid_arg "Relu.backward: no forward pass recorded"
    | Some x ->
      Mat.map2 (fun xi g -> if xi > 0. then g else 0.) x dy
end

module Dropout = struct
  type t = { rate : float; mutable mask : Mat.t option }

  let create ~rate =
    if rate < 0. || rate >= 1. then invalid_arg "Dropout.create: rate must be in [0, 1)";
    { rate; mask = None }

  let rate t = t.rate

  let forward t ?(train = true) rng x =
    if (not train) || t.rate = 0. then begin
      t.mask <- None;
      x
    end
    else begin
      let keep = 1. -. t.rate in
      let mask = Mat.map (fun _ -> if Rng.bernoulli rng keep then 1. /. keep else 0.) x in
      t.mask <- Some mask;
      Mat.hadamard x mask
    end

  let backward t dy =
    match t.mask with None -> dy | Some mask -> Mat.hadamard dy mask
end

module Rbf = struct
  type t = {
    c : tensor;  (* centroids × in_dim *)
    gamma : float;
    mutable last_input : Mat.t option;
    mutable last_output : Mat.t option;
  }

  let create rng ~in_dim ~centroids ~gamma =
    let c = tensor_zeros centroids in_dim in
    (* Centroids start near the origin of the z-scored feature space. *)
    for i = 0 to Mat.numel c.value - 1 do
      Mat.set_flat c.value i (Rng.normal rng ~sigma:0.5 ())
    done;
    { c; gamma; last_input = None; last_output = None }

  let centroid_count t = t.c.value.Mat.rows
  let centroid_matrix t = t.c.value

  let forward t z =
    let m = centroid_count t in
    let d = t.c.value.Mat.cols in
    if z.Mat.cols <> d then invalid_arg "Rbf.forward: input dimension mismatch";
    let denom = 2. *. t.gamma *. t.gamma in
    let phi = Mat.zeros z.Mat.rows m in
    for i = 0 to z.Mat.rows - 1 do
      for k = 0 to m - 1 do
        let acc = ref 0. in
        for j = 0 to d - 1 do
          let delta = Mat.get z i j -. Mat.get t.c.value k j in
          acc := !acc +. (delta *. delta)
        done;
        Mat.set phi i k (exp (-. !acc /. denom))
      done
    done;
    t.last_input <- Some z;
    t.last_output <- Some phi;
    phi

  let backward t dphi =
    let z, phi =
      match (t.last_input, t.last_output) with
      | Some z, Some phi -> (z, phi)
      | _, _ -> invalid_arg "Rbf.backward: no forward pass recorded"
    in
    let m = centroid_count t in
    let d = t.c.value.Mat.cols in
    let inv_gamma2 = 1. /. (t.gamma *. t.gamma) in
    let dz = Mat.zeros z.Mat.rows d in
    (* dφ/dc_k = φ · (z - c_k)/γ² ; dφ/dz = -φ · (z - c_k)/γ² *)
    for i = 0 to z.Mat.rows - 1 do
      for k = 0 to m - 1 do
        let coeff = Mat.get dphi i k *. Mat.get phi i k *. inv_gamma2 in
        if coeff <> 0. then
          for j = 0 to d - 1 do
            let delta = Mat.get z i j -. Mat.get t.c.value k j in
            Mat.set t.c.grad k j (Mat.get t.c.grad k j +. (coeff *. delta));
            Mat.set dz i j (Mat.get dz i j -. (coeff *. delta))
          done
      done
    done;
    dz

  let params t = [ t.c ]

  let copy t =
    { c = { value = Mat.copy t.c.value; grad = Mat.zeros t.c.value.Mat.rows t.c.value.Mat.cols };
      gamma = t.gamma;
      last_input = None;
      last_output = None }
end
