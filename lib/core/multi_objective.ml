module Space = Wayfinder_configspace.Space
module Encoding = Wayfinder_configspace.Encoding
module Rng = Wayfinder_tensor.Rng
module Vec = Wayfinder_tensor.Vec
module Stat = Wayfinder_tensor.Stat
module Random_search = Wayfinder_platform.Random_search

type objective = { label : string; weight : float }

let normalised_weights objectives =
  let total = List.fold_left (fun acc o -> acc +. o.weight) 0. objectives in
  if total <= 0. then invalid_arg "Multi_objective: weights must sum to a positive value";
  List.map (fun o -> o.weight /. total) objectives

let rank ?(alpha = 0.5) ?(exploration_weight = 1.0) ?(crash_penalty = 3.0) ~objectives
    ~(prediction : Dtm_multi.prediction) ~dissimilarity () =
  let weights = Array.of_list (normalised_weights objectives) in
  if Array.length weights <> Array.length prediction.Dtm_multi.normalized_performances then
    invalid_arg "Multi_objective.rank: objective/prediction count mismatch";
  let bonus =
    Scoring.score ~alpha ~dissimilarity ~uncertainty:prediction.Dtm_multi.uncertainty ()
  in
  (* Eq. 3 per metric, then the weighted average of the per-metric ranks
     (performance term differs per metric; the exploration bonus is shared
     because novelty is a property of the configuration). *)
  let per_metric =
    Array.map
      (fun mu -> mu +. (exploration_weight *. bonus))
      prediction.Dtm_multi.normalized_performances
  in
  let aggregate = ref 0. in
  Array.iteri (fun k r -> aggregate := !aggregate +. (weights.(k) *. r)) per_metric;
  !aggregate -. (crash_penalty *. prediction.Dtm_multi.crash_probability)

type proposer = {
  options : Deeptune.options;
  objectives : objective list;
  space : Space.t;
  encoding : Encoding.t;
  model : Dtm_multi.t;
  rng : Rng.t;
  mutable known : Vec.t list;
  mutable best_configs : (float * Space.configuration * float array) list;  (* descending *)
  mutable observed : int;
  t_lo : float array;  (* running per-metric bounds for min-max scoring *)
  t_hi : float array;
}

let proposer ?(options = Deeptune.default_options) ?(seed = 0) ~objectives space =
  let n_metrics = List.length objectives in
  if n_metrics < 1 then invalid_arg "Multi_objective.proposer: no objectives";
  ignore (normalised_weights objectives);
  let rng = Rng.create (seed + 31337) in
  let encoding = Encoding.create space in
  { options;
    objectives;
    space;
    encoding;
    model =
      Dtm_multi.create ~config:options.Deeptune.dtm_config (Rng.split rng)
        ~in_dim:(Encoding.dim encoding) ~n_metrics;
    rng;
    known = [];
    best_configs = [];
    observed = 0;
    t_lo = Array.make n_metrics infinity;
    t_hi = Array.make n_metrics neg_infinity }

let model t = t.model

let fresh t =
  Random_search.sampler ?favor:t.options.Deeptune.favor
    ~strong:t.options.Deeptune.favor_strong ~weak:t.options.Deeptune.favor_weak t.space t.rng

let generate_pool t =
  List.init t.options.Deeptune.pool_size (fun k ->
      match t.best_configs with
      | (_, best, _) :: rest when k land 1 = 1 ->
        let partner = match rest with (_, second, _) :: _ -> second | [] -> best in
        if k land 2 = 2 then Space.mutate t.space t.rng best ~count:2
        else Space.crossover t.space t.rng best partner
      | _ :: _ | [] -> fresh t)

let propose t =
  if t.observed < t.options.Deeptune.warmup then fresh t
  else begin
    let scored =
      List.map
        (fun config ->
          let x = Encoding.encode t.encoding config in
          let p = Dtm_multi.predict t.model x in
          let ds = Scoring.dissimilarity x t.known in
          let r =
            rank ~alpha:t.options.Deeptune.alpha
              ~exploration_weight:t.options.Deeptune.exploration_weight
              ~crash_penalty:t.options.Deeptune.crash_penalty ~objectives:t.objectives
              ~prediction:p ~dissimilarity:ds ()
          in
          (config, p, r))
        (generate_pool t)
    in
    let admissible =
      match t.options.Deeptune.crash_gate with
      | None -> scored
      | Some gate ->
        (match
           List.filter (fun (_, p, _) -> p.Dtm_multi.crash_probability <= gate) scored
         with
        | [] -> scored
        | ok -> ok)
    in
    match
      List.fold_left
        (fun acc ((_, _, r) as item) ->
          match acc with
          | Some (_, _, best_r) when best_r >= r -> acc
          | Some _ | None -> Some item)
        None admissible
    with
    | Some (config, _, _) -> config
    | None -> fresh t
  end

(* Representative observed score: weighted sum of per-metric min-max
   normalised values over the observations so far (targets live on wildly
   different scales). *)
let representative t targets =
  Array.iteri
    (fun k v ->
      t.t_lo.(k) <- Stdlib.min t.t_lo.(k) v;
      t.t_hi.(k) <- Stdlib.max t.t_hi.(k) v)
    targets;
  let weights = Array.of_list (normalised_weights t.objectives) in
  let acc = ref 0. in
  Array.iteri
    (fun k w ->
      acc := !acc +. (w *. Stat.min_max_norm ~lo:t.t_lo.(k) ~hi:t.t_hi.(k) targets.(k)))
    weights;
  !acc

let keep_best = 4

let observe t config result =
  t.observed <- t.observed + 1;
  let x = Encoding.encode t.encoding config in
  t.known <- x :: t.known;
  (match result with
  | Ok targets ->
    Dtm_multi.add t.model { Dtm_multi.features = x; targets; crashed = false };
    let score = representative t targets in
    (* Bounds may have moved: re-score the incumbents before re-ranking. *)
    let rescored =
      List.map (fun (_, c, ts) -> (representative t ts, c, ts)) t.best_configs
    in
    t.best_configs <-
      (score, config, targets) :: rescored
      |> List.sort (fun (a, _, _) (b, _, _) -> compare b a)
      |> List.filteri (fun i _ -> i < keep_best)
  | Error _ ->
    Dtm_multi.add t.model
      { Dtm_multi.features = x;
        targets = Array.make (Dtm_multi.n_metrics t.model) 0.;
        crashed = true });
  if Dtm_multi.observations t.model >= 4 then
    Dtm_multi.train t.model ~epochs:t.options.Deeptune.train_epochs ()

let best t =
  match t.best_configs with
  | (_, config, targets) :: _ -> Some (config, targets)
  | [] -> None

(* ------------------------------------------------------------------ *)
(* Platform adapter                                                    *)
(* ------------------------------------------------------------------ *)

module Search_algorithm = Wayfinder_platform.Search_algorithm
module History = Wayfinder_platform.History
module Failure = Wayfinder_platform.Failure
module Objective = Wayfinder_platform.Objective

let algorithm ?options ?seed ~objectives ~spec space =
  let n = Array.length spec in
  if List.length objectives <> n then
    invalid_arg "Multi_objective.algorithm: objective/spec count mismatch";
  let p = proposer ?options ?seed ~objectives space in
  Search_algorithm.make ~name:"deeptune-multi"
    ~propose:(fun _ctx -> propose p)
    ~observe:(fun _ctx (e : History.entry) ->
      match (e.History.failure, e.History.objectives) with
      | Some f, _ -> observe p e.History.config (Error (Failure.to_string f))
      | None, Some vec when Array.length vec = n ->
        (* Scores, not raw values: the model wants every target
           higher-is-better regardless of the objective's direction. *)
        observe p e.History.config (Ok (Objective.scores spec vec))
      | None, (Some _ | None) ->
        (* A successful evaluation without a vector (scalar target):
           nothing to learn from at the multi-metric head. *)
        ())
    ()
