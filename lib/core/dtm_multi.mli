(** Multi-metric DeepTune Model — the extension sketched at the end of
    §3.2: "it can be extended to handle multiple metrics by adding
    additional output layers to F^p and F^u".

    Identical architecture to {!Dtm} except the regression head carries one
    (mean, log-variance) pair per metric; the crash head and the RBF
    uncertainty branch are shared (a configuration either runs or it does
    not, and novelty is metric-independent).  During scoring, eq. 3 is
    applied per metric and the per-metric ranks are combined by a weighted
    average (see {!Multi_objective}). *)

module Vec = Wayfinder_tensor.Vec
module Rng = Wayfinder_tensor.Rng

type t

type row = { features : Vec.t; targets : float array; crashed : bool }
(** One observation: [targets] are higher-is-better scores, one per
    metric (ignored when [crashed]). *)

val create : ?config:Dtm.config -> Rng.t -> in_dim:int -> n_metrics:int -> t
(** @raise Invalid_argument if [n_metrics < 1]. *)

val in_dim : t -> int
val n_metrics : t -> int

type prediction = {
  crash_probability : float;
  performances : float array;  (** De-normalised, one per metric. *)
  normalized_performances : float array;  (** Model (z-score) units. *)
  uncertainty : float;  (** Shared RBF σ̂ ∈ [0, 1]. *)
}

val predict : t -> Vec.t -> prediction

val add : t -> row -> unit
(** Append an observation ({!train} consumes everything added so far).
    @raise Invalid_argument on dimension mismatches. *)

val observations : t -> int

val train : t -> ?epochs:int -> ?batch_size:int -> unit -> unit
(** Incremental passes over the accumulated observations; refits per-metric
    target normalisation.  No-op with fewer than 2 observations. *)

(** {2 Snapshots}

    The multi-metric counterpart of {!Dtm.export}/{!Dtm.import}, so
    multi-objective models persist in the registry like scalar ones. *)

type snapshot

val export : t -> snapshot
(** Weights, RBF centroids, and the feature/per-metric target
    normalisation statistics. *)

val import : t -> snapshot -> unit
(** Load a snapshot into a {e compatible} model (same architecture,
    [in_dim] and [n_metrics]).  Unlike {!Dtm.import} the donor's feature
    statistics are {e not} frozen: the next {!train} refits them, which
    is the online-retuning behaviour multi-objective runs want.
    @raise Invalid_argument on any shape mismatch. *)

val snapshot_to_floats : snapshot -> float array
(** Flat self-describing codec (header sizes + [n_metrics], then the
    segments) for registry storage; bitwise round-trip. *)

val snapshot_of_floats : float array -> snapshot
(** @raise Invalid_argument on a truncated array. *)
