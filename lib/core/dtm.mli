(** The DeepTune Model (DTM, §3.2, Figure 4).

    A multitask neural network [F(x) → (k̂, ŷ, σ̂)] mapping a configuration's
    feature encoding to its crash probability, expected performance, and
    prediction uncertainty:

    - the {e prediction branch} [F^p] is a dense/ReLU/dropout trunk with two
      heads — a crash logit trained with the cross-entropy loss [L_CCE], and
      a heteroscedastic regression head (mean and log-variance) trained with
      the Kendall–Gal loss [L_Reg];
    - the {e uncertainty branch} [F^u] is a stack of Gaussian RBF layers
      (eq. 1), one parallel to each trunk layer, whose centroids are fitted
      to the trunk's activations by the Chamfer loss [L_Cham]; an input far
      from every centroid activates weakly, so
      [σ̂ = 1 − mean_layers (max_k φ_k)] is high exactly on outliers.

    Features and performance targets are z-score normalised from the
    training set.  Training is incremental: each {!train} call makes a few
    passes over the current history, so per-iteration cost stays linear in
    the history size (the O(n) curve of Figure 7). *)

module Dataset = Wayfinder_tensor.Dataset
module Vec = Wayfinder_tensor.Vec
module Rng = Wayfinder_tensor.Rng

type config = {
  hidden : int list;  (** Trunk widths, default [\[48; 24\]]. *)
  dropout : float;  (** Default 0.05. *)
  rbf_centroids : int;  (** Per RBF layer, default 16. *)
  rbf_gamma : float;  (** Per-dimension smoothing over trunk activations,
                          default 1.0 (the layer scales it by the square
                          root of its width; the paper's 0.1 applies to
                          z-scored raw features). *)
  learning_rate : float;  (** Adam, default 1e-3. *)
  weight_decay : float;  (** Decoupled (AdamW) decay, default 5.0 — the
                             search trains on few, high-dimensional samples
                             and overfits without it. *)
  crash_pos_weight : float;  (** Weight of crash samples in [L_CCE]
                                 (default 3.0): recall-heavy crash
                                 prediction, matching §4.3's reliance on
                                 failure accuracy over run accuracy. *)
}

val default_config : config

val validate_config : config -> unit
(** @raise Invalid_argument on a malformed config (see {!create}). *)

type t

val create : ?config:config -> Rng.t -> in_dim:int -> t
(** @raise Invalid_argument if [in_dim <= 0] or the config is malformed:
    empty or non-positive [hidden] widths, [rbf_centroids <= 0], [dropout]
    outside [0, 1), or a non-positive [learning_rate]. *)

val in_dim : t -> int

type prediction = {
  crash_probability : float;  (** k̂ ∈ (0, 1). *)
  performance : float;  (** ŷ, de-normalised to metric-score units. *)
  normalized_performance : float;  (** ŷ in the model's z-score units —
      the scale candidate ranking happens in. *)
  aleatoric_std : float;  (** √exp(s) from the regression head, de-normalised. *)
  uncertainty : float;  (** σ̂ ∈ \[0, 1\] from the RBF branch. *)
}

val predict : t -> Vec.t -> prediction
(** Raw (un-normalised) feature vector in, prediction out.  Before any
    {!train} call the model returns its untrained outputs. *)

val predict_batch : t -> Vec.t array -> prediction array
(** One forward pass over the whole batch.  Element [i] is bitwise
    identical to [predict t xs.(i)]; the batch form exists so candidate
    pools score as one large matmul (which the ambient {!Domain_pool} can
    split across cores) instead of many small ones. *)

type losses = { cce : float; reg : float; chamfer : float }

val train :
  t ->
  ?epochs:int ->
  ?batch_size:int ->
  ?on_epoch:(int -> losses -> unit) ->
  Dataset.t ->
  losses
(** Re-fit the normaliser on the dataset and run [epochs] (default 3)
    passes of mini-batch Adam (batch 32).  Returns the final epoch's mean
    loss components [L = L_CCE + L_Reg + L_Cham]; [on_epoch] (1-based) is
    called with each epoch's mean losses as they complete — the
    observability layer streams them as [deeptune.loss.*] samples.  Empty
    datasets are a no-op returning zeros. *)

(** {1 Evaluation (Table 3)} *)

type accuracy = {
  failure_accuracy : float;  (** Recall on crashing configurations. *)
  run_accuracy : float;  (** Recall on successful configurations. *)
  normalized_mae : float;  (** Performance-prediction MAE / target range. *)
}

val evaluate : ?crash_threshold:float -> t -> Dataset.t -> accuracy
(** [crash_threshold] (default 0.3): predict "crash" when [k̂] exceeds it.
    The low threshold reflects the paper's use of the model (§4.3: failure
    accuracy is trusted, run accuracy is not). *)

(** {1 Model introspection (§4.1 High-Impact parameters)} *)

val feature_sensitivity : t -> Dataset.t -> float array
(** Signed per-feature impact on predicted performance: the change in [ŷ]
    when feature [j] moves from its observed 10th to its 90th percentile,
    averaged over the dataset rows.  Positive = raising the feature raises
    predicted performance. *)

(** {1 Transfer learning (§3.3)} *)

type snapshot

val export : t -> snapshot
val import : t -> snapshot -> unit
(** @raise Invalid_argument on architecture mismatch. *)

val snapshot_to_floats : snapshot -> float array
val snapshot_of_floats : float array -> snapshot
