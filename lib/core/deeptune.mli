(** DeepTune: the neural-network search algorithm driving Wayfinder (§3.2).

    Each iteration: generate a diverse pool of candidate configurations ①,
    predict their crash probability / performance / uncertainty with the
    DTM ②, rank them with the scoring function ③ (predicted performance
    plus the eq.-3 exploration bonus, with crash-gating to skip candidates
    the model expects to fail), hand the top candidate to the platform ④,
    and fold the measured outcome back into the DTM ⑤.

    Implements the platform's {!Wayfinder_platform.Search_algorithm} API,
    including the native ask/tell batch: [propose_batch ~k] takes the top-k
    {e distinct} admissible candidates of a single scored pool (one model
    sweep per batch, padded with fresh draws when gating leaves fewer than
    k).  A trained model can be {!export}ed and reused to warm-start the
    search for a related application — the §3.3 transfer learning. *)

module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Rng = Wayfinder_tensor.Rng
module Search_algorithm = Wayfinder_platform.Search_algorithm

type options = {
  pool_size : int;  (** Candidate pool per iteration (default 96; half of it
          exploitation seeds once successes exist). *)
  alpha : float;  (** Eq. 3 balance (default 0.5). *)
  exploration_weight : float;
      (** Weight of the sf bonus relative to the (z-scored) predicted
          performance (default 1.0). *)
  crash_penalty : float;
      (** Soft penalty: the ranking subtracts [crash_penalty · k̂] so
          likelier-to-crash candidates lose even below the hard gate
          (default 3.0). *)
  crash_gate : float option;
      (** Skip candidates with [k̂] above this (default [Some 0.35]); if the
          whole pool is gated the least-crashy candidate is taken.  [None]
          disables gating (ablation). *)
  warmup : int;  (** Random iterations before the DTM is consulted (default 10). *)
  train_epochs : int;  (** Incremental-training passes per observation (default 1). *)
  favor : Param.stage option;  (** Stage bias for pool generation. *)
  favor_strong : float;  (** Vary probability for favored-stage parameters
                             in fresh pool draws (default 0.6). *)
  favor_weak : float;  (** Vary probability for the other stages
                           (default 0.05). *)
  dtm_config : Dtm.config;
}

val default_options : options

type t
(** The algorithm's mutable state: the DTM, the observation dataset and the
    encoded history. *)

val create : ?options:options -> ?seed:int -> Space.t -> t
val algorithm : t -> Search_algorithm.t
(** The pluggable view registered with the platform driver. *)

val dtm : t -> Dtm.t
val observations : t -> int

val parameter_impacts : t -> (string * float) array
(** Query the learned model for signed per-parameter performance impact
    (§4.1's High-Impact analysis), sorted by descending impact. *)

(** {1 Transfer learning (§3.3)} *)

type transfer = {
  model : Dtm.snapshot;
  incumbents : Space.configuration list;
      (** The donor's best configurations, used to seed the candidate
          pool's exploitation half. *)
}

val export : t -> transfer

val create_from : ?options:options -> ?seed:int -> Space.t -> transfer -> t
(** Warm-started search: the DTM begins with the donor's weights (and
    normaliser), so impactful parameters and crash regions are already
    partially known, and the donor's incumbents seed exploitation.  The
    random warm-up is skipped.  @raise Invalid_argument when the
    snapshot's architecture does not fit this space's encoding. *)

val seed_incumbents : t -> Space.configuration list -> unit
(** Enqueue configurations to be proposed verbatim before the pool is
    consulted — the {e overlap-only} warm start: when a registry donor's
    space merely overlaps this one (so its model weights cannot be
    imported), its projected incumbents still transfer as first
    proposals while the normal random warm-up and cold model remain.
    Ill-sized configurations are ignored. *)
