module Dataset = Wayfinder_tensor.Dataset
module Vec = Wayfinder_tensor.Vec
module Mat = Wayfinder_tensor.Mat
module Rng = Wayfinder_tensor.Rng
module Layer = Wayfinder_nn.Layer
module Loss = Wayfinder_nn.Loss
module Network = Wayfinder_nn.Network
module Optimizer = Wayfinder_nn.Optimizer

type config = {
  hidden : int list;
  dropout : float;
  rbf_centroids : int;
  rbf_gamma : float;
  learning_rate : float;
  weight_decay : float;
  crash_pos_weight : float;
}

let default_config =
  { hidden = [ 48; 24 ]; dropout = 0.05; rbf_centroids = 16; rbf_gamma = 1.0;
    learning_rate = 1e-3; weight_decay = 5.0; crash_pos_weight = 3.0 }

type t = {
  cfg : config;
  rng : Rng.t;
  in_dim : int;
  trunk : Network.t;
  crash_head : Network.t;
  perf_head : Network.t;
  rbf_layers : Layer.Rbf.t array;  (* one per trunk hidden layer *)
  optimizer : Optimizer.t;
  mutable normalizer : Dataset.normalizer option;
  mutable feature_stats_frozen : bool;
      (* Set on import: the donor's feature statistics are kept (the
         candidate generator is the same), only target statistics are
         refitted — otherwise a handful of fresh rows would scramble the
         input scaling the transferred weights expect. *)
}

let trunk_spec cfg =
  List.concat_map (fun h -> [ `Dense h; `Relu; `Dropout cfg.dropout ]) cfg.hidden

let validate_config config =
  if config.hidden = [] then invalid_arg "Dtm.create: empty hidden spec";
  if List.exists (fun h -> h <= 0) config.hidden then
    invalid_arg "Dtm.create: hidden layer widths must be positive";
  if config.rbf_centroids <= 0 then invalid_arg "Dtm.create: rbf_centroids must be positive";
  if config.dropout < 0. || config.dropout >= 1. then
    invalid_arg "Dtm.create: dropout must be in [0, 1)";
  if not (config.learning_rate > 0.) then
    invalid_arg "Dtm.create: learning_rate must be positive"

let create ?(config = default_config) rng ~in_dim =
  validate_config config;
  if in_dim <= 0 then invalid_arg "Dtm.create: in_dim must be positive";
  let trunk = Network.create rng ~in_dim (trunk_spec config) in
  let last = List.nth config.hidden (List.length config.hidden - 1) in
  let crash_head = Network.create rng ~in_dim:last [ `Dense 1 ] in
  let perf_head = Network.create rng ~in_dim:last [ `Dense 2 ] in
  let rbf_layers =
    (* The squared distance in eq. 1 grows linearly with the layer width,
       so the smoothing parameter is scaled by sqrt(width) to keep
       activations informative at any dimensionality. *)
    Array.of_list
      (List.map
         (fun h ->
           Layer.Rbf.create rng ~in_dim:h ~centroids:config.rbf_centroids
             ~gamma:(config.rbf_gamma *. sqrt (float_of_int h)))
         config.hidden)
  in
  let params =
    Network.params trunk @ Network.params crash_head @ Network.params perf_head
    @ List.concat_map Layer.Rbf.params (Array.to_list rbf_layers)
  in
  { cfg = config;
    rng = Rng.split rng;
    in_dim;
    trunk;
    crash_head;
    perf_head;
    rbf_layers;
    optimizer = Optimizer.adam ~lr:config.learning_rate ~weight_decay:config.weight_decay params;
    normalizer = None;
    feature_stats_frozen = false }

let in_dim t = t.in_dim

let identity_normalizer d =
  { Dataset.means = Vec.zeros d; stds = Vec.create d 1.; t_mean = 0.; t_std = 1. }

let normalizer t = match t.normalizer with Some n -> n | None -> identity_normalizer t.in_dim

(* Features that were constant in the training data have a degenerate
   (epsilon) standard deviation; a fresh sample differing there would map
   to an astronomically large z-score and blow the trunk up.  Clamping the
   normalised inputs keeps the model total over the whole space — the RBF
   branch still flags such samples as maximally uncertain. *)
let z_clip = 6.

let normalize_input nz x =
  Array.map
    (fun v -> Stdlib.max (-.z_clip) (Stdlib.min z_clip v))
    (Dataset.normalize_features nz x)

(* ------------------------------------------------------------------ *)
(* Prediction                                                          *)
(* ------------------------------------------------------------------ *)

type prediction = {
  crash_probability : float;
  performance : float;
  normalized_performance : float;
  aleatoric_std : float;
  uncertainty : float;
}

(* The dense activations the RBF branch consumes: the trunk records one
   matrix per dense layer during the forward pass. *)
let rbf_uncertainty t hidden =
  let layer_scores =
    Array.mapi
      (fun i z ->
        let phi = Layer.Rbf.forward t.rbf_layers.(i) z in
        (* Max activation of the first (only) row. *)
        let best = ref 0. in
        for k = 0 to phi.Mat.cols - 1 do
          if Mat.get phi 0 k > !best then best := Mat.get phi 0 k
        done;
        !best)
      (Array.of_list hidden)
  in
  1. -. (Array.fold_left ( +. ) 0. layer_scores /. float_of_int (Array.length layer_scores))

let predict t x =
  if Vec.dim x <> t.in_dim then invalid_arg "Dtm.predict: feature dimension mismatch";
  let nz = normalizer t in
  let xn = normalize_input nz x in
  let batch = Mat.of_rows [| xn |] in
  let h = Network.forward t.trunk ~train:false t.rng batch in
  let hidden = Network.hidden_after_forward t.trunk in
  let crash_logit = Mat.get (Network.forward t.crash_head ~train:false t.rng h) 0 0 in
  let perf = Network.forward t.perf_head ~train:false t.rng h in
  let mu = Mat.get perf 0 0 and log_var = Mat.get perf 0 1 in
  { crash_probability = Loss.sigmoid crash_logit;
    performance = Dataset.denormalize_target nz mu;
    normalized_performance = mu;
    aleatoric_std = Dataset.denormalize_std nz (sqrt (exp (min 20. log_var)));
    uncertainty = rbf_uncertainty t hidden }

(* One forward pass over the whole batch.  Dense rows are independent dot
   products, ReLU is elementwise, dropout is identity at inference and the
   RBF activations are computed row by row, so element [i] of the result
   is bitwise identical to [predict t xs.(i)] — the batch form only turns
   n small matmuls into one large one (which the ambient domain pool can
   then split across cores). *)
let predict_batch t xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    Array.iter
      (fun x ->
        if Vec.dim x <> t.in_dim then invalid_arg "Dtm.predict_batch: feature dimension mismatch")
      xs;
    let nz = normalizer t in
    let batch = Mat.of_rows (Array.map (normalize_input nz) xs) in
    let h = Network.forward t.trunk ~train:false t.rng batch in
    let hidden = Network.hidden_after_forward t.trunk in
    let crash_out = Network.forward t.crash_head ~train:false t.rng h in
    let perf_out = Network.forward t.perf_head ~train:false t.rng h in
    let phis =
      Array.mapi (fun li z -> Layer.Rbf.forward t.rbf_layers.(li) z) (Array.of_list hidden)
    in
    let n_layers = float_of_int (Array.length phis) in
    Array.init n (fun i ->
        let crash_logit = Mat.get crash_out i 0 in
        let mu = Mat.get perf_out i 0 and log_var = Mat.get perf_out i 1 in
        let acc = ref 0. in
        Array.iter
          (fun phi ->
            let best = ref 0. in
            for k = 0 to phi.Mat.cols - 1 do
              if Mat.get phi i k > !best then best := Mat.get phi i k
            done;
            acc := !acc +. !best)
          phis;
        { crash_probability = Loss.sigmoid crash_logit;
          performance = Dataset.denormalize_target nz mu;
          normalized_performance = mu;
          aleatoric_std = Dataset.denormalize_std nz (sqrt (exp (min 20. log_var)));
          uncertainty = 1. -. (!acc /. n_layers) })
  end

(* ------------------------------------------------------------------ *)
(* Training                                                            *)
(* ------------------------------------------------------------------ *)

type losses = { cce : float; reg : float; chamfer : float }

let zero_losses = { cce = 0.; reg = 0.; chamfer = 0. }

let train_batch t nz batch =
  let b = Array.length batch in
  let x = Mat.of_rows (Array.map (fun r -> normalize_input nz r.Dataset.features) batch) in
  let crash_labels = Array.map (fun r -> if r.Dataset.crashed then 1. else 0.) batch in
  let targets = Array.map (fun r -> Dataset.normalize_target nz r.Dataset.target) batch in
  let mask = Array.map (fun r -> not r.Dataset.crashed) batch in
  (* Forward. *)
  let h = Network.forward t.trunk ~train:true t.rng x in
  let hidden = Network.hidden_after_forward t.trunk in
  let crash_out = Network.forward t.crash_head ~train:true t.rng h in
  let perf_out = Network.forward t.perf_head ~train:true t.rng h in
  let logits = Mat.col crash_out 0 in
  let mu = Mat.col perf_out 0 and log_var = Mat.col perf_out 1 in
  (* Losses and output gradients. *)
  let l_cce, dlogits =
    Loss.bce_with_logits ~pos_weight:t.cfg.crash_pos_weight ~logits ~targets:crash_labels ()
  in
  let l_reg, (dmu, ds) = Loss.heteroscedastic ~mu ~log_var ~targets ~mask in
  (* Backward through the heads into the trunk. *)
  let dcrash = Mat.init b 1 (fun i _ -> dlogits.(i)) in
  let dperf = Mat.init b 2 (fun i j -> if j = 0 then dmu.(i) else ds.(i)) in
  let dh = Mat.add (Network.backward t.crash_head dcrash) (Network.backward t.perf_head dperf) in
  ignore (Network.backward t.trunk dh);
  (* Chamfer regularisation fits the RBF centroids to the trunk's
     activations; its gradient targets only the centroids (the uncertainty
     branch does not back-propagate into the prediction branch). *)
  let l_cham = ref 0. in
  List.iteri
    (fun i z ->
      let rbf = t.rbf_layers.(i) in
      let loss, dc = Loss.chamfer ~points:z ~centroids:(Layer.Rbf.centroid_matrix rbf) in
      l_cham := !l_cham +. loss;
      match Layer.Rbf.params rbf with
      | [ c ] -> Mat.add_into ~dst:c.Layer.grad dc
      | _ -> assert false)
    hidden;
  Optimizer.step t.optimizer;
  { cce = l_cce; reg = l_reg; chamfer = !l_cham }

let train t ?(epochs = 3) ?(batch_size = 32) ?on_epoch dataset =
  if Dataset.size dataset = 0 then zero_losses
  else begin
    let fresh = Dataset.fit_normalizer dataset in
    let nz =
      match (t.feature_stats_frozen, t.normalizer) with
      | true, Some donor ->
        { donor with Dataset.t_mean = fresh.Dataset.t_mean; t_std = fresh.Dataset.t_std }
      | true, None | false, (Some _ | None) -> fresh
    in
    t.normalizer <- Some nz;
    let last = ref zero_losses in
    for epoch = 1 to epochs do
      let batches = Dataset.batches dataset t.rng ~batch_size in
      let n = List.length batches in
      let acc = ref zero_losses in
      List.iter
        (fun batch ->
          let l = train_batch t nz batch in
          acc :=
            { cce = !acc.cce +. l.cce; reg = !acc.reg +. l.reg; chamfer = !acc.chamfer +. l.chamfer })
        batches;
      let scale = 1. /. float_of_int (max 1 n) in
      last := { cce = !acc.cce *. scale; reg = !acc.reg *. scale; chamfer = !acc.chamfer *. scale };
      match on_epoch with Some f -> f epoch !last | None -> ()
    done;
    !last
  end

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type accuracy = { failure_accuracy : float; run_accuracy : float; normalized_mae : float }

let evaluate ?(crash_threshold = 0.3) t dataset =
  let rows = Dataset.rows dataset in
  let crash_hits = ref 0 and crash_total = ref 0 in
  let run_hits = ref 0 and run_total = ref 0 in
  let preds = ref [] and targets = ref [] in
  Array.iter
    (fun r ->
      let p = predict t r.Dataset.features in
      let predicted_crash = p.crash_probability > crash_threshold in
      if r.Dataset.crashed then begin
        incr crash_total;
        if predicted_crash then incr crash_hits
      end
      else begin
        incr run_total;
        if not predicted_crash then incr run_hits;
        preds := p.performance :: !preds;
        targets := r.Dataset.target :: !targets
      end)
    rows;
  let ratio hits total = if total = 0 then 0. else float_of_int hits /. float_of_int total in
  { failure_accuracy = ratio !crash_hits !crash_total;
    run_accuracy = ratio !run_hits !run_total;
    normalized_mae =
      Wayfinder_tensor.Stat.normalized_mae (Array.of_list !preds) (Array.of_list !targets) }

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let max_sensitivity_rows = 48

let feature_sensitivity t dataset =
  let rows = Dataset.rows dataset in
  let n = Array.length rows in
  if n = 0 then Array.make t.in_dim 0.
  else begin
    let sample =
      if n <= max_sensitivity_rows then rows
      else Array.init max_sensitivity_rows (fun i -> rows.(i * n / max_sensitivity_rows))
    in
    Array.init t.in_dim (fun j ->
        let column = Array.map (fun r -> r.Dataset.features.(j)) rows in
        let lo = Wayfinder_tensor.Stat.quantile column 0.1 in
        let hi = Wayfinder_tensor.Stat.quantile column 0.9 in
        if hi -. lo < 1e-12 then 0.
        else begin
          let acc = ref 0. in
          Array.iter
            (fun r ->
              let v = Vec.copy r.Dataset.features in
              v.(j) <- hi;
              let up = (predict t v).performance in
              v.(j) <- lo;
              let down = (predict t v).performance in
              acc := !acc +. (up -. down))
            sample;
          !acc /. float_of_int (Array.length sample)
        end)
  end

(* ------------------------------------------------------------------ *)
(* Snapshots (transfer learning)                                       *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  s_trunk : float array;
  s_crash : float array;
  s_perf : float array;
  s_centroids : float array array;
  s_norm : float array;  (* means @ stds @ [t_mean; t_std] *)
}

let export t =
  let nz = normalizer t in
  { s_trunk = Network.save_weights t.trunk;
    s_crash = Network.save_weights t.crash_head;
    s_perf = Network.save_weights t.perf_head;
    s_centroids = Array.map (fun r -> Mat.to_array (Layer.Rbf.centroid_matrix r)) t.rbf_layers;
    s_norm = Array.concat [ nz.Dataset.means; nz.Dataset.stds; [| nz.Dataset.t_mean; nz.Dataset.t_std |] ] }

let import t s =
  Network.load_weights t.trunk s.s_trunk;
  Network.load_weights t.crash_head s.s_crash;
  Network.load_weights t.perf_head s.s_perf;
  if Array.length s.s_centroids <> Array.length t.rbf_layers then
    invalid_arg "Dtm.import: RBF layer count mismatch";
  Array.iteri
    (fun i data ->
      let c = Layer.Rbf.centroid_matrix t.rbf_layers.(i) in
      if Array.length data <> Mat.numel c then invalid_arg "Dtm.import: centroid shape mismatch";
      Mat.blit_from_array data c)
    s.s_centroids;
  let d = t.in_dim in
  if Array.length s.s_norm <> (2 * d) + 2 then invalid_arg "Dtm.import: normalizer size mismatch";
  t.normalizer <-
    Some
      { Dataset.means = Array.sub s.s_norm 0 d;
        stds = Array.sub s.s_norm d d;
        t_mean = s.s_norm.((2 * d));
        t_std = s.s_norm.((2 * d) + 1) };
  t.feature_stats_frozen <- true

let snapshot_to_floats s =
  let sizes =
    [| Array.length s.s_trunk; Array.length s.s_crash; Array.length s.s_perf;
       Array.length s.s_centroids |]
  in
  let centroid_sizes = Array.map Array.length s.s_centroids in
  Array.concat
    ([ Array.map float_of_int sizes; Array.map float_of_int centroid_sizes; s.s_trunk; s.s_crash;
       s.s_perf ]
    @ Array.to_list s.s_centroids
    @ [ s.s_norm ])

let snapshot_of_floats flat =
  if Array.length flat < 4 then invalid_arg "Dtm.snapshot_of_floats: truncated";
  let int_at i = int_of_float flat.(i) in
  let n_trunk = int_at 0 and n_crash = int_at 1 and n_perf = int_at 2 and n_rbf = int_at 3 in
  let centroid_sizes = Array.init n_rbf (fun i -> int_of_float flat.(4 + i)) in
  let pos = ref (4 + n_rbf) in
  let take n =
    let out = Array.sub flat !pos n in
    pos := !pos + n;
    out
  in
  let s_trunk = take n_trunk in
  let s_crash = take n_crash in
  let s_perf = take n_perf in
  let s_centroids = Array.map take centroid_sizes in
  let s_norm = Array.sub flat !pos (Array.length flat - !pos) in
  { s_trunk; s_crash; s_perf; s_centroids; s_norm }
