module Vec = Wayfinder_tensor.Vec
module Mat = Wayfinder_tensor.Mat
module Rng = Wayfinder_tensor.Rng
module Stat = Wayfinder_tensor.Stat
module Layer = Wayfinder_nn.Layer
module Loss = Wayfinder_nn.Loss
module Network = Wayfinder_nn.Network
module Optimizer = Wayfinder_nn.Optimizer

type row = { features : Vec.t; targets : float array; crashed : bool }

type t = {
  cfg : Dtm.config;
  rng : Rng.t;
  in_dim : int;
  n_metrics : int;
  trunk : Network.t;
  crash_head : Network.t;
  perf_head : Network.t;  (* 2 outputs per metric: (mu_k, s_k) *)
  rbf_layers : Layer.Rbf.t array;
  optimizer : Optimizer.t;
  mutable rows : row list;  (* newest first *)
  mutable count : int;
  (* z-score parameters, refitted by [train] *)
  mutable f_means : Vec.t;
  mutable f_stds : Vec.t;
  mutable t_means : float array;
  mutable t_stds : float array;
}

let z_clip = 6.

let create ?(config = Dtm.default_config) rng ~in_dim ~n_metrics =
  if n_metrics < 1 then invalid_arg "Dtm_multi.create: n_metrics < 1";
  if in_dim <= 0 then invalid_arg "Dtm_multi.create: in_dim must be positive";
  Dtm.validate_config config;
  let trunk_spec =
    List.concat_map
      (fun h -> [ `Dense h; `Relu; `Dropout config.Dtm.dropout ])
      config.Dtm.hidden
  in
  let trunk = Network.create rng ~in_dim trunk_spec in
  let last = List.nth config.Dtm.hidden (List.length config.Dtm.hidden - 1) in
  let crash_head = Network.create rng ~in_dim:last [ `Dense 1 ] in
  let perf_head = Network.create rng ~in_dim:last [ `Dense (2 * n_metrics) ] in
  let rbf_layers =
    Array.of_list
      (List.map
         (fun h ->
           Layer.Rbf.create rng ~in_dim:h ~centroids:config.Dtm.rbf_centroids
             ~gamma:(config.Dtm.rbf_gamma *. sqrt (float_of_int h)))
         config.Dtm.hidden)
  in
  let params =
    Network.params trunk @ Network.params crash_head @ Network.params perf_head
    @ List.concat_map Layer.Rbf.params (Array.to_list rbf_layers)
  in
  { cfg = config;
    rng = Rng.split rng;
    in_dim;
    n_metrics;
    trunk;
    crash_head;
    perf_head;
    rbf_layers;
    optimizer =
      Optimizer.adam ~lr:config.Dtm.learning_rate ~weight_decay:config.Dtm.weight_decay params;
    rows = [];
    count = 0;
    f_means = Vec.zeros in_dim;
    f_stds = Vec.create in_dim 1.;
    t_means = Array.make n_metrics 0.;
    t_stds = Array.make n_metrics 1. }

let in_dim t = t.in_dim
let n_metrics t = t.n_metrics
let observations t = t.count

let add t row =
  if Vec.dim row.features <> t.in_dim then invalid_arg "Dtm_multi.add: feature dim mismatch";
  if Array.length row.targets <> t.n_metrics then
    invalid_arg "Dtm_multi.add: target count mismatch";
  t.rows <- row :: t.rows;
  t.count <- t.count + 1

let normalize_features t x =
  Array.mapi
    (fun j v ->
      let z = Stat.zscore ~mean:t.f_means.(j) ~std:t.f_stds.(j) v in
      Stdlib.max (-.z_clip) (Stdlib.min z_clip z))
    x

type prediction = {
  crash_probability : float;
  performances : float array;
  normalized_performances : float array;
  uncertainty : float;
}

let rbf_uncertainty t hidden =
  let scores =
    List.mapi
      (fun i z ->
        let phi = Layer.Rbf.forward t.rbf_layers.(i) z in
        let best = ref 0. in
        for k = 0 to phi.Mat.cols - 1 do
          if Mat.get phi 0 k > !best then best := Mat.get phi 0 k
        done;
        !best)
      hidden
  in
  1. -. (List.fold_left ( +. ) 0. scores /. float_of_int (List.length scores))

let predict t x =
  if Vec.dim x <> t.in_dim then invalid_arg "Dtm_multi.predict: feature dim mismatch";
  let batch = Mat.of_rows [| normalize_features t x |] in
  let h = Network.forward t.trunk ~train:false t.rng batch in
  let hidden = Network.hidden_after_forward t.trunk in
  let crash_logit = Mat.get (Network.forward t.crash_head ~train:false t.rng h) 0 0 in
  let perf = Network.forward t.perf_head ~train:false t.rng h in
  let normalized = Array.init t.n_metrics (fun k -> Mat.get perf 0 (2 * k)) in
  { crash_probability = Loss.sigmoid crash_logit;
    performances =
      Array.mapi (fun k mu -> (mu *. t.t_stds.(k)) +. t.t_means.(k)) normalized;
    normalized_performances = normalized;
    uncertainty = rbf_uncertainty t hidden }

let refit_normalizers t =
  let all = Array.of_list t.rows in
  for j = 0 to t.in_dim - 1 do
    let column = Array.map (fun r -> r.features.(j)) all in
    let m, s = Stat.zscore_params column in
    t.f_means.(j) <- m;
    t.f_stds.(j) <- s
  done;
  for k = 0 to t.n_metrics - 1 do
    let ok =
      Array.of_list
        (List.filter_map (fun r -> if r.crashed then None else Some r.targets.(k)) t.rows)
    in
    if Array.length ok > 0 then begin
      let m, s = Stat.zscore_params ok in
      t.t_means.(k) <- m;
      t.t_stds.(k) <- s
    end
  done

let train_batch t batch =
  let b = Array.length batch in
  let x = Mat.of_rows (Array.map (fun r -> normalize_features t r.features) batch) in
  let crash_labels = Array.map (fun r -> if r.crashed then 1. else 0.) batch in
  let mask = Array.map (fun r -> not r.crashed) batch in
  let h = Network.forward t.trunk ~train:true t.rng x in
  let hidden = Network.hidden_after_forward t.trunk in
  let crash_out = Network.forward t.crash_head ~train:true t.rng h in
  let perf_out = Network.forward t.perf_head ~train:true t.rng h in
  let _, dlogits =
    Loss.bce_with_logits ~pos_weight:t.cfg.Dtm.crash_pos_weight ~logits:(Mat.col crash_out 0)
      ~targets:crash_labels ()
  in
  (* One heteroscedastic loss per metric, gradients interleaved into the
     2k-wide head. *)
  let dperf = Mat.zeros b (2 * t.n_metrics) in
  for k = 0 to t.n_metrics - 1 do
    let mu = Mat.col perf_out (2 * k) and log_var = Mat.col perf_out ((2 * k) + 1) in
    let targets =
      Array.map (fun r -> (r.targets.(k) -. t.t_means.(k)) /. t.t_stds.(k)) batch
    in
    let _, (dmu, ds) = Loss.heteroscedastic ~mu ~log_var ~targets ~mask in
    for i = 0 to b - 1 do
      Mat.set dperf i (2 * k) dmu.(i);
      Mat.set dperf i ((2 * k) + 1) ds.(i)
    done
  done;
  let dcrash = Mat.init b 1 (fun i _ -> dlogits.(i)) in
  let dh = Mat.add (Network.backward t.crash_head dcrash) (Network.backward t.perf_head dperf) in
  ignore (Network.backward t.trunk dh);
  List.iteri
    (fun i z ->
      let rbf = t.rbf_layers.(i) in
      let _, dc = Loss.chamfer ~points:z ~centroids:(Layer.Rbf.centroid_matrix rbf) in
      match Layer.Rbf.params rbf with
      | [ c ] -> Mat.add_into ~dst:c.Layer.grad dc
      | _ -> assert false)
    hidden;
  Optimizer.step t.optimizer

let train t ?(epochs = 1) ?(batch_size = 32) () =
  if t.count >= 2 then begin
    refit_normalizers t;
    let all = Array.of_list t.rows in
    for _ = 1 to epochs do
      Rng.shuffle t.rng all;
      let n = Array.length all in
      let rec batches start =
        if start < n then begin
          let len = Stdlib.min batch_size (n - start) in
          train_batch t (Array.sub all start len);
          batches (start + len)
        end
      in
      batches 0
    done
  end
