module Vec = Wayfinder_tensor.Vec
module Mat = Wayfinder_tensor.Mat
module Rng = Wayfinder_tensor.Rng
module Stat = Wayfinder_tensor.Stat
module Layer = Wayfinder_nn.Layer
module Loss = Wayfinder_nn.Loss
module Network = Wayfinder_nn.Network
module Optimizer = Wayfinder_nn.Optimizer

type row = { features : Vec.t; targets : float array; crashed : bool }

type t = {
  cfg : Dtm.config;
  rng : Rng.t;
  in_dim : int;
  n_metrics : int;
  trunk : Network.t;
  crash_head : Network.t;
  perf_head : Network.t;  (* 2 outputs per metric: (mu_k, s_k) *)
  rbf_layers : Layer.Rbf.t array;
  optimizer : Optimizer.t;
  mutable rows : row list;  (* newest first *)
  mutable count : int;
  (* z-score parameters, refitted by [train] *)
  mutable f_means : Vec.t;
  mutable f_stds : Vec.t;
  mutable t_means : float array;
  mutable t_stds : float array;
}

let z_clip = 6.

let create ?(config = Dtm.default_config) rng ~in_dim ~n_metrics =
  if n_metrics < 1 then invalid_arg "Dtm_multi.create: n_metrics < 1";
  if in_dim <= 0 then invalid_arg "Dtm_multi.create: in_dim must be positive";
  Dtm.validate_config config;
  let trunk_spec =
    List.concat_map
      (fun h -> [ `Dense h; `Relu; `Dropout config.Dtm.dropout ])
      config.Dtm.hidden
  in
  let trunk = Network.create rng ~in_dim trunk_spec in
  let last = List.nth config.Dtm.hidden (List.length config.Dtm.hidden - 1) in
  let crash_head = Network.create rng ~in_dim:last [ `Dense 1 ] in
  let perf_head = Network.create rng ~in_dim:last [ `Dense (2 * n_metrics) ] in
  let rbf_layers =
    Array.of_list
      (List.map
         (fun h ->
           Layer.Rbf.create rng ~in_dim:h ~centroids:config.Dtm.rbf_centroids
             ~gamma:(config.Dtm.rbf_gamma *. sqrt (float_of_int h)))
         config.Dtm.hidden)
  in
  let params =
    Network.params trunk @ Network.params crash_head @ Network.params perf_head
    @ List.concat_map Layer.Rbf.params (Array.to_list rbf_layers)
  in
  { cfg = config;
    rng = Rng.split rng;
    in_dim;
    n_metrics;
    trunk;
    crash_head;
    perf_head;
    rbf_layers;
    optimizer =
      Optimizer.adam ~lr:config.Dtm.learning_rate ~weight_decay:config.Dtm.weight_decay params;
    rows = [];
    count = 0;
    f_means = Vec.zeros in_dim;
    f_stds = Vec.create in_dim 1.;
    t_means = Array.make n_metrics 0.;
    t_stds = Array.make n_metrics 1. }

let in_dim t = t.in_dim
let n_metrics t = t.n_metrics
let observations t = t.count

let add t row =
  if Vec.dim row.features <> t.in_dim then invalid_arg "Dtm_multi.add: feature dim mismatch";
  if Array.length row.targets <> t.n_metrics then
    invalid_arg "Dtm_multi.add: target count mismatch";
  t.rows <- row :: t.rows;
  t.count <- t.count + 1

let normalize_features t x =
  Array.mapi
    (fun j v ->
      let z = Stat.zscore ~mean:t.f_means.(j) ~std:t.f_stds.(j) v in
      Stdlib.max (-.z_clip) (Stdlib.min z_clip z))
    x

type prediction = {
  crash_probability : float;
  performances : float array;
  normalized_performances : float array;
  uncertainty : float;
}

let rbf_uncertainty t hidden =
  let scores =
    List.mapi
      (fun i z ->
        let phi = Layer.Rbf.forward t.rbf_layers.(i) z in
        let best = ref 0. in
        for k = 0 to phi.Mat.cols - 1 do
          if Mat.get phi 0 k > !best then best := Mat.get phi 0 k
        done;
        !best)
      hidden
  in
  1. -. (List.fold_left ( +. ) 0. scores /. float_of_int (List.length scores))

let predict t x =
  if Vec.dim x <> t.in_dim then invalid_arg "Dtm_multi.predict: feature dim mismatch";
  let batch = Mat.of_rows [| normalize_features t x |] in
  let h = Network.forward t.trunk ~train:false t.rng batch in
  let hidden = Network.hidden_after_forward t.trunk in
  let crash_logit = Mat.get (Network.forward t.crash_head ~train:false t.rng h) 0 0 in
  let perf = Network.forward t.perf_head ~train:false t.rng h in
  let normalized = Array.init t.n_metrics (fun k -> Mat.get perf 0 (2 * k)) in
  { crash_probability = Loss.sigmoid crash_logit;
    performances =
      Array.mapi (fun k mu -> (mu *. t.t_stds.(k)) +. t.t_means.(k)) normalized;
    normalized_performances = normalized;
    uncertainty = rbf_uncertainty t hidden }

let refit_normalizers t =
  let all = Array.of_list t.rows in
  for j = 0 to t.in_dim - 1 do
    let column = Array.map (fun r -> r.features.(j)) all in
    let m, s = Stat.zscore_params column in
    t.f_means.(j) <- m;
    t.f_stds.(j) <- s
  done;
  for k = 0 to t.n_metrics - 1 do
    let ok =
      Array.of_list
        (List.filter_map (fun r -> if r.crashed then None else Some r.targets.(k)) t.rows)
    in
    if Array.length ok > 0 then begin
      let m, s = Stat.zscore_params ok in
      t.t_means.(k) <- m;
      t.t_stds.(k) <- s
    end
  done

let train_batch t batch =
  let b = Array.length batch in
  let x = Mat.of_rows (Array.map (fun r -> normalize_features t r.features) batch) in
  let crash_labels = Array.map (fun r -> if r.crashed then 1. else 0.) batch in
  let mask = Array.map (fun r -> not r.crashed) batch in
  let h = Network.forward t.trunk ~train:true t.rng x in
  let hidden = Network.hidden_after_forward t.trunk in
  let crash_out = Network.forward t.crash_head ~train:true t.rng h in
  let perf_out = Network.forward t.perf_head ~train:true t.rng h in
  let _, dlogits =
    Loss.bce_with_logits ~pos_weight:t.cfg.Dtm.crash_pos_weight ~logits:(Mat.col crash_out 0)
      ~targets:crash_labels ()
  in
  (* One heteroscedastic loss per metric, gradients interleaved into the
     2k-wide head. *)
  let dperf = Mat.zeros b (2 * t.n_metrics) in
  for k = 0 to t.n_metrics - 1 do
    let mu = Mat.col perf_out (2 * k) and log_var = Mat.col perf_out ((2 * k) + 1) in
    let targets =
      Array.map (fun r -> (r.targets.(k) -. t.t_means.(k)) /. t.t_stds.(k)) batch
    in
    let _, (dmu, ds) = Loss.heteroscedastic ~mu ~log_var ~targets ~mask in
    for i = 0 to b - 1 do
      Mat.set dperf i (2 * k) dmu.(i);
      Mat.set dperf i ((2 * k) + 1) ds.(i)
    done
  done;
  let dcrash = Mat.init b 1 (fun i _ -> dlogits.(i)) in
  let dh = Mat.add (Network.backward t.crash_head dcrash) (Network.backward t.perf_head dperf) in
  ignore (Network.backward t.trunk dh);
  List.iteri
    (fun i z ->
      let rbf = t.rbf_layers.(i) in
      let _, dc = Loss.chamfer ~points:z ~centroids:(Layer.Rbf.centroid_matrix rbf) in
      match Layer.Rbf.params rbf with
      | [ c ] -> Mat.add_into ~dst:c.Layer.grad dc
      | _ -> assert false)
    hidden;
  Optimizer.step t.optimizer

(* ------------------------------------------------------------------ *)
(* Snapshots (transfer learning / persistent registry)                 *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  s_n_metrics : int;
  s_trunk : float array;
  s_crash : float array;
  s_perf : float array;
  s_centroids : float array array;
  s_norm : float array;  (* f_means @ f_stds @ t_means @ t_stds *)
}

let export t =
  { s_n_metrics = t.n_metrics;
    s_trunk = Network.save_weights t.trunk;
    s_crash = Network.save_weights t.crash_head;
    s_perf = Network.save_weights t.perf_head;
    s_centroids = Array.map (fun r -> Mat.to_array (Layer.Rbf.centroid_matrix r)) t.rbf_layers;
    s_norm =
      Array.concat
        [ Array.copy t.f_means; Array.copy t.f_stds; Array.copy t.t_means;
          Array.copy t.t_stds ] }

let import t s =
  if s.s_n_metrics <> t.n_metrics then invalid_arg "Dtm_multi.import: n_metrics mismatch";
  Network.load_weights t.trunk s.s_trunk;
  Network.load_weights t.crash_head s.s_crash;
  Network.load_weights t.perf_head s.s_perf;
  if Array.length s.s_centroids <> Array.length t.rbf_layers then
    invalid_arg "Dtm_multi.import: RBF layer count mismatch";
  Array.iteri
    (fun i data ->
      let c = Layer.Rbf.centroid_matrix t.rbf_layers.(i) in
      if Array.length data <> Mat.numel c then
        invalid_arg "Dtm_multi.import: centroid shape mismatch";
      Mat.blit_from_array data c)
    s.s_centroids;
  let d = t.in_dim and m = t.n_metrics in
  if Array.length s.s_norm <> (2 * d) + (2 * m) then
    invalid_arg "Dtm_multi.import: normalizer size mismatch";
  t.f_means <- Array.sub s.s_norm 0 d;
  t.f_stds <- Array.sub s.s_norm d d;
  t.t_means <- Array.sub s.s_norm (2 * d) m;
  t.t_stds <- Array.sub s.s_norm ((2 * d) + m) m

(* Same layout as Dtm's flat codec, with [n_metrics] as a fifth header
   int so the two kinds cannot be confused. *)
let snapshot_to_floats s =
  let sizes =
    [| Array.length s.s_trunk; Array.length s.s_crash; Array.length s.s_perf;
       Array.length s.s_centroids; s.s_n_metrics |]
  in
  let centroid_sizes = Array.map Array.length s.s_centroids in
  Array.concat
    ([ Array.map float_of_int sizes; Array.map float_of_int centroid_sizes; s.s_trunk;
       s.s_crash; s.s_perf ]
    @ Array.to_list s.s_centroids
    @ [ s.s_norm ])

let snapshot_of_floats flat =
  if Array.length flat < 5 then invalid_arg "Dtm_multi.snapshot_of_floats: truncated";
  let int_at i = int_of_float flat.(i) in
  let n_trunk = int_at 0
  and n_crash = int_at 1
  and n_perf = int_at 2
  and n_rbf = int_at 3
  and s_n_metrics = int_at 4 in
  let centroid_sizes = Array.init n_rbf (fun i -> int_of_float flat.(5 + i)) in
  let pos = ref (5 + n_rbf) in
  let take n =
    let out = Array.sub flat !pos n in
    pos := !pos + n;
    out
  in
  let s_trunk = take n_trunk in
  let s_crash = take n_crash in
  let s_perf = take n_perf in
  let s_centroids = Array.map take centroid_sizes in
  let s_norm = Array.sub flat !pos (Array.length flat - !pos) in
  { s_n_metrics; s_trunk; s_crash; s_perf; s_centroids; s_norm }

let train t ?(epochs = 1) ?(batch_size = 32) () =
  if t.count >= 2 then begin
    refit_normalizers t;
    let all = Array.of_list t.rows in
    for _ = 1 to epochs do
      Rng.shuffle t.rng all;
      let n = Array.length all in
      let rec batches start =
        if start < n then begin
          let len = Stdlib.min batch_size (n - start) in
          train_batch t (Array.sub all start len);
          batches (start + len)
        end
      in
      batches 0
    done
  end
