module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Encoding = Wayfinder_configspace.Encoding
module Rng = Wayfinder_tensor.Rng
module Dataset = Wayfinder_tensor.Dataset
module Vec = Wayfinder_tensor.Vec
module Search_algorithm = Wayfinder_platform.Search_algorithm
module Metric = Wayfinder_platform.Metric
module History = Wayfinder_platform.History
module Failure = Wayfinder_platform.Failure
module Random_search = Wayfinder_platform.Random_search
module Obs = Wayfinder_obs

type options = {
  pool_size : int;
  alpha : float;
  exploration_weight : float;
  crash_penalty : float;
  crash_gate : float option;
  warmup : int;
  train_epochs : int;
  favor : Param.stage option;
  favor_strong : float;
  favor_weak : float;
  dtm_config : Dtm.config;
}

let default_options =
  { pool_size = 96;
    alpha = 0.5;
    exploration_weight = 1.0;
    crash_penalty = 3.0;
    crash_gate = Some 0.35;
    warmup = 10;
    train_epochs = 1;
    favor = None;
    favor_strong = 0.6;
    favor_weak = 0.05;
    dtm_config = Dtm.default_config }

type t = {
  options : options;
  space : Space.t;
  encoding : Encoding.t;
  dtm : Dtm.t;
  dataset : Dataset.t;
  rng : Rng.t;
  mutable known : Vec.t list;  (* encoded evaluated configurations *)
  mutable best_configs : (float * Space.configuration) list;  (* top scored, descending *)
  seen : (string, unit) Hashtbl.t;  (* canonical keys of evaluated configurations *)
  mutable pending_seeds : Space.configuration list;
      (* Transferred incumbents to evaluate verbatim before consulting the
         pool (they are known-good end-to-end on the donor). *)
}

let create ?(options = default_options) ?(seed = 0) space =
  let rng = Rng.create (seed + 7919) in
  let encoding = Encoding.create space in
  { options;
    space;
    encoding;
    dtm = Dtm.create ~config:options.dtm_config (Rng.split rng) ~in_dim:(Encoding.dim encoding);
    dataset = Dataset.create ();
    rng;
    known = [];
    best_configs = [];
    seen = Hashtbl.create 256;
    pending_seeds = [] }

let dtm t = t.dtm
let observations t = Dataset.size t.dataset

(* ------------------------------------------------------------------ *)
(* Candidate pool                                                      *)
(* ------------------------------------------------------------------ *)

(* ① A diverse pool: fresh biased draws, plus local mutations and
   crossovers of the best known configurations (exploitation seeds). *)
let generate_pool t =
  let fresh () =
    Random_search.sampler ?favor:t.options.favor ~strong:t.options.favor_strong
      ~weak:t.options.favor_weak t.space t.rng
  in
  List.init t.options.pool_size (fun k ->
      match t.best_configs with
      | (_, best) :: rest when k land 1 = 1 ->
        let partner = match rest with (_, second) :: _ -> second | [] -> best in
        let only_stage = if t.options.favor_weak = 0. then t.options.favor else None in
        if k land 2 = 2 then Space.mutate ?only_stage t.space t.rng best ~count:2
        else Space.crossover t.space t.rng best partner
      | _ :: _ | [] -> fresh ())

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)
(* ------------------------------------------------------------------ *)

let config_key = Param.config_key

(* ② Predict every candidate in one batched forward pass; ③ score by
   predicted performance plus the eq. 3 exploration bonus.  Scoring
   happens in the model's z-score units so the [0, 1] bonus and the crash
   penalty are commensurate with the performance term. *)
let score_pool t pool =
  (* Never re-evaluate a configuration (the platform would just repeat the
     measurement): drop already-seen candidates unless that empties the
     pool. *)
  let pool =
    match List.filter (fun c -> not (Hashtbl.mem t.seen (config_key c))) pool with
    | [] -> pool
    | fresh -> fresh
  in
  let xs = Array.of_list (List.map (Encoding.encode t.encoding) pool) in
  (* One whole-pool forward: bitwise identical to per-candidate [predict]
     but a single large matmul per layer instead of |pool| tiny ones. *)
  let preds = Dtm.predict_batch t.dtm xs in
  List.mapi
    (fun i config ->
      let x = xs.(i) in
      let p = preds.(i) in
      let ds = Scoring.dissimilarity x t.known in
      let bonus =
        Scoring.score ~alpha:t.options.alpha ~dissimilarity:ds
          ~uncertainty:p.Dtm.uncertainty ()
      in
      (* Soft crash penalty: even below the hard gate, likelier-to-crash
         candidates rank lower. *)
      let rank =
        p.Dtm.normalized_performance
        +. (t.options.exploration_weight *. bonus)
        -. (t.options.crash_penalty *. p.Dtm.crash_probability)
      in
      (config, p, rank))
    pool

let rank_candidates t pool =
  let scored = score_pool t pool in
  let admissible =
    match t.options.crash_gate with
    | None -> scored
    | Some gate ->
      List.filter (fun (_, p, _) -> p.Dtm.crash_probability <= gate) scored
  in
  let pick_best candidates key =
    List.fold_left
      (fun acc item ->
        match acc with
        | None -> Some item
        | Some best -> if key item > key best then Some item else acc)
      None candidates
  in
  match pick_best admissible (fun (_, _, rank) -> rank) with
  | Some (config, _, _) -> config
  | None -> (
    (* Whole pool gated: fall back to the least-crashy candidate. *)
    match pick_best scored (fun (_, p, _) -> -.p.Dtm.crash_probability) with
    | Some (config, _, _) -> config
    | None ->
      Random_search.sampler ?favor:t.options.favor ~strong:t.options.favor_strong
        ~weak:t.options.favor_weak t.space t.rng)

(* Batched selection: the top [k] *distinct* admissible candidates of one
   scored pool — the natural ask/tell form of the ranking step, one model
   sweep for a whole batch.  Padded with fresh biased draws when gating or
   deduplication leaves fewer than [k]. *)
let rank_candidates_top t pool ~k =
  let scored = score_pool t pool in
  let admissible =
    match t.options.crash_gate with
    | None -> scored
    | Some gate ->
      List.filter (fun (_, p, _) -> p.Dtm.crash_probability <= gate) scored
  in
  (* Stable sort: equal ranks keep pool order, matching the sequential
     picker's first-max-wins rule. *)
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> compare (b : float) a) admissible
  in
  let in_batch = Hashtbl.create 16 in
  let rec take n = function
    | [] -> []
    | (config, _, _) :: rest ->
      if n = 0 then []
      else begin
        let key = config_key config in
        if Hashtbl.mem in_batch key then take n rest
        else begin
          Hashtbl.add in_batch key ();
          config :: take (n - 1) rest
        end
      end
  in
  let picked = take k sorted in
  let pad =
    List.init
      (k - List.length picked)
      (fun _ ->
        Random_search.sampler ?favor:t.options.favor ~strong:t.options.favor_strong
          ~weak:t.options.favor_weak t.space t.rng)
  in
  picked @ pad

let propose t ctx =
  let obs = ctx.Search_algorithm.obs in
  match t.pending_seeds with
  | seed :: rest ->
    t.pending_seeds <- rest;
    Obs.Recorder.incr obs ~quiet:true "deeptune.transfer_seeds_proposed";
    seed
  | [] ->
  if Dataset.size t.dataset < t.options.warmup then begin
    Obs.Recorder.incr obs ~quiet:true "deeptune.warmup_proposals";
    Random_search.sampler ?favor:t.options.favor ~strong:t.options.favor_strong
      ~weak:t.options.favor_weak t.space t.rng
  end
  else begin
    let pool =
      Obs.Recorder.with_span obs "deeptune.pool" (fun () -> generate_pool t)
    in
    Obs.Recorder.observe obs ~quiet:true "deeptune.pool_size"
      (float_of_int (List.length pool));
    Obs.Recorder.with_span obs
      ~attrs:[ Obs.Attr.int "pool" (List.length pool) ]
      "deeptune.rank"
      (fun () -> rank_candidates t pool)
  end

(* ------------------------------------------------------------------ *)
(* Observation / incremental training                                  *)
(* ------------------------------------------------------------------ *)

let keep_best = 4

let observe t ctx (entry : History.entry) =
  let metric = ctx.Search_algorithm.metric in
  let x = Encoding.encode t.encoding entry.History.config in
  t.known <- x :: t.known;
  Hashtbl.replace t.seen (config_key entry.History.config) ();
  (* The crash head must learn *configuration-caused* failures only: a
     flaky build or a timed-out boot says nothing about the config, and
     training on it would teach the gate to fear innocent regions.  Such
     entries still count as seen (no re-proposing) but contribute no
     training row. *)
  match entry.History.failure with
  | Some f when not (Failure.counts_as_crash f) ->
    Obs.Recorder.incr ctx.Search_algorithm.obs ~quiet:true "deeptune.transient_skipped"
  | (Some _ | None) as failure ->
  let crashed = failure <> None in
  let score =
    match entry.History.value with Some v -> Metric.score metric v | None -> 0.
  in
  Dataset.add t.dataset x ~target:score ~crashed;
  if not crashed then begin
    t.best_configs <-
      (score, entry.History.config) :: t.best_configs
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> List.filteri (fun i _ -> i < keep_best)
  end;
  (* ⑤ Incremental update: a couple of passes over the history keeps the
     per-iteration cost linear (Figure 7's O(n)). *)
  if Dataset.size t.dataset >= 4 then begin
    let obs = ctx.Search_algorithm.obs in
    let report_epoch _epoch (l : Dtm.losses) =
      Obs.Recorder.observe obs ~quiet:true "deeptune.loss.cce" l.Dtm.cce;
      Obs.Recorder.observe obs ~quiet:true "deeptune.loss.reg" l.Dtm.reg;
      Obs.Recorder.observe obs ~quiet:true "deeptune.loss.chamfer" l.Dtm.chamfer
    in
    Obs.Recorder.with_span obs
      ~attrs:[ Obs.Attr.int "dataset" (Dataset.size t.dataset) ]
      "deeptune.train"
      (fun () ->
        ignore
          (Dtm.train t.dtm ~epochs:t.options.train_epochs ~on_epoch:report_epoch t.dataset))
  end

(* Native ask/tell batch: drain transfer seeds and warm-up draws one at a
   time (they are inherently sequential), then fill the rest of the batch
   with the top-k of a single generated-and-scored pool. *)
let propose_batch t ctx ~k =
  let obs = ctx.Search_algorithm.obs in
  let rec head n acc =
    if n = 0 then List.rev acc
    else
      match t.pending_seeds with
      | seed :: rest ->
        t.pending_seeds <- rest;
        Obs.Recorder.incr obs ~quiet:true "deeptune.transfer_seeds_proposed";
        head (n - 1) (seed :: acc)
      | [] ->
        if Dataset.size t.dataset < t.options.warmup then begin
          Obs.Recorder.incr obs ~quiet:true "deeptune.warmup_proposals";
          let draw =
            Random_search.sampler ?favor:t.options.favor ~strong:t.options.favor_strong
              ~weak:t.options.favor_weak t.space t.rng
          in
          head (n - 1) (draw :: acc)
        end
        else begin
          let pool =
            Obs.Recorder.with_span obs "deeptune.pool" (fun () -> generate_pool t)
          in
          Obs.Recorder.observe obs ~quiet:true "deeptune.pool_size"
            (float_of_int (List.length pool));
          List.rev_append acc
            (Obs.Recorder.with_span obs
               ~attrs:[ Obs.Attr.int "pool" (List.length pool); Obs.Attr.int "k" n ]
               "deeptune.rank"
               (fun () -> rank_candidates_top t pool ~k:n))
        end
  in
  head k []

let algorithm t =
  Search_algorithm.make ~name:"deeptune"
    ~propose:(fun ctx -> propose t ctx)
    ~propose_batch:(fun ctx ~k -> propose_batch t ctx ~k)
    ~observe:(fun ctx entry -> observe t ctx entry)
    ~predict:(fun _ctx config ->
      (* Pure introspection: a DTM forward pass touches no searcher state
         and draws no randomness (dropout is training-only). *)
      let p = Dtm.predict t.dtm (Encoding.encode t.encoding config) in
      { Search_algorithm.crash_probability = Some p.Dtm.crash_probability;
        predicted_value = Some p.Dtm.performance;
        predicted_uncertainty = Some p.Dtm.uncertainty;
        belief_source = "deeptune" })
    ()

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let parameter_impacts t =
  let sensitivity = Dtm.feature_sensitivity t.dtm t.dataset in
  Encoding.param_importance t.encoding sensitivity

(* ------------------------------------------------------------------ *)
(* Transfer learning                                                   *)
(* ------------------------------------------------------------------ *)

type transfer = { model : Dtm.snapshot; incumbents : Space.configuration list }

let export t =
  { model = Dtm.export t.dtm; incumbents = List.map snd t.best_configs }

let create_from ?options ?seed space transfer =
  (* A pre-trained model needs no random warm-up: its very first proposals
     already exploit the donor's knowledge (§4.2: the first configuration
     found with TL is markedly better).  The donor's incumbent
    configurations seed the candidate pool — they are what the transferred
    model's exploitation knowledge points at. *)
  let options = Option.value ~default:default_options options in
  let t = create ~options:{ options with warmup = 0 } ?seed space in
  Dtm.import t.dtm transfer.model;
  let seeds =
    List.filter (fun c -> Array.length c = Space.size space) transfer.incumbents
  in
  (* The donor's incumbents are evaluated first, verbatim: on a related
     application they are the "markedly better first configuration" of
     §4.2, and they carry no crash risk the donor has not already paid. *)
  t.pending_seeds <- seeds;
  t

let seed_incumbents t configs =
  let seeds = List.filter (fun c -> Array.length c = Space.size t.space) configs in
  t.pending_seeds <- t.pending_seeds @ seeds
