(** Multi-metric candidate ranking (§3.2, last paragraph).

    "During the scoring phase, we apply equation 3 to each target metric to
    obtain individual scores.  Then, we calculate a representative score
    for each permutation sample by taking a weighted average."

    This module turns a {!Dtm_multi} prediction into that representative
    rank: per metric, the z-scored predicted performance plus the eq. 3
    exploration bonus, combined by normalised weights, minus the shared
    crash penalty. *)

module Space = Wayfinder_configspace.Space
module Encoding = Wayfinder_configspace.Encoding
module Rng = Wayfinder_tensor.Rng
module Vec = Wayfinder_tensor.Vec

type objective = { label : string; weight : float }

val rank :
  ?alpha:float ->
  ?exploration_weight:float ->
  ?crash_penalty:float ->
  objectives:objective list ->
  prediction:Dtm_multi.prediction ->
  dissimilarity:float ->
  unit ->
  float
(** Representative score of one candidate.  Weights are normalised to sum
    to 1.  @raise Invalid_argument if the objective count does not match
    the prediction's metric count or weights are all zero. *)

type proposer

val proposer :
  ?options:Deeptune.options ->
  ?seed:int ->
  objectives:objective list ->
  Space.t ->
  proposer
(** A standalone multi-metric search head: generate a candidate pool,
    rank it with {!rank} over a {!Dtm_multi}, and learn from observations.
    Unlike {!Deeptune} it is driven manually (the platform's history holds
    a single metric), so the caller owns the evaluate loop:

    {[
      let p = Multi_objective.proposer ~objectives space in
      for _ = 1 to budget do
        let config = Multi_objective.propose p in
        let targets = measure config in              (* one score per metric *)
        Multi_objective.observe p config targets
      done
    ]} *)

val propose : proposer -> Space.configuration

val observe : proposer -> Space.configuration -> (float array, string) result -> unit
(** [Ok targets] carries one higher-is-better score per objective;
    [Error kind] records a crash. *)

val model : proposer -> Dtm_multi.t
val best : proposer -> (Space.configuration * float array) option
(** Observation with the highest representative (weighted, normalised)
    score so far. *)

module Search_algorithm = Wayfinder_platform.Search_algorithm
module Objective = Wayfinder_platform.Objective

val algorithm :
  ?options:Deeptune.options ->
  ?seed:int ->
  objectives:objective list ->
  spec:Objective.spec ->
  Space.t ->
  Search_algorithm.t
(** The proposer wrapped as a platform searcher ("deeptune-multi"), for
    multi-objective targets driven by {!Wayfinder_platform.Driver}: each
    observed entry's raw objective vector is converted to per-metric
    higher-is-better scores ({!Objective.scores} under [spec]) and fed to
    {!observe}; failures train the crash head; successful entries without
    a vector are ignored.  @raise Invalid_argument if [objectives] and
    [spec] disagree on the metric count. *)
