module Stat = Wayfinder_tensor.Stat

type service = {
  capacity_rps : float;
  base_latency_s : float;
  memory_mb : float;
}

type sample = {
  offered_rps : float;
  throughput_rps : float;
  latency_s : float;
  memory_mb : float;
}

type summary = {
  samples : sample array;
  mean_throughput_rps : float;
  p50_latency_s : float;
  p95_latency_s : float;
  p99_latency_s : float;
  peak_memory_mb : float;
}

(* Past this utilization the 1/(1-rho) curve is cut over to a linear
   overload penalty: still monotone and continuous, but finite, so a
   saturated window dominates the tail quantiles without producing
   infinities that would poison scalarization. *)
let knee = 0.99

let window service ~offered_rps =
  let rho = offered_rps /. service.capacity_rps in
  let latency_s =
    if rho < knee then service.base_latency_s /. (1. -. rho)
    else
      service.base_latency_s /. (1. -. knee) *. (1. +. ((rho -. knee) *. 100.))
  in
  { offered_rps;
    throughput_rps = Float.min offered_rps service.capacity_rps;
    latency_s;
    memory_mb = service.memory_mb *. (1. +. (0.05 *. Float.min rho 2.)) }

let replay trace service =
  if not (service.capacity_rps > 0.) then
    invalid_arg "Trace_replay.replay: capacity_rps must be positive";
  if not (service.base_latency_s > 0.) then
    invalid_arg "Trace_replay.replay: base_latency_s must be positive";
  let samples =
    Array.map (fun l -> window service ~offered_rps:l) trace.Trace.loads
  in
  if Array.length samples = 0 then
    { samples;
      mean_throughput_rps = 0.;
      p50_latency_s = 0.;
      p95_latency_s = 0.;
      p99_latency_s = 0.;
      peak_memory_mb = service.memory_mb }
  else
    let latencies = Array.map (fun s -> s.latency_s) samples in
    { samples;
      mean_throughput_rps =
        Stat.mean (Array.map (fun s -> s.throughput_rps) samples);
      p50_latency_s = Stat.quantile latencies 0.50;
      p95_latency_s = Stat.quantile latencies 0.95;
      p99_latency_s = Stat.quantile latencies 0.99;
      peak_memory_mb =
        Array.fold_left (fun acc s -> Float.max acc s.memory_mb) neg_infinity samples }
