(** Virtual time, with a discrete-event scheduler.

    The paper's experiments are bounded by wall-clock budgets (3-hour
    searches, 60–80 s per configuration evaluation).  Real kernel builds
    and benchmark runs are simulated here, so their durations are virtual:
    the platform advances this clock by each task's modelled duration, and
    budget experiments (Figures 9–11) become deterministic and fast.

    The scheduler half models virtual {e concurrency}: pending completions
    sit in a min-heap, and {!run_next} advances [now] to the earliest
    finishing task before running its callback.  Ties are broken by
    scheduling order (FIFO), so a multi-worker simulation is fully
    deterministic. *)

type t

val create : unit -> t
(** Starts at 0 s, with no pending events. *)

val now : t -> float
(** Seconds since creation. *)

val advance : t -> float -> unit
(** @raise Invalid_argument on negative durations. *)

val advance_to : t -> float -> unit
(** Set the clock to an absolute reading, notifying observers with the
    delta.  Unlike [advance t (x -. now t)], the clock lands on the target
    bit-exactly (float subtraction then addition can be off by an ulp) —
    checkpoint resume depends on this.
    @raise Invalid_argument if the target is in the past. *)

val on_advance : t -> (float -> unit) -> unit
(** Subscribe to advancement: each registered observer is called with the
    (non-negative) delta of every subsequent {!advance} (or
    {!advance_to}, or event completion), in registration order.  This is
    how the observability layer meters virtual time without the clock
    depending on it.  Observers survive {!reset} (the reset itself is not
    reported). *)

val schedule : t -> at:float -> (unit -> unit) -> float
(** [schedule t ~at run] enqueues a completion at absolute time [at]
    (returned for convenience).  Events never run spontaneously: the
    owner drains them with {!run_next}.
    @raise Invalid_argument if [at] precedes [now] or is NaN. *)

val schedule_chain : t -> deltas:float list -> (unit -> unit) -> float
(** [schedule_chain t ~deltas run] enqueues a completion whose time is
    the left fold [now +. d1 +. d2 +. …] — the exact float a synchronous
    caller advancing delta by delta would reach (float addition is not
    associative, so the fold order matters).  Returns the completion
    time.  If the clock has not moved when the event is popped,
    {!run_next} replays the chain delta by delta, so observers see the
    identical advance stream; otherwise it jumps to the completion time
    with a single delta.
    @raise Invalid_argument on negative or NaN deltas. *)

val pending : t -> int
(** Number of scheduled events not yet run. *)

val peek_next : t -> float option
(** Completion time of the earliest pending event. *)

val run_next : t -> bool
(** Pop the earliest pending event (FIFO among ties), advance the clock
    to its completion time, run its callback.  [false] when no events are
    pending. *)

val minutes : t -> float

val reset : t -> unit
(** Back to 0 s; drops all pending events (their callbacks never run). *)
