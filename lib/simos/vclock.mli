(** Virtual time.

    The paper's experiments are bounded by wall-clock budgets (3-hour
    searches, 60–80 s per configuration evaluation).  Real kernel builds
    and benchmark runs are simulated here, so their durations are virtual:
    the platform advances this clock by each task's modelled duration, and
    budget experiments (Figures 9–11) become deterministic and fast. *)

type t

val create : unit -> t
(** Starts at 0 s. *)

val now : t -> float
(** Seconds since creation. *)

val advance : t -> float -> unit
(** @raise Invalid_argument on negative durations. *)

val on_advance : t -> (float -> unit) -> unit
(** Subscribe to advancement: each registered observer is called with the
    (non-negative) delta of every subsequent {!advance}, in registration
    order.  This is how the observability layer meters virtual time
    without the clock depending on it.  Observers survive {!reset} (the
    reset itself is not reported). *)

val minutes : t -> float
val reset : t -> unit
