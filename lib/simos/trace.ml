module Rng = Wayfinder_tensor.Rng

type t = { window_s : float; loads : float array }

let version = 1

let duration_s t = t.window_s *. float_of_int (Array.length t.loads)

let float_ok v = Float.is_finite v && v >= 0.

let validate t =
  if not (Float.is_finite t.window_s && t.window_s > 0.) then
    Error (Printf.sprintf "trace window_s must be finite and positive (got %g)" t.window_s)
  else
    match
      Array.to_seqi t.loads
      |> Seq.find (fun (_, l) -> not (float_ok l))
    with
    | Some (i, l) ->
      Error (Printf.sprintf "trace load %d must be finite and non-negative (got %g)" i l)
    | None -> Ok ()

let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal a b =
  float_eq a.window_s b.window_s
  && Array.length a.loads = Array.length b.loads
  && Array.for_all2 float_eq a.loads b.loads

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

(* [%h] round-trips every finite float exactly through
   [float_of_string]; decimal formats would lose bits. *)
let float_field = Printf.sprintf "%h"

let to_string t =
  let buf = Buffer.create (64 + (24 * Array.length t.loads)) in
  Buffer.add_string buf (Printf.sprintf "wayfinder-trace %d\n" version);
  Buffer.add_string buf (Printf.sprintf "window %s\n" (float_field t.window_s));
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "load %s\n" (float_field l)))
    t.loads;
  Buffer.contents buf

let parse_float what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "trace: malformed %s %S" what s)

let ( let* ) = Result.bind

let of_string s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "trace: empty input"
  | header :: rest ->
    let* () =
      match String.split_on_char ' ' header with
      | [ "wayfinder-trace"; v ] -> (
        match int_of_string_opt v with
        | Some v when v = version -> Ok ()
        | Some v ->
          Error
            (Printf.sprintf "trace: unsupported version %d (this build reads version %d)" v
               version)
        | None -> Error (Printf.sprintf "trace: malformed version %S" v))
      | _ -> Error "trace: missing wayfinder-trace header"
    in
    let* window_s, load_lines =
      match rest with
      | first :: more -> (
        match String.split_on_char ' ' first with
        | [ "window"; v ] ->
          let* w = parse_float "window" v in
          Ok (w, more)
        | _ -> Error "trace: expected a window line after the header"
      )
      | [] -> Error "trace: expected a window line after the header"
    in
    let* loads =
      List.fold_left
        (fun acc line ->
          let* acc = acc in
          match String.split_on_char ' ' line with
          | [ "load"; v ] ->
            let* l = parse_float "load" v in
            Ok (l :: acc)
          | _ -> Error (Printf.sprintf "trace: unexpected line %S" line))
        (Ok []) load_lines
    in
    let t = { window_s; loads = Array.of_list (List.rev loads) } in
    let* () = validate t in
    Ok t

let save ~path t =
  match Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string t)) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let built name t =
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg (Printf.sprintf "Trace.%s: %s" name msg)

let constant ~window_s ~windows load =
  if windows < 0 then invalid_arg "Trace.constant: negative window count";
  built "constant" { window_s; loads = Array.make windows load }

let diurnal ?(jitter = 0.) ?(seed = 0) ~window_s ~windows ~base ~peak () =
  if windows < 0 then invalid_arg "Trace.diurnal: negative window count";
  if jitter < 0. || jitter > 1. then invalid_arg "Trace.diurnal: jitter must be in [0, 1]";
  let rng = Rng.create seed in
  let loads =
    Array.init windows (fun i ->
        (* Trough at both ends, crest halfway: one "day" per trace. *)
        let phase =
          if windows <= 1 then 0.5 else float_of_int i /. float_of_int (windows - 1)
        in
        let shape = 0.5 *. (1. -. cos (2. *. Float.pi *. phase)) in
        let load = base +. ((peak -. base) *. shape) in
        let noise = if jitter = 0. then 1. else Rng.uniform rng (1. -. jitter) (1. +. jitter) in
        Float.max 0. (load *. noise))
  in
  built "diurnal" { window_s; loads }

let flash_crowd ~window_s ~windows ~base ~peak ~at ~width =
  if windows < 0 then invalid_arg "Trace.flash_crowd: negative window count";
  if width < 0 then invalid_arg "Trace.flash_crowd: negative width";
  let loads =
    Array.init windows (fun i -> if i >= at && i < at + width then peak else base)
  in
  built "flash_crowd" { window_s; loads }

let ramp ~window_s ~windows ~from_load ~to_load =
  if windows < 0 then invalid_arg "Trace.ramp: negative window count";
  let loads =
    Array.init windows (fun i ->
        let phase =
          if windows <= 1 then 0. else float_of_int i /. float_of_int (windows - 1)
        in
        from_load +. ((to_load -. from_load) *. phase))
  in
  built "ramp" { window_s; loads }

let steps ~window_s phases =
  let loads =
    List.concat_map
      (fun (windows, load) ->
        if windows < 0 then invalid_arg "Trace.steps: negative window count";
        List.init windows (fun _ -> load))
      phases
  in
  built "steps" { window_s; loads = Array.of_list loads }
