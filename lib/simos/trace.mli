(** Versioned, deterministic workload traces.

    A trace is a sequence of load windows: every window lasts
    [window_s] virtual seconds and offers [loads.(i)] requests per
    second.  Traces are the scenario input to {!Trace_replay}: they let
    the simulator drive an application's analytic model through
    time-varying load (diurnal curves, flash crowds, ramps, step
    phases) instead of the static workloads of {!Workload}.

    The on-disk format is line-oriented text, versioned by a header so
    future revisions can evolve without ambiguity:

    {v
    wayfinder-trace 1
    window <float>
    load <float>
    load <float>
    ...
    v}

    Floats are printed with [%h] (hexadecimal significand), so
    [of_string (to_string t) = Ok t] holds bitwise for every valid
    trace — the codec round-trip is exact, not approximate.

    All builders are pure functions of their arguments (jitter is
    drawn from an explicit seed), so the same call always yields the
    same trace. *)

type t = {
  window_s : float;  (** duration of each window, virtual seconds; > 0 *)
  loads : float array;  (** offered load per window, requests/second; finite, >= 0 *)
}

val version : int
(** Current trace format version (1). *)

val duration_s : t -> float
(** Total virtual time covered: [window_s *. float (Array.length loads)]. *)

val validate : t -> (unit, string) result
(** [Ok ()] iff [window_s] is finite and positive and every load is
    finite and non-negative.  An empty [loads] array is valid: the
    empty trace replays to an empty sample set. *)

val equal : t -> t -> bool
(** Structural equality, bitwise on floats (NaN-safe via
    [Int64.bits_of_float]). *)

(** {1 Codec} *)

val to_string : t -> string
(** Serialize to the versioned text format above. *)

val of_string : string -> (t, string) result
(** Parse; rejects unknown versions, malformed lines, and traces that
    fail {!validate}. *)

val save : path:string -> t -> (unit, string) result
val load : path:string -> (t, string) result

(** {1 Builders}

    Every builder validates its result and raises [Invalid_argument]
    on nonsensical inputs (negative loads, zero windows with positive
    load shapes, etc.), so a built trace always passes {!validate}. *)

val constant : window_s:float -> windows:int -> float -> t
(** [windows] copies of the given load. *)

val diurnal :
  ?jitter:float ->
  ?seed:int ->
  window_s:float ->
  windows:int ->
  base:float ->
  peak:float ->
  unit ->
  t
(** One sinusoidal day: load swings from [base] (trough) to [peak]
    (crest) over the trace, peaking halfway through.  [jitter] (default
    0) adds multiplicative noise uniform in [1 -. jitter, 1 +. jitter],
    drawn deterministically from [seed] (default 0); results are
    clamped at 0. *)

val flash_crowd :
  window_s:float -> windows:int -> base:float -> peak:float -> at:int -> width:int -> t
(** Steady [base] load with a burst of [peak] load covering windows
    [at .. at+width-1] (clipped to the trace). *)

val ramp : window_s:float -> windows:int -> from_load:float -> to_load:float -> t
(** Linear interpolation from [from_load] (first window) to [to_load]
    (last window). *)

val steps : window_s:float -> (int * float) list -> t
(** [steps ~window_s phases] concatenates phases, each [(windows, load)]. *)
