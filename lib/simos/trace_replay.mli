(** Replay a {!Trace} against an application's analytic service model.

    Replay is a pure function: the service model is a closed queueing
    approximation (M/M/1-style), so the same trace and service always
    produce bitwise-identical samples.  The virtual-clock connection is
    made by the caller — a trace-replay evaluation charges
    {!Trace.duration_s} as its run time; this module never touches a
    clock.

    Per window [i] with offered load [l] and service capacity [c]
    (requests/second), utilization is [rho = l /. c]:

    - delivered throughput is [min l c] — the service cannot complete
      more than it can serve;
    - latency follows [base /. (1. -. rho)] while [rho] is below the
      saturation knee (0.99), then grows linearly with the excess so
      overload windows are heavily but finitely penalized (the curve is
      continuous and monotone in [rho]);
    - memory is the service footprint inflated by up to 10% under
      load (connection state scales with concurrency).

    From the per-window samples the summary derives mean throughput,
    p50/p95/p99 latency ({!Wayfinder_tensor.Stat.quantile}, linear
    interpolation), and peak memory. *)

type service = {
  capacity_rps : float;  (** sustainable service rate, requests/second; > 0 *)
  base_latency_s : float;  (** unloaded per-request latency, seconds; > 0 *)
  memory_mb : float;  (** resident footprint at idle, MiB *)
}

type sample = {
  offered_rps : float;
  throughput_rps : float;
  latency_s : float;
  memory_mb : float;
}

type summary = {
  samples : sample array;  (** one per trace window, in trace order *)
  mean_throughput_rps : float;  (** 0 for an empty trace *)
  p50_latency_s : float;
  p95_latency_s : float;
  p99_latency_s : float;  (** latency quantiles; 0 for an empty trace *)
  peak_memory_mb : float;  (** max over windows; [service.memory_mb] for an empty trace *)
}

val window : service -> offered_rps:float -> sample
(** Evaluate a single load window. *)

val replay : Trace.t -> service -> summary
(** Evaluate every window of the trace.  @raise Invalid_argument if the
    service has non-positive capacity or base latency. *)
