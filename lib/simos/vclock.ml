type event = {
  at : float;  (* completion time *)
  seq : int;  (* FIFO tie-break among equal [at] *)
  origin : float;  (* clock reading when the event was scheduled *)
  deltas : float list;  (* charge chain from [origin]; [] for absolute events *)
  run : unit -> unit;
}

type t = {
  mutable seconds : float;
  mutable observers : (float -> unit) list;
  (* Binary min-heap of pending events, ordered by (at, seq). *)
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy_event = { at = 0.; seq = -1; origin = 0.; deltas = []; run = Fun.id }

let create () =
  { seconds = 0.; observers = []; heap = Array.make 8 dummy_event; size = 0; next_seq = 0 }

let now t = t.seconds

let on_advance t f = t.observers <- t.observers @ [ f ]

let advance t dt =
  if dt < 0. then invalid_arg "Vclock.advance: negative duration";
  t.seconds <- t.seconds +. dt;
  List.iter (fun f -> f dt) t.observers

(* Set the clock to an absolute reading.  Unlike [advance t (x -. now t)]
   followed by float addition, this lands on [x] bit-exactly — which is
   what checkpoint resume and event completion need. *)
let advance_to t x =
  if x < t.seconds then invalid_arg "Vclock.advance_to: target is in the past";
  let dt = x -. t.seconds in
  t.seconds <- x;
  List.iter (fun f -> f dt) t.observers

let minutes t = t.seconds /. 60.

(* ---------------- Discrete-event scheduler ---------------- *)

let earlier a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy_event in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    earlier t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then invalid_arg "Vclock: no pending events";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy_event;
  (* Sift down. *)
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue_ := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  top

let pending t = t.size

let peek_next t = if t.size = 0 then None else Some t.heap.(0).at

let schedule t ~at run =
  if Float.is_nan at then invalid_arg "Vclock.schedule: NaN completion time";
  if at < t.seconds then invalid_arg "Vclock.schedule: completion time is in the past";
  let ev = { at; seq = t.next_seq; origin = t.seconds; deltas = []; run } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  at

let schedule_chain t ~deltas run =
  List.iter
    (fun d ->
      if Float.is_nan d || d < 0. then
        invalid_arg "Vclock.schedule_chain: deltas must be non-negative")
    deltas;
  let at = List.fold_left ( +. ) t.seconds deltas in
  let ev = { at; seq = t.next_seq; origin = t.seconds; deltas; run } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  at

let run_next t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    (* When the clock has not moved since the event was scheduled, replay
       its charge chain delta by delta: observers see the exact same
       advance stream a synchronous caller would have produced (and the
       clock lands on [at] bit-exactly, since [at] was computed by the
       same left fold).  Otherwise jump straight to the completion time. *)
    if ev.deltas <> [] && ev.origin = t.seconds then List.iter (advance t) ev.deltas
    else advance_to t ev.at;
    ev.run ();
    true
  end

let reset t =
  t.seconds <- 0.;
  t.size <- 0;
  Array.fill t.heap 0 (Array.length t.heap) dummy_event;
  t.next_seq <- 0
