type t = { mutable seconds : float; mutable observers : (float -> unit) list }

let create () = { seconds = 0.; observers = [] }
let now t = t.seconds

let on_advance t f = t.observers <- t.observers @ [ f ]

let advance t dt =
  if dt < 0. then invalid_arg "Vclock.advance: negative duration";
  t.seconds <- t.seconds +. dt;
  List.iter (fun f -> f dt) t.observers

let minutes t = t.seconds /. 60.
let reset t = t.seconds <- 0.
