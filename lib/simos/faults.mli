(** Transient-fault model.

    Real benchmarking platforms (§3.1's testbed driving thousands of
    build/boot/benchmark cycles) see failures that are *not* properties of
    the configuration: VMs hang at boot, builds flake on full disks or
    network hiccups, benchmarks die to unrelated interference, and
    measurements are occasionally corrupted by noisy neighbours.  This
    module models those transients so the platform's resilience layer
    (retry, per-phase timeouts, outlier rejection — see
    [Wayfinder_platform.Resilience]) has something honest to defend
    against, distinct from the deterministic config-caused crashes the
    simulators already produce.

    The schedule is a pure function of [(seed, trial)]: the same plan
    always injects the same fault at the same trial, so runs stay
    reproducible and retries (which re-evaluate under a fresh trial
    number) can deterministically succeed or fail. *)

type rates = {
  boot_hang : float;  (** VM never comes up; virtual boot time blows up. *)
  flaky_build : float;  (** Build fails for reasons unrelated to the config. *)
  spurious_failure : float;  (** Benchmark dies transiently after a good boot. *)
  outlier : float;  (** Measurement corrupted by a heavy-tailed factor. *)
}

val zero_rates : rates
val rates_total : rates -> float

val rates_of_total : float -> rates
(** Split a total transient-fault probability across the four kinds with a
    realistic mix (flaked benchmarks and outliers dominate; hangs and build
    flakes are rarer).  @raise Invalid_argument outside [\[0, 1\]]. *)

type fault =
  | Boot_hang of { stall_s : float }
  | Flaky_build
  | Spurious_failure
  | Outlier of { factor : float }

val fault_to_string : fault -> string

type t
(** An injection plan: seed + rates.  Immutable and stateless. *)

val default_hang_stall_s : float
(** 3600 virtual seconds — an hour-long hang, far beyond any boot. *)

val default_outlier_sigma : float

val create :
  ?rates:rates -> ?hang_stall_s:float -> ?outlier_sigma:float -> seed:int -> unit -> t
(** @raise Invalid_argument on negative rates, a rate sum above 1, or a
    non-positive stall. *)

val seed : t -> int
val rates : t -> rates

val draw : t -> trial:int -> fault option
(** The fault (if any) striking evaluation [trial].  Deterministic: equal
    plans and trials always yield equal draws. *)
