module Rng = Wayfinder_tensor.Rng

type rates = {
  boot_hang : float;
  flaky_build : float;
  spurious_failure : float;
  outlier : float;
}

let zero_rates = { boot_hang = 0.; flaky_build = 0.; spurious_failure = 0.; outlier = 0. }

let rates_total r = r.boot_hang +. r.flaky_build +. r.spurious_failure +. r.outlier

(* The default split mirrors what a real testbed sees: most transients are
   flaked benchmarks and corrupted measurements; hangs and build flakes are
   rarer but far more expensive. *)
let rates_of_total total =
  if total < 0. || total > 1. then invalid_arg "Faults.rates_of_total: total outside [0, 1]";
  { boot_hang = 0.15 *. total;
    flaky_build = 0.15 *. total;
    spurious_failure = 0.40 *. total;
    outlier = 0.30 *. total }

type fault =
  | Boot_hang of { stall_s : float }
  | Flaky_build
  | Spurious_failure
  | Outlier of { factor : float }

let fault_to_string = function
  | Boot_hang { stall_s } -> Printf.sprintf "boot-hang(%.0fs)" stall_s
  | Flaky_build -> "flaky-build"
  | Spurious_failure -> "spurious-failure"
  | Outlier { factor } -> Printf.sprintf "outlier(%.2fx)" factor

type t = { seed : int; rates : rates; hang_stall_s : float; outlier_sigma : float }

let default_hang_stall_s = 3600.
let default_outlier_sigma = 1.2

let create ?(rates = zero_rates) ?(hang_stall_s = default_hang_stall_s)
    ?(outlier_sigma = default_outlier_sigma) ~seed () =
  if rates_total rates > 1. then invalid_arg "Faults.create: rates sum above 1";
  if rates.boot_hang < 0. || rates.flaky_build < 0. || rates.spurious_failure < 0.
     || rates.outlier < 0.
  then invalid_arg "Faults.create: negative rate";
  if hang_stall_s <= 0. then invalid_arg "Faults.create: hang_stall_s must be positive";
  { seed; rates; hang_stall_s; outlier_sigma }

let seed t = t.seed
let rates t = t.rates

(* Each (seed, trial) pair keys its own throwaway generator, so the fault
   schedule is a pure function of the plan — evaluating trials in any
   order, or re-evaluating one, always sees the same fault.  The trial is
   spread with a 64-bit odd constant before [Rng.create]'s own finalizer
   mix so nearby trials land on unrelated streams. *)
let draw t ~trial =
  let key = t.seed lxor (trial * 0x2545F4914F6CDD1D) in
  let rng = Rng.create key in
  let u = Rng.float rng 1.0 in
  let r = t.rates in
  if u < r.boot_hang then
    (* Hung boots stall for "hours" of virtual time (a VM that never comes
       up); with jitter so repeated hangs are distinguishable in traces. *)
    Some (Boot_hang { stall_s = t.hang_stall_s *. (1. +. Rng.float rng 1.0) })
  else if u < r.boot_hang +. r.flaky_build then Some Flaky_build
  else if u < r.boot_hang +. r.flaky_build +. r.spurious_failure then Some Spurious_failure
  else if u < rates_total r then
    (* Heavy-tailed measurement corruption, symmetric in log space: the
       dangerous direction (a fake speedup) is as likely as a fake
       slowdown, so outlier rejection cannot cheat by clamping one side. *)
    let factor = exp (Rng.normal rng ~sigma:t.outlier_sigma ()) in
    (* Keep the factor away from 1 so an "outlier" is actually anomalous. *)
    let factor =
      if factor >= 1. then Float.max factor 1.3 else Float.min factor (1. /. 1.3)
    in
    Some (Outlier { factor })
  else None
