module Rng = Wayfinder_tensor.Rng
module Kspace = Wayfinder_kconfig.Space
module Kconfig_val = Wayfinder_kconfig.Config
module Tristate = Wayfinder_kconfig.Tristate
module Kast = Wayfinder_kconfig.Ast

type t = {
  params : Param.t array;
  index : (string, int) Hashtbl.t;
  fixed : Param.value option array;
}

type configuration = Param.value array

let create param_list =
  let params = Array.of_list param_list in
  let index = Hashtbl.create (Array.length params) in
  Array.iteri
    (fun i p ->
      if Hashtbl.mem index p.Param.name then
        invalid_arg (Printf.sprintf "Space.create: duplicate parameter %s" p.Param.name);
      Hashtbl.add index p.Param.name i)
    params;
  { params; index; fixed = Array.make (Array.length params) None }

let size t = Array.length t.params
let params t = Array.copy t.params
let param t i = t.params.(i)

let index_of t name =
  match Hashtbl.find_opt t.index name with Some i -> i | None -> raise Not_found

let mem t name = Hashtbl.mem t.index name

let log10_cardinality t =
  let acc = ref 0. in
  Array.iteri
    (fun i p -> if t.fixed.(i) = None then acc := !acc +. log10 (Param.cardinality p.Param.kind))
    t.params;
  !acc

let fix t pins =
  let fixed = Array.copy t.fixed in
  List.iter
    (fun (name, v) ->
      let i = index_of t name in
      if not (Param.value_ok t.params.(i).Param.kind v) then
        invalid_arg (Printf.sprintf "Space.fix: ill-typed value for %s" name);
      fixed.(i) <- Some v)
    pins;
  { t with fixed }

let fixed_value t i = t.fixed.(i)
let stage_of t i = t.params.(i).Param.stage

let defaults t =
  Array.mapi
    (fun i p -> match t.fixed.(i) with Some v -> v | None -> p.Param.default)
    t.params

let validate t config =
  if Array.length config <> Array.length t.params then
    invalid_arg "Space.validate: configuration size mismatch";
  let problems = ref [] in
  Array.iteri
    (fun i p ->
      if not (Param.value_ok p.Param.kind config.(i)) then
        problems := (i, Printf.sprintf "%s: ill-typed or out-of-range value" p.Param.name) :: !problems
      else
        match t.fixed.(i) with
        | Some v when not (Param.value_equal v config.(i)) ->
          problems := (i, Printf.sprintf "%s: fixed parameter was varied" p.Param.name) :: !problems
        | Some _ | None -> ())
    t.params;
  List.rev !problems

let random t rng =
  Array.mapi
    (fun i p -> match t.fixed.(i) with Some v -> v | None -> Param.sample p rng)
    t.params

let sample_biased t rng ~vary_probability =
  Array.mapi
    (fun i p ->
      match t.fixed.(i) with
      | Some v -> v
      | None ->
        if Rng.bernoulli rng (vary_probability p) then Param.sample p rng else p.Param.default)
    t.params

let favor_stage stage ?(strong = 0.6) ?(weak = 0.05) p =
  if p.Param.stage = stage then strong else weak

let mutate ?only_stage t rng config ~count =
  let fresh = Array.copy config in
  let free = ref [] in
  Array.iteri
    (fun i p ->
      let stage_ok = match only_stage with None -> true | Some st -> p.Param.stage = st in
      if t.fixed.(i) = None && stage_ok then free := i :: !free)
    t.params;
  let free = Array.of_list !free in
  if Array.length free > 0 then
    for _ = 1 to count do
      let i = Rng.choice rng free in
      fresh.(i) <- Param.perturb t.params.(i) rng fresh.(i)
    done;
  fresh

let crossover t rng a b =
  Array.mapi
    (fun i p ->
      ignore p;
      match t.fixed.(i) with
      | Some v -> v
      | None -> if Rng.bool rng then a.(i) else b.(i))
    t.params

let get t config name = config.(index_of t name)

let set t config name v =
  let i = index_of t name in
  if not (Param.value_ok t.params.(i).Param.kind v) then
    invalid_arg (Printf.sprintf "Space.set: ill-typed value for %s" name);
  let fresh = Array.copy config in
  fresh.(i) <- v;
  fresh

let to_assoc t config =
  Array.to_list
    (Array.mapi
       (fun i p -> (p.Param.name, Param.value_to_string p.Param.kind config.(i)))
       t.params)

let of_assoc t pairs =
  let config = defaults t in
  let rec apply = function
    | [] -> Ok config
    | (name, value_str) :: rest -> (
      match Hashtbl.find_opt t.index name with
      | None -> Error (Printf.sprintf "unknown parameter %s" name)
      | Some i -> (
        match Param.value_of_string t.params.(i).Param.kind value_str with
        | None -> Error (Printf.sprintf "invalid value %S for %s" value_str name)
        | Some v ->
          config.(i) <- v;
          apply rest))
  in
  apply pairs

let diff t a b =
  let out = ref [] in
  Array.iteri
    (fun i p ->
      if not (Param.value_equal a.(i) b.(i)) then
        out :=
          ( p.Param.name,
            Param.value_to_string p.Param.kind a.(i),
            Param.value_to_string p.Param.kind b.(i) )
          :: !out)
    t.params;
  List.rev !out

let project_stages t ~stages config =
  if Array.length config <> Array.length t.params then
    invalid_arg "Space.project_stages: configuration size mismatch";
  let out = ref [] in
  Array.iteri
    (fun i p -> if List.mem p.Param.stage stages then out := (p.Param.name, config.(i)) :: !out)
    t.params;
  List.rev !out

(* Compact value tokens for stage keys.  Deliberately independent of the
   parameter kind: token equality must coincide with [Param.value_equal]
   (categorical values with identical labels are still distinct choices). *)
let stage_key_token = function
  | Param.Vbool b -> if b then "b1" else "b0"
  | Param.Vtristate i -> "t" ^ string_of_int i
  | Param.Vint n -> "i" ^ string_of_int n
  | Param.Vcat i -> "c" ^ string_of_int i

let stage_key t config =
  if Array.length config <> Array.length t.params then
    invalid_arg "Space.stage_key: configuration size mismatch";
  let buf = Buffer.create 64 in
  Array.iteri
    (fun i p ->
      if p.Param.stage <> Param.Runtime then begin
        if Buffer.length buf > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf ':';
        Buffer.add_string buf (stage_key_token config.(i))
      end)
    t.params;
  Buffer.contents buf

(* Canonical space description: one line per parameter, in positional
   order, covering everything that shapes the search — name, stage, kind
   with full ranges/labels, default, and any pin.  Two spaces produce the
   same text iff a model trained on one is exactly valid on the other, so
   the text (and its CRC) can key a persistent model registry.  Labels
   and names are percent-escaped so the encoding stays injective whatever
   characters they contain. *)
let canonical_escape s =
  let plain c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '-' || c = '/' || c = ':'
  in
  if String.for_all plain s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c -> if plain c then Buffer.add_char buf c else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents buf
  end

let canonical_kind = function
  | Param.Kbool -> "bool"
  | Param.Ktristate -> "tristate"
  | Param.Kint { lo; hi; log_scale } ->
    Printf.sprintf "int[%d..%d%s]" lo hi (if log_scale then ",log" else "")
  | Param.Kcategorical labels ->
    Printf.sprintf "cat{%s}"
      (String.concat "," (Array.to_list (Array.map canonical_escape labels)))

let canonical_description t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf "param %s stage=%s kind=%s default=%s"
           (canonical_escape p.Param.name)
           (Param.stage_to_string p.Param.stage)
           (canonical_kind p.Param.kind)
           (Param.value_token p.Param.default));
      (match t.fixed.(i) with
      | Some v -> Buffer.add_string buf (" pin=" ^ Param.value_token v)
      | None -> ());
      Buffer.add_char buf '\n')
    t.params;
  Buffer.contents buf

let differs_only_in_stage t a b stage =
  let ok = ref true in
  Array.iteri
    (fun i p ->
      if (not (Param.value_equal a.(i) b.(i))) && p.Param.stage <> stage then ok := false)
    t.params;
  !ok

let of_kconfig ?(stage = Param.Compile_time) descriptors =
  List.map
    (fun d ->
      let open Kspace in
      let kind, default =
        match (d.d_type, d.d_default) with
        | Kast.Bool, Kconfig_val.V_tristate v ->
          (Param.Kbool, Param.Vbool (v = Tristate.Y))
        | Kast.Tristate, Kconfig_val.V_tristate v ->
          (Param.Ktristate, Param.Vtristate (Tristate.to_int v))
        | (Kast.Int | Kast.Hex), Kconfig_val.V_int i ->
          let lo, hi = match d.d_range with Some r -> r | None -> (0, max 1 (i * 100)) in
          let log_scale = hi - lo > 1000 in
          (Param.Kint { lo; hi; log_scale }, Param.Vint (max lo (min hi i)))
        | Kast.String, Kconfig_val.V_string s ->
          (Param.Kcategorical [| s |], Param.Vcat 0)
        | _, _ ->
          (* Mismatched default (should not happen); fall back to bool-off. *)
          (Param.Kbool, Param.Vbool false)
      in
      Param.make ~name:d.d_name ~stage ~kind ~default ())
    descriptors

let pp_configuration t ppf config =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i p ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%s = %s" p.Param.name (Param.value_to_string p.Param.kind config.(i)))
    t.params;
  Format.fprintf ppf "@]"
