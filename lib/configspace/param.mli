(** Typed OS configuration parameters.

    A parameter unifies the three stages of OS configuration the paper
    specializes (§3.1): compile-time (Kconfig symbols), boot-time (kernel
    command-line), and runtime ([/proc/sys], [/sys]).  Each parameter has a
    kind that fixes its value domain. *)

type stage = Compile_time | Boot_time | Runtime

val stage_to_string : stage -> string
val stage_of_string : string -> stage option

type kind =
  | Kbool
  | Ktristate
  | Kint of { lo : int; hi : int; log_scale : bool }
      (** [log_scale] marks wide ranges that should be sampled by order of
          magnitude (socket buffers, timeouts, ...). *)
  | Kcategorical of string array  (** Fixed value set, e.g. qdisc names. *)

type value = Vbool of bool | Vtristate of int  (** 0 = n, 1 = m, 2 = y *) | Vint of int | Vcat of int

type t = {
  name : string;
  stage : stage;
  kind : kind;
  default : value;
  description : string option;
}

val make : ?description:string -> name:string -> stage:stage -> kind:kind -> default:value -> unit -> t
(** @raise Invalid_argument if [default] is ill-typed or out of range for
    [kind]. *)

val bool_param : ?stage:stage -> string -> bool -> t
(** Convenience constructors; [stage] defaults to [Runtime]. *)

val int_param : ?stage:stage -> ?log_scale:bool -> string -> lo:int -> hi:int -> default:int -> t
val categorical_param : ?stage:stage -> string -> string array -> default:int -> t
val tristate_param : ?stage:stage -> string -> int -> t

val value_ok : kind -> value -> bool
(** Type- and range-checks a value against a kind. *)

val clamp : kind -> value -> value
(** Coerce a well-typed value into range (ints clamped, categorical/tristate
    indices wrapped into the domain). *)

val value_equal : value -> value -> bool
val value_to_string : kind -> value -> string
val value_of_string : kind -> string -> value option

val value_token : value -> string
(** Compact kind-independent codec ("b1" / "t2" / "i4096" / "c3") shared
    by checkpoints and run ledgers: decodable without the originating
    space. *)

val value_of_token : string -> value option
(** Total inverse of {!value_token}; [None] on malformed tokens. *)

val config_key : value array -> string
(** Canonical identity of a whole configuration: the comma-joined
    {!value_token}s.  Injective — two configurations share a key iff they
    are equal position by position — so it is safe to key quarantine
    strikes, dedup sets and checkpoint state on it (unlike
    [Hashtbl.hash], which ignores everything past a bounded prefix). *)

val cardinality : kind -> float
(** Number of possible values (as a float: integer ranges can be large).
    Used to report search-space sizes like the paper's 3.7×10¹³. *)

val sample : t -> Wayfinder_tensor.Rng.t -> value
(** Uniform draw from the parameter's domain; log-scaled ints draw an order
    of magnitude first. *)

val perturb : t -> Wayfinder_tensor.Rng.t -> value -> value
(** Local move: flips bools, steps tristates, scales/offsets ints, re-draws
    categorical values.  The result is always in-domain and (when the domain
    has more than one point) different from the input. *)

val pp_value : kind -> Format.formatter -> value -> unit
val pp : Format.formatter -> t -> unit
