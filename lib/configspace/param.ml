module Rng = Wayfinder_tensor.Rng

type stage = Compile_time | Boot_time | Runtime

let stage_to_string = function
  | Compile_time -> "compile-time"
  | Boot_time -> "boot-time"
  | Runtime -> "runtime"

let stage_of_string = function
  | "compile-time" | "compile" -> Some Compile_time
  | "boot-time" | "boot" -> Some Boot_time
  | "runtime" | "run" -> Some Runtime
  | _ -> None

type kind =
  | Kbool
  | Ktristate
  | Kint of { lo : int; hi : int; log_scale : bool }
  | Kcategorical of string array

type value = Vbool of bool | Vtristate of int | Vint of int | Vcat of int

type t = {
  name : string;
  stage : stage;
  kind : kind;
  default : value;
  description : string option;
}

let value_ok kind v =
  match (kind, v) with
  | Kbool, Vbool _ -> true
  | Ktristate, Vtristate t -> t >= 0 && t <= 2
  | Kint { lo; hi; _ }, Vint i -> i >= lo && i <= hi
  | Kcategorical choices, Vcat i -> i >= 0 && i < Array.length choices
  | (Kbool | Ktristate | Kint _ | Kcategorical _), _ -> false

let clamp kind v =
  match (kind, v) with
  | Kbool, Vbool _ -> v
  | Ktristate, Vtristate t -> Vtristate (max 0 (min 2 t))
  | Kint { lo; hi; _ }, Vint i -> Vint (max lo (min hi i))
  | Kcategorical choices, Vcat i ->
    let n = Array.length choices in
    if n = 0 then Vcat 0 else Vcat (((i mod n) + n) mod n)
  | (Kbool | Ktristate | Kint _ | Kcategorical _), _ ->
    invalid_arg "Param.clamp: value kind mismatch"

let make ?description ~name ~stage ~kind ~default () =
  if not (value_ok kind default) then
    invalid_arg (Printf.sprintf "Param.make: ill-typed or out-of-range default for %s" name);
  { name; stage; kind; default; description }

let bool_param ?(stage = Runtime) name default =
  make ~name ~stage ~kind:Kbool ~default:(Vbool default) ()

let int_param ?(stage = Runtime) ?(log_scale = false) name ~lo ~hi ~default =
  if lo > hi then invalid_arg "Param.int_param: lo > hi";
  make ~name ~stage ~kind:(Kint { lo; hi; log_scale }) ~default:(Vint default) ()

let categorical_param ?(stage = Runtime) name choices ~default =
  if Array.length choices = 0 then invalid_arg "Param.categorical_param: empty choice set";
  make ~name ~stage ~kind:(Kcategorical choices) ~default:(Vcat default) ()

let tristate_param ?(stage = Compile_time) name default =
  make ~name ~stage ~kind:Ktristate ~default:(Vtristate default) ()

let value_equal a b =
  match (a, b) with
  | Vbool x, Vbool y -> x = y
  | Vtristate x, Vtristate y -> x = y
  | Vint x, Vint y -> x = y
  | Vcat x, Vcat y -> x = y
  | (Vbool _ | Vtristate _ | Vint _ | Vcat _), _ -> false

(* Kind-independent compact codec ("b1", "t2", "i4096", "c3") — the
   serialisation checkpoints and run ledgers share.  Unlike
   {!value_to_string} it needs no kind to decode, so artifacts remain
   parseable without the space that produced them. *)
let value_token = function
  | Vbool b -> if b then "b1" else "b0"
  | Vtristate i -> "t" ^ string_of_int i
  | Vint n -> "i" ^ string_of_int n
  | Vcat i -> "c" ^ string_of_int i

(* Canonical, collision-free identity of a whole configuration: the
   comma-joined value tokens.  Tokens contain no commas and [value_token]
   is injective on values, so two configurations share a key iff they are
   equal position by position — unlike [Hashtbl.hash], which only examines
   a bounded prefix of the structure and silently conflates configurations
   that differ past the ~10th parameter. *)
let config_key config =
  String.concat "," (Array.to_list (Array.map value_token config))

let value_of_token s =
  if String.length s < 2 then None
  else
    let body = String.sub s 1 (String.length s - 1) in
    match (s.[0], int_of_string_opt body) with
    | 'b', Some 0 -> Some (Vbool false)
    | 'b', Some 1 -> Some (Vbool true)
    | 't', Some i -> Some (Vtristate i)
    | 'i', Some n -> Some (Vint n)
    | 'c', Some i -> Some (Vcat i)
    | _ -> None

let value_to_string kind v =
  match (kind, v) with
  | _, Vbool b -> if b then "1" else "0"
  | _, Vtristate 0 -> "n"
  | _, Vtristate 1 -> "m"
  | _, Vtristate _ -> "y"
  | _, Vint i -> string_of_int i
  | Kcategorical choices, Vcat i when i >= 0 && i < Array.length choices -> choices.(i)
  | _, Vcat i -> string_of_int i

let value_of_string kind s =
  match kind with
  | Kbool -> (
    match s with
    | "1" | "true" | "y" | "yes" | "on" -> Some (Vbool true)
    | "0" | "false" | "n" | "no" | "off" -> Some (Vbool false)
    | _ -> None)
  | Ktristate -> (
    match s with
    | "n" | "0" -> Some (Vtristate 0)
    | "m" | "1" -> Some (Vtristate 1)
    | "y" | "2" -> Some (Vtristate 2)
    | _ -> None)
  | Kint { lo; hi; _ } -> (
    match int_of_string_opt s with
    | Some i when i >= lo && i <= hi -> Some (Vint i)
    | Some _ | None -> None)
  | Kcategorical choices -> (
    let rec find i =
      if i >= Array.length choices then None
      else if String.equal choices.(i) s then Some (Vcat i)
      else find (i + 1)
    in
    find 0)

let cardinality = function
  | Kbool -> 2.
  | Ktristate -> 3.
  | Kint { lo; hi; _ } -> float_of_int (hi - lo + 1)
  | Kcategorical choices -> float_of_int (Array.length choices)

let sample_log_int rng lo hi =
  (* Uniform over orders of magnitude between lo and hi, then uniform
     within the chosen decade. *)
  let lo_f = float_of_int (max 1 lo) and hi_f = float_of_int (max 1 hi) in
  let log_lo = log10 lo_f and log_hi = log10 hi_f in
  let x = 10. ** Rng.uniform rng log_lo log_hi in
  max lo (min hi (int_of_float x))

let sample p rng =
  match p.kind with
  | Kbool -> Vbool (Rng.bool rng)
  | Ktristate -> Vtristate (Rng.int rng 3)
  | Kint { lo; hi; log_scale } ->
    if log_scale && hi > 0 then Vint (sample_log_int rng lo hi) else Vint (Rng.int_in rng lo hi)
  | Kcategorical choices -> Vcat (Rng.int rng (Array.length choices))

let perturb p rng v =
  match (p.kind, v) with
  | Kbool, Vbool b -> Vbool (not b)
  | Ktristate, Vtristate t ->
    let delta = if Rng.bool rng then 1 else -1 in
    let t' = t + delta in
    Vtristate (if t' < 0 then 1 else if t' > 2 then 1 else t')
  | Kint { lo; hi; log_scale }, Vint i ->
    if lo = hi then Vint lo
    else begin
      let candidate =
        if log_scale then begin
          let factor = Rng.choice rng [| 0.1; 0.5; 2.; 10. |] in
          int_of_float (float_of_int (max 1 i) *. factor)
        end
        else begin
          let span = max 1 ((hi - lo) / 10) in
          i + Rng.int_in rng (-span) span
        end
      in
      let clamped = max lo (min hi candidate) in
      if clamped = i then Vint (if i < hi then i + 1 else i - 1) else Vint clamped
    end
  | Kcategorical choices, Vcat i ->
    let n = Array.length choices in
    if n <= 1 then Vcat 0
    else begin
      let j = Rng.int rng (n - 1) in
      Vcat (if j >= i then j + 1 else j)
    end
  | (Kbool | Ktristate | Kint _ | Kcategorical _), _ ->
    invalid_arg "Param.perturb: value kind mismatch"

let pp_value kind ppf v = Format.pp_print_string ppf (value_to_string kind v)

let pp ppf p =
  let kind_str =
    match p.kind with
    | Kbool -> "bool"
    | Ktristate -> "tristate"
    | Kint { lo; hi; log_scale } ->
      Printf.sprintf "int[%d..%d]%s" lo hi (if log_scale then " (log)" else "")
    | Kcategorical choices -> Printf.sprintf "categorical{%s}" (String.concat "," (Array.to_list choices))
  in
  Format.fprintf ppf "%s (%s, %s, default %s)" p.name (stage_to_string p.stage) kind_str
    (value_to_string p.kind p.default)
