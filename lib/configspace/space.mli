(** Configuration spaces and concrete configurations.

    A space is an ordered collection of {!Param.t}; a configuration assigns
    every parameter a value (stored positionally).  Spaces support the
    operations the paper's platform needs: random sampling, default-based
    sampling that *favors varying a stage* (§4.1 favours runtime parameters,
    §4.4 compile-time ones), local mutation, and pinning parameters to fixed
    values (the security-aware search mode of §3.5). *)

type t

type configuration = Param.value array
(** Index-aligned with the space's parameters. *)

val create : Param.t list -> t
(** @raise Invalid_argument on duplicate parameter names. *)

val size : t -> int
val params : t -> Param.t array
val param : t -> int -> Param.t

val index_of : t -> string -> int
(** @raise Not_found for unknown names. *)

val mem : t -> string -> bool

val log10_cardinality : t -> float
(** Log₁₀ of the number of distinct configurations (fixed parameters
    contribute 1).  The Unikraft space of §4.4 reports ≈13.6, i.e.
    3.7×10¹³ permutations. *)

val fix : t -> (string * Param.value) list -> t
(** Pin parameters to constant values: they keep their position but are
    never varied by {!random}, {!sample_biased} or {!mutate}.
    @raise Invalid_argument on ill-typed pins, @raise Not_found on unknown
    names. *)

val fixed_value : t -> int -> Param.value option
val stage_of : t -> int -> Param.stage

val defaults : t -> configuration
val validate : t -> configuration -> (int * string) list
(** Positions (and messages) of ill-typed or out-of-range values, and of
    violated pins.  Empty = valid. *)

val random : t -> Wayfinder_tensor.Rng.t -> configuration
(** Every non-fixed parameter drawn uniformly from its domain. *)

val sample_biased :
  t -> Wayfinder_tensor.Rng.t -> vary_probability:(Param.t -> float) -> configuration
(** Start from defaults and re-draw each non-fixed parameter with the given
    probability — the "favor certain parameter types" knob of §3.5. *)

val favor_stage : Param.stage -> ?strong:float -> ?weak:float -> Param.t -> float
(** Ready-made bias: [strong] (default 0.6) for parameters of the given
    stage, [weak] (default 0.05) otherwise. *)

val mutate :
  ?only_stage:Param.stage ->
  t ->
  Wayfinder_tensor.Rng.t ->
  configuration ->
  count:int ->
  configuration
(** Fresh configuration with up to [count] non-fixed parameters locally
    perturbed ({!Param.perturb}); [only_stage] restricts the perturbed
    parameters to one stage (e.g. runtime-only exploration). *)

val crossover :
  t -> Wayfinder_tensor.Rng.t -> configuration -> configuration -> configuration
(** Uniform crossover of two parents (used to diversify candidate pools). *)

val get : t -> configuration -> string -> Param.value
val set : t -> configuration -> string -> Param.value -> configuration
(** Functional update. @raise Invalid_argument on ill-typed values. *)

val to_assoc : t -> configuration -> (string * string) list
val of_assoc : t -> (string * string) list -> (configuration, string) result
(** Missing parameters take defaults; unknown names or unparseable values
    produce [Error]. *)

val diff : t -> configuration -> configuration -> (string * string * string) list
(** [(name, old_value, new_value)] for differing positions. *)

val differs_only_in_stage : t -> configuration -> configuration -> Param.stage -> bool
(** True when every differing parameter belongs to [stage] — the platform's
    rebuild-skip test (§3.1: skip the build task when only runtime
    parameters changed). *)

val project_stages :
  t -> stages:Param.stage list -> configuration -> (string * Param.value) list
(** The configuration restricted to the parameters of the given stages, as
    [(name, value)] pairs in parameter order.
    @raise Invalid_argument on a size mismatch. *)

val stage_key : t -> configuration -> string
(** Canonical content-address of the configuration's {e non-runtime}
    projection (compile-time and boot-time parameters, by position).  Two
    configurations share a key iff they differ only in runtime parameters
    — i.e. [stage_key t a = stage_key t b] is exactly
    [differs_only_in_stage t a b Param.Runtime] — so the key identifies
    the built image an evaluation needs, and runtime-only variation never
    invalidates it.
    @raise Invalid_argument on a size mismatch. *)

val canonical_description : t -> string
(** Canonical, injective text rendering of the space's {e structure}: one
    line per parameter in positional order — escaped name, stage, kind
    with full integer ranges / categorical labels, default value token,
    and the pin token for fixed parameters.  Two spaces render to the
    same text iff they are interchangeable for a trained model (same
    parameters, same positions, same domains, same pins), which makes the
    text — together with its CRC — a verifiable fingerprint for the
    persistent model registry.  Never compare truncated hashes of spaces;
    compare this text. *)

val of_kconfig : ?stage:Param.stage -> Wayfinder_kconfig.Space.descriptor list -> Param.t list
(** Convert Kconfig descriptors into parameters (choice members and
    dependent symbols are included; strings become single-point categorical
    domains). *)

val pp_configuration : t -> Format.formatter -> configuration -> unit
