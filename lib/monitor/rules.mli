(** Declarative alert rules over a {!Live_series}.

    Selected on the CLI with [--alerts SPEC] and evaluated after every
    record; conditions are deterministic functions of the rows seen so
    far (plus a baseline the drift rule freezes from the run's own first
    window), so the alert stream is as replayable as everything else in
    this library.

    Grammar (comma-separated, e.g. ["crash>0.5@40,stall>30,drift"]):
    - [crash>P[@W]] — trailing-[W]-window crash rate above [P] (a
      fraction in \[0,1\]; [W] defaults to 25);
    - [stall>N] — no best improvement in the last [N] iterations;
    - [starve<F] — mean worker-pool busy fraction below [F] (only
      evaluated when the caller supplies [worker_busy], i.e. in-process
      with [workers > 1]);
    - [drift[@W]] — {!Wayfinder_analytics.Drift.probe} of the trailing
      [W] rows against the crash rate and mean successful value of the
      run's {e first} [W] rows (frozen once available; probed only once
      [2W] rows exist, so baseline and probe never overlap).

    Firing is {e edge-triggered}: {!evaluate} reports a rule once when
    its condition becomes true, and the rule re-arms when the condition
    clears.  {!active} lists the rules currently true (for dashboard
    rendering). *)

type rule =
  | Crash of { threshold : float; window : int }
  | Stall of { iterations : int }
  | Starve of { fraction : float }
  | Drift of { window : int }

val default_window : int

val rule_name : rule -> string
(** ["crash"], ["stall"], ["starve"] or ["drift"] — the [Alert] event's
    rule tag. *)

val rule_to_string : rule -> string
(** A spec string that parses back to the rule. *)

val parse : string -> (rule list, string) result

type firing = { rule : string; message : string }

type state
(** Per-rule edge-trigger latches plus the drift baseline. *)

val create : rule list -> state

val evaluate : state -> ?worker_busy:float -> Live_series.t -> firing list
(** Newly-fired rules (false→true transitions) for the current series
    state, in rule order. *)

val active : state -> string list
(** Names of the rules whose condition currently holds. *)
