module Metric = Wayfinder_platform.Metric
module Obs = Wayfinder_obs
module A = Wayfinder_analytics

(* The watch dashboard is a pure function of the ledger's semantic
   content: no wall clock, no file paths, and none of the per-row
   wall-clock fields (decide_s) appear — so two runs with identical
   seeds render byte-identical frames, which CI diffs. *)

let seal_to_string = function
  | Tail.Unsealed -> "live (no fin seal yet)"
  | Tail.Sealed -> "sealed"
  | Tail.Sealed_unverified -> "sealed (crc not verified: resumed mid-file)"

let render ?(alerts = []) ?(dropped = 0) ~seal ~(meta : A.Ledger.meta) live =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let m = meta.A.Ledger.metric in
  line "wayfinder watch — %s on %s [%s] (%s)%s" meta.A.Ledger.algo
    m.Metric.metric_name m.Metric.unit_name
    (if m.Metric.maximize then "maximize" else "minimize")
    (match meta.A.Ledger.seed with
    | Some s -> Printf.sprintf ", seed %d" s
    | None -> "");
  let s = Live_series.stats live in
  line "%s"
    (A.Progress.to_line ~alerts ~metric:m (Live_series.progress live));
  line "window(%d): crash %.0f%% | transient %.0f%% | best-so-far %s"
    (Live_series.window live)
    (100. *. s.Live_series.windowed_crash_rate)
    (100. *. s.Live_series.windowed_transient_rate)
    (if Float.is_nan s.Live_series.best_so_far then "-"
     else Printf.sprintf "%.3f %s" s.Live_series.best_so_far m.Metric.unit_name);
  line "coverage: %d evaluated | %d configs | %d stage keys | eval time %s"
    s.Live_series.evaluated s.Live_series.distinct_configs
    s.Live_series.distinct_stage_keys
    (Obs.Summary.si s.Live_series.total_eval_seconds);
  (match (s.Live_series.pareto_size, s.Live_series.hypervolume_proxy) with
  | Some n, Some hv -> line "pareto: %d points | hv proxy %g" n hv
  | _ -> ());
  line "ledger: %s | %d rows | %d dropped" (seal_to_string seal)
    s.Live_series.length dropped;
  Buffer.contents buf
