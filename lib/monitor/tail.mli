(** Follow-mode ledger reader.

    Polls a growing JSONL ledger: each {!step} reads every line whose
    terminating newline has reached the disk since the previous step and
    parses it incrementally — a writer killed mid-record never yields a
    half-parsed row (the torn fragment stays pending until the file
    grows past it).  Body damage follows the salvage discipline of
    {!Wayfinder_analytics.Ledger}: bad lines become positioned drops;
    only header/meta damage (or an unknown schema) is a fatal error,
    since without the meta record the rows cannot be interpreted.

    When the tail starts at byte 0 it maintains the same streaming
    CRC-32 the batch reader computes, so a [fin] seal is fully verified
    ({!Sealed}); a tail {!resume}d mid-file can check the seal's row
    count but not its checksum and reports {!Sealed_unverified}.  A file
    that shrinks under the reader (truncation/rewrite) resets the tail
    to the beginning and is flagged in the step result. *)

module A = Wayfinder_analytics

type seal =
  | Unsealed  (** No [fin] yet — a live or killed run. *)
  | Sealed  (** [fin] present, row count and CRC both verified. *)
  | Sealed_unverified
      (** [fin] present with matching row count, but the tail resumed
          mid-file so the CRC could not be recomputed. *)

type t

type step = {
  rows : A.Ledger.row list;  (** Newly completed rows, in file order. *)
  drops : A.Ledger.drop list;  (** Newly dropped lines, in file order. *)
  truncated : bool;
      (** The file shrank since the last step; the tail restarted from
          byte 0 and [rows]/[drops] re-deliver from the beginning. *)
}

val create : string -> t
(** Tail from byte 0.  No I/O happens until {!step}. *)

val resume :
  ?rows_read:int -> path:string -> offset:int -> meta:A.Ledger.meta -> unit -> t
(** Tail from a byte offset inside the row region, for a caller that
    already consumed the prefix (and its meta record).  [rows_read]
    (default 0) is the number of iter rows in the consumed prefix, so a
    later [fin] seal's row count can still be checked.  Drop line
    numbers are then relative to the resume point, and a seal can only
    verify as {!Sealed_unverified}. *)

val step : t -> (step, A.Ledger.error) result
(** Read and parse everything new.  [Error] on a missing/unreadable
    file, a foreign or damaged header, or a damaged meta line. *)

val meta : t -> A.Ledger.meta option
(** The meta record, once the second line has been read. *)

val seal : t -> seal
val offset : t -> int
(** Bytes consumed (complete lines only). *)

val rows_read : t -> int
val dropped : t -> int
