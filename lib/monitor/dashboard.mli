(** The [wayfinder watch] TTY frame.

    A deterministic projection of a ledger's semantic content: the frame
    text depends only on the meta record, the rows folded into the
    {!Live_series}, the seal state, the drop count and the active alert
    names — never on wall-clock fields ([decide_s]), file paths or the
    time of rendering.  Two identical-seed runs therefore render
    byte-identical frames; CI diffs them. *)

module A = Wayfinder_analytics

val seal_to_string : Tail.seal -> string

val render :
  ?alerts:string list ->
  ?dropped:int ->
  seal:Tail.seal ->
  meta:A.Ledger.meta ->
  Live_series.t ->
  string
(** Multi-line frame, trailing newline included.  [alerts] (default
    none) are the active rule names; [dropped] (default 0) the count of
    salvage-dropped lines. *)
