module A = Wayfinder_analytics
module Crc32 = Wayfinder_platform.Crc32

(* Follow-mode ledger reader.  Each {!step} reopens the file, seeks to
   the first unconsumed byte and parses every newly-completed line —
   a line is consumed only once its terminating '\n' is on disk, so a
   writer killed mid-record never yields a half-parsed row (it stays
   pending until the file grows past it or forever).  Damage inside the
   body follows the salvage discipline of {!A.Ledger}: bad lines become
   positioned drops, never crashes; only header/meta damage is fatal,
   because without the meta record the rows cannot be interpreted. *)

type seal =
  | Unsealed
  | Sealed
  | Sealed_unverified

type state =
  | Expect_header
  | Expect_meta
  | Rows

type t = {
  path : string;
  mutable state : state;
  mutable offset : int;
  mutable lineno : int;
  (* Streaming CRC over every consumed line (newline included), exactly
     as the batch reader accumulates it; [None] when resumed mid-file,
     where the seal can only ever be [Sealed_unverified]. *)
  mutable crc : Crc32.t option;
  mutable meta : A.Ledger.meta option;
  mutable nrows : int;
  mutable ndrops : int;
  mutable seal : seal;
}

type step = {
  rows : A.Ledger.row list;
  drops : A.Ledger.drop list;
  truncated : bool;
}

let create path =
  { path; state = Expect_header; offset = 0; lineno = 1;
    crc = Some Crc32.init; meta = None; nrows = 0; ndrops = 0;
    seal = Unsealed }

let resume ?(rows_read = 0) ~path ~offset ~meta () =
  { path; state = Rows; offset; lineno = 1; crc = None; meta = Some meta;
    nrows = rows_read; ndrops = 0; seal = Unsealed }

let meta t = t.meta
let seal t = t.seal
let offset t = t.offset
let rows_read t = t.nrows
let dropped t = t.ndrops

let reset t =
  t.state <- Expect_header;
  t.offset <- 0;
  t.lineno <- 1;
  t.crc <- Some Crc32.init;
  t.meta <- None;
  t.nrows <- 0;
  t.ndrops <- 0;
  t.seal <- Unsealed

let ( let* ) = Result.bind

(* Consume one complete line (no trailing newline).  [Ok] carries the
   parsed rows/drops accumulated so far in reverse. *)
let consume t acc line =
  let rows, drops = acc in
  let drop reason =
    t.ndrops <- t.ndrops + 1;
    Ok (rows, { A.Ledger.line = t.lineno; offset = t.offset; reason } :: drops)
  in
  let* acc =
    match t.state with
    | Expect_header ->
      let* () = A.Ledger.parse_header line in
      t.state <- Expect_meta;
      Ok acc
    | Expect_meta ->
      let* meta = A.Ledger.parse_meta ~offset:t.offset line in
      t.meta <- Some meta;
      t.state <- Rows;
      Ok acc
    | Rows -> (
      match A.Ledger.parse_line line with
      | Ok A.Ledger.Blank_line -> Ok acc
      | _ when t.seal <> Unsealed -> drop "content after fin seal"
      | Error (A.Ledger.Malformed reason) -> drop reason
      | Error e -> Error e
      | Ok (A.Ledger.Iter_line row) ->
        t.nrows <- t.nrows + 1;
        Ok (row :: rows, drops)
      | Ok (A.Ledger.Fin_line { fin_rows; fin_crc }) -> (
        match (fin_rows, fin_crc) with
        | None, _ | _, None -> drop "fin seal is missing rows or crc"
        | Some r, Some c ->
          if r <> t.nrows then
            drop
              (Printf.sprintf
                 "fin seal claims %d rows but %d were read (truncated body?)" r
                 t.nrows)
          else (
            match t.crc with
            | None ->
              t.seal <- Sealed_unverified;
              Ok acc
            | Some crc ->
              let computed = Crc32.finish crc in
              if c <> computed then
                drop
                  (Printf.sprintf "fin seal crc mismatch (stored %s, computed %s)"
                     (Crc32.to_hex c) (Crc32.to_hex computed))
              else begin
                t.seal <- Sealed;
                Ok acc
              end)))
  in
  t.crc <- Option.map (fun c -> Crc32.update (Crc32.update c line) "\n") t.crc;
  t.offset <- t.offset + String.length line + 1;
  t.lineno <- t.lineno + 1;
  Ok acc

let step t =
  match
    let ic = open_in_bin t.path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        let truncated = size < t.offset in
        if truncated then reset t;
        seek_in ic t.offset;
        let chunk = really_input_string ic (size - t.offset) in
        (truncated, chunk))
  with
  | exception Sys_error msg -> Error (A.Ledger.Malformed msg)
  | truncated, chunk ->
    (* Only lines whose '\n' is present are consumed; the final
       newline-less fragment stays on disk for the next poll. *)
    let rec go acc from =
      match String.index_from_opt chunk from '\n' with
      | None -> Ok acc
      | Some nl ->
        let line = String.sub chunk from (nl - from) in
        let* acc = consume t acc line in
        go acc (nl + 1)
    in
    let* rows, drops = go ([], []) 0 in
    Ok { rows = List.rev rows; drops = List.rev drops; truncated }
