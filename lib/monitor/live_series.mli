(** Streaming run statistics — the incremental twin of
    {!Wayfinder_analytics.Series}.

    Feed it rows one at a time (from a live [on_record] hook or a tailed
    ledger) and every statistic the batch code computes by scanning the
    whole history is available in O(1) (amortised) per record: running
    best, trailing-window regret slope, total and windowed crash /
    transient rates, coverage, the Pareto front, and virtual-time totals.

    The contract — pinned by the conformance suite — is {e bitwise}
    equality with the batch rebuild: after [k] calls to {!observe},
    {!stats} equals {!stats_of_series} of a [Series.t] over the same
    first [k] rows, float-for-float ([Int64.bits_of_float] comparison),
    at every prefix.  Where that requires replaying the batch code's
    exact operation order (the slope's least-squares loop, the windowed
    counter dance), this module transcribes it rather than
    approximating. *)

module Param = Wayfinder_configspace.Param
module Metric = Wayfinder_platform.Metric
module Pareto = Wayfinder_platform.Pareto
module A = Wayfinder_analytics

type t

val default_window : int
(** = {!A.Progress.default_window}. *)

val create :
  ?window:int ->
  metric:Metric.t ->
  names:string array ->
  stages:Param.stage array ->
  objectives:Metric.t array ->
  unit ->
  t
(** [window] (default {!default_window}) sizes the trailing window of the
    slope and the windowed rates.  [objectives = [||]] means a scalar
    run (no Pareto front).  @raise Invalid_argument if [window <= 0]. *)

val of_meta : ?window:int -> A.Ledger.meta -> t
(** A live series shaped by a ledger's meta record — what [watch]
    constructs before replaying the rows. *)

val observe : t -> A.Series.row -> unit
(** Fold in one completed iteration.  Rows must arrive in completion
    order (the order the ledger records them). *)

val length : t -> int
val window : t -> int
val metric : t -> Metric.t

val last_improvement : t -> int
(** 1-based iteration count at which the running best last improved
    (first success included); 0 before any success — the stall rule's
    input. *)

type stats = {
  length : int;
  best : (int * float) option;  (** As {!A.Series.best}. *)
  best_so_far : float;  (** Last running-best value; NaN before any. *)
  regret_slope : float;  (** As {!A.Series.regret_slope} over [window]. *)
  crash_rate : float;
  transient_rate : float;
  windowed_crash_rate : float;
      (** Last element of {!A.Series.windowed_crash_rate}; 0 when empty. *)
  windowed_transient_rate : float;
  evaluated : int;
  distinct_configs : int;
  distinct_stage_keys : int;
  pareto_size : int option;  (** [None] for scalar runs. *)
  hypervolume_proxy : float option;
  virtual_seconds : float;  (** As {!A.Series.last_at_seconds}. *)
  total_eval_seconds : float;
}

val stats : t -> stats

val stats_of_series : ?window:int -> A.Series.t -> stats
(** The batch oracle: the same statistics computed only through
    {!A.Series} functions — the right-hand side of the conformance
    property. *)

val series : t -> A.Series.t
(** The accumulated rows as a batch series (fresh row array). *)

val tail_series : t -> window:int -> A.Series.t
(** The trailing [min n window] rows as a batch series — the drift
    rule's O(window) probe input.  @raise Invalid_argument if
    [window <= 0]. *)

val pareto : t -> Pareto.t option

val progress : t -> A.Progress.snapshot
(** The [--progress] projection ({!A.Progress.of_series} shape) computed
    from live state; [cache_hit_rate] and [worker_busy] are [None] — a
    ledger consumer has no metrics registry. *)
