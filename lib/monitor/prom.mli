(** Prometheus text exposition (format 0.0.4).

    Renders the obs {!Wayfinder_obs.Metrics.snapshot} (counters →
    counters, power-of-two histograms → cumulative [_bucket{le="..."}]
    series with the mandatory [+Inf] bucket plus [_sum]/[_count]) and
    the {!Live_series.stats} gauges.  Metric names are prefixed
    [wayfinder_] and sanitized to [[a-zA-Z0-9_:]]; values use the
    exact-round-trip number codec ([+Inf]/[-Inf]/[NaN] spelled the
    Prometheus way), so the exposition is a deterministic function of
    the run. *)

module Obs = Wayfinder_obs

val metric_name : string -> string
(** [wayfinder_] + the name with every character outside
    [[a-zA-Z0-9_:]] replaced by ['_']. *)

val render :
  ?stats:Live_series.stats -> ?snapshot:Obs.Metrics.snapshot -> unit -> string
(** Gauges from [stats] (when given) followed by the registry's counters
    and histograms (when given); trailing newline included. *)
