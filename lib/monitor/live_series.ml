module Param = Wayfinder_configspace.Param
module Metric = Wayfinder_platform.Metric
module Failure = Wayfinder_platform.Failure
module Pareto = Wayfinder_platform.Pareto
module Stat = Wayfinder_tensor.Stat
module A = Wayfinder_analytics

(* The streaming twin of {!A.Series}: every statistic the batch code
   derives by scanning the whole row array is maintained here in O(1)
   (amortised) per record, and the conformance property pins each one
   bitwise to the batch rebuild at every prefix.  Where parity is
   non-trivial the batch loop is transcribed, not approximated — e.g. the
   windowed rates keep the same integer in-window counter the batch code
   sweeps, and the regret slope replays the exact least-squares loop over
   a ring of running-best values with their absolute indices. *)

let default_window = A.Progress.default_window

(* Same predicates as Series.is_crash / is_transient (not exported). *)
let is_crash (r : A.Series.row) =
  match r.failure with Some f -> Failure.counts_as_crash f | None -> false

let is_transient (r : A.Series.row) =
  match r.failure with
  | Some f -> (
    match Failure.klass f with
    | Failure.Transient | Failure.Timeout -> true
    | Failure.Deterministic -> false)
  | None -> false

let dummy_row : A.Series.row =
  { index = -1; tokens = [||]; value = None; failure = None; at_seconds = 0.;
    eval_seconds = 0.; built = false; decide_seconds = 0.; belief = None;
    objectives = None }

type t = {
  metric : Metric.t;
  names : string array;
  stages : Param.stage array;
  objectives : Metric.t array;
  win : int;
  (* Full row history (tail_series / series need the rows themselves;
     everything below is derived).  Doubling array, never shrunk. *)
  mutable buf : A.Series.row array;
  mutable n : int;
  mutable best : (int * float) option;
  mutable crashes : int;
  mutable transients : int;
  (* Ring slot [i mod win] holds the predicate of row i for the last
     [win] rows — the exact counter dance of Series.windowed_rate. *)
  crash_ring : bool array;
  transient_ring : bool array;
  mutable crash_in_window : int;
  mutable transient_in_window : int;
  (* Ring of best-so-far raw values (NaN before the first success),
     aligned the same way — the slope's input. *)
  bsf_ring : float array;
  mutable bsf : float;
  configs : (string, unit) Hashtbl.t;
  stage_keys : (string, unit) Hashtbl.t;
  mutable front : Pareto.t option;
  mutable total_eval : float;
  mutable last_at : float;
  mutable last_improvement : int;
}

let create ?(window = default_window) ~metric ~names ~stages ~objectives () =
  if window <= 0 then invalid_arg "Live_series.create: window must be positive";
  { metric; names; stages; objectives; win = window;
    buf = Array.make 64 dummy_row; n = 0; best = None; crashes = 0;
    transients = 0; crash_ring = Array.make window false;
    transient_ring = Array.make window false; crash_in_window = 0;
    transient_in_window = 0; bsf_ring = Array.make window nan; bsf = nan;
    configs = Hashtbl.create 64; stage_keys = Hashtbl.create 64;
    front = (if Array.length objectives = 0 then None
             else Some (Pareto.create ~spec:objectives));
    total_eval = 0.; last_at = 0.; last_improvement = 0 }

let of_meta ?window (m : A.Ledger.meta) =
  let params = Array.of_list m.A.Ledger.params in
  create ?window ~metric:m.A.Ledger.metric ~names:(Array.map fst params)
    ~stages:(Array.map snd params)
    ~objectives:(Array.of_list m.A.Ledger.objectives) ()

let length t = t.n
let window t = t.win
let metric t = t.metric
let last_improvement t = t.last_improvement

(* Same projection as Series.stage_key_of. *)
let stage_key_of t (r : A.Series.row) =
  let buf = Buffer.create 32 in
  Array.iteri
    (fun i tok ->
      if i < Array.length t.stages && t.stages.(i) <> Param.Runtime then begin
        Buffer.add_string buf tok;
        Buffer.add_char buf ';'
      end)
    r.tokens;
  Buffer.contents buf

let observe t (r : A.Series.row) =
  if t.n = Array.length t.buf then begin
    let bigger = Array.make (2 * t.n) dummy_row in
    Array.blit t.buf 0 bigger 0 t.n;
    t.buf <- bigger
  end;
  t.buf.(t.n) <- r;
  let i = t.n in
  (* Running best — same comparison chain as Series.best/best_so_far. *)
  (match r.value with
  | None -> ()
  | Some v ->
    let improved =
      match t.best with
      | None -> true
      | Some (_, bv) -> Metric.better t.metric v bv
    in
    if improved then begin
      t.best <- Some (r.index, v);
      t.bsf <- v;
      t.last_improvement <- i + 1
    end);
  (* Windowed rates: slot [i mod win] held the predicate of row
     [i - win]; retire it exactly when the batch sweep would. *)
  let slot = i mod t.win in
  if i >= t.win then begin
    if t.crash_ring.(slot) then t.crash_in_window <- t.crash_in_window - 1;
    if t.transient_ring.(slot) then
      t.transient_in_window <- t.transient_in_window - 1
  end;
  let c = is_crash r and tr = is_transient r in
  t.crash_ring.(slot) <- c;
  t.transient_ring.(slot) <- tr;
  if c then begin
    t.crashes <- t.crashes + 1;
    t.crash_in_window <- t.crash_in_window + 1
  end;
  if tr then begin
    t.transients <- t.transients + 1;
    t.transient_in_window <- t.transient_in_window + 1
  end;
  t.bsf_ring.(slot) <- t.bsf;
  Hashtbl.replace t.configs (String.concat ";" (Array.to_list r.tokens)) ();
  Hashtbl.replace t.stage_keys (stage_key_of t r) ();
  (match t.front with
  | None -> ()
  | Some front -> (
    match r.objectives with
    | Some v when r.failure = None && Array.length v = Array.length t.objectives
      ->
      t.front <- Some (Pareto.insert front ~index:r.index ~objectives:v)
    | Some _ | None -> ()));
  t.total_eval <- t.total_eval +. r.eval_seconds;
  t.last_at <- r.at_seconds;
  t.n <- i + 1

(* The exact least-squares loop of Series.regret_slope, replayed over the
   ring: same absolute x positions, same Stat.mean, same accumulation
   order — bitwise-identical output. *)
let regret_slope t =
  let lo = max 0 (t.n - t.win) in
  let xs = ref [] and ys = ref [] in
  for i = lo to t.n - 1 do
    let v = t.bsf_ring.(i mod t.win) in
    if not (Float.is_nan v) then begin
      xs := float_of_int i :: !xs;
      ys := Metric.score t.metric v :: !ys
    end
  done;
  let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
  let k = Array.length xs in
  if k < 2 then 0.
  else begin
    let mx = Stat.mean xs and my = Stat.mean ys in
    let num = ref 0. and den = ref 0. in
    for i = 0 to k - 1 do
      num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
      den := !den +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
    done;
    if !den = 0. then 0. else !num /. !den
  end

type stats = {
  length : int;
  best : (int * float) option;
  best_so_far : float;
  regret_slope : float;
  crash_rate : float;
  transient_rate : float;
  windowed_crash_rate : float;
  windowed_transient_rate : float;
  evaluated : int;
  distinct_configs : int;
  distinct_stage_keys : int;
  pareto_size : int option;
  hypervolume_proxy : float option;
  virtual_seconds : float;
  total_eval_seconds : float;
}

let stats t =
  let denom = float_of_int (min t.n t.win) in
  { length = t.n;
    best = t.best;
    best_so_far = t.bsf;
    regret_slope = regret_slope t;
    crash_rate =
      (if t.n = 0 then 0. else float_of_int t.crashes /. float_of_int t.n);
    transient_rate =
      (if t.n = 0 then 0. else float_of_int t.transients /. float_of_int t.n);
    windowed_crash_rate =
      (if t.n = 0 then 0. else float_of_int t.crash_in_window /. denom);
    windowed_transient_rate =
      (if t.n = 0 then 0. else float_of_int t.transient_in_window /. denom);
    evaluated = t.n;
    distinct_configs = (if t.n = 0 then 0 else Hashtbl.length t.configs);
    distinct_stage_keys = (if t.n = 0 then 0 else Hashtbl.length t.stage_keys);
    pareto_size = Option.map Pareto.size t.front;
    hypervolume_proxy = Option.map Pareto.hypervolume_proxy t.front;
    virtual_seconds = t.last_at;
    total_eval_seconds = t.total_eval }

(* The batch oracle: the same stats computed only through Series — what
   the conformance property compares against at every prefix. *)
let stats_of_series ?(window = default_window) (s : A.Series.t) =
  let n = A.Series.length s in
  let last arr = if n = 0 then 0. else arr.(n - 1) in
  let bsf = A.Series.best_so_far s in
  let cov = A.Series.coverage s in
  { length = n;
    best = A.Series.best s;
    best_so_far = (if n = 0 then nan else bsf.(n - 1));
    regret_slope = A.Series.regret_slope s ~window;
    crash_rate = A.Series.crash_rate s;
    transient_rate = A.Series.transient_rate s;
    windowed_crash_rate = last (A.Series.windowed_crash_rate s ~window);
    windowed_transient_rate = last (A.Series.windowed_transient_rate s ~window);
    evaluated = cov.A.Series.evaluated;
    distinct_configs = cov.A.Series.distinct_configs;
    distinct_stage_keys = cov.A.Series.distinct_stage_keys;
    pareto_size = Option.map Pareto.size (A.Series.pareto s);
    hypervolume_proxy = A.Series.hypervolume_proxy s;
    virtual_seconds = A.Series.last_at_seconds s;
    total_eval_seconds = A.Series.total_eval_seconds s }

let series t =
  { A.Series.metric = t.metric; names = t.names; stages = t.stages;
    rows = Array.sub t.buf 0 t.n; objectives = t.objectives }

let tail_series t ~window =
  if window <= 0 then invalid_arg "Live_series.tail_series: window must be positive";
  let k = min t.n window in
  { A.Series.metric = t.metric; names = t.names; stages = t.stages;
    rows = Array.sub t.buf (t.n - k) k; objectives = t.objectives }

let pareto t = t.front

let progress t =
  { A.Progress.iteration = t.n;
    best = Option.map snd t.best;
    regret_slope = regret_slope t;
    crash_rate =
      (if t.n = 0 then 0. else float_of_int t.crashes /. float_of_int t.n);
    cache_hit_rate = None;
    worker_busy = None;
    virtual_seconds = t.last_at }
