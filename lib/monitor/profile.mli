(** Span profiler over the JSONL obs traces ([--trace FILE]).

    Rebuilds the phase tree from the span stream (spans are emitted in
    end order; nesting is recovered from the begin/end wall stamps),
    aggregates same-name siblings, and reports dual-clock (wall +
    virtual) total and self times, a top-N hotspot table, and
    collapsed-stack flamegraph output.

    Per-name {!phase_totals} accumulate in file order — the same order
    the recorder fed its histograms — so a trace's virtual phase totals
    reconcile {e bitwise} with [Driver.result.metrics]
    ([Metrics.sum "<phase>.virtual_s"]); the conformance suite pins
    this for single-worker runs.  (With several recording domains the
    per-name emission order is not stable between the trace and the
    registry, so only the multiset of samples — not the float
    accumulation order — is shared.)  Undecodable lines (torn tails included) are counted and
    skipped, never fatal — only a missing or foreign schema header
    rejects the file. *)

type clock = Wall | Virtual

type span = {
  name : string;
  began_wall : float;
  began_virtual : float;
  wall_s : float;
  virtual_s : float;
}

type node = {
  node_name : string;
  mutable count : int;
  mutable wall_total : float;
  mutable virtual_total : float;
  mutable children : node list;  (** First-appearance order. *)
}

type t = {
  spans : span list;  (** File order. *)
  roots : node list;
  events : int;  (** Well-formed event lines of any type. *)
  dropped : int;  (** Undecodable lines. *)
}

val of_string : string -> (t, string) result
val load : string -> (t, string) result

val phase_totals : t -> clock -> (string * float) list
(** Per-span-name duration totals, accumulated in file order, sorted by
    name — the reconciliation surface against [Driver.result.metrics]. *)

val self : clock -> node -> float
(** Total minus direct children's totals.  Can be negative on degenerate
    (equal-stamp) traces; renderers clamp at 0. *)

val total : clock -> node -> float

type hotspot = {
  hot_name : string;
  hot_count : int;
  hot_self : float;
  hot_total : float;
}

val hotspots : t -> clock -> top:int -> hotspot list
(** Top [top] names by summed self time, ties broken by name. *)

val render_tree : t -> string
(** The dual-clock time tree, header line included. *)

val render_hotspots : t -> clock -> top:int -> string

val flamegraph : t -> clock -> string
(** Collapsed stacks ([a;b;c value] per line, DFS order), self time in
    integer microseconds — input for standard flamegraph renderers. *)

val clock_to_string : clock -> string
