module A = Wayfinder_analytics
module Failure = Wayfinder_platform.Failure

(* Declarative alert rules over a live series.  Evaluation is pure with
   respect to the rows seen so far (plus the frozen drift baseline), so
   alerts — like everything else in this library — are a deterministic
   function of the ledger bytes.  Firing is edge-triggered: a rule
   reports once when its condition becomes true and re-arms when the
   condition clears. *)

type rule =
  | Crash of { threshold : float; window : int }
  | Stall of { iterations : int }
  | Starve of { fraction : float }
  | Drift of { window : int }

let default_window = Live_series.default_window

let rule_name = function
  | Crash _ -> "crash"
  | Stall _ -> "stall"
  | Starve _ -> "starve"
  | Drift _ -> "drift"

let rule_to_string = function
  | Crash { threshold; window } -> Printf.sprintf "crash>%g@%d" threshold window
  | Stall { iterations } -> Printf.sprintf "stall>%d" iterations
  | Starve { fraction } -> Printf.sprintf "starve<%g" fraction
  | Drift { window } -> Printf.sprintf "drift@%d" window

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

(* SPEC ::= rule ("," rule)*
   rule ::= "crash>" FLOAT ["@" INT]    windowed crash rate above FLOAT
          | "stall>" INT                no best improvement in INT iters
          | "starve<" FLOAT             worker busy fraction below FLOAT
          | "drift" ["@" INT]           Analytics.Drift vs the run's own
                                        first-window baseline          *)

let parse_one s =
  let ( let* ) = Result.bind in
  let fail () = Error (Printf.sprintf "unrecognised alert rule %S" s) in
  let float_of what v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: %S is not a number" what v)
  in
  let int_of what v =
    match int_of_string_opt v with
    | Some i when i > 0 -> Ok i
    | Some _ -> Error (Printf.sprintf "%s: must be positive" what)
    | None -> Error (Printf.sprintf "%s: %S is not an integer" what v)
  in
  let with_window rest k =
    match String.index_opt rest '@' with
    | None -> k rest default_window
    | Some i ->
      let* w =
        int_of ("window of " ^ s)
          (String.sub rest (i + 1) (String.length rest - i - 1))
      in
      k (String.sub rest 0 i) w
  in
  let after prefix =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match after "crash>" with
  | Some rest ->
    with_window rest (fun v window ->
        let* threshold = float_of s v in
        if threshold < 0. || threshold > 1. then
          Error (Printf.sprintf "%s: threshold must be in [0,1]" s)
        else Ok (Crash { threshold; window }))
  | None -> (
    match after "stall>" with
    | Some rest ->
      let* iterations = int_of s rest in
      Ok (Stall { iterations })
    | None -> (
      match after "starve<" with
      | Some rest ->
        let* fraction = float_of s rest in
        if fraction < 0. || fraction > 1. then
          Error (Printf.sprintf "%s: fraction must be in [0,1]" s)
        else Ok (Starve { fraction })
      | None ->
        if s = "drift" then Ok (Drift { window = default_window })
        else
          with_window s (fun head window ->
              if head = "drift" then Ok (Drift { window }) else fail ())))

let parse spec =
  let parts =
    List.filter (fun s -> s <> "")
      (List.map String.trim (String.split_on_char ',' spec))
  in
  if parts = [] then Error "empty alert spec"
  else
    List.fold_left
      (fun acc part ->
        Result.bind acc (fun rules ->
            Result.map (fun r -> r :: rules) (parse_one part)))
      (Ok []) parts
    |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type firing = { rule : string; message : string }

type entry = {
  spec : rule;
  mutable firing : bool;
  (* Drift only: (crash_rate, mean successful value) over the run's
     first [window] rows, frozen the first time the series reaches that
     length — the "training distribution" the tail is probed against. *)
  mutable baseline : (float * float) option;
}

type state = entry list

let create rules = List.map (fun spec -> { spec; firing = false; baseline = None }) rules

let mean_success rows =
  let sum = ref 0. and k = ref 0 in
  Array.iter
    (fun (r : A.Series.row) ->
      match (r.A.Series.value, r.A.Series.failure) with
      | Some v, None ->
        sum := !sum +. v;
        incr k
      | _ -> ())
    rows;
  if !k = 0 then Float.nan else !sum /. float_of_int !k

let condition entry ?worker_busy live =
  let n = Live_series.length live in
  match entry.spec with
  | Crash { threshold; window } ->
    if n = 0 then None
    else begin
      let tail = Live_series.tail_series live ~window in
      let k = A.Series.length tail in
      let rate = (A.Series.windowed_crash_rate tail ~window).(k - 1) in
      if rate > threshold then
        Some
          (Printf.sprintf "windowed crash rate %.0f%% > %.0f%% (window %d)"
             (100. *. rate) (100. *. threshold) window)
      else None
    end
  | Stall { iterations } ->
    if n > 0 && n - Live_series.last_improvement live >= iterations then
      Some
        (Printf.sprintf "no best improvement in %d iterations (threshold %d)"
           (n - Live_series.last_improvement live) iterations)
    else None
  | Starve { fraction } -> (
    match worker_busy with
    | Some busy when busy < fraction ->
      Some
        (Printf.sprintf "worker pool %.0f%% busy < %.0f%%" (100. *. busy)
           (100. *. fraction))
    | Some _ | None -> None)
  | Drift { window } ->
    (* Freeze the baseline once the first window is complete; probe the
       trailing window once a full second window exists, so baseline and
       probe rows never overlap. *)
    (if entry.baseline = None && n >= window then begin
       let head = Array.sub (Live_series.series live).A.Series.rows 0 window in
       let crashes =
         Array.fold_left
           (fun acc (r : A.Series.row) ->
             match r.A.Series.failure with
             | Some f when Failure.counts_as_crash f -> acc + 1
             | _ -> acc)
           0 head
       in
       entry.baseline <-
         Some
           ( float_of_int crashes /. float_of_int window,
             mean_success head )
     end);
    (match entry.baseline with
    | Some (donor_crash_rate, donor_mean) when n >= 2 * window -> (
      let probe =
        A.Drift.probe ~window ~donor_crash_rate ~donor_mean
          (Live_series.tail_series live ~window)
      in
      match probe.A.Drift.verdict with
      | A.Drift.Fresh -> None
      | A.Drift.Stale reasons -> Some (String.concat "; " reasons))
    | _ -> None)

let evaluate state ?worker_busy live =
  List.filter_map
    (fun entry ->
      match condition entry ?worker_busy live with
      | Some message ->
        let fresh = not entry.firing in
        entry.firing <- true;
        if fresh then Some { rule = rule_name entry.spec; message } else None
      | None ->
        entry.firing <- false;
        None)
    state

let active state =
  List.filter_map
    (fun entry -> if entry.firing then Some (rule_name entry.spec) else None)
    state
