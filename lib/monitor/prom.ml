module Obs = Wayfinder_obs
module A = Wayfinder_analytics

(* Prometheus text exposition (version 0.0.4) of the obs metrics
   registry plus live-series gauges.  Counters map to counters,
   power-of-two histograms to cumulative [_bucket{le=...}] series with
   the mandatory [+Inf] bucket, [_sum] and [_count].  Numbers use the
   exact-round-trip JSON codec so the file is as replayable as the
   ledger it came from. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let metric_name name = "wayfinder_" ^ sanitize name

let number v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else A.Json.number_to_string v

let add_counter buf name v =
  let n = metric_name name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %s\n" n n (number v))

let add_gauge buf name v =
  let n = metric_name name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (number v))

let add_histogram buf name (h : Obs.Metrics.histogram) =
  let n = metric_name name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
  let cum = ref 0 in
  Array.iter
    (fun (bound, c) ->
      cum := !cum + c;
      if bound <> infinity then
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (number bound) !cum))
    h.Obs.Metrics.buckets;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.Obs.Metrics.count);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" n (number h.Obs.Metrics.sum));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" n h.Obs.Metrics.count)

let of_snapshot buf (s : Obs.Metrics.snapshot) =
  List.iter (fun (name, v) -> add_counter buf name v) s.Obs.Metrics.counters;
  List.iter (fun (name, h) -> add_histogram buf name h) s.Obs.Metrics.histograms

let of_stats buf (s : Live_series.stats) =
  let g = add_gauge buf in
  g "live.iteration" (float_of_int s.Live_series.length);
  (match s.Live_series.best with
  | Some (_, v) -> g "live.best" v
  | None -> ());
  (if not (Float.is_nan s.Live_series.best_so_far) then
     g "live.best_so_far" s.Live_series.best_so_far);
  g "live.regret_slope" s.Live_series.regret_slope;
  g "live.crash_rate" s.Live_series.crash_rate;
  g "live.transient_rate" s.Live_series.transient_rate;
  g "live.windowed_crash_rate" s.Live_series.windowed_crash_rate;
  g "live.windowed_transient_rate" s.Live_series.windowed_transient_rate;
  g "live.distinct_configs" (float_of_int s.Live_series.distinct_configs);
  g "live.distinct_stage_keys" (float_of_int s.Live_series.distinct_stage_keys);
  (match s.Live_series.pareto_size with
  | Some n -> g "live.pareto_size" (float_of_int n)
  | None -> ());
  (match s.Live_series.hypervolume_proxy with
  | Some hv -> g "live.hypervolume_proxy" hv
  | None -> ());
  g "live.virtual_seconds" s.Live_series.virtual_seconds;
  g "live.eval_seconds_total" s.Live_series.total_eval_seconds

let render ?stats ?snapshot () =
  let buf = Buffer.create 1024 in
  (match stats with Some s -> of_stats buf s | None -> ());
  (match snapshot with Some s -> of_snapshot buf s | None -> ());
  Buffer.contents buf
