module Obs = Wayfinder_obs
module A = Wayfinder_analytics
module Json = A.Json

(* Span profiler over the JSONL obs traces (Sink.jsonl, kind "trace").

   Span events arrive in *end* order (a span is emitted when it closes),
   so a parent always follows its children in the stream.  The tree is
   rebuilt from that order plus the begin/end wall stamps: an incoming
   span adopts the maximal run of still-unparented spans that began
   after it began and ended before it ended.  Traces from recorders with
   a frozen wall clock (some tests) have all-equal stamps and degrade to
   a single nested chain — per-name totals, which is what reconciles
   against Driver.result.metrics, are order-independent and unaffected. *)

type clock = Wall | Virtual

type span = {
  name : string;
  began_wall : float;
  began_virtual : float;
  wall_s : float;
  virtual_s : float;
}

type node = {
  node_name : string;
  mutable count : int;
  mutable wall_total : float;
  mutable virtual_total : float;
  mutable children : node list;  (* reverse order of first appearance *)
}

type t = {
  spans : span list;  (* file order = end order *)
  roots : node list;
  events : int;  (* well-formed event lines of any type *)
  dropped : int;  (* undecodable lines (torn tails included) *)
}

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_span j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let num k = Option.bind (Json.member k j) Json.to_float in
  match (str "name", num "wall_s", num "virtual_s") with
  | Some name, Some wall_s, Some virtual_s ->
    Some
      { name;
        began_wall = Option.value ~default:0. (num "began_wall_s");
        began_virtual = Option.value ~default:0. (num "began_virtual_s");
        wall_s;
        virtual_s }
  | _ -> None

let of_string s =
  match String.split_on_char '\n' s with
  | [] -> Error "empty trace"
  | header :: body -> (
    let ok =
      match Json.parse header with
      | Error _ -> false
      | Ok j ->
        Option.bind (Json.member "wayfinder_schema" j) Json.to_int
          = Some Obs.Sink.schema_version
        && Option.bind (Json.member "kind" j) Json.to_str = Some "trace"
    in
    match ok with
    | false -> Error "not a wayfinder trace: missing or foreign schema header"
    | true ->
      let spans = ref [] and events = ref 0 and dropped = ref 0 in
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Json.parse line with
            | Error _ -> incr dropped
            | Ok j -> (
              match Option.bind (Json.member "type" j) Json.to_str with
              | Some "span" -> (
                match parse_span j with
                | Some sp ->
                  incr events;
                  spans := sp :: !spans
                | None -> incr dropped)
              | Some ("count" | "sample" | "alert") -> incr events
              | Some _ | None -> incr dropped))
        body;
      let spans = List.rev !spans in
      (* Tree reconstruction from end order, see the header comment. *)
      let module Raw = struct
        type raw = { rspan : span; rkids : raw list }
      end in
      let open Raw in
      let pending = ref [] in
      (* raw trees, most recently ended first *)
      List.iter
        (fun sp ->
          let contained p =
            p.rspan.began_wall >= sp.began_wall
            && p.rspan.began_wall +. p.rspan.wall_s
               <= sp.began_wall +. sp.wall_s
          in
          let rec take acc = function
            | p :: rest when contained p -> take (p :: acc) rest
            | rest -> (acc, rest)
          in
          let kids, rest = take [] !pending in
          pending := { rspan = sp; rkids = kids } :: rest)
        spans;
      let raw_roots = List.rev !pending in
      (* Aggregate same-name siblings, preserving first-appearance order. *)
      let rec add siblings { rspan = sp; rkids = kids } =
        let node =
          match
            List.find_opt (fun n -> n.node_name = sp.name) !siblings
          with
          | Some n -> n
          | None ->
            let n =
              { node_name = sp.name; count = 0; wall_total = 0.;
                virtual_total = 0.; children = [] }
            in
            siblings := n :: !siblings;
            n
        in
        node.count <- node.count + 1;
        node.wall_total <- node.wall_total +. sp.wall_s;
        node.virtual_total <- node.virtual_total +. sp.virtual_s;
        let child_ref = ref node.children in
        List.iter (fun k -> add child_ref k) kids;
        node.children <- !child_ref
      in
      let roots_ref = ref [] in
      List.iter (fun r -> add roots_ref r) raw_roots;
      let rec orient n = { n with children = List.rev_map orient n.children } in
      let roots = List.rev_map orient !roots_ref in
      Ok { spans; roots; events = !events; dropped = !dropped })

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let dur clock (sp : span) = match clock with Wall -> sp.wall_s | Virtual -> sp.virtual_s
let total clock n = match clock with Wall -> n.wall_total | Virtual -> n.virtual_total

(* Per-name duration totals in file order — the accumulation order
   Metrics uses, so sums are bitwise-comparable to Metrics.sum of
   "<name>.wall_s" / "<name>.virtual_s". *)
let phase_totals t clock =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt tbl sp.name with
      | Some r -> r := !r +. dur clock sp
      | None -> Hashtbl.add tbl sp.name (ref (dur clock sp)))
    t.spans;
  List.sort
    (fun (a, _) (b, _) -> compare (a : string) b)
    (Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl [])

let self clock n =
  total clock n
  -. List.fold_left (fun acc c -> acc +. total clock c) 0. n.children

type hotspot = {
  hot_name : string;
  hot_count : int;
  hot_self : float;
  hot_total : float;
}

(* Top-N by summed self time on [clock]; ties broken by name so the
   table is deterministic. *)
let hotspots t clock ~top =
  let tbl = Hashtbl.create 16 in
  let rec visit n =
    (match Hashtbl.find_opt tbl n.node_name with
    | Some h ->
      Hashtbl.replace tbl n.node_name
        { h with
          hot_count = h.hot_count + n.count;
          hot_self = h.hot_self +. self clock n;
          hot_total = h.hot_total +. total clock n }
    | None ->
      Hashtbl.add tbl n.node_name
        { hot_name = n.node_name; hot_count = n.count;
          hot_self = self clock n; hot_total = total clock n });
    List.iter visit n.children
  in
  List.iter visit t.roots;
  let all = Hashtbl.fold (fun _ h acc -> h :: acc) tbl [] in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.hot_self a.hot_self with
        | 0 -> compare a.hot_name b.hot_name
        | c -> c)
      all
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | h :: rest -> h :: take (k - 1) rest
  in
  take top sorted

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let clock_to_string = function Wall -> "wall" | Virtual -> "virtual"

let si = Obs.Summary.si

let render_tree t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "%d spans in %d events (%d undecodable lines dropped)\n%-40s %8s %26s %26s\n"
       (List.length t.spans) t.events t.dropped "phase" "count"
       "wall total/self" "virtual total/self");
  let rec go depth n =
    Buffer.add_string buf
      (Printf.sprintf "%-40s %8d %12s %13s %12s %13s\n"
         (String.make (2 * depth) ' ' ^ n.node_name)
         n.count
         (si n.wall_total)
         (si (Float.max 0. (self Wall n)))
         (si n.virtual_total)
         (si (Float.max 0. (self Virtual n))));
    List.iter (go (depth + 1)) n.children
  in
  List.iter (go 0) t.roots;
  Buffer.contents buf

let render_hotspots t clock ~top =
  let buf = Buffer.create 512 in
  let hs = hotspots t clock ~top in
  let grand =
    List.fold_left (fun acc n -> acc +. total clock n) 0. t.roots
  in
  Buffer.add_string buf
    (Printf.sprintf "top %d by self %s time\n%-40s %8s %12s %12s %6s\n"
       (List.length hs) (clock_to_string clock) "phase" "count" "self" "total"
       "%");
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s %8d %12s %12s %5.1f%%\n" h.hot_name h.hot_count
           (si (Float.max 0. h.hot_self))
           (si h.hot_total)
           (if grand > 0. then 100. *. Float.max 0. h.hot_self /. grand else 0.)))
    hs;
  Buffer.contents buf

(* Collapsed-stack output (one "a;b;c value" line per tree path, DFS
   order) for flamegraph renderers.  Values are self times in integer
   microseconds, clamped at 0. *)
let flamegraph t clock =
  let buf = Buffer.create 1024 in
  let rec go path n =
    let path = path @ [ n.node_name ] in
    let v = int_of_float (Float.max 0. (self clock n) *. 1e6) in
    if v > 0 || n.children = [] then
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" (String.concat ";" path) v);
    List.iter (go path) n.children
  in
  List.iter (go []) t.roots;
  Buffer.contents buf
