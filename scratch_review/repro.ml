open Wayfinder_platform
module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param

let target () =
  let space = Space.create [ Param.bool_param "a" false; Param.int_param "n" ~lo:0 ~hi:8 ~default:4 ] in
  Target.make ~name:"t" ~space ~metric:Metric.throughput (fun ~trial config ->
      ignore trial;
      let v = match config with
        | [| Param.Vbool b; Param.Vint n |] -> (if b then 2. else 1.) +. float_of_int n
        | _ -> 0.
      in
      { Target.value = Ok v; build_s = 3.; boot_s = 1.; run_s = 1.; objectives = [||] })

let () =
  let path = Filename.temp_file "wf" ".ckpt" in
  (* Full run: 24 iterations at workers=4, checkpoint every 5. *)
  let _ =
    Driver.run ~seed:11 ~workers:4 ~checkpoint_path:path ~checkpoint_every:5
      ~target:(target ()) ~algorithm:(Random_search.create ())
      ~budget:(Driver.Iterations 24) ()
  in
  match Checkpoint.load ~path with
  | Error e -> prerr_endline (Checkpoint.error_to_string e); exit 1
  | Ok ck ->
    Printf.printf "checkpoint: iterations=%d inflight=%d\n%!" ck.Checkpoint.iterations
      (List.length ck.Checkpoint.inflight);
    (* Resume with a SMALLER iteration budget than already completed. *)
    let r =
      Driver.run ~seed:11 ~workers:4 ~resume_from:ck ~target:(target ())
        ~algorithm:(Random_search.create ()) ~budget:(Driver.Iterations 10) ()
    in
    Printf.printf "resumed ok: iterations=%d\n%!" r.Driver.iterations
