(* The Wayfinder command-line interface.

   Subcommands:
     run     — run a specialization job (from a YAML job file or flags)
     probe   — infer the runtime configuration space (§3.4)
     space   — describe a target's configuration space
     analyze — convergence/calibration report from a run ledger
     compare — align several ledgers' best-so-far curves per budget
     watch   — live (or one-shot) dashboard over a run ledger
     profile — span profile of a JSONL observability trace
     fsck    — validate (and repair) checkpoints, ledgers and reports *)

module S = Wayfinder_simos
module P = Wayfinder_platform
module D = Wayfinder_deeptune
module CS = Wayfinder_configspace
module K = Wayfinder_kconfig
module A = Wayfinder_analytics
module M = Wayfinder_monitor
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Targets                                                             *)
(* ------------------------------------------------------------------ *)

let target_for ~os ~app =
  match os with
  | "sim-linux" -> (
    match S.App.of_name app with
    | Some a -> Ok (P.Targets.of_sim_linux (S.Sim_linux.create ()) ~app:a)
    | None -> Error (Printf.sprintf "unknown application %S (nginx/redis/sqlite/npb)" app))
  | "sim-linux-memory" -> (
    match S.App.of_name app with
    | Some a -> Ok (P.Targets.of_sim_linux_memory (S.Sim_linux.create ()) ~app:a)
    | None -> Error (Printf.sprintf "unknown application %S" app))
  | "sim-unikraft" -> Ok (P.Targets.of_sim_unikraft (S.Sim_unikraft.create ()))
  | "sim-riscv" -> Ok (P.Targets.of_sim_riscv (S.Sim_riscv.create ()))
  | other ->
    Error
      (Printf.sprintf "unknown OS %S (sim-linux, sim-linux-memory, sim-unikraft, sim-riscv)"
         other)

(* Apply a job file's pins (and optional parameter whitelist) to the
   simulator's space: listed parameters stay explorable, everything else is
   pinned to its default. *)
let restrict_space sim_space (job : CS.Jobfile.t) =
  let job_space = job.CS.Jobfile.space in
  let pins = ref [] in
  Array.iteri
    (fun i p ->
      let name = p.CS.Param.name in
      if CS.Space.mem sim_space name then begin
        match CS.Space.fixed_value job_space i with
        | Some v -> pins := (name, v) :: !pins
        | None -> ()
      end)
    (CS.Space.params job_space);
  (* Whitelist: pin simulator parameters absent from the job file. *)
  Array.iter
    (fun p ->
      let name = p.CS.Param.name in
      if not (CS.Space.mem job_space name) then pins := (name, p.CS.Param.default) :: !pins)
    (CS.Space.params sim_space);
  CS.Space.fix sim_space !pins

let algorithm_for name ~favor ~seed =
  match name with
  | "random" -> Ok (`Plain (P.Random_search.create ?favor ()))
  | "grid" -> Ok (`Plain (P.Grid_search.create ()))
  | "bayes" | "bayesian" -> Ok (`Plain (P.Bayes_search.create ?favor ~seed ()))
  | "deeptune" | "wayfinder" -> Ok `Deeptune
  | "deeptune-multi" -> Ok `Multi
  | other ->
    Error
      (Printf.sprintf "unknown algorithm %S (random, grid, bayes, deeptune, deeptune-multi)"
         other)

(* --scenario NAME|FILE: a built-in load shape (loads expressed against
   the trace target's nominal 1000 req/s default capacity) or a saved
   wayfinder-trace file. *)
let trace_for kind ~seed =
  if Sys.file_exists kind then
    match S.Trace.load ~path:kind with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "scenario %s: %s" kind e)
  else
    match kind with
    | "flash-crowd" ->
      Ok (S.Trace.flash_crowd ~window_s:1.0 ~windows:60 ~base:500. ~peak:1400. ~at:30 ~width:10)
    | "diurnal" ->
      Ok (S.Trace.diurnal ~jitter:0.05 ~seed ~window_s:1.0 ~windows:96 ~base:300. ~peak:1200. ())
    | "ramp" -> Ok (S.Trace.ramp ~window_s:1.0 ~windows:60 ~from_load:200. ~to_load:1400.)
    | "steps" -> Ok (S.Trace.steps ~window_s:1.0 [ (20, 400.); (20, 900.); (20, 1300.) ])
    | other ->
      Error
        (Printf.sprintf
           "unknown scenario %S (flash-crowd, diurnal, ramp, steps, or a trace file)" other)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

(* Build the resilience policy from the CLI flags: [--resilient] switches
   the baseline, the individual flags override single fields of it. *)
let policy_of_flags ~resilient ~retries ~build_timeout ~boot_timeout ~run_timeout
    ~measure_repeats ~quarantine_after =
  let p = if resilient then P.Resilience.default_resilient else P.Resilience.none in
  let p = match retries with Some r -> { p with P.Resilience.retries = r } | None -> p in
  let p =
    match build_timeout with
    | Some s -> { p with P.Resilience.build_timeout_s = Some s }
    | None -> p
  in
  let p =
    match boot_timeout with
    | Some s -> { p with P.Resilience.boot_timeout_s = Some s }
    | None -> p
  in
  let p =
    match run_timeout with
    | Some s -> { p with P.Resilience.run_timeout_s = Some s }
    | None -> p
  in
  let p =
    match measure_repeats with
    | Some n -> { p with P.Resilience.measure_repeats = n }
    | None -> p
  in
  match quarantine_after with
  | Some n -> { p with P.Resilience.quarantine_after = n }
  | None -> p

(* ------------------------------------------------------------------ *)
(* Model registry: warm start and save                                 *)
(* ------------------------------------------------------------------ *)

let rec ensure_dir dir =
  if not (dir = "" || dir = "." || dir = "/" || Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* How a resolved registry donor applies to this search. *)
type warm_plan =
  | Cold
  | Import of string * P.Registry.t  (** Exact fingerprint: the weights import. *)
  | Seed_only of string * P.Registry.t
      (** Space overlap only: the donor's projected incumbents seed the
          search; the model stays cold. *)

let exact_for fp (entry : P.Registry.t) =
  entry.P.Registry.fp.P.Registry.app = fp.P.Registry.app
  && entry.P.Registry.fp.P.Registry.space_text = fp.P.Registry.space_text

(* Staleness probe (DESIGN.md §16): a live ledger of the same workload
   votes on whether the donor's training distribution still holds.
   Drift downgrades an [auto] warm-start to a cold start — an explicit
   --warm-start KEY only warns. *)
let drift_keeps_warm ~drift_ledger ~auto (entry : P.Registry.t) =
  match drift_ledger with
  | None -> Ok true
  | Some path -> (
    match A.Ledger.load path with
    | Error e ->
      Error (Printf.sprintf "drift ledger %s: %s" path (A.Ledger.error_to_string e))
    | Ok ledger -> (
      let probe =
        A.Drift.probe
          ~donor_crash_rate:entry.P.Registry.meta.P.Registry.crash_rate
          ~donor_mean:entry.P.Registry.meta.P.Registry.mean_value
          (A.Series.of_ledger ledger)
      in
      match probe.A.Drift.verdict with
      | A.Drift.Fresh -> Ok true
      | A.Drift.Stale _ ->
        Printf.eprintf "wayfinder: %s\n%!" (A.Drift.to_string probe);
        if auto then begin
          Printf.eprintf
            "wayfinder: stale model — downgrading the auto warm-start to a cold start\n%!";
          Ok false
        end
        else begin
          Printf.eprintf
            "wayfinder: stale model — warm-starting anyway (--warm-start KEY is explicit)\n%!";
          Ok true
        end))

let resolve_warm_start ~dir ~fp ~spec ~drift_ledger space =
  let classify path (entry : P.Registry.t) ~auto =
    match drift_keeps_warm ~drift_ledger ~auto entry with
    | Error e -> Error e
    | Ok false -> Ok Cold
    | Ok true ->
      if exact_for fp entry && entry.P.Registry.model_kind = "dtm" then
        Ok (Import (path, entry))
      else if
        P.Registry.space_overlap ~donor:entry.P.Registry.fp.P.Registry.space_text
          ~target:fp.P.Registry.space_text
        > 0
      then Ok (Seed_only (path, entry))
      else if auto then Ok Cold
      else
        Error
          (Printf.sprintf "warm-start %s: donor shares no parameters with this space" path)
  in
  match spec with
  | "auto" -> (
    match P.Registry.lookup ~dir ~app:fp.P.Registry.app space with
    | [] ->
      Printf.eprintf "wayfinder: no registry donor for %s — starting cold\n%!"
        fp.P.Registry.app;
      Ok Cold
    | (path, entry, _) :: _ -> classify path entry ~auto:true)
  | key ->
    (* A key (filename stem), or a path for entries outside the registry. *)
    let path =
      if Sys.file_exists key then key else Filename.concat dir (key ^ ".model")
    in
    (match P.Registry.load path with
    | Error e -> Error (Printf.sprintf "warm-start %s: %s" path (P.Registry.error_to_string e))
    | Ok entry -> classify path entry ~auto:false)

let run_search ~job_file ~os ~app ~metric_hint ~algorithm ~iterations ~budget_s ~seed ~favor
    ~csv_path ~trace_path ~ledger_path ~progress_every ~timings ~quiet ~checkpoint
    ~checkpoint_every ~keep_checkpoints ~resume ~fault_rate ~workers ~batch ~image_cache
    ~domains ~scenario_kind ~scenario_stride ~objective_names ~weights ~pareto ~resilient
    ~retries ~build_timeout ~boot_timeout ~run_timeout ~measure_repeats ~quarantine_after
    ~registry ~save_model ~warm_start ~drift_ledger ~metrics_out ~metrics_every ~alerts =
  ignore metric_hint;
  if (save_model || warm_start <> None) && registry = None then
    Error "--save-model and --warm-start require --registry DIR"
  else if metrics_every <= 0 then Error "--metrics-every must be positive"
  else
  match
    match alerts with
    | None -> Ok []
    | Some spec -> Result.map_error (fun e -> "--alerts: " ^ e) (M.Rules.parse spec)
  with
  | Error e -> Error e
  | Ok alert_rules ->
  let job =
    match job_file with
    | Some path -> (
      try Ok (Some (CS.Jobfile.load path)) with
      | CS.Jobfile.Schema_error msg -> Error ("job file: " ^ msg)
      | Wayfinder_yamlite.Yamlite.Parse_error { line; message } ->
        Error (Printf.sprintf "job file: line %d: %s" line message))
    | None -> Ok None
  in
  match job with
  | Error e -> Error e
  | Ok job -> (
    let os = match job with Some j -> j.CS.Jobfile.os | None -> os in
    let app = match job with Some j -> j.CS.Jobfile.app | None -> app in
    let seed = match job with Some j when seed = 0 -> j.CS.Jobfile.seed | _ -> seed in
    let resume_from =
      if not resume then Ok None
      else
        match checkpoint with
        | None -> Error "--resume requires --checkpoint FILE"
        | Some path -> (
          (* Fall back past a corrupt primary to the newest rotated
             generation that validates — a torn final save must not kill
             the resume. *)
          match P.Checkpoint.load_latest path with
          | Ok (ck, notice) ->
            (match notice with
            | Some n -> Printf.eprintf "wayfinder: %s\n%!" (P.Checkpoint.notice_to_string n)
            | None -> ());
            Ok (Some ck)
          | Error e ->
            Error (Printf.sprintf "checkpoint %s: %s" path (P.Checkpoint.error_to_string e)))
    in
    match resume_from with
    | Error e -> Error e
    | Ok resume_from -> (
    (* A resumed run must recreate the algorithm and faults from the
       checkpointed seed — and the engine from the checkpointed worker
       count — whatever the flags say. *)
    let seed = match resume_from with Some ck -> ck.P.Checkpoint.seed | None -> seed in
    let workers =
      match resume_from with Some ck -> ck.P.Checkpoint.workers | None -> workers
    in
    (* ... and the image-cache capacity: the checkpoint's cache contents
       only restore exactly into a cache of the same size. *)
    let image_cache =
      match resume_from with
      | Some ck -> Some ck.P.Checkpoint.cache_capacity
      | None -> image_cache
    in
    let favor =
      match (favor, job) with
      | Some f, _ -> CS.Param.stage_of_string f
      | None, Some j -> j.CS.Jobfile.favor
      | None, None -> None
    in
    (* Scenario/objective setup: a trace scenario swaps the plain target
       for the trace-replay multi-objective one.  The trace is rebuilt
       from the (checkpoint-resolved) seed, so --resume with the same
       scenario flags replays the identical workload; the driver restores
       the trace cursor and Pareto archive from the checkpoint. *)
    let scenario_info =
      match scenario_kind with
      | None ->
        if objective_names <> None || weights <> None then
          Error "--objectives/--weights require --scenario"
        else Ok None
      | Some kind -> (
        match trace_for kind ~seed with
        | Error e -> Error e
        | Ok trace -> (
          let names = Option.value ~default:[ "throughput" ] objective_names in
          match P.Objective.spec_of_names names with
          | Error e -> Error e
          | Ok spec -> (
            let scalarize =
              Option.map (fun ws -> P.Scalarize.Weighted_sum (Array.of_list ws)) weights
            in
            try Ok (Some (P.Scenario.create ~stride:scenario_stride trace, spec, scalarize))
            with Invalid_argument m -> Error m)))
    in
    match scenario_info with
    | Error e -> Error e
    | Ok scenario_info -> (
    let target_result =
      match scenario_info with
      | None -> target_for ~os ~app
      | Some (sc, spec, scalarize) ->
        if os <> "sim-linux" then Error "--scenario requires --os sim-linux"
        else (
          match S.App.of_name app with
          | None -> Error (Printf.sprintf "unknown application %S (nginx/redis/sqlite/npb)" app)
          | Some a -> (
            try
              Ok
                (P.Targets.of_sim_linux_trace (S.Sim_linux.create ()) ~app:a ~scenario:sc
                   ~objectives:spec ?scalarize ())
            with Invalid_argument m -> Error m))
    in
    match target_result with
    | Error e -> Error e
    | Ok target -> (
      let target =
        match job with
        | Some j -> { target with P.Target.space = restrict_space target.P.Target.space j }
        | None -> target
      in
      (* Transient-fault injection: deterministic in (seed, trial), so a
         resumed run replays the exact same fault schedule. *)
      let target =
        if fault_rate > 0. then
          P.Target.with_faults
            ~plan:(S.Faults.create ~rates:(S.Faults.rates_of_total fault_rate) ~seed ())
            target
        else target
      in
      let budget =
        match (budget_s, iterations, job) with
        | Some s, _, _ -> P.Driver.Virtual_seconds s
        | None, Some n, _ -> P.Driver.Iterations n
        | None, None, Some { CS.Jobfile.time_budget_s = Some s; _ } -> P.Driver.Virtual_seconds s
        | None, None, Some { CS.Jobfile.iterations = Some n; _ } -> P.Driver.Iterations n
        | None, None, _ -> P.Driver.Iterations 100
      in
      match algorithm_for algorithm ~favor ~seed with
      | Error e -> Error e
      | Ok algo -> (
        let deeptune_only = match algo with `Deeptune -> true | `Plain _ | `Multi -> false in
        if (save_model || warm_start <> None) && not deeptune_only then
          Error "--save-model and --warm-start require --algorithm deeptune"
        else begin
        let deeptune_state = ref None in
        let algo_result =
          match algo with
          | `Plain a -> Ok a
          | `Deeptune -> (
            let options = { D.Deeptune.default_options with favor } in
            let space = target.P.Target.space in
            let plan =
              match (warm_start, registry) with
              | None, _ | _, None -> Ok Cold
              | Some spec, Some dir ->
                let fp = P.Registry.fingerprint ~app:target.P.Target.target_name space in
                resolve_warm_start ~dir ~fp ~spec ~drift_ledger space
            in
            match plan with
            | Error e -> Error e
            | Ok plan -> (
              let dt_result =
                match plan with
                | Cold -> Ok (D.Deeptune.create ~options ~seed space)
                | Import (path, entry) -> (
                  try
                    let model = D.Dtm.snapshot_of_floats entry.P.Registry.model in
                    let dt =
                      D.Deeptune.create_from ~options ~seed space
                        { D.Deeptune.model; incumbents = entry.P.Registry.incumbents }
                    in
                    Printf.printf
                      "warm start: imported %s (exact fingerprint, %d samples, %d \
                       incumbents)\n%!"
                      path entry.P.Registry.meta.P.Registry.samples
                      (List.length entry.P.Registry.incumbents);
                    Ok dt
                  with Invalid_argument m ->
                    Error (Printf.sprintf "warm-start %s: %s" path m))
                | Seed_only (path, entry) ->
                  let dt = D.Deeptune.create ~options ~seed space in
                  let projected = P.Registry.project_incumbents entry space in
                  D.Deeptune.seed_incumbents dt projected;
                  Printf.printf
                    "warm start: %s overlaps this space — seeding %d projected incumbents \
                     (cold model, normal warm-up)\n%!"
                    path (List.length projected);
                  Ok dt
              in
              match dt_result with
              | Error e -> Error e
              | Ok dt ->
                deeptune_state := Some dt;
                Ok (D.Deeptune.algorithm dt)))
          | `Multi -> (
            match scenario_info with
            | Some (_, spec, _) when Array.length spec >= 2 ->
              let objectives =
                Array.to_list
                  (Array.map
                     (fun (m : P.Metric.t) ->
                       { D.Multi_objective.label = m.P.Metric.metric_name; weight = 1. })
                     spec)
              in
              Ok (D.Multi_objective.algorithm ~seed ~objectives ~spec target.P.Target.space)
            | Some _ | None ->
              Error "deeptune-multi requires --scenario with two or more --objectives")
        in
        match algo_result with
        | Error e -> Error e
        | Ok algo ->
        let progress entry =
          if not quiet then begin
            let status =
              match entry.P.History.value with
              | Some v -> Printf.sprintf "%.2f %s" v target.P.Target.metric.P.Metric.unit_name
              | None -> (
                match entry.P.History.failure with
                | Some f -> P.Failure.to_string f
                | None -> "failed")
            in
            Printf.printf "iter %3d  t=%7.0fs  %s%s\n%!" entry.P.History.index
              entry.P.History.at_seconds status
              (if entry.P.History.built then "  [built]" else "")
          end
        in
        (* Observability: aggregate metrics always; stream the full JSONL
           event trace only when asked for. *)
        match
          try Ok (Option.map open_out trace_path)
          with Sys_error msg -> Error ("trace file: " ^ msg)
        with
        | Error e -> Error e
        | Ok trace_channel ->
        let obs =
          Wayfinder_obs.Recorder.create
            ?sinks:
              (Option.map (fun oc -> [ Wayfinder_obs.Sink.jsonl_channel oc ]) trace_channel)
            ()
        in
        match
          match progress_every with
          | Some n when n <= 0 -> Error "--progress must be positive"
          | _ -> (
            try
              Ok
                (Option.map
                   (fun path ->
                     A.Ledger.create_writer ~seed
                       ?objectives:
                         (Option.map
                            (fun (_, spec, _) -> Array.to_list spec)
                            scenario_info)
                       ~algo:algorithm ~space:target.P.Target.space
                       ~metric:target.P.Target.metric path)
                   ledger_path)
            with Sys_error msg -> Error ("ledger file: " ^ msg))
        with
        | Error e ->
          (match trace_channel with Some oc -> close_out oc | None -> ());
          Error e
        | Ok ledger_writer ->
        (* The --ledger and --progress paths share one driver hook: the
           ledger records the (entry, belief) pair, the progress line is
           recomputed from the identical analytics series code — no
           duplicated math. *)
        let live = P.History.create target.P.Target.metric in
        (* Streaming monitor state: a Live_series fed one row per record
           powers the alert rules and the Prometheus export in O(1) per
           iteration — no history rescans on the hot path. *)
        let live_series =
          if alert_rules = [] && metrics_out = None then None
          else
            let params = CS.Space.params target.P.Target.space in
            Some
              (M.Live_series.create ~metric:target.P.Target.metric
                 ~names:(Array.map (fun (p : CS.Param.t) -> p.CS.Param.name) params)
                 ~stages:(Array.map (fun (p : CS.Param.t) -> p.CS.Param.stage) params)
                 ~objectives:
                   (match scenario_info with Some (_, spec, _) -> spec | None -> [||])
                 ())
        in
        let rules_state = M.Rules.create alert_rules in
        (* The starve rule wants the pool-busy fraction; only pay for the
           metrics snapshot when such a rule is actually installed. *)
        let wants_busy =
          List.exists (function M.Rules.Starve _ -> true | _ -> false) alert_rules
        in
        let worker_busy () =
          if (not wants_busy) || workers <= 1 then None
          else
            match
              Wayfinder_obs.Metrics.histogram
                (Wayfinder_obs.Recorder.snapshot obs)
                "driver.worker.busy"
            with
            | Some h when h.Wayfinder_obs.Metrics.count > 0 ->
              Some (Wayfinder_obs.Metrics.mean h /. float_of_int workers)
            | Some _ | None -> None
        in
        let export_metrics () =
          match metrics_out with
          | None -> ()
          | Some path -> (
            let stats = Option.map M.Live_series.stats live_series in
            match
              P.Durable.atomic_write ~path
                (M.Prom.render ?stats ~snapshot:(Wayfinder_obs.Recorder.snapshot obs) ())
            with
            | Ok () -> ()
            | Error e ->
              Printf.eprintf "wayfinder: metrics export: %s\n%!"
                (P.Durable.io_error_to_string e))
        in
        let on_record =
          if ledger_writer = None && progress_every = None && live_series = None then None
          else
            Some
              (fun entry belief ->
                (match ledger_writer with
                | Some w -> A.Ledger.record w entry belief
                | None -> ());
                P.History.add live entry;
                (match live_series with
                | Some ls ->
                  M.Live_series.observe ls (A.Ledger.row_of_entry entry belief);
                  List.iter
                    (fun (f : M.Rules.firing) ->
                      Wayfinder_obs.Recorder.alert obs ~rule:f.M.Rules.rule
                        f.M.Rules.message;
                      Printf.eprintf "wayfinder: ALERT %s: %s\n%!" f.M.Rules.rule
                        f.M.Rules.message)
                    (M.Rules.evaluate rules_state ?worker_busy:(worker_busy ()) ls);
                  if P.History.size live mod metrics_every = 0 then export_metrics ()
                | None -> ());
                match progress_every with
                | Some n when P.History.size live mod n = 0 ->
                  let series = A.Series.of_history ~space:target.P.Target.space live in
                  let snap =
                    A.Progress.of_series
                      ~metrics:(Wayfinder_obs.Recorder.snapshot obs)
                      ~workers series
                  in
                  Printf.eprintf "%s\n%!"
                    (A.Progress.to_line
                       ~alerts:(M.Rules.active rules_state)
                       ~metric:target.P.Target.metric snap)
                | Some _ | None -> ())
        in
        let resilience =
          policy_of_flags ~resilient ~retries ~build_timeout ~boot_timeout ~run_timeout
            ~measure_repeats ~quarantine_after
        in
        (match resume_from with
        | Some ck ->
          Printf.printf "resuming from %s at iteration %d (t=%.0fs)\n%!"
            (Option.get checkpoint) ck.P.Checkpoint.iterations ck.P.Checkpoint.clock_seconds
        | None -> ());
        (* --domains: spin up the pool for the run's duration; it is also
           installed as the ambient default so the numeric kernels (DTM
           training, candidate scoring) parallelize.  Results are
           byte-for-byte identical to the unpooled run. *)
        let run_with_pool f =
          if domains <= 1 then f None
          else
            let p = P.Domain_pool.create domains in
            Fun.protect
              ~finally:(fun () -> P.Domain_pool.shutdown p)
              (fun () -> P.Domain_pool.with_default (Some p) (fun () -> f (Some p)))
        in
        match
          run_with_pool (fun pool ->
              P.Driver.run ~seed ~on_iteration:progress ?on_record ~obs ~resilience
                ?checkpoint_path:checkpoint ~checkpoint_every ~checkpoint_keep:keep_checkpoints
                ?resume_from ~workers ?batch
                ?image_cache:(Option.map P.Image_cache.capacity image_cache) ?pool
                ?scenario:(Option.map (fun (sc, _, _) -> sc) scenario_info) ~target
                ~algorithm:algo ~budget ())
        with
        | exception Invalid_argument msg ->
          (match trace_channel with Some oc -> close_out oc | None -> ());
          (match ledger_writer with Some w -> A.Ledger.close_writer w | None -> ());
          Error msg
        | exception P.Durable.Io_error e ->
          (match trace_channel with Some oc -> close_out oc | None -> ());
          (match ledger_writer with Some w -> A.Ledger.close_writer w | None -> ());
          Error (P.Durable.io_error_to_string e)
        | result ->
        (match trace_channel with
        | Some oc ->
          close_out oc;
          Printf.printf "\ntrace written to %s\n" (Option.get trace_path)
        | None -> ());
        (match ledger_writer with
        | Some w ->
          A.Ledger.close_writer w;
          Printf.printf "\nledger written to %s\n" (Option.get ledger_path)
        | None -> ());
        print_newline ();
        print_string
          (P.Report.to_text (P.Report.of_result ~algorithm ~target result));
        (match result.P.Driver.stop_reason with
        | P.Driver.Invalid_cap ->
          Printf.printf
            "  stopped early: %d consecutive invalid proposals (search is stuck)\n"
            P.Driver.default_max_consecutive_invalid
        | P.Driver.Space_exhausted ->
          Printf.printf "  stopped early: the algorithm exhausted its configuration space\n"
        | P.Driver.Budget_exhausted -> ());
        if pareto then begin
          let archive = result.P.Driver.pareto in
          let spec = target.P.Target.objective_spec in
          Printf.printf "\npareto front (%d points):\n" (P.Pareto.size archive);
          List.iter
            (fun (pt : P.Pareto.point) ->
              Printf.printf "  #%-4d %s\n" pt.P.Pareto.index
                (String.concat "  "
                   (Array.to_list
                      (Array.mapi
                         (fun i v ->
                           Printf.sprintf "%s=%.4f"
                             (if i < Array.length spec then
                                spec.(i).P.Metric.metric_name
                              else string_of_int i)
                             v)
                         pt.P.Pareto.objectives))))
            (P.Pareto.points archive)
        end;
        if timings then begin
          print_newline ();
          print_string
            (Wayfinder_obs.Summary.to_text ~title:"== observability summary"
               result.P.Driver.metrics)
        end;
        (match !deeptune_state with
        | Some dt when D.Deeptune.observations dt > 20 ->
          Printf.printf "\ntop-5 learned positive-impact parameters:\n";
          let impacts = D.Deeptune.parameter_impacts dt in
          Array.iteri
            (fun i (name, impact) ->
              if i < 5 then Printf.printf "  %+.3f %s\n" impact name)
            impacts
        | Some _ | None -> ());
        let csv_result =
          match csv_path with
          | Some path -> (
            match P.Durable.atomic_write ~path (P.History.to_csv result.P.Driver.history) with
            | Ok () ->
              Printf.printf "\nhistory written to %s\n" path;
              Ok ()
            | Error e -> Error ("history csv: " ^ P.Durable.io_error_to_string e))
          | None -> Ok ()
        in
        (* --save-model: publish the trained DeepTune model to the registry
           as a sealed fingerprint-keyed entry (atomic, one rotated
           generation kept), with the run's summary statistics as the
           training-distribution record the drift probe compares against. *)
        let save_result =
          match (save_model, registry, !deeptune_state) with
          | false, _, _ | _, None, _ | _, _, None -> Ok ()
          | true, Some dir, Some dt -> (
            let space = target.P.Target.space in
            let fp = P.Registry.fingerprint ~app:target.P.Target.target_name space in
            let series = A.Series.of_history ~space result.P.Driver.history in
            let mean_value =
              let sum = ref 0. and n = ref 0 in
              Array.iter
                (fun (r : A.Series.row) ->
                  match (r.A.Series.value, r.A.Series.failure) with
                  | Some v, None ->
                    sum := !sum +. v;
                    incr n
                  | _ -> ())
                series.A.Series.rows;
              if !n = 0 then Float.nan else !sum /. float_of_int !n
            in
            let transfer = D.Deeptune.export dt in
            let entry =
              { P.Registry.fp;
                meta =
                  { P.Registry.algo = algorithm;
                    seed;
                    samples = D.Deeptune.observations dt;
                    metric_name = target.P.Target.metric.P.Metric.metric_name;
                    unit_name = target.P.Target.metric.P.Metric.unit_name;
                    maximize = target.P.Target.metric.P.Metric.maximize;
                    objectives =
                      (match scenario_info with
                      | Some (_, spec, _) ->
                        Array.to_list
                          (Array.map (fun (m : P.Metric.t) -> m.P.Metric.metric_name) spec)
                      | None -> []);
                    best_value = Option.map snd (A.Series.best series);
                    mean_value;
                    crash_rate = A.Series.crash_rate series;
                    ledger = ledger_path };
                model_kind = "dtm";
                model = D.Dtm.snapshot_to_floats transfer.D.Deeptune.model;
                incumbents = transfer.D.Deeptune.incumbents;
                sealed = true }
            in
            match
              try Ok (ensure_dir dir)
              with Unix.Unix_error (e, _, arg) ->
                Error (Printf.sprintf "registry %s: %s %s" dir (Unix.error_message e) arg)
            with
            | Error e -> Error e
            | Ok () -> (
              match P.Registry.save ~keep:2 ~dir entry with
              | Ok path ->
                Printf.printf "model saved to %s (%d samples, key %s)\n" path
                  entry.P.Registry.meta.P.Registry.samples fp.P.Registry.key;
                Ok ()
              | Error e -> Error ("save-model: " ^ P.Registry.error_to_string e)))
        in
        (* Final Prometheus export: the file always ends on the completed
           run's numbers, whatever --metrics-every left behind. *)
        (match metrics_out with
        | Some path ->
          export_metrics ();
          if not quiet then Printf.printf "metrics written to %s\n" path
        | None -> ());
        (match checkpoint with
        | Some path when not quiet -> Printf.printf "checkpoint written to %s\n" path
        | Some _ | None -> ());
        (match csv_result with Error _ as e -> e | Ok () -> save_result)
        end)))))

(* ------------------------------------------------------------------ *)
(* probe                                                               *)
(* ------------------------------------------------------------------ *)

let run_probe ~emit_job =
  let sim = S.Sim_linux.create () in
  let report = CS.Probe.probe (S.Sim_linux.sysfs sim) in
  Printf.printf "probed %d runtime parameters (%d non-numeric skipped, %d probe crashes)\n\n"
    (List.length report.CS.Probe.probed)
    (List.length report.CS.Probe.skipped)
    report.CS.Probe.crashes;
  List.iteri
    (fun i p -> if i < 20 then Format.printf "  %a@." CS.Param.pp p)
    report.CS.Probe.probed;
  if List.length report.CS.Probe.probed > 20 then
    Printf.printf "  ... (%d more)\n" (List.length report.CS.Probe.probed - 20);
  match emit_job with
  | None -> Ok ()
  | Some path ->
    let job =
      { CS.Jobfile.job_name = "probed-linux";
        os = "sim-linux";
        app = "nginx";
        metric = "throughput";
        maximize = true;
        iterations = Some 100;
        time_budget_s = None;
        seed = 0;
        favor = Some CS.Param.Runtime;
        space = CS.Space.create report.CS.Probe.probed }
    in
    let oc = open_out path in
    output_string oc (Wayfinder_yamlite.Yamlite.to_string (CS.Jobfile.to_yaml job));
    close_out oc;
    Printf.printf "\njob file written to %s\n" path;
    Ok ()

(* ------------------------------------------------------------------ *)
(* space                                                               *)
(* ------------------------------------------------------------------ *)

let run_space ~os =
  match target_for ~os ~app:"nginx" with
  | Error e -> Error e
  | Ok target ->
    let space = target.P.Target.space in
    let count stage =
      Array.fold_left
        (fun acc p -> if p.CS.Param.stage = stage then acc + 1 else acc)
        0 (CS.Space.params space)
    in
    Printf.printf "%s: %d parameters (%d compile-time, %d boot-time, %d runtime)\n" os
      (CS.Space.size space) (count CS.Param.Compile_time) (count CS.Param.Boot_time)
      (count CS.Param.Runtime);
    Printf.printf "log10(|space|) = %.1f\n\n" (CS.Space.log10_cardinality space);
    Array.iter (fun p -> Format.printf "  %a@." CS.Param.pp p) (CS.Space.params space);
    Ok ()

(* ------------------------------------------------------------------ *)
(* analyze / compare                                                   *)
(* ------------------------------------------------------------------ *)

let default_label path = Filename.remove_extension (Filename.basename path)

(* One loader for both subcommands: a ledger (self-describing) or, with
   --from-csv, a History.to_csv export plus the metric described by the
   --metric/--unit/--minimize flags. *)
let load_series ~from_csv ~salvage ~metric path =
  if from_csv then
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | contents -> (
      match A.Series.of_csv ~metric contents with
      | Ok s -> Ok (s, None)
      | Error e -> Error e)
  else if salvage then
    (* Lenient load: analyze what a torn or corrupt ledger still holds,
       reporting every dropped line to stderr. *)
    match A.Ledger.salvage path with
    | Error e -> Error (A.Ledger.error_to_string e)
    | Ok r ->
      List.iter
        (fun (d : A.Ledger.drop) ->
          Printf.eprintf "wayfinder: %s: dropped line %d (byte %d): %s\n%!" path d.A.Ledger.line
            d.A.Ledger.offset d.A.Ledger.reason)
        r.A.Ledger.dropped;
      if r.A.Ledger.dropped <> [] then
        Printf.eprintf "wayfinder: %s: salvaged %d rows (%d lines dropped)\n%!" path
          (List.length r.A.Ledger.ledger.A.Ledger.rows)
          (List.length r.A.Ledger.dropped);
      let ledger = r.A.Ledger.ledger in
      Ok (A.Series.of_ledger ledger, Some ledger.A.Ledger.meta.A.Ledger.algo)
  else
    match A.Ledger.load path with
    | Ok ledger -> Ok (A.Series.of_ledger ledger, Some ledger.A.Ledger.meta.A.Ledger.algo)
    | Error e -> Error (A.Ledger.error_to_string e)

let run_analyze ~path ~from_csv ~salvage ~json ~series_out ~prom ~epsilon ~metric_name
    ~unit_name ~minimize =
  let metric = P.Metric.make ~maximize:(not minimize) ~name:metric_name ~unit_name () in
  match load_series ~from_csv ~salvage ~metric path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok (series, algo) ->
    let report = A.Analyze.of_series ~label:(default_label path) ?algo ~epsilon series in
    if json then print_endline (A.Json.to_string (A.Analyze.to_json report))
    else print_string (A.Analyze.to_text report);
    let prom_result =
      match prom with
      | None -> Ok ()
      | Some out -> (
        match
          P.Durable.atomic_write ~path:out
            (M.Prom.render ~stats:(M.Live_series.stats_of_series series) ())
        with
        | Ok () ->
          if not json then Printf.printf "prometheus metrics written to %s\n" out;
          Ok ()
        | Error e -> Error ("prom file: " ^ P.Durable.io_error_to_string e))
    in
    match prom_result with
    | Error _ as e -> e
    | Ok () -> (
      match series_out with
      | None -> Ok ()
      | Some out -> (
        match P.Durable.atomic_write ~path:out (A.Analyze.series_csv series) with
        | Ok () ->
          if not json then Printf.printf "series written to %s\n" out;
          Ok ()
        | Error e -> Error ("series file: " ^ P.Durable.io_error_to_string e)))

let run_compare ~paths ~json ~budgets =
  if List.length paths < 2 then Error "compare needs at least two ledgers"
  else begin
    let runs =
      List.fold_left
        (fun acc path ->
          match acc with
          | Error _ as e -> e
          | Ok acc -> (
            match A.Ledger.load path with
            | Error e -> Error (Printf.sprintf "%s: %s" path (A.Ledger.error_to_string e))
            | Ok ledger -> Ok ((path, ledger) :: acc)))
        (Ok []) paths
    in
    match runs with
    | Error e -> Error e
    | Ok runs ->
      let runs = List.rev runs in
      (* Labels: basename, disambiguated with the ledger's algorithm name
         (then a counter) when several files share one. *)
      let labelled =
        let seen = Hashtbl.create 8 in
        List.map
          (fun (path, (ledger : A.Ledger.t)) ->
            let base = default_label path in
            let label =
              if not (Hashtbl.mem seen base) then base
              else
                let with_algo =
                  Printf.sprintf "%s[%s]" base ledger.A.Ledger.meta.A.Ledger.algo
                in
                if not (Hashtbl.mem seen with_algo) then with_algo
                else
                  let rec fresh i =
                    let candidate = Printf.sprintf "%s#%d" with_algo i in
                    if Hashtbl.mem seen candidate then fresh (i + 1) else candidate
                  in
                  fresh 2
            in
            Hashtbl.replace seen label ();
            (label, A.Series.of_ledger ledger))
          runs
      in
      (match A.Compare.make ?budgets labelled with
      | Error e -> Error e
      | Ok table ->
        if json then print_endline (A.Json.to_string (A.Compare.to_json table))
        else print_string (A.Compare.to_text table);
        Ok ())
  end

(* ------------------------------------------------------------------ *)
(* watch / profile                                                     *)
(* ------------------------------------------------------------------ *)

(* Live dashboard over a run ledger.  The Tail only ever delivers
   newline-terminated lines, so a writer killed mid-record leaves the
   torn fragment pending rather than crashing the watcher; the frame is
   a deterministic function of the rows read so far, so the final
   --follow frame on a sealed ledger equals a fresh --once on it. *)
let run_watch ~path ~follow ~interval ~alerts =
  match
    match alerts with
    | None -> Ok []
    | Some spec -> Result.map_error (fun e -> "--alerts: " ^ e) (M.Rules.parse spec)
  with
  | Error e -> Error e
  | Ok rules ->
    if interval <= 0. then Error "--interval must be positive"
    else begin
      let tail = M.Tail.create path in
      let live = ref None in
      let rules_state = ref (M.Rules.create rules) in
      let reset () =
        live := None;
        rules_state := M.Rules.create rules
      in
      (* Rows only parse once the meta line is in, so Option.get is safe. *)
      let series () =
        match !live with
        | Some ls -> ls
        | None ->
          let ls = M.Live_series.of_meta (Option.get (M.Tail.meta tail)) in
          live := Some ls;
          ls
      in
      let feed row =
        let ls = series () in
        M.Live_series.observe ls row;
        List.iter
          (fun (f : M.Rules.firing) ->
            Printf.eprintf "wayfinder: ALERT %s: %s\n%!" f.M.Rules.rule f.M.Rules.message)
          (M.Rules.evaluate !rules_state ls)
      in
      let render () =
        match M.Tail.meta tail with
        | None -> None
        | Some meta ->
          Some
            (M.Dashboard.render
               ~alerts:(M.Rules.active !rules_state)
               ~dropped:(M.Tail.dropped tail) ~seal:(M.Tail.seal tail) ~meta (series ()))
      in
      if not follow then
        (* One step reads everything the file currently holds. *)
        match M.Tail.step tail with
        | Error e -> Error (Printf.sprintf "%s: %s" path (A.Ledger.error_to_string e))
        | Ok step -> (
          List.iter feed step.M.Tail.rows;
          match render () with
          | Some frame ->
            print_string frame;
            Ok ()
          | None -> Error (Printf.sprintf "%s: no meta record yet (empty or torn ledger)" path))
      else begin
        let clear = Unix.isatty Unix.stdout in
        let rec loop last =
          match M.Tail.step tail with
          | Error e -> Error (Printf.sprintf "%s: %s" path (A.Ledger.error_to_string e))
          | Ok step ->
            if step.M.Tail.truncated then begin
              Printf.eprintf "wayfinder: %s shrank — restarting from the top\n%!" path;
              reset ()
            end;
            List.iter feed step.M.Tail.rows;
            let last =
              match render () with
              | Some frame when frame <> last ->
                if clear then print_string "\027[2J\027[H";
                print_string frame;
                flush stdout;
                frame
              | Some _ | None -> last
            in
            (* A seal is the writer's sign-off: render the final frame and
               exit rather than polling a finished run forever. *)
            if M.Tail.seal tail <> M.Tail.Unsealed then Ok ()
            else begin
              Unix.sleepf interval;
              loop last
            end
        in
        loop ""
      end
    end

let run_profile ~path ~top ~clock ~flame =
  if top <= 0 then Error "--top must be positive"
  else
    match M.Profile.load path with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok t -> (
      print_string (M.Profile.render_tree t);
      print_newline ();
      print_string (M.Profile.render_hotspots t clock ~top);
      match flame with
      | None -> Ok ()
      | Some out -> (
        match P.Durable.atomic_write ~path:out (M.Profile.flamegraph t clock) with
        | Ok () ->
          Printf.printf "flamegraph written to %s\n" out;
          Ok ()
        | Error e -> Error ("flamegraph: " ^ P.Durable.io_error_to_string e)))

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)
(* ------------------------------------------------------------------ *)

let run_fsck ~paths ~repair ~json =
  match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some p -> Error (Printf.sprintf "%s: no such file or directory" p)
  | None ->
    let report = A.Fsck.scan ~repair paths in
    if json then print_endline (A.Json.to_string (A.Fsck.report_json report))
    else begin
      List.iter (fun f -> print_endline (A.Fsck.finding_to_string f)) report.A.Fsck.findings;
      Printf.printf "%d artifacts scanned: %d valid, %d unsealed, %d corrupt, %d stray%s\n"
        report.A.Fsck.scanned report.A.Fsck.valid report.A.Fsck.unsealed report.A.Fsck.corrupt
        report.A.Fsck.stray
        (if repair then Printf.sprintf ", %d repaired" report.A.Fsck.repaired else "")
    end;
    if report.A.Fsck.clean then Ok () else Error "corrupt artifacts remain"

(* ------------------------------------------------------------------ *)
(* models                                                              *)
(* ------------------------------------------------------------------ *)

let model_key path = Filename.remove_extension (Filename.basename path)
let model_path ~dir key =
  if Sys.file_exists key then key else Filename.concat dir (key ^ ".model")

(* The primary entry and its rotated generations ("<key>.model",
   "<key>.model.1", …), the unit [rm]/[gc] operate on. *)
let generations_of ~dir key =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    let primary = key ^ ".model" in
    let is_gen name =
      name = primary
      ||
      let plen = String.length primary + 1 in
      String.length name > plen
      && String.sub name 0 plen = primary ^ "."
      && String.for_all
           (fun c -> c >= '0' && c <= '9')
           (String.sub name plen (String.length name - plen))
    in
    Array.to_list names |> List.filter is_gen
    |> List.map (Filename.concat dir)
    |> List.sort compare

let run_models_list ~dir =
  match P.Registry.list ~dir with
  | [] ->
    Printf.printf "no models in %s\n" dir;
    Ok ()
  | entries ->
    List.iter
      (fun (path, loaded) ->
        match loaded with
        | Ok (e : P.Registry.t) ->
          Printf.printf "%-10s %-22s %-16s %5d samples  %s%s\n" (model_key path)
            e.P.Registry.fp.P.Registry.app e.P.Registry.meta.P.Registry.algo
            e.P.Registry.meta.P.Registry.samples
            (match e.P.Registry.meta.P.Registry.best_value with
            | Some b ->
              Printf.sprintf "best %.4g %s" b e.P.Registry.meta.P.Registry.unit_name
            | None -> "no success")
            (if e.P.Registry.sealed then "" else "  [unsealed]")
        | Error err ->
          Printf.printf "%-10s corrupt — %s\n" (model_key path)
            (P.Registry.error_to_string err))
      entries;
    Ok ()

let run_models_inspect ~dir ~key =
  let path = model_path ~dir key in
  match P.Registry.load path with
  | Error e -> Error (Printf.sprintf "%s: %s" path (P.Registry.error_to_string e))
  | Ok e ->
    let m = e.P.Registry.meta in
    Printf.printf "key:        %s%s\n" e.P.Registry.fp.P.Registry.key
      (if e.P.Registry.sealed then "" else "  [unsealed]");
    Printf.printf "app:        %s\n" e.P.Registry.fp.P.Registry.app;
    Printf.printf "algorithm:  %s (seed %d)\n" m.P.Registry.algo m.P.Registry.seed;
    Printf.printf "samples:    %d\n" m.P.Registry.samples;
    Printf.printf "metric:     %s (%s, %s)\n" m.P.Registry.metric_name m.P.Registry.unit_name
      (if m.P.Registry.maximize then "maximize" else "minimize");
    if m.P.Registry.objectives <> [] then
      Printf.printf "objectives: %s\n" (String.concat ", " m.P.Registry.objectives);
    (match m.P.Registry.best_value with
    | Some b -> Printf.printf "best:       %g %s\n" b m.P.Registry.unit_name
    | None -> Printf.printf "best:       (no successful sample)\n");
    Printf.printf "mean:       %g %s\n" m.P.Registry.mean_value m.P.Registry.unit_name;
    Printf.printf "crash rate: %.0f%%\n" (100. *. m.P.Registry.crash_rate);
    (match m.P.Registry.ledger with
    | Some l -> Printf.printf "ledger:     %s\n" l
    | None -> ());
    Printf.printf "model:      %s, %d floats\n" e.P.Registry.model_kind
      (Array.length e.P.Registry.model);
    Printf.printf "incumbents: %d\n" (List.length e.P.Registry.incumbents);
    let params =
      List.length
        (List.filter
           (fun line -> String.length line >= 6 && String.sub line 0 6 = "param ")
           (String.split_on_char '\n' e.P.Registry.fp.P.Registry.space_text))
    in
    Printf.printf "space:      %d parameters\n" params;
    Ok ()

let run_models_rm ~dir ~key =
  match generations_of ~dir key with
  | [] -> Error (Printf.sprintf "no entry %s in %s" key dir)
  | files ->
    List.iter Sys.remove files;
    Printf.printf "removed %s (%d file%s)\n" key (List.length files)
      (if List.length files = 1 then "" else "s");
    Ok ()

let run_models_gc ~dir ~keep =
  if keep < 0 then Error "--keep must be >= 0"
  else begin
    let primaries = List.map fst (P.Registry.list ~dir) in
    let with_mtime = List.map (fun p -> ((Unix.stat p).Unix.st_mtime, p)) primaries in
    (* Newest first; ties broken by path so the order is deterministic. *)
    let sorted = List.sort (fun a b -> compare b a) with_mtime in
    let victims = List.filteri (fun i _ -> i >= keep) sorted in
    List.iter
      (fun (_, path) ->
        let key = model_key path in
        List.iter Sys.remove (generations_of ~dir key);
        Printf.printf "removed %s\n" key)
      victims;
    Printf.printf "%d kept, %d removed\n"
      (min keep (List.length sorted))
      (List.length victims);
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* kconfig                                                             *)
(* ------------------------------------------------------------------ *)

let run_kconfig ~version =
  match K.Synthetic.profile_for_version version with
  | None ->
    Error
      (Printf.sprintf "unknown kernel version %S (try: %s)" version
         (String.concat ", "
            (List.map (fun p -> p.K.Synthetic.version) K.Synthetic.linux_profiles)))
  | Some profile ->
    let tree = K.Synthetic.generate profile in
    Format.printf "Linux %s synthetic Kconfig: %a@." version K.Space.pp_census
      (K.Space.census tree);
    Ok ()

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let handle = function
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "wayfinder: %s\n" msg;
    1

let run_cmd =
  let job_file =
    Arg.(value & opt (some file) None & info [ "job" ] ~docv:"FILE" ~doc:"YAML job file.")
  in
  let os =
    Arg.(value & opt string "sim-linux" & info [ "os" ] ~docv:"OS" ~doc:"Target OS simulator.")
  in
  (* Named app_arg: Term.app would shadow a plain [app] inside Term.(...). *)
  let app_arg =
    Arg.(value & opt string "nginx" & info [ "app" ] ~docv:"APP" ~doc:"Application under test.")
  in
  let algorithm =
    Arg.(
      value & opt string "deeptune"
      & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc:"Search algorithm.")
  in
  let iterations =
    Arg.(value & opt (some int) None & info [ "iterations"; "n" ] ~doc:"Iteration budget.")
  in
  let budget_s =
    Arg.(value & opt (some float) None & info [ "budget" ] ~doc:"Virtual time budget (seconds).")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.") in
  let favor =
    Arg.(
      value & opt (some string) None
      & info [ "favor" ] ~docv:"STAGE" ~doc:"Favor varying one stage (runtime, boot, compile).")
  in
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write history CSV.") in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Write the JSONL observability trace.")
  in
  let ledger =
    Arg.(
      value & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"Write the run ledger to $(docv): a versioned JSONL record of every iteration \
                (config, outcome, virtual timings, and the searcher's pre-evaluation beliefs) \
                that $(b,wayfinder analyze) and $(b,wayfinder compare) read.")
  in
  let progress =
    Arg.(
      value & opt (some int) None
      & info [ "progress" ] ~docv:"N"
          ~doc:"Print a one-line analytics snapshot (best, regret slope, crash rate, cache hit \
                rate, worker busyness) to stderr every $(docv) iterations.")
  in
  let timings =
    Arg.(value & flag & info [ "timings" ] ~doc:"Print the per-phase metrics summary.")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-iteration output.") in
  let checkpoint =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE" ~doc:"Write a resumable checkpoint to $(docv).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 10
      & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Checkpoint every $(docv) iterations.")
  in
  let keep_checkpoints =
    Arg.(
      value & opt int 1
      & info [ "keep-checkpoints" ] ~docv:"N"
          ~doc:"Retain $(docv) checkpoint generations: each save rotates the previous file to \
                $(i,FILE.1), $(i,FILE.2), …, and $(b,--resume) falls back to the newest \
                generation that validates if the primary is torn or corrupt.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Resume the search from the $(b,--checkpoint) file; reproduces the uninterrupted \
                run exactly (seed and fault schedule come from the checkpoint).")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Inject transient testbed faults (hung boots, flaky builds, spurious failures, \
                measurement outliers) at total probability $(docv) per evaluation.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"Keep $(docv) virtual evaluation slots busy: build/boot/benchmark pipelines of \
                several configurations overlap on the discrete-event virtual clock. $(docv)=1 \
                is byte-for-byte the sequential driver.")
  in
  let batch =
    Arg.(
      value & opt (some int) None
      & info [ "batch" ] ~docv:"K"
          ~doc:"Ask the algorithm for up to $(docv) configurations at once (native \
                $(i,propose_batch) when available). Defaults to $(b,--workers).")
  in
  let image_cache =
    Arg.(
      value & opt (some int) None
      & info [ "image-cache" ] ~docv:"N"
          ~doc:"Keep up to $(docv) built images in the shared content-addressed cache (exact \
                LRU, keyed by the configuration's compile+boot projection): any worker whose \
                proposal matches a cached image skips the build phase entirely. Defaults to \
                $(b,--workers); on $(b,--resume) the capacity comes from the checkpoint.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Run the expensive computation on $(docv) OCaml domains (real CPU cores): each \
                fill round's evaluations are speculatively computed in parallel, and the \
                numeric kernels (DTM training, candidate-pool scoring) run data-parallel. \
                Results are byte-for-byte identical to $(docv)=1 — domains buy wall-clock \
                time, never a different answer.")
  in
  let scenario =
    Arg.(
      value & opt (some string) None
      & info [ "scenario" ] ~docv:"KIND"
          ~doc:"Drive evaluations through a trace-replay workload instead of a static \
                benchmark: $(b,flash-crowd), $(b,diurnal), $(b,ramp), $(b,steps), or the path \
                of a saved $(i,wayfinder-trace) file.  Requires $(b,--os sim-linux); on \
                $(b,--resume) pass the same scenario flags (the trace cursor and Pareto \
                archive are restored from the checkpoint).")
  in
  let scenario_stride =
    Arg.(
      value & opt int 0
      & info [ "scenario-stride" ] ~docv:"N"
          ~doc:"Advance the trace cursor by $(docv) windows per evaluation (0 = every \
                evaluation replays the same slice).")
  in
  let objectives =
    Arg.(
      value & opt (some (list string)) None
      & info [ "objectives" ] ~docv:"NAME,..."
          ~doc:"Objectives measured by the trace replay ($(b,throughput), $(b,p50), $(b,p95), \
                $(b,p99), $(b,memory)); one objective degenerates to the plain scalar search. \
                Requires $(b,--scenario).  Default: $(b,throughput).")
  in
  let weights =
    Arg.(
      value & opt (some (list float)) None
      & info [ "weights" ] ~docv:"W,..."
          ~doc:"Weighted-sum scalarization weights, aligned with $(b,--objectives) (default: \
                all 1).  A single weight of 1 with the rest 0 reproduces that objective's \
                single-objective search exactly.")
  in
  let pareto =
    Arg.(
      value & flag
      & info [ "pareto" ]
          ~doc:"Print the final Pareto archive (the non-dominated configurations over the \
                objective vectors) after the run.")
  in
  let resilient =
    Arg.(
      value & flag
      & info [ "resilient" ]
          ~doc:"Enable the default resilience policy (retries with backoff, per-phase \
                timeouts, repeated measurement, quarantine).")
  in
  let retries =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"N" ~doc:"Retry transient failures up to $(docv) times.")
  in
  let build_timeout =
    Arg.(
      value & opt (some float) None
      & info [ "build-timeout" ] ~docv:"S" ~doc:"Virtual build timeout in seconds.")
  in
  let boot_timeout =
    Arg.(
      value & opt (some float) None
      & info [ "boot-timeout" ] ~docv:"S" ~doc:"Virtual boot timeout in seconds.")
  in
  let run_timeout =
    Arg.(
      value & opt (some float) None
      & info [ "run-timeout" ] ~docv:"S" ~doc:"Virtual benchmark timeout in seconds.")
  in
  let measure_repeats =
    Arg.(
      value & opt (some int) None
      & info [ "measure-repeats" ] ~docv:"N"
          ~doc:"Corroborate measurements with up to $(docv) samples (median on disagreement).")
  in
  let quarantine_after =
    Arg.(
      value & opt (some int) None
      & info [ "quarantine-after" ] ~docv:"N"
          ~doc:"Quarantine a configuration after $(docv) exhausted-retry episodes (0 = off).")
  in
  let registry =
    Arg.(
      value & opt (some string) None
      & info [ "registry" ] ~docv:"DIR"
          ~doc:"Model registry directory for $(b,--save-model)/$(b,--warm-start) (created on \
                first save).  Inspect and maintain it with $(b,wayfinder models).")
  in
  let save_model =
    Arg.(
      value & flag
      & info [ "save-model" ]
          ~doc:"After the run, publish the trained DeepTune model to the registry as a sealed, \
                fingerprint-keyed entry (atomic write, one rotated generation kept) together \
                with its training metadata and incumbent configurations.")
  in
  let warm_start =
    Arg.(
      value & opt (some string) None
      & info [ "warm-start" ] ~docv:"auto|KEY"
          ~doc:"Warm-start DeepTune from a registry donor: $(b,auto) picks the best match \
                (an exact app/space fingerprint imports the model weights and skips the \
                warm-up; a mere space overlap seeds the donor's projected incumbents as first \
                proposals), an explicit $(docv) names one entry.")
  in
  let drift_ledger =
    Arg.(
      value & opt (some file) None
      & info [ "drift-ledger" ] ~docv:"FILE"
          ~doc:"Probe a recent run ledger of this workload against the donor's recorded \
                training distribution before warm-starting; detected drift downgrades \
                $(b,--warm-start auto) to a cold start with a warning.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Export run metrics as a Prometheus text file (exposition format 0.0.4) to \
                $(docv): atomically replaced every $(b,--metrics-every) iterations and once \
                more when the run completes, so a scraper never sees a torn file.")
  in
  let metrics_every =
    Arg.(
      value & opt int 10
      & info [ "metrics-every" ] ~docv:"N"
          ~doc:"Refresh $(b,--metrics-out) every $(docv) iterations.")
  in
  let alerts =
    Arg.(
      value & opt (some string) None
      & info [ "alerts" ] ~docv:"SPEC"
          ~doc:"Evaluate alert rules after every iteration, e.g. \
                $(b,crash>0.5\\@40,stall>30,drift).  Rules: $(b,crash>P[\\@W]) (windowed crash \
                rate above the fraction $(i,P)), $(b,stall>N) (no best improvement in \
                $(i,N) iterations), $(b,starve<F) (worker pool busy below $(i,F); needs \
                $(b,--workers) > 1), $(b,drift[\\@W]) (trailing window drifts from the run's \
                first window).  Firings go to stderr and, as typed $(i,alert) events, into \
                the $(b,--trace) stream; active rules are flagged on the $(b,--progress) \
                line.")
  in
  let f job_file os app algorithm iterations budget_s seed favor csv
      (trace, ledger, progress, timings, quiet)
      ( checkpoint,
        checkpoint_every,
        keep_checkpoints,
        resume,
        fault_rate,
        workers,
        batch,
        image_cache,
        domains )
      (scenario_kind, scenario_stride, objective_names, weights, pareto)
      (resilient, retries, build_timeout, boot_timeout, run_timeout, measure_repeats,
       quarantine_after)
      (registry, save_model, warm_start, drift_ledger)
      (metrics_out, metrics_every, alerts) =
    handle
      (run_search ~job_file ~os ~app ~metric_hint:() ~algorithm ~iterations ~budget_s ~seed
         ~favor ~csv_path:csv ~trace_path:trace ~ledger_path:ledger ~progress_every:progress
         ~timings ~quiet ~checkpoint ~checkpoint_every ~keep_checkpoints ~resume ~fault_rate
         ~workers ~batch ~image_cache ~domains ~scenario_kind ~scenario_stride ~objective_names
         ~weights ~pareto ~resilient ~retries ~build_timeout ~boot_timeout
         ~run_timeout ~measure_repeats ~quarantine_after ~registry ~save_model ~warm_start
         ~drift_ledger ~metrics_out ~metrics_every ~alerts)
  in
  (* Cmdliner terms are applicative; tuple up the flag groups to keep the
     application chain readable. *)
  let tuple3 a b c = (a, b, c) in
  let tuple4 a b c d = (a, b, c, d) in
  let tuple5 a b c d e = (a, b, c, d, e) in
  let tuple7 a b c d e f g = (a, b, c, d, e, f, g) in
  let tuple9 a b c d e f g h i = (a, b, c, d, e, f, g, h, i) in
  let output_group = Term.(const tuple5 $ trace $ ledger $ progress $ timings $ quiet) in
  let checkpoint_group =
    Term.(
      const tuple9 $ checkpoint $ checkpoint_every $ keep_checkpoints $ resume $ fault_rate
      $ workers $ batch $ image_cache $ domains)
  in
  let scenario_group =
    Term.(const tuple5 $ scenario $ scenario_stride $ objectives $ weights $ pareto)
  in
  let resilience_group =
    Term.(
      const tuple7 $ resilient $ retries $ build_timeout $ boot_timeout $ run_timeout
      $ measure_repeats $ quarantine_after)
  in
  let registry_group =
    Term.(const tuple4 $ registry $ save_model $ warm_start $ drift_ledger)
  in
  let monitor_group = Term.(const tuple3 $ metrics_out $ metrics_every $ alerts) in
  let term =
    Term.(
      const f $ job_file $ os $ app_arg $ algorithm $ iterations $ budget_s $ seed $ favor $ csv
      $ output_group $ checkpoint_group $ scenario_group $ resilience_group $ registry_group
      $ monitor_group)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a specialization job") term

let probe_cmd =
  let emit = Arg.(value & opt (some string) None & info [ "emit-job" ] ~doc:"Write a job file.") in
  Cmd.v
    (Cmd.info "probe" ~doc:"Infer the runtime configuration space (the §3.4 heuristic)")
    Term.(const (fun emit_job -> handle (run_probe ~emit_job)) $ emit)

let space_cmd =
  let os = Arg.(value & opt string "sim-linux" & info [ "os" ] ~doc:"Target OS simulator.") in
  Cmd.v
    (Cmd.info "space" ~doc:"Describe a target's configuration space")
    Term.(const (fun os -> handle (run_space ~os)) $ os)

let kconfig_cmd =
  let version = Arg.(value & opt string "6.0" & info [ "kernel" ] ~doc:"Kernel version.") in
  Cmd.v
    (Cmd.info "kconfig" ~doc:"Census of a synthetic kernel Kconfig tree")
    Term.(const (fun version -> handle (run_kconfig ~version)) $ version)

let analyze_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LEDGER" ~doc:"Run ledger (from $(b,run --ledger)) to analyze.")
  in
  let from_csv =
    Arg.(
      value & flag
      & info [ "from-csv" ]
          ~doc:"Treat $(i,LEDGER) as a history CSV (from $(b,run --csv)) instead; convergence \
                and failure-rate diagnostics only (CSV carries no configs or beliefs).")
  in
  let salvage =
    Arg.(
      value & flag
      & info [ "salvage" ]
          ~doc:"Tolerate a torn or corrupt ledger: analyze every record that still parses, \
                reporting each dropped line (with its line number, byte offset and reason) to \
                stderr.  Fails only when the header or meta line is damaged.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let series =
    Arg.(
      value & opt (some string) None
      & info [ "series" ] ~docv:"FILE"
          ~doc:"Also write the per-iteration derived series (best-so-far, simple regret, \
                windowed failure rates) as CSV to $(docv).")
  in
  let prom =
    Arg.(
      value & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:"Also write the run's summary statistics (iteration count, best, regret slope, \
                failure rates, coverage, virtual-time totals) as Prometheus gauges to \
                $(docv).")
  in
  let epsilon =
    Arg.(
      value & opt float A.Analyze.default_epsilon
      & info [ "epsilon" ] ~docv:"E"
          ~doc:"Relative threshold for the samples/virtual-time-to-within-$(docv)-of-best \
                diagnostics.")
  in
  let metric_name =
    Arg.(
      value & opt string "throughput"
      & info [ "metric" ] ~docv:"NAME" ~doc:"Metric name ($(b,--from-csv) only).")
  in
  let unit_name =
    Arg.(
      value & opt string "req/s"
      & info [ "unit" ] ~docv:"UNIT" ~doc:"Metric unit ($(b,--from-csv) only).")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ] ~doc:"The metric is minimized ($(b,--from-csv) only).")
  in
  let f path from_csv salvage json series prom epsilon metric_name unit_name minimize =
    handle
      (run_analyze ~path ~from_csv ~salvage ~json ~series_out:series ~prom ~epsilon
         ~metric_name ~unit_name ~minimize)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Convergence, coverage and model-calibration diagnostics from a run ledger: \
          best-so-far and simple-regret series, samples-to-within-epsilon, windowed failure \
          rates, space coverage, Brier score and reliability bins for crash predictions, \
          prediction MAE and uncertainty-error rank correlation.")
    Term.(
      const f $ path $ from_csv $ salvage $ json $ series $ prom $ epsilon $ metric_name
      $ unit_name $ minimize)

let compare_cmd =
  let paths =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"LEDGER" ~doc:"Run ledgers to compare (two or more).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the table as JSON.") in
  let budgets =
    Arg.(
      value & opt (some (list int)) None
      & info [ "budgets" ] ~docv:"N,N,..."
          ~doc:"Sample budgets to align on (default: 5, 10, 25, ... clipped to the shortest \
                run).")
  in
  let f paths json budgets = handle (run_compare ~paths ~json ~budgets) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Align several runs' best-so-far curves on shared sample budgets and report the \
          winner per budget.")
    Term.(const f $ paths $ json $ budgets)

let watch_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LEDGER" ~doc:"Run ledger (from $(b,run --ledger)) to watch.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow"; "f" ]
          ~doc:"Keep polling and re-rendering as the ledger grows; exits after the frame that \
                shows the writer's $(i,fin) seal.  Without it, render one frame of the file's \
                current state and exit.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single frame and exit (the default; the explicit flag rejects \
                $(b,--follow)).")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"S" ~doc:"Polling period in seconds for $(b,--follow).")
  in
  let alerts =
    Arg.(
      value & opt (some string) None
      & info [ "alerts" ] ~docv:"SPEC"
          ~doc:"Alert rules to evaluate over the tailed rows (same grammar as \
                $(b,run --alerts)); firings go to stderr, active rules into the frame.")
  in
  let f path follow once interval alerts =
    if follow && once then handle (Error "--follow and --once are mutually exclusive")
    else handle (run_watch ~path ~follow ~interval ~alerts)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Live dashboard over a run ledger: tail the file (tolerating torn tails from a \
          writer killed mid-record), fold each completed row into streaming statistics, and \
          render best/slope/failure-rate/coverage frames until the ledger seals.  The frame \
          is a deterministic function of the ledger's semantic content, so identical runs \
          render identical frames.")
    Term.(const f $ path $ follow $ once $ interval $ alerts)

let profile_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"JSONL observability trace (from $(b,run --trace)).")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Hotspots to list.")
  in
  let clock =
    Arg.(
      value
      & opt (enum [ ("virtual", M.Profile.Virtual); ("wall", M.Profile.Wall) ])
          M.Profile.Virtual
      & info [ "clock" ] ~docv:"CLOCK"
          ~doc:"Clock for hotspot ranking and the flamegraph: $(b,virtual) (the simulated \
                testbed time) or $(b,wall).")
  in
  let flame =
    Arg.(
      value & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:"Write collapsed-stack lines ($(i,a;b;c value), self time in microseconds) to \
                $(docv) for flamegraph renderers.")
  in
  let f path top clock flame = handle (run_profile ~path ~top ~clock ~flame) in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Span profile of an observability trace: rebuild the phase tree from span begin/end \
          stamps, report per-phase total and self time on both the wall and the virtual \
          clock, rank hotspots by self time, and optionally emit a collapsed-stack \
          flamegraph.")
    Term.(const f $ path $ top $ clock $ flame)

let fsck_cmd =
  let paths =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Files or directories to check; directories are walked recursively.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:"Fix what can be fixed: truncate torn ledger tails to their clean prefix \
                (re-sealed; the original kept as $(i,PATH.bak)), quarantine corrupt checkpoint \
                generations and registry model entries to $(i,PATH.bak) so loaders skip them, \
                and remove stray $(i,.tmp) staging files.  Corrupt JSON reports are flagged \
                but never modified.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let f paths repair json = handle (run_fsck ~paths ~repair ~json) in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Validate every durable search artifact — checkpoint generations (CRC envelopes), run \
          ledgers (fin seals, torn tails), JSON reports, stray staging files — and exit \
          non-zero if unrepaired corruption remains.")
    Term.(const f $ paths $ repair $ json)

let models_cmd =
  let dir p =
    Arg.(
      required & pos p (some string) None & info [] ~docv:"DIR" ~doc:"Registry directory.")
  in
  let key p =
    Arg.(
      required
      & pos p (some string) None
      & info [] ~docv:"KEY" ~doc:"Entry key (the filename stem) or a path to an entry.")
  in
  let list_cmd =
    Cmd.v
      (Cmd.info "list" ~doc:"List the registry's entries (one line each)")
      Term.(const (fun dir -> handle (run_models_list ~dir)) $ dir 0)
  in
  let inspect_cmd =
    Cmd.v
      (Cmd.info "inspect" ~doc:"Show one entry's full training metadata")
      Term.(const (fun dir key -> handle (run_models_inspect ~dir ~key)) $ dir 0 $ key 1)
  in
  let rm_cmd =
    Cmd.v
      (Cmd.info "rm" ~doc:"Remove an entry and its rotated generations")
      Term.(const (fun dir key -> handle (run_models_rm ~dir ~key)) $ dir 0 $ key 1)
  in
  let gc_cmd =
    let keep =
      Arg.(
        value & opt int 8
        & info [ "keep" ] ~docv:"N" ~doc:"Entries to retain, newest (by mtime) first.")
    in
    Cmd.v
      (Cmd.info "gc" ~doc:"Prune the registry to its $(b,--keep) newest entries")
      Term.(const (fun dir keep -> handle (run_models_gc ~dir ~keep)) $ dir 0 $ keep)
  in
  Cmd.group
    (Cmd.info "models"
       ~doc:
         "Inspect and maintain the persistent model registry written by $(b,run --save-model) \
          and read by $(b,run --warm-start).")
    [ list_cmd; inspect_cmd; rm_cmd; gc_cmd ]

let () =
  let doc = "automated operating system specialization (EuroSys'26 reproduction)" in
  let info = Cmd.info "wayfinder" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd;
            probe_cmd;
            space_cmd;
            kconfig_cmd;
            analyze_cmd;
            compare_cmd;
            watch_cmd;
            profile_cmd;
            fsck_cmd;
            models_cmd ]))
