(* The fault-tolerant evaluation pipeline: fault injection determinism,
   per-phase timeouts, retry with backoff, outlier rejection, quarantine,
   and checkpoint/resume reproducibility. *)

open Wayfinder_platform
module S = Wayfinder_simos
module Faults = S.Faults
module D = Wayfinder_deeptune
module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Obs = Wayfinder_obs

(* ------------------------------------------------------------------ *)
(* Test targets                                                        *)
(* ------------------------------------------------------------------ *)

let toy_space () = Space.create [ Param.int_param "x" ~lo:0 ~hi:12 ~default:3 ]

(* Maximise -(x-7)² + 100; crash deterministically when x > 9. *)
let toy_target () =
  Target.make ~name:"toy" ~space:(toy_space ()) ~metric:Metric.throughput
    (fun ~trial config ->
      ignore trial;
      match config.(0) with
      | Param.Vint x when x > 9 ->
        { Target.value = Error Failure.Runtime_crash; build_s = 10.; boot_s = 1.; run_s = 2.; objectives = [||] }
      | Param.Vint x ->
        let v = 100. -. float_of_int ((x - 7) * (x - 7)) in
        { Target.value = Ok v; build_s = 10.; boot_s = 1.; run_s = 5.; objectives = [||] }
      | Param.Vbool _ | Param.Vtristate _ | Param.Vcat _ ->
        { Target.value = Error (Failure.Other "invalid"); build_s = 0.; boot_s = 0.; run_s = 0.; objectives = [||] })

(* A target whose outcome is scripted per trial number. *)
let scripted ?(build_s = 10.) ?(boot_s = 1.) ?(run_s = 5.) f =
  let space = toy_space () in
  Target.make ~name:"scripted" ~space ~metric:Metric.throughput (fun ~trial config ->
      ignore config;
      { Target.value = f trial; build_s; boot_s; run_s; objectives = [||] })

let constant_proposal_algo () =
  Search_algorithm.make ~name:"const" ~propose:(fun _ -> [| Param.Vint 3 |]) ()

let frozen_obs () = Obs.Recorder.create ~now:(fun () -> 0.) ()

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let prop_fault_schedule_deterministic =
  QCheck2.Test.make ~name:"same seed, same fault schedule" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let plan () = Faults.create ~rates:(Faults.rates_of_total 0.5) ~seed () in
      let a = plan () and b = plan () in
      let ok = ref true in
      for trial = 0 to 199 do
        if Faults.draw a ~trial <> Faults.draw b ~trial then ok := false
      done;
      !ok)

let test_fault_rates_zero_and_full () =
  let never = Faults.create ~rates:Faults.zero_rates ~seed:1 () in
  let always = Faults.create ~rates:(Faults.rates_of_total 1.0) ~seed:1 () in
  for trial = 0 to 499 do
    Alcotest.(check bool) "zero rates never fault" true (Faults.draw never ~trial = None);
    Alcotest.(check bool) "total rate 1 always faults" true (Faults.draw always ~trial <> None)
  done

let test_fault_rate_frequency () =
  let plan = Faults.create ~rates:(Faults.rates_of_total 0.3) ~seed:7 () in
  let hits = ref 0 in
  let n = 3000 in
  for trial = 0 to n - 1 do
    if Faults.draw plan ~trial <> None then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "empirical rate %.3f near 0.3" freq)
    true
    (freq > 0.25 && freq < 0.35)

let test_fault_rates_validated () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative total rejected" true
    (raises (fun () -> Faults.rates_of_total (-0.1)));
  Alcotest.(check bool) "total above 1 rejected" true
    (raises (fun () -> Faults.rates_of_total 1.5));
  Alcotest.(check bool) "negative stall rejected" true
    (raises (fun () -> Faults.create ~hang_stall_s:(-1.) ~seed:0 ()))

let test_with_faults_passthrough_on_deterministic_failure () =
  (* Faults only strike successful evaluations: a config-caused crash must
     reach the driver (and the crash-gating) untouched. *)
  let target =
    scripted (fun _ -> Error Failure.Runtime_crash)
  in
  let plan = Faults.create ~rates:(Faults.rates_of_total 1.0) ~seed:3 () in
  let faulty = Target.with_faults ~plan target in
  for trial = 0 to 49 do
    let r = faulty.Target.evaluate ~trial [| Param.Vint 3 |] in
    Alcotest.(check bool) "deterministic failure untouched" true
      (r.Target.value = Error Failure.Runtime_crash)
  done

(* ------------------------------------------------------------------ *)
(* Failure taxonomy                                                    *)
(* ------------------------------------------------------------------ *)

let test_failure_string_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Failure.to_string f))
        true
        (Failure.of_string (Failure.to_string f) = f))
    Failure.all_named;
  Alcotest.(check bool) "unknown string becomes Other" true
    (Failure.of_string "weird-thing" = Failure.Other "weird-thing")

let test_failure_classes () =
  Alcotest.(check bool) "build failure is a crash" true
    (Failure.counts_as_crash Failure.Build_failure);
  Alcotest.(check bool) "flaky build is not a crash" false
    (Failure.counts_as_crash Failure.Flaky_build);
  Alcotest.(check bool) "boot timeout is not a crash" false
    (Failure.counts_as_crash Failure.Boot_timeout);
  Alcotest.(check bool) "spurious failure retryable" true
    (Failure.retryable Failure.Spurious_failure);
  Alcotest.(check bool) "quarantined not retryable" false
    (Failure.retryable Failure.Quarantined);
  Alcotest.(check bool) "runtime crash not retryable" false
    (Failure.retryable Failure.Runtime_crash)

(* ------------------------------------------------------------------ *)
(* Resilience policy                                                   *)
(* ------------------------------------------------------------------ *)

let test_backoff_growth_and_cap () =
  let p = Resilience.default_resilient in
  Alcotest.(check (float 1e-9)) "first backoff" 30. (Resilience.backoff_s p ~attempt:0);
  Alcotest.(check (float 1e-9)) "doubles" 60. (Resilience.backoff_s p ~attempt:1);
  Alcotest.(check (float 1e-9)) "caps at max" 600. (Resilience.backoff_s p ~attempt:5)

let test_policy_validation () =
  let raises p = try Resilience.validate p; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative retries" true
    (raises { Resilience.none with Resilience.retries = -1 });
  Alcotest.(check bool) "zero repeats" true
    (raises { Resilience.none with Resilience.measure_repeats = 0 });
  Alcotest.(check bool) "non-positive timeout" true
    (raises { Resilience.none with Resilience.boot_timeout_s = Some 0. });
  Alcotest.(check bool) "default policies valid" true
    (Resilience.validate Resilience.none;
     Resilience.validate Resilience.default_resilient;
     true)

let test_disagreement () =
  Alcotest.(check (float 1e-9)) "singleton" 0. (Resilience.disagreement [| 10. |]);
  Alcotest.(check (float 1e-9)) "agreement" 0. (Resilience.disagreement [| 10.; 10. |]);
  Alcotest.(check (float 1e-9)) "outlier dominates" 1.
    (Resilience.disagreement [| 10.; 20.; 10. |])

(* ------------------------------------------------------------------ *)
(* Driver: timeouts, retry, outlier rejection, quarantine              *)
(* ------------------------------------------------------------------ *)

let test_boot_timeout_caps_hang () =
  (* A 10000 s boot stall is cut at the 120 s cap instead of blowing up
     the virtual clock. *)
  let target = scripted ~build_s:5. ~boot_s:10_000. ~run_s:3. (fun _ -> Ok 1.) in
  let policy = { Resilience.none with Resilience.boot_timeout_s = Some 120. } in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:(constant_proposal_algo ())
      ~budget:(Driver.Iterations 1) ()
  in
  let e = (History.entries r.Driver.history).(0) in
  Alcotest.(check bool) "boot timeout recorded" true
    (e.History.failure = Some Failure.Boot_timeout);
  (* build 5 + capped boot 120; the run phase never happened. *)
  Alcotest.(check (float 1e-9)) "charged at the cap" 125. e.History.eval_seconds;
  Alcotest.(check (float 1e-9)) "clock matches" 125. (S.Vclock.now r.Driver.clock)

let test_retry_recovers_transient () =
  (* Attempt 0 (trial 0) flakes; the retry (a fresh trial) succeeds. *)
  let target =
    scripted (fun trial -> if trial < 1_000_000 then Error Failure.Spurious_failure else Ok 42.)
  in
  let policy =
    { Resilience.none with
      Resilience.retries = 2;
      backoff_base_s = 7.;
      backoff_factor = 2.;
      backoff_max_s = 100. }
  in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:(constant_proposal_algo ())
      ~budget:(Driver.Iterations 1) ()
  in
  let e = (History.entries r.Driver.history).(0) in
  Alcotest.(check (option (float 1e-9))) "recovered value" (Some 42.) e.History.value;
  Alcotest.(check bool) "no failure recorded" true (e.History.failure = None);
  (* attempt 0: 10+1+5; backoff 7; attempt 1 skips the rebuild: 1+5. *)
  Alcotest.(check (float 1e-9)) "backoff and both attempts charged" 29. e.History.eval_seconds;
  Alcotest.(check (float 1e-9)) "one retry counted" 1.
    (Obs.Metrics.counter r.Driver.metrics "driver.retries")

let test_transient_build_failure_recharges_build () =
  (* Pinned retry semantics: a failed build leaves no image, so the failed
     attempt must not populate the cache — the retry rebuilds and the
     build is legitimately charged again.  (Contrast with
     [test_retry_recovers_transient], where the failure is post-build and
     the retry skips the rebuild.) *)
  let target =
    Target.make ~name:"flakybuild" ~space:(toy_space ()) ~metric:Metric.throughput
      (fun ~trial config ->
        ignore config;
        if trial < 1_000_000 then
          { Target.value = Error Failure.Flaky_build; build_s = 10.; boot_s = 0.; run_s = 0.; objectives = [||] }
        else { Target.value = Ok 42.; build_s = 10.; boot_s = 1.; run_s = 5.; objectives = [||] })
  in
  let policy =
    { Resilience.none with Resilience.retries = 1; backoff_base_s = 7. }
  in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:(constant_proposal_algo ())
      ~budget:(Driver.Iterations 1) ()
  in
  let e = (History.entries r.Driver.history).(0) in
  Alcotest.(check (option (float 1e-9))) "recovered value" (Some 42.) e.History.value;
  (* attempt 0: build 10 (no image produced); backoff 7; attempt 1 must
     rebuild: 10+1+5. *)
  Alcotest.(check (float 1e-9)) "build charged on both attempts" 33. e.History.eval_seconds;
  Alcotest.(check (float 1e-9)) "two builds counted" 2.
    (Obs.Metrics.counter r.Driver.metrics "driver.builds_charged");
  Alcotest.(check (float 1e-9)) "no rebuild skip" 0.
    (Obs.Metrics.counter r.Driver.metrics "driver.rebuild_skips");
  (* Flaky_build is transient: it must never be negative-cached. *)
  Alcotest.(check (float 1e-9)) "no negative hit" 0.
    (Obs.Metrics.counter r.Driver.metrics "driver.image_cache.negative_hits")

let test_nan_measurement_rejected () =
  (* The explicit NaN policy: a target reporting Ok nan (or inf) is
     converted to a typed Non_finite_measurement failure instead of
     poisoning the history and downstream statistics. *)
  let check_rejected name v =
    let target = scripted (fun _ -> Ok v) in
    let r =
      Driver.run ~seed:1 ~target ~algorithm:(constant_proposal_algo ())
        ~budget:(Driver.Iterations 1) ()
    in
    let e = (History.entries r.Driver.history).(0) in
    Alcotest.(check bool) (name ^ " rejected typed") true
      (e.History.value = None
      && e.History.failure = Some Failure.Non_finite_measurement);
    Alcotest.(check (float 1e-9)) (name ^ " failure counted") 1.
      (Obs.Metrics.counter r.Driver.metrics "driver.failures.non-finite-measurement")
  in
  check_rejected "nan" Float.nan;
  check_rejected "inf" Float.infinity

let test_nan_corroborating_sample_rejected () =
  (* A NaN *corroborating* sample must not corrupt the median vote: the
     re-measurement is rejected as a failed sample and the honest first
     measurement stands. *)
  let target =
    scripted (fun trial -> if trial = 0 then Ok 100. else Ok Float.nan)
  in
  let policy = { Resilience.none with Resilience.measure_repeats = 3 } in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:(constant_proposal_algo ())
      ~budget:(Driver.Iterations 1) ()
  in
  let e = (History.entries r.Driver.history).(0) in
  Alcotest.(check (option (float 1e-9))) "first sample stands" (Some 100.) e.History.value;
  Alcotest.(check bool) "NaN never reaches the history" true (e.History.failure = None);
  Alcotest.(check (float 1e-9)) "rejected corroborations counted" 2.
    (Obs.Metrics.counter r.Driver.metrics "driver.remeasure_failures")

let test_retries_exhausted_reports_failure () =
  let target = scripted (fun _ -> Error Failure.Spurious_failure) in
  let policy = { Resilience.none with Resilience.retries = 2; backoff_base_s = 1. } in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:(constant_proposal_algo ())
      ~budget:(Driver.Iterations 1) ()
  in
  let e = (History.entries r.Driver.history).(0) in
  Alcotest.(check bool) "failure survives retries" true
    (e.History.failure = Some Failure.Spurious_failure);
  Alcotest.(check (float 1e-9)) "both retries spent" 2.
    (Obs.Metrics.counter r.Driver.metrics "driver.retries")

let test_outlier_rejected_by_median () =
  (* The first sample is corrupted (1000 vs 100); corroboration disagrees,
     the third sample tips the median back to the honest value. *)
  let target =
    scripted (fun trial -> if trial = 0 then Ok 1000. else Ok 100.)
  in
  let policy =
    { Resilience.none with Resilience.measure_repeats = 3; outlier_threshold = 0.25 }
  in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:(constant_proposal_algo ())
      ~budget:(Driver.Iterations 1) ()
  in
  let e = (History.entries r.Driver.history).(0) in
  Alcotest.(check (option (float 1e-9))) "median wins" (Some 100.) e.History.value;
  (* first sample 10+1+5, two re-measures at boot+run each. *)
  Alcotest.(check (float 1e-9)) "re-measures never charge a build" 28. e.History.eval_seconds;
  Alcotest.(check (float 1e-9)) "rejection counted" 1.
    (Obs.Metrics.counter r.Driver.metrics "driver.outlier_rejections")

let test_agreeing_measurement_keeps_first_sample () =
  (* When the corroborating sample agrees, the *first* measurement stands —
     so enabling repeats does not perturb fault-free values. *)
  let target = scripted (fun _ -> Ok 100.) in
  let policy = { Resilience.none with Resilience.measure_repeats = 3 } in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:(constant_proposal_algo ())
      ~budget:(Driver.Iterations 1) ()
  in
  let e = (History.entries r.Driver.history).(0) in
  Alcotest.(check (option (float 1e-9))) "first sample kept" (Some 100.) e.History.value;
  Alcotest.(check (float 1e-9)) "exactly one corroborating sample" 1.
    (Obs.Metrics.counter r.Driver.metrics "driver.remeasurements");
  Alcotest.(check (float 1e-9)) "no rejection" 0.
    (Obs.Metrics.counter r.Driver.metrics "driver.outlier_rejections")

let test_quarantine_after_exhausted_retries () =
  let target = scripted (fun _ -> Error Failure.Spurious_failure) in
  let policy =
    { Resilience.none with
      Resilience.retries = 1;
      backoff_base_s = 1.;
      quarantine_after = 1 }
  in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:(constant_proposal_algo ())
      ~budget:(Driver.Iterations 3) ()
  in
  let es = History.entries r.Driver.history in
  Alcotest.(check bool) "first episode fails normally" true
    (es.(0).History.failure = Some Failure.Spurious_failure);
  Alcotest.(check bool) "second proposal quarantined" true
    (es.(1).History.failure = Some Failure.Quarantined);
  Alcotest.(check bool) "third proposal quarantined" true
    (es.(2).History.failure = Some Failure.Quarantined);
  Alcotest.(check (float 1e-9)) "quarantined entries charge the floor"
    Driver.default_invalid_floor_s es.(1).History.eval_seconds;
  Alcotest.(check (float 1e-9)) "one config quarantined" 1.
    (Obs.Metrics.counter r.Driver.metrics "driver.quarantines");
  Alcotest.(check (float 1e-9)) "skipped proposals counted" 2.
    (Obs.Metrics.counter r.Driver.metrics "driver.quarantined_proposals")

let test_quarantine_distinguishes_deep_configs () =
  (* Regression: quarantine keys used to be [Hashtbl.hash] of the config
     list, which ignores parameters past the ~10th — so a quarantined
     config dragged every config sharing its 10-parameter prefix into
     quarantine with it.  B differs from A only in the 12th parameter and
     must keep evaluating after A is quarantined. *)
  let space =
    Space.create
      (List.init 12 (fun i ->
           Param.int_param (Printf.sprintf "p%d" i) ~lo:0 ~hi:9 ~default:0))
  in
  let config_a = Array.make 12 (Param.Vint 1) in
  let config_b = Array.init 12 (fun i -> Param.Vint (if i = 11 then 2 else 1)) in
  Alcotest.(check bool) "the old truncated keys collide" true
    (Hashtbl.hash (Array.to_list config_a) = Hashtbl.hash (Array.to_list config_b));
  let target =
    Target.make ~name:"deep" ~space ~metric:Metric.throughput (fun ~trial config ->
        ignore trial;
        match config.(11) with
        | Param.Vint 1 ->
          { Target.value = Error Failure.Spurious_failure;
            build_s = 1.; boot_s = 1.; run_s = 1.; objectives = [||] }
        | _ -> { Target.value = Ok 50.; build_s = 1.; boot_s = 1.; run_s = 1.; objectives = [||] })
  in
  let k = ref 0 in
  let algo =
    Search_algorithm.make ~name:"alternate"
      ~propose:(fun _ ->
        incr k;
        if !k mod 2 = 1 then config_a else config_b)
      ()
  in
  let policy = { Resilience.none with Resilience.quarantine_after = 1 } in
  let r =
    Driver.run ~seed:1 ~resilience:policy ~target ~algorithm:algo
      ~budget:(Driver.Iterations 4) ()
  in
  let es = History.entries r.Driver.history in
  Alcotest.(check bool) "A fails and strikes out" true
    (es.(0).History.failure = Some Failure.Spurious_failure);
  Alcotest.(check (option (float 1e-9))) "B unaffected by A's quarantine" (Some 50.)
    es.(1).History.value;
  Alcotest.(check bool) "A quarantined on re-proposal" true
    (es.(2).History.failure = Some Failure.Quarantined);
  Alcotest.(check (option (float 1e-9))) "B still evaluating" (Some 50.)
    es.(3).History.value;
  Alcotest.(check (float 1e-9)) "exactly one config quarantined" 1.
    (Obs.Metrics.counter r.Driver.metrics "driver.quarantines")

let test_resilient_policy_is_noop_without_faults () =
  (* On a fault-free target the resilient policy must not change what the
     search sees: same values, same best. *)
  let series policy =
    let r =
      Driver.run ~seed:11 ~resilience:policy ~target:(toy_target ())
        ~algorithm:(Random_search.create ()) ~budget:(Driver.Iterations 30) ()
    in
    History.values_series r.Driver.history
  in
  Alcotest.(check (array (float 1e-9))) "identical series"
    (series Resilience.none)
    (series Resilience.default_resilient)

let prop_phase_sums_hold_under_faults =
  QCheck2.Test.make ~name:"phase sums equal history under faults + resilience" ~count:15
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let plan = Faults.create ~rates:(Faults.rates_of_total 0.10) ~seed () in
      let target = Target.with_faults ~plan (toy_target ()) in
      let r =
        Driver.run ~seed ~resilience:Resilience.default_resilient ~target
          ~algorithm:(Random_search.create ()) ~budget:(Driver.Iterations 25) ()
      in
      let phase_total =
        List.fold_left (fun acc (_, s) -> acc +. s) 0. (Driver.phase_virtual_seconds r)
      in
      Float.abs (phase_total -. History.total_eval_seconds r.Driver.history) < 1e-6
      && Float.abs (S.Vclock.now r.Driver.clock -. phase_total) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                 *)
(* ------------------------------------------------------------------ *)

let sample_checkpoint () =
  let entry index value failure =
    { History.index;
      config = [| Param.Vint index; Param.Vbool (index mod 2 = 0) |];
      value;
      failure;
      at_seconds = 0.1 +. (0.2 *. float_of_int index);
      eval_seconds = 16.3 /. 3.;
      built = index mod 2 = 0;
      decide_seconds = 1e-4; objectives = None }
  in
  { Checkpoint.seed = 12345;
    rng_state = 0xDEADBEEFL;
    clock_seconds = 0.1 +. 0.2;
    budget_start_seconds = 0.;
    iterations = 3;
    workers = 2;
    consecutive_invalid = 1;
    cache_capacity = 2;
    cache =
      [ ("0:i7,1:b0", { Image_cache.status = Built; origin = 1 });
        ( "0:i3,1:b1",
          { Image_cache.status =
              Build_failed (Failure.Other "strange build break,\twith tab");
            origin = 0 } ) ];
    strikes = [ ("i42,b1", 1); ("i99,b0,c3", 2) ];
    quarantined = [ "i99,b0,c3" ];
    entries =
      [ entry 0 (Some 101.5) None;
        entry 1 None (Some (Failure.Other "weird failure,\twith tab"));
        entry 2 None (Some Failure.Boot_timeout) ];
    inflight =
      [ { Checkpoint.index = 3;
          slot = 1;
          start_seconds = 0.3;
          entry = entry 3 (Some 55.25) None } ];
    pareto = [ (0, [| 101.5; 0.25 |]); (2, [| 99.0; 0.125 |]) ];
    trace_cursor = Some 7 }

let test_checkpoint_string_roundtrip () =
  let ck = sample_checkpoint () in
  match Checkpoint.of_string (Checkpoint.to_string ck) with
  | Error e -> Alcotest.fail ("roundtrip failed: " ^ Checkpoint.error_to_string e)
  | Ok ck' ->
    (* Structural equality covers exact float round-trips (%h encoding)
       and the percent-encoded failure string. *)
    Alcotest.(check bool) "identical checkpoint" true (ck = ck')

let test_checkpoint_rejects_garbage () =
  let bad s =
    match Checkpoint.of_string s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "wrong magic" true (bad "not-a-checkpoint 1\nend\n");
  Alcotest.(check bool) "future version" true (bad "wayfinder-checkpoint 999\nend\n");
  (* Truncation: chop the end marker off a valid file. *)
  let s = Checkpoint.to_string (sample_checkpoint ()) in
  let truncated = String.sub s 0 (String.length s - 4) in
  Alcotest.(check bool) "truncated file rejected" true (bad truncated)

let test_checkpoint_save_load_atomic () =
  let path = Filename.temp_file "wayfinder" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let ck = sample_checkpoint () in
      Checkpoint.save ~path ck;
      Alcotest.(check bool) "no tmp file left" false (Sys.file_exists (path ^ ".tmp"));
      match Checkpoint.load ~path with
      | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
      | Ok ck' -> Alcotest.(check bool) "file roundtrip" true (ck = ck'))

(* A run under injected faults with the resilient policy, frozen wall
   clock, deterministic in [seed]. *)
let faulty_run ?checkpoint_path ?resume_from ~seed ~iterations () =
  let plan = Faults.create ~rates:(Faults.rates_of_total 0.10) ~seed () in
  let target = Target.with_faults ~plan (toy_target ()) in
  Driver.run ~seed ~obs:(frozen_obs ()) ~resilience:Resilience.default_resilient
    ?checkpoint_path ~checkpoint_every:7 ?resume_from ~target
    ~algorithm:(Random_search.create ()) ~budget:(Driver.Iterations iterations) ()

let resume_roundtrip ~seed ~interrupt_at ~iterations =
  let full = faulty_run ~seed ~iterations () in
  let path = Filename.temp_file "wayfinder" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* "Kill" the run at [interrupt_at] iterations; the driver leaves a
         final checkpoint behind. *)
      ignore (faulty_run ~checkpoint_path:path ~seed ~iterations:interrupt_at ());
      match Checkpoint.load ~path with
      | Error e -> Alcotest.failf "checkpoint load: %s" (Checkpoint.error_to_string e)
      | Ok ck ->
        let resumed = faulty_run ~resume_from:ck ~seed ~iterations () in
        (History.to_csv full.Driver.history, History.to_csv resumed.Driver.history))

let test_resume_reproduces_csv_byte_for_byte () =
  let full_csv, resumed_csv = resume_roundtrip ~seed:3 ~interrupt_at:9 ~iterations:20 in
  Alcotest.(check string) "identical CSV" full_csv resumed_csv

let prop_resume_at_any_iteration =
  QCheck2.Test.make ~name:"kill-and-resume reproduces the run at any cut point" ~count:8
    QCheck2.Gen.(pair (int_range 0 500) (int_range 1 19))
    (fun (seed, interrupt_at) ->
      let full_csv, resumed_csv = resume_roundtrip ~seed ~interrupt_at ~iterations:20 in
      full_csv = resumed_csv)

let test_resume_diverging_setup_rejected () =
  let path = Filename.temp_file "wayfinder" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore (faulty_run ~checkpoint_path:path ~seed:5 ~iterations:10 ());
      match Checkpoint.load ~path with
      | Error e -> Alcotest.failf "checkpoint load: %s" (Checkpoint.error_to_string e)
      | Ok ck ->
        (* Same checkpoint, different driver seed: the replayed proposals
           cannot match the recorded ones. *)
        Alcotest.(check bool) "wrong seed rejected" true
          (try
             ignore (faulty_run ~resume_from:ck ~seed:6 ~iterations:20 ());
             false
           with Invalid_argument _ -> true);
        (* A pre-advanced clock cannot be the checkpoint's budget origin. *)
        let clock = S.Vclock.create () in
        S.Vclock.advance clock 1.;
        Alcotest.(check bool) "advanced clock rejected" true
          (try
             ignore
               (Driver.run ~seed:5 ~clock ~resume_from:ck ~target:(toy_target ())
                  ~algorithm:(Random_search.create ()) ~budget:(Driver.Iterations 20) ());
             false
           with Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* Scenario kill-and-resume: archive + trace cursor round-trip         *)
(* ------------------------------------------------------------------ *)

module C = Conformance

let archives_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ia, va) (ib, vb) -> ia = ib && Objective.equal_vec va vb)
       a b

(* A multi-objective trace-replay run on workers=4 under 10% transient
   faults, killed mid-run via [on_iteration]; the resumed run gets a
   freshly constructed (equivalent) scenario, as a real restart would. *)
let scenario_resume_roundtrip ~seed ~interrupt_at =
  let budget = Driver.Iterations 24 in
  let engine = `Workers 4 in
  let fault_rate = 0.10 in
  let full, full_cursor = C.run_scenario ~engine ~seed ~budget ~fault_rate "random" in
  let path = Filename.temp_file "wayfinder" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let completions = ref 0 in
      (try
         ignore
           (C.run_scenario ~engine ~seed ~budget ~fault_rate ~checkpoint_path:path
              ~checkpoint_every:5
              ~on_iteration:(fun _ ->
                incr completions;
                if !completions = interrupt_at then raise Exit)
              "random")
       with Exit -> ());
      match Checkpoint.load ~path with
      | Error e -> Alcotest.failf "checkpoint load: %s" (Checkpoint.error_to_string e)
      | Ok ck ->
        let resumed, resumed_cursor =
          C.run_scenario ~engine ~seed ~budget ~fault_rate ~resume_from:ck "random"
        in
        (full, full_cursor, ck, resumed, resumed_cursor))

let test_scenario_kill_and_resume () =
  let full, full_cursor, ck, resumed, resumed_cursor =
    scenario_resume_roundtrip ~seed:11 ~interrupt_at:12
  in
  Alcotest.(check bool) "checkpoint carries a trace cursor" true
    (ck.Checkpoint.trace_cursor <> None);
  Alcotest.(check bool) "checkpoint carries the archive" true
    (ck.Checkpoint.pareto <> []);
  (* The persisted archive and cursor round-trip bitwise through the
     format-5 text encoding. *)
  (match Checkpoint.of_string (Checkpoint.to_string ck) with
  | Error e -> Alcotest.failf "re-parse: %s" (Checkpoint.error_to_string e)
  | Ok ck' ->
    Alcotest.(check bool) "archive round-trips exactly" true
      (archives_equal ck.Checkpoint.pareto ck'.Checkpoint.pareto);
    Alcotest.(check bool) "cursor round-trips exactly" true
      (ck.Checkpoint.trace_cursor = ck'.Checkpoint.trace_cursor));
  Alcotest.(check string) "resume reproduces the full CSV"
    (History.to_csv full.C.result.Driver.history)
    (History.to_csv resumed.C.result.Driver.history);
  Alcotest.(check bool) "resume reproduces the archive" true
    (archives_equal (C.archive_list full.C.result) (C.archive_list resumed.C.result));
  Alcotest.(check int) "resume reproduces the final cursor" full_cursor resumed_cursor

let prop_scenario_kill_and_resume =
  QCheck2.Test.make
    ~name:"scenario kill-and-resume reproduces archive and cursor under faults"
    ~count:6
    QCheck2.Gen.(pair (int_range 0 300) (int_range 6 20))
    (fun (seed, interrupt_at) ->
      let full, full_cursor, _, resumed, resumed_cursor =
        scenario_resume_roundtrip ~seed ~interrupt_at
      in
      History.to_csv full.C.result.Driver.history
      = History.to_csv resumed.C.result.Driver.history
      && archives_equal (C.archive_list full.C.result) (C.archive_list resumed.C.result)
      && full_cursor = resumed_cursor)

(* A scenario checkpoint cannot be resumed into a scenario-less run. *)
let test_scenario_checkpoint_mismatch_rejected () =
  let path = Filename.temp_file "wayfinder" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore
        (C.run_scenario ~engine:(`Workers 4) ~seed:5 ~budget:(Driver.Iterations 12)
           ~checkpoint_path:path ~checkpoint_every:5 "random");
      match Checkpoint.load ~path with
      | Error e -> Alcotest.failf "checkpoint load: %s" (Checkpoint.error_to_string e)
      | Ok ck ->
        Alcotest.(check bool) "scenario checkpoint rejected without scenario" true
          (try
             ignore
               (C.run ~engine:(`Workers 4) ~seed:5 ~budget:(Driver.Iterations 12)
                  ~resume_from:ck "random");
             false
           with Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* Acceptance: DeepTune on SimLinux/Nginx under a 10 % fault rate      *)
(* ------------------------------------------------------------------ *)

let test_acceptance_deeptune_under_faults () =
  let seed = 0 in
  let iterations = 60 in
  let run target resilience =
    let dt = D.Deeptune.create ~seed target.Target.space in
    Driver.run ~seed ~resilience ~target ~algorithm:(D.Deeptune.algorithm dt)
      ~budget:(Driver.Iterations iterations) ()
  in
  let base = Targets.of_sim_linux (S.Sim_linux.create ()) ~app:S.App.Nginx in
  let clean = run base Resilience.none in
  let plan = Faults.create ~rates:(Faults.rates_of_total 0.10) ~seed () in
  let faulty = run (Target.with_faults ~plan base) Resilience.default_resilient in
  (* No livelock: the full iteration budget completes. *)
  Alcotest.(check int) "fault-free run completes" iterations clean.Driver.iterations;
  Alcotest.(check int) "faulty run completes" iterations faulty.Driver.iterations;
  match (History.best_value clean.Driver.history, History.best_value faulty.Driver.history) with
  | Some cb, Some fb ->
    let gap = Float.abs (fb -. cb) /. cb in
    Alcotest.(check bool)
      (Printf.sprintf "best under faults within 5%% (clean %.1f, faulty %.1f, gap %.3f)" cb fb
         gap)
      true (gap <= 0.05)
  | _ -> Alcotest.fail "expected both runs to find a best configuration"

let () =
  Alcotest.run "resilience"
    [ ( "faults",
        [ Alcotest.test_case "zero and full rates" `Quick test_fault_rates_zero_and_full;
          Alcotest.test_case "empirical frequency" `Quick test_fault_rate_frequency;
          Alcotest.test_case "rate validation" `Quick test_fault_rates_validated;
          Alcotest.test_case "deterministic failures pass through" `Quick
            test_with_faults_passthrough_on_deterministic_failure;
          QCheck_alcotest.to_alcotest prop_fault_schedule_deterministic ] );
      ( "failure",
        [ Alcotest.test_case "string roundtrip" `Quick test_failure_string_roundtrip;
          Alcotest.test_case "classes" `Quick test_failure_classes ] );
      ( "policy",
        [ Alcotest.test_case "backoff growth and cap" `Quick test_backoff_growth_and_cap;
          Alcotest.test_case "validation" `Quick test_policy_validation;
          Alcotest.test_case "disagreement" `Quick test_disagreement ] );
      ( "driver",
        [ Alcotest.test_case "boot timeout caps a hang" `Quick test_boot_timeout_caps_hang;
          Alcotest.test_case "retry recovers a transient" `Quick test_retry_recovers_transient;
          Alcotest.test_case "transient build failure recharges the build" `Quick
            test_transient_build_failure_recharges_build;
          Alcotest.test_case "non-finite measurement rejected typed" `Quick
            test_nan_measurement_rejected;
          Alcotest.test_case "NaN corroborating sample rejected" `Quick
            test_nan_corroborating_sample_rejected;
          Alcotest.test_case "exhausted retries report failure" `Quick
            test_retries_exhausted_reports_failure;
          Alcotest.test_case "outlier rejected by median" `Quick test_outlier_rejected_by_median;
          Alcotest.test_case "agreeing measurement keeps first sample" `Quick
            test_agreeing_measurement_keeps_first_sample;
          Alcotest.test_case "quarantine distinguishes deep configs" `Quick
            test_quarantine_distinguishes_deep_configs;
          Alcotest.test_case "quarantine after exhausted retries" `Quick
            test_quarantine_after_exhausted_retries;
          Alcotest.test_case "resilient policy noop without faults" `Quick
            test_resilient_policy_is_noop_without_faults;
          QCheck_alcotest.to_alcotest prop_phase_sums_hold_under_faults ] );
      ( "checkpoint",
        [ Alcotest.test_case "string roundtrip" `Quick test_checkpoint_string_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_checkpoint_rejects_garbage;
          Alcotest.test_case "save/load atomic" `Quick test_checkpoint_save_load_atomic;
          Alcotest.test_case "resume reproduces CSV byte-for-byte" `Quick
            test_resume_reproduces_csv_byte_for_byte;
          Alcotest.test_case "diverging setup rejected" `Quick
            test_resume_diverging_setup_rejected;
          QCheck_alcotest.to_alcotest prop_resume_at_any_iteration ] );
      ( "scenario resume",
        [ Alcotest.test_case "kill-and-resume round-trips archive and cursor" `Quick
            test_scenario_kill_and_resume;
          Alcotest.test_case "scenario checkpoint rejected without scenario" `Quick
            test_scenario_checkpoint_mismatch_rejected;
          QCheck_alcotest.to_alcotest prop_scenario_kill_and_resume ] );
      ( "acceptance",
        [ Alcotest.test_case "deeptune survives 10% faults" `Slow
            test_acceptance_deeptune_under_faults ] ) ]
