open Wayfinder_deeptune
module P = Wayfinder_platform
module S = Wayfinder_simos
module CS = Wayfinder_configspace
module T = Wayfinder_tensor

(* ------------------------------------------------------------------ *)
(* Scoring (eqs. 2-3)                                                  *)
(* ------------------------------------------------------------------ *)

let test_scoring_dissimilarity () =
  Alcotest.(check (float 1e-9)) "empty set is fully novel" 1.
    (Scoring.dissimilarity [| 1.; 2. |] []);
  Alcotest.(check (float 1e-9)) "known point has zero dissimilarity" 0.
    (Scoring.dissimilarity [| 1.; 2. |] [ [| 1.; 2. |] ]);
  (* ds = 1 - 1/(1+d²) with nearest-sample distance. *)
  let ds = Scoring.dissimilarity [| 0. |] [ [| 1. |]; [| 10. |] ] in
  Alcotest.(check (float 1e-9)) "uses nearest" 0.5 ds;
  Alcotest.(check bool) "bounded" true (ds >= 0. && ds <= 1.)

let test_scoring_monotone_in_distance () =
  let known = [ [| 0.; 0. |] ] in
  let near = Scoring.dissimilarity [| 0.1; 0. |] known in
  let far = Scoring.dissimilarity [| 3.; 0. |] known in
  Alcotest.(check bool) "farther is more novel" true (far > near)

let test_scoring_alpha_balance () =
  Alcotest.(check (float 1e-9)) "alpha 1 is pure dissimilarity" 0.8
    (Scoring.score ~alpha:1. ~dissimilarity:0.8 ~uncertainty:0.2 ());
  Alcotest.(check (float 1e-9)) "alpha 0 is pure uncertainty" 0.2
    (Scoring.score ~alpha:0. ~dissimilarity:0.8 ~uncertainty:0.2 ());
  Alcotest.(check (float 1e-9)) "default alpha 0.5" 0.5
    (Scoring.score ~dissimilarity:0.8 ~uncertainty:0.2 ());
  Alcotest.(check bool) "alpha out of range rejected" true
    (try
       ignore (Scoring.score ~alpha:1.5 ~dissimilarity:0.5 ~uncertainty:0.5 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* DTM                                                                 *)
(* ------------------------------------------------------------------ *)

(* crash iff x0 > 0.8; performance = 3·x1 (+noise). *)
let synthetic_dataset rng n =
  let ds = T.Dataset.create () in
  for _ = 1 to n do
    let x0 = T.Rng.float rng 1.0 and x1 = T.Rng.float rng 1.0 in
    let crashed = x0 > 0.8 in
    let target = if crashed then 0. else (3. *. x1) +. T.Rng.normal rng ~sigma:0.05 () in
    T.Dataset.add ds [| x0; x1 |] ~target ~crashed
  done;
  ds

let trained_dtm ?(epochs = 150) () =
  let rng = T.Rng.create 1 in
  let ds = synthetic_dataset rng 300 in
  let dtm = Dtm.create (T.Rng.create 10) ~in_dim:2 in
  ignore (Dtm.train dtm ~epochs ds);
  (dtm, ds)

let test_dtm_create_validates_config () =
  let rejects name config =
    Alcotest.(check bool) name true
      (try
         ignore (Dtm.create ~config (T.Rng.create 0) ~in_dim:2);
         false
       with Invalid_argument _ -> true)
  in
  rejects "empty hidden spec" { Dtm.default_config with Dtm.hidden = [] };
  rejects "non-positive hidden width" { Dtm.default_config with Dtm.hidden = [ 16; 0 ] };
  rejects "non-positive centroids" { Dtm.default_config with Dtm.rbf_centroids = 0 };
  rejects "negative dropout" { Dtm.default_config with Dtm.dropout = -0.1 };
  rejects "dropout of 1 diverges" { Dtm.default_config with Dtm.dropout = 1. };
  rejects "non-positive learning rate" { Dtm.default_config with Dtm.learning_rate = 0. };
  (* in_dim is validated too. *)
  Alcotest.(check bool) "non-positive in_dim" true
    (try
       ignore (Dtm.create (T.Rng.create 0) ~in_dim:0);
       false
     with Invalid_argument _ -> true);
  (* The boundary cases stay legal. *)
  ignore (Dtm.create ~config:{ Dtm.default_config with Dtm.dropout = 0. } (T.Rng.create 0) ~in_dim:1)

let test_dtm_predict_batch_matches_predict () =
  (* The batched forward is the hot path of pool scoring: one matmul over
     all candidates must be bitwise the per-row prediction. *)
  let dtm, _ = trained_dtm ~epochs:30 () in
  let rng = T.Rng.create 99 in
  let xs = Array.init 17 (fun _ -> [| T.Rng.float rng 1.0; T.Rng.float rng 1.0 |]) in
  let batch = Dtm.predict_batch dtm xs in
  Alcotest.(check int) "one prediction per row" (Array.length xs) (Array.length batch);
  Array.iteri
    (fun i x ->
      let p = Dtm.predict dtm x in
      let b = batch.(i) in
      Alcotest.(check (float 0.)) "crash bitwise" p.Dtm.crash_probability
        b.Dtm.crash_probability;
      Alcotest.(check (float 0.)) "performance bitwise" p.Dtm.performance b.Dtm.performance;
      Alcotest.(check (float 0.)) "uncertainty bitwise" p.Dtm.uncertainty b.Dtm.uncertainty)
    xs;
  Alcotest.(check bool) "dimension mismatch rejected" true
    (try
       ignore (Dtm.predict_batch dtm [| [| 1. |] |]);
       false
     with Invalid_argument _ -> true)

let test_dtm_untrained_predicts () =
  let dtm = Dtm.create (T.Rng.create 3) ~in_dim:4 in
  let p = Dtm.predict dtm [| 0.1; 0.2; 0.3; 0.4 |] in
  Alcotest.(check bool) "crash prob in (0,1)" true
    (p.Dtm.crash_probability > 0. && p.Dtm.crash_probability < 1.);
  Alcotest.(check bool) "uncertainty in [0,1]" true
    (p.Dtm.uncertainty >= 0. && p.Dtm.uncertainty <= 1.)

let test_dtm_dimension_check () =
  let dtm = Dtm.create (T.Rng.create 3) ~in_dim:4 in
  Alcotest.(check bool) "wrong dim rejected" true
    (try
       ignore (Dtm.predict dtm [| 1. |]);
       false
     with Invalid_argument _ -> true)

let test_dtm_learns_crash_boundary () =
  let dtm, _ = trained_dtm () in
  let p_crash = (Dtm.predict dtm [| 0.95; 0.5 |]).Dtm.crash_probability in
  let p_safe = (Dtm.predict dtm [| 0.2; 0.5 |]).Dtm.crash_probability in
  Alcotest.(check bool)
    (Printf.sprintf "separates (%.2f vs %.2f)" p_crash p_safe)
    true
    (p_crash > 0.45 && p_safe < p_crash -. 0.2)

let test_dtm_learns_performance () =
  let dtm, _ = trained_dtm () in
  let perf_high = (Dtm.predict dtm [| 0.2; 0.9 |]).Dtm.performance in
  let perf_low = (Dtm.predict dtm [| 0.2; 0.1 |]).Dtm.performance in
  Alcotest.(check bool) "predicts ordering" true (perf_high > perf_low +. 1.);
  Alcotest.(check bool) "roughly calibrated" true
    (abs_float (perf_high -. 2.7) < 0.6 && abs_float (perf_low -. 0.3) < 0.6)

let test_dtm_uncertainty_higher_off_distribution () =
  let dtm, _ = trained_dtm () in
  (* Average in-distribution uncertainty vs a far outlier. *)
  let rng = T.Rng.create 9 in
  let in_dist = ref 0. in
  for _ = 1 to 50 do
    let x = [| T.Rng.float rng 1.0; T.Rng.float rng 1.0 |] in
    in_dist := !in_dist +. (Dtm.predict dtm x).Dtm.uncertainty
  done;
  let in_dist = !in_dist /. 50. in
  let outlier = (Dtm.predict dtm [| 30.; -30. |]).Dtm.uncertainty in
  Alcotest.(check bool)
    (Printf.sprintf "outlier %.3f > in-dist %.3f" outlier in_dist)
    true (outlier > in_dist);
  (* Inputs are clamped at ±6 z-scores, so the outlier response saturates
     below 1; it must still be clearly higher than in-distribution. *)
  Alcotest.(check bool)
    (Printf.sprintf "outlier %.3f well above in-dist %.3f" outlier in_dist)
    true
    (outlier > in_dist +. 0.15)

let test_dtm_accuracy_evaluation () =
  let dtm, ds = trained_dtm () in
  let acc = Dtm.evaluate dtm ds in
  Alcotest.(check bool) "failure accuracy high" true (acc.Dtm.failure_accuracy > 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "mae %.3f small" acc.Dtm.normalized_mae)
    true (acc.Dtm.normalized_mae < 0.1)

let test_dtm_losses_decrease () =
  let rng = T.Rng.create 4 in
  let ds = synthetic_dataset rng 200 in
  let dtm = Dtm.create (T.Rng.create 5) ~in_dim:2 in
  let first = Dtm.train dtm ~epochs:1 ds in
  let later = Dtm.train dtm ~epochs:20 ds in
  Alcotest.(check bool) "cce decreases" true (later.Dtm.cce < first.Dtm.cce);
  Alcotest.(check bool) "reg decreases" true (later.Dtm.reg < first.Dtm.reg)

let test_dtm_empty_dataset_noop () =
  let dtm = Dtm.create (T.Rng.create 6) ~in_dim:2 in
  let l = Dtm.train dtm (T.Dataset.create ()) in
  Alcotest.(check (float 1e-12)) "zero loss" 0. l.Dtm.cce

let test_dtm_sensitivity_finds_signal () =
  let dtm, ds = trained_dtm () in
  let s = Dtm.feature_sensitivity dtm ds in
  (* Performance depends on x1 positively, not on x0. *)
  Alcotest.(check bool)
    (Printf.sprintf "x1 dominates (%.2f vs %.2f)" s.(1) s.(0))
    true
    (s.(1) > 1. && abs_float s.(0) < s.(1) /. 2.)

let test_dtm_snapshot_roundtrip () =
  let dtm, _ = trained_dtm () in
  let snap = Dtm.export dtm in
  let clone = Dtm.create (T.Rng.create 7) ~in_dim:2 in
  Dtm.import clone snap;
  let x = [| 0.4; 0.7 |] in
  let a = Dtm.predict dtm x and b = Dtm.predict clone x in
  Alcotest.(check (float 1e-9)) "same crash prediction" a.Dtm.crash_probability
    b.Dtm.crash_probability;
  Alcotest.(check (float 1e-9)) "same performance" a.Dtm.performance b.Dtm.performance;
  (* Flat serialization roundtrip. *)
  let snap2 = Dtm.snapshot_of_floats (Dtm.snapshot_to_floats snap) in
  let clone2 = Dtm.create (T.Rng.create 8) ~in_dim:2 in
  Dtm.import clone2 snap2;
  Alcotest.(check (float 1e-9)) "flat roundtrip" a.Dtm.performance
    (Dtm.predict clone2 x).Dtm.performance

let test_dtm_import_rejects_mismatch () =
  let dtm, _ = trained_dtm () in
  let snap = Dtm.export dtm in
  let other = Dtm.create (T.Rng.create 9) ~in_dim:5 in
  Alcotest.(check bool) "wrong in_dim rejected" true
    (try
       Dtm.import other snap;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Multi-metric extension (§3.2)                                       *)
(* ------------------------------------------------------------------ *)

let multi_prediction ?(crash = 0.1) ?(unc = 0.2) perfs =
  { Dtm_multi.crash_probability = crash;
    performances = perfs;
    normalized_performances = perfs;
    uncertainty = unc }

let test_multi_rank_weighted_average () =
  let objectives =
    [ { Multi_objective.label = "a"; weight = 3. }; { Multi_objective.label = "b"; weight = 1. } ]
  in
  let r perfs =
    Multi_objective.rank ~exploration_weight:0. ~crash_penalty:0. ~objectives
      ~prediction:(multi_prediction perfs) ~dissimilarity:0. ()
  in
  (* weights normalise to 0.75/0.25 *)
  Alcotest.(check (float 1e-9)) "weighted" ((0.75 *. 2.) +. (0.25 *. -1.)) (r [| 2.; -1. |]);
  Alcotest.(check bool) "dominant metric dominates" true (r [| 1.; 0. |] > r [| 0.; 1. |])

let test_multi_rank_crash_penalty () =
  let objectives = [ { Multi_objective.label = "a"; weight = 1. } ] in
  let r crash =
    Multi_objective.rank ~exploration_weight:0. ~crash_penalty:2. ~objectives
      ~prediction:(multi_prediction ~crash [| 1. |]) ~dissimilarity:0. ()
  in
  Alcotest.(check bool) "crashier ranks lower" true (r 0.9 < r 0.1)

let test_multi_rank_validation () =
  Alcotest.(check bool) "count mismatch rejected" true
    (try
       ignore
         (Multi_objective.rank
            ~objectives:[ { Multi_objective.label = "a"; weight = 1. } ]
            ~prediction:(multi_prediction [| 1.; 2. |])
            ~dissimilarity:0. ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero weights rejected" true
    (try
       ignore
         (Multi_objective.rank
            ~objectives:[ { Multi_objective.label = "a"; weight = 0. } ]
            ~prediction:(multi_prediction [| 1. |])
            ~dissimilarity:0. ());
       false
     with Invalid_argument _ -> true)

let test_dtm_multi_learns_two_targets () =
  (* target 0 = 3*x0, target 1 = -2*x1; crash iff x2 > 0.8. *)
  let rng = T.Rng.create 5 in
  let m = Dtm_multi.create (T.Rng.create 6) ~in_dim:3 ~n_metrics:2 in
  for _ = 1 to 300 do
    let x = Array.init 3 (fun _ -> T.Rng.float rng 1.0) in
    let crashed = x.(2) > 0.8 in
    Dtm_multi.add m
      { Dtm_multi.features = x; targets = [| 3. *. x.(0); -2. *. x.(1) |]; crashed }
  done;
  Dtm_multi.train m ~epochs:250 ();
  let p = Dtm_multi.predict m [| 0.9; 0.1; 0.2 |] in
  let q = Dtm_multi.predict m [| 0.1; 0.9; 0.2 |] in
  Alcotest.(check bool) "metric 0 tracks x0" true
    (p.Dtm_multi.performances.(0) > q.Dtm_multi.performances.(0) +. 0.8);
  Alcotest.(check bool) "metric 1 tracks -x1" true
    (p.Dtm_multi.performances.(1) > q.Dtm_multi.performances.(1) +. 0.5);
  let crashy = Dtm_multi.predict m [| 0.5; 0.5; 0.95 |] in
  let safe = Dtm_multi.predict m [| 0.5; 0.5; 0.2 |] in
  Alcotest.(check bool)
    (Printf.sprintf "shared crash head separates (%.2f vs %.2f)"
       crashy.Dtm_multi.crash_probability safe.Dtm_multi.crash_probability)
    true
    (crashy.Dtm_multi.crash_probability > safe.Dtm_multi.crash_probability +. 0.08)

let test_dtm_multi_validation () =
  Alcotest.(check bool) "n_metrics >= 1" true
    (try
       ignore (Dtm_multi.create (T.Rng.create 1) ~in_dim:2 ~n_metrics:0);
       false
     with Invalid_argument _ -> true);
  let m = Dtm_multi.create (T.Rng.create 1) ~in_dim:2 ~n_metrics:2 in
  Alcotest.(check bool) "bad feature dim" true
    (try
       Dtm_multi.add m { Dtm_multi.features = [| 1. |]; targets = [| 1.; 2. |]; crashed = false };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad target count" true
    (try
       Dtm_multi.add m { Dtm_multi.features = [| 1.; 2. |]; targets = [| 1. |]; crashed = false };
       false
     with Invalid_argument _ -> true)

let test_multi_proposer_respects_weights () =
  (* Conflicting objectives over one integer parameter: f0 rises with x,
     f1 falls with x.  The weighting decides where the search settles. *)
  let space =
    CS.Space.create [ CS.Param.int_param "x" ~lo:0 ~hi:100 ~default:50 ]
  in
  let run weight_up =
    let objectives =
      [ { Multi_objective.label = "up"; weight = weight_up };
        { Multi_objective.label = "down"; weight = 1. -. weight_up } ]
    in
    let options = { Deeptune.default_options with warmup = 8 } in
    let p = Multi_objective.proposer ~options ~seed:7 ~objectives space in
    for _ = 1 to 60 do
      let config = Multi_objective.propose p in
      let x = match config.(0) with CS.Param.Vint v -> float_of_int v | _ -> 0. in
      Multi_objective.observe p config (Ok [| x; -.x |])
    done;
    match Multi_objective.best p with
    | Some (config, _) -> (
      match config.(0) with CS.Param.Vint v -> v | _ -> Alcotest.fail "int expected")
    | None -> Alcotest.fail "no best"
  in
  let favour_up = run 0.95 and favour_down = run 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "weights steer the optimum (%d vs %d)" favour_up favour_down)
    true
    (favour_up > favour_down + 20)

(* ------------------------------------------------------------------ *)
(* DeepTune search on SimLinux                                         *)
(* ------------------------------------------------------------------ *)

let sim = S.Sim_linux.create ()
let space = S.Sim_linux.space sim

let dt_options = { Deeptune.default_options with favor = Some CS.Param.Runtime }

let run_search ?(iterations = 150) ~seed algorithm =
  let target = P.Targets.of_sim_linux sim ~app:S.App.Nginx in
  P.Driver.run ~seed ~target ~algorithm ~budget:(P.Driver.Iterations iterations) ()

let test_deeptune_beats_random () =
  (* Averaged over seeds, DeepTune's best must beat random search's
     (Figure 6's qualitative claim). *)
  let seeds = [ 1; 2; 3 ] in
  let avg_best algo_of =
    let total =
      List.fold_left
        (fun acc seed ->
          let r = run_search ~seed (algo_of seed) in
          acc +. Option.value ~default:0. (P.History.best_value r.P.Driver.history))
        0. seeds
    in
    total /. float_of_int (List.length seeds)
  in
  let random = avg_best (fun _ -> P.Random_search.create ~favor:CS.Param.Runtime ()) in
  let deeptune =
    avg_best (fun seed -> Deeptune.algorithm (Deeptune.create ~options:dt_options ~seed space))
  in
  Alcotest.(check bool)
    (Printf.sprintf "deeptune %.0f > random %.0f" deeptune random)
    true (deeptune > random)

let test_deeptune_crash_rate_declines () =
  (* §4.1: the crash rate decreases over time as the model learns (0.3 →
     ~0.1); random stays flat.  Average over seeds to damp run noise. *)
  let late_rate seed =
    let dt = Deeptune.create ~options:dt_options ~seed space in
    let r = run_search ~seed (Deeptune.algorithm dt) in
    P.History.windowed_crash_rate r.P.Driver.history ~window:50
  in
  let mean = (late_rate 1 +. late_rate 2 +. late_rate 3) /. 3. in
  Alcotest.(check bool) (Printf.sprintf "late crash rate %.2f < 0.15" mean) true (mean < 0.15)

let test_deeptune_observations_recorded () =
  let dt = Deeptune.create ~options:dt_options ~seed:5 space in
  let _ = run_search ~iterations:40 ~seed:5 (Deeptune.algorithm dt) in
  Alcotest.(check int) "one observation per iteration" 40 (Deeptune.observations dt)

let test_deeptune_parameter_impacts () =
  let dt = Deeptune.create ~options:dt_options ~seed:1 space in
  let _ = run_search ~iterations:150 ~seed:1 (Deeptune.algorithm dt) in
  let impacts = Deeptune.parameter_impacts dt in
  Alcotest.(check int) "one entry per parameter" (CS.Space.size space) (Array.length impacts);
  (* The documented positive parameters should rank above the median
     parameter in learned positive impact. *)
  let rank name =
    let rec find i =
      if i >= Array.length impacts then Array.length impacts
      else if fst impacts.(i) = name then i
      else find (i + 1)
    in
    find 0
  in
  let somaxconn_rank = rank "net.core.somaxconn" in
  Alcotest.(check bool)
    (Printf.sprintf "somaxconn ranked %d of %d" somaxconn_rank (Array.length impacts))
    true
    (somaxconn_rank < Array.length impacts / 2)

let test_deeptune_transfer_learning_reduces_crashes () =
  (* §4.2: a model pre-trained on one app keeps the crash rate below ~10 %
     from the start on another app. *)
  let donor = Deeptune.create ~options:dt_options ~seed:3 space in
  let _ =
    P.Driver.run ~seed:3
      ~target:(P.Targets.of_sim_linux sim ~app:S.App.Redis)
      ~algorithm:(Deeptune.algorithm donor) ~budget:(P.Driver.Iterations 250) ()
  in
  let snap = Deeptune.export donor in
  let tl = Deeptune.create_from ~options:dt_options ~seed:21 space snap in
  let r = run_search ~iterations:100 ~seed:21 (Deeptune.algorithm tl) in
  let rate = P.History.crash_rate r.P.Driver.history in
  Alcotest.(check bool) (Printf.sprintf "TL crash rate %.2f < 0.12" rate) true (rate < 0.12)

let test_deeptune_crash_gate_ablation () =
  (* Disabling the gate and the penalty must not make crash avoidance
     better (sanity of the ablation axis). *)
  let rate options seed =
    let dt = Deeptune.create ~options ~seed space in
    let r = run_search ~seed (Deeptune.algorithm dt) in
    P.History.crash_rate r.P.Driver.history
  in
  let mean f = (f 2 +. f 4 +. f 6) /. 3. in
  let with_gate = mean (rate dt_options) in
  let without_gate =
    mean (rate { dt_options with crash_gate = None; crash_penalty = 0. })
  in
  Alcotest.(check bool)
    (Printf.sprintf "gated %.2f <= ungated %.2f (+slack)" with_gate without_gate)
    true
    (with_gate <= without_gate +. 0.03)

let () =
  Alcotest.run "deeptune"
    [ ( "scoring",
        [ Alcotest.test_case "dissimilarity" `Quick test_scoring_dissimilarity;
          Alcotest.test_case "monotone in distance" `Quick test_scoring_monotone_in_distance;
          Alcotest.test_case "alpha balance" `Quick test_scoring_alpha_balance ] );
      ( "dtm",
        [ Alcotest.test_case "create validates config (typed)" `Quick
            test_dtm_create_validates_config;
          Alcotest.test_case "predict_batch bitwise matches predict" `Quick
            test_dtm_predict_batch_matches_predict;
          Alcotest.test_case "untrained predicts" `Quick test_dtm_untrained_predicts;
          Alcotest.test_case "dimension check" `Quick test_dtm_dimension_check;
          Alcotest.test_case "learns crash boundary" `Quick test_dtm_learns_crash_boundary;
          Alcotest.test_case "learns performance" `Quick test_dtm_learns_performance;
          Alcotest.test_case "uncertainty off-distribution" `Quick
            test_dtm_uncertainty_higher_off_distribution;
          Alcotest.test_case "accuracy evaluation" `Quick test_dtm_accuracy_evaluation;
          Alcotest.test_case "losses decrease" `Quick test_dtm_losses_decrease;
          Alcotest.test_case "empty dataset noop" `Quick test_dtm_empty_dataset_noop;
          Alcotest.test_case "sensitivity finds signal" `Quick test_dtm_sensitivity_finds_signal;
          Alcotest.test_case "snapshot roundtrip" `Quick test_dtm_snapshot_roundtrip;
          Alcotest.test_case "import rejects mismatch" `Quick test_dtm_import_rejects_mismatch ] );
      ( "multi",
        [ Alcotest.test_case "rank weighted average" `Quick test_multi_rank_weighted_average;
          Alcotest.test_case "rank crash penalty" `Quick test_multi_rank_crash_penalty;
          Alcotest.test_case "rank validation" `Quick test_multi_rank_validation;
          Alcotest.test_case "dtm learns two targets" `Quick test_dtm_multi_learns_two_targets;
          Alcotest.test_case "dtm validation" `Quick test_dtm_multi_validation;
          Alcotest.test_case "proposer respects weights" `Quick test_multi_proposer_respects_weights ] );
      ( "search",
        [ Alcotest.test_case "beats random" `Slow test_deeptune_beats_random;
          Alcotest.test_case "crash rate declines" `Slow test_deeptune_crash_rate_declines;
          Alcotest.test_case "observations recorded" `Quick test_deeptune_observations_recorded;
          Alcotest.test_case "parameter impacts" `Slow test_deeptune_parameter_impacts;
          Alcotest.test_case "transfer learning" `Slow test_deeptune_transfer_learning_reduces_crashes;
          Alcotest.test_case "crash gate ablation" `Slow test_deeptune_crash_gate_ablation ] ) ]
