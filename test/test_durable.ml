(* Crash consistency, proven: CRC-32 vectors, the atomic-write and
   checkpoint-save crash matrices over the deterministic fault backend
   (every byte and operation boundary, under every loss plan), ledger
   torn-tail salvage at every cut point, fsck detection completeness
   over seeded corruption, and crash recovery composed with the
   kill-and-resume test at a 10 % fault rate. *)

open Wayfinder_platform
module A = Wayfinder_analytics
module S = Wayfinder_simos
module Faults = S.Faults
module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Obs = Wayfinder_obs
module Mem = Durable.Mem

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let fault_plans = [ (false, false); (false, true); (true, false); (true, true) ]

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc_known_answers () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check string) "check vector" "cbf43926" (Crc32.to_hex (Crc32.digest "123456789"));
  Alcotest.(check string) "empty string" "00000000" (Crc32.to_hex (Crc32.digest ""));
  Alcotest.(check bool) "of_hex inverts to_hex" true
    (Crc32.of_hex "cbf43926" = Some (Crc32.digest "123456789"));
  Alcotest.(check bool) "of_hex rejects non-hex" true (Crc32.of_hex "not-hex!" = None);
  Alcotest.(check bool) "of_hex rejects short input" true (Crc32.of_hex "abc" = None)

let prop_crc_streaming =
  QCheck2.Test.make ~name:"streaming crc equals one-shot digest" ~count:200
    QCheck2.Gen.(pair string nat)
    (fun (s, k) ->
      let k = if s = "" then 0 else k mod (String.length s + 1) in
      let a = String.sub s 0 k and b = String.sub s k (String.length s - k) in
      Crc32.finish (Crc32.update (Crc32.update Crc32.init a) b) = Crc32.digest s)

(* ------------------------------------------------------------------ *)
(* Atomic write: crash matrix                                          *)
(* ------------------------------------------------------------------ *)

let old_content = "old content, durable before the test begins\n"

let new_content =
  String.concat "" (List.init 12 (fun i -> Printf.sprintf "replacement line %d\n" i))

let test_atomic_write_publishes () =
  let fs = Mem.create () in
  let backend = Mem.backend fs in
  (match Durable.atomic_write ~backend ~path:"f" new_content with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Durable.io_error_to_string e));
  Alcotest.(check bool) "content published" true (Mem.get_file fs "f" = Some new_content);
  Alcotest.(check bool) "no staging file left" true (Mem.list_files fs = [ "f" ])

let test_atomic_write_crash_matrix () =
  (* One uninterrupted run fixes the sweep range: cost is 1 per
     primitive plus 1 per byte written, so fuel 0..total kills the
     protocol at every operation and byte boundary. *)
  let probe = Mem.create () in
  Mem.set_file probe "f" old_content;
  (match Durable.atomic_write ~backend:(Mem.backend probe) ~path:"f" new_content with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Durable.io_error_to_string e));
  let total = Mem.cost probe in
  let states = ref 0 in
  List.iter
    (fun (keep_unsynced, keep_renames) ->
      for fuel = 0 to total do
        let fs = Mem.create ~keep_unsynced ~keep_renames () in
        Mem.set_file fs "f" old_content;
        Mem.set_fuel fs fuel;
        (match Durable.atomic_write ~backend:(Mem.backend fs) ~path:"f" new_content with
        | Ok () | Error _ -> ()
        | exception Mem.Crashed -> ());
        Mem.crash fs;
        (match Mem.get_file fs "f" with
        | Some c when c = old_content || c = new_content -> incr states
        | Some c ->
          Alcotest.failf "fuel %d (unsynced=%b renames=%b): torn content %S" fuel keep_unsynced
            keep_renames c
        | None ->
          Alcotest.failf "fuel %d (unsynced=%b renames=%b): file disappeared" fuel keep_unsynced
            keep_renames)
      done)
    fault_plans;
  Alcotest.(check int) "full matrix exercised" (4 * (total + 1)) !states

(* ------------------------------------------------------------------ *)
(* Checkpoint save: crash matrix with generation rotation              *)
(* ------------------------------------------------------------------ *)

let mk_entry index =
  { History.index;
    config = [| Param.Vint (index mod 13) |];
    value = (if index mod 3 = 0 then None else Some (100.5 +. float_of_int index));
    failure = (if index mod 3 = 0 then Some Failure.Runtime_crash else None);
    at_seconds = 0.5 *. float_of_int (index + 1);
    eval_seconds = 16.25;
    built = index mod 2 = 0;
    decide_seconds = 1e-4; objectives = None }

let sample_ck n =
  { Checkpoint.seed = 42;
    rng_state = Int64.of_int (9999 + n);
    clock_seconds = float_of_int n *. 7.5;
    budget_start_seconds = 0.;
    iterations = n;
    workers = 1;
    consecutive_invalid = 0;
    cache_capacity = 1;
    cache = [];
    strikes = [];
    quarantined = [];
    entries = List.init n mk_entry;
    inflight = [];
    pareto = [];
    trace_cursor = None }

let checkpoint_crash_step ~keep_unsynced ~keep_renames ~old_ck ~new_ck fuel =
  let fs = Mem.create ~keep_unsynced ~keep_renames () in
  let backend = Mem.backend fs in
  Checkpoint.save ~backend ~keep:2 ~path:"s.ckpt" old_ck;
  Mem.set_fuel fs fuel;
  (match Checkpoint.save ~backend ~keep:2 ~path:"s.ckpt" new_ck with
  | () -> ()
  | exception Mem.Crashed -> ()
  | exception Durable.Io_error _ -> ());
  Mem.crash fs;
  match Checkpoint.load_latest ~backend "s.ckpt" with
  | Error e ->
    Alcotest.failf "fuel %d (unsynced=%b renames=%b): no generation loads: %s" fuel
      keep_unsynced keep_renames (Checkpoint.error_to_string e)
  | Ok (ck, _) ->
    if not (ck = old_ck || ck = new_ck) then
      Alcotest.failf "fuel %d (unsynced=%b renames=%b): loaded neither old nor new state" fuel
        keep_unsynced keep_renames

let checkpoint_save_cost ~old_ck ~new_ck =
  let probe = Mem.create () in
  let backend = Mem.backend probe in
  Checkpoint.save ~backend ~keep:2 ~path:"s.ckpt" old_ck;
  let before = Mem.cost probe in
  Checkpoint.save ~backend ~keep:2 ~path:"s.ckpt" new_ck;
  Mem.cost probe - before

let test_checkpoint_save_crash_matrix () =
  (* Small checkpoints keep the exhaustive per-byte sweep fast. *)
  let old_ck = sample_ck 2 and new_ck = sample_ck 3 in
  let total = checkpoint_save_cost ~old_ck ~new_ck in
  List.iter
    (fun (keep_unsynced, keep_renames) ->
      for fuel = 0 to total do
        checkpoint_crash_step ~keep_unsynced ~keep_renames ~old_ck ~new_ck fuel
      done)
    fault_plans

let prop_checkpoint_crash_matrix =
  (* The qcheck face of the same property, on a larger checkpoint:
     random kill points and loss plans, recovery always yields old or
     new. *)
  let old_ck = sample_ck 12 and new_ck = sample_ck 13 in
  let total = checkpoint_save_cost ~old_ck ~new_ck in
  QCheck2.Test.make ~name:"checkpoint save killed anywhere recovers old or new" ~count:150
    QCheck2.Gen.(triple (int_range 0 total) bool bool)
    (fun (fuel, keep_unsynced, keep_renames) ->
      checkpoint_crash_step ~keep_unsynced ~keep_renames ~old_ck ~new_ck fuel;
      true)

let test_checkpoint_generation_rotation () =
  let fs = Mem.create () in
  let backend = Mem.backend fs in
  for n = 1 to 5 do
    Checkpoint.save ~backend ~keep:3 ~path:"s.ckpt" (sample_ck n)
  done;
  Alcotest.(check (list string)) "three generations retained"
    [ "s.ckpt"; "s.ckpt.1"; "s.ckpt.2" ] (Mem.list_files fs);
  let gen i =
    match Checkpoint.load_from ~backend ~path:(Checkpoint.generation_path "s.ckpt" i) with
    | Ok ck -> ck.Checkpoint.iterations
    | Error e -> Alcotest.failf "generation %d: %s" i (Checkpoint.error_to_string e)
  in
  Alcotest.(check (list int)) "newest first" [ 5; 4; 3 ] [ gen 0; gen 1; gen 2 ];
  (* Corrupt the primary: load_latest falls back and says so. *)
  Mem.flip_bit fs "s.ckpt" 300;
  match Checkpoint.load_latest ~backend "s.ckpt" with
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
  | Ok (ck, notice) ->
    Alcotest.(check int) "fell back one generation" 4 ck.Checkpoint.iterations;
    (match notice with
    | Some (Checkpoint.Recovered_from_generation { generation = 1; dropped = [ _ ]; _ }) -> ()
    | Some n -> Alcotest.failf "unexpected notice: %s" (Checkpoint.notice_to_string n)
    | None -> Alcotest.fail "expected a recovery notice")

(* ------------------------------------------------------------------ *)
(* Ledger: torn tails, salvage, typed errors                           *)
(* ------------------------------------------------------------------ *)

let ledger_space () = Space.create [ Param.int_param "x" ~lo:0 ~hi:12 ~default:3 ]

(* A sealed ledger's exact bytes, via the real writer. *)
let sealed_ledger_bytes ?(rows = 8) () =
  let path = Filename.temp_file "wayfinder" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w =
        A.Ledger.create_writer ~seed:7 ~algo:"random" ~space:(ledger_space ())
          ~metric:Metric.throughput path
      in
      for i = 0 to rows - 1 do
        A.Ledger.record w (mk_entry i) None
      done;
      A.Ledger.close_writer w;
      In_channel.with_open_bin path In_channel.input_all)

let test_ledger_seal_roundtrip () =
  let full = sealed_ledger_bytes () in
  match A.Ledger.of_string full with
  | Error e -> Alcotest.fail (A.Ledger.error_to_string e)
  | Ok t ->
    Alcotest.(check bool) "sealed" true t.A.Ledger.sealed;
    Alcotest.(check int) "all rows" 8 (List.length t.A.Ledger.rows)

let test_ledger_torn_tail_matrix () =
  let full = sealed_ledger_bytes () in
  let full_rows =
    match A.Ledger.of_string full with
    | Ok t -> Array.of_list t.A.Ledger.rows
    | Error e -> Alcotest.fail (A.Ledger.error_to_string e)
  in
  let header_end = String.index full '\n' + 1 in
  let meta_end = String.index_from full header_end '\n' + 1 in
  for cut = 0 to String.length full do
    let s = String.sub full 0 cut in
    match A.Ledger.salvage_string s with
    | Error _ ->
      if cut >= meta_end then
        Alcotest.failf "cut %d: salvage refused a file with intact header+meta" cut
    | Ok r ->
      if cut < meta_end - 1 then
        Alcotest.failf "cut %d: salvage accepted a damaged header/meta" cut;
      let rows = Array.of_list r.A.Ledger.ledger.A.Ledger.rows in
      (* Salvaged rows are exactly the fully-written prefix. *)
      Array.iteri
        (fun i (row : A.Ledger.row) ->
          if row.A.Ledger.index <> full_rows.(i).A.Ledger.index then
            Alcotest.failf "cut %d: salvaged row %d diverges from the original" cut i)
        rows;
      Alcotest.(check bool)
        (Printf.sprintf "cut %d: at most the torn line dropped" cut)
        true
        (List.length r.A.Ledger.dropped <= 1);
      (* Repairing any truncation yields a loadable, sealed ledger with
         the clean-prefix rows. *)
      (match A.Ledger.repair_string s with
      | Error e -> Alcotest.failf "cut %d: repair failed: %s" cut (A.Ledger.error_to_string e)
      | Ok (fixed, report) -> (
        match A.Ledger.of_string fixed with
        | Error e ->
          Alcotest.failf "cut %d: repaired ledger unreadable: %s" cut
            (A.Ledger.error_to_string e)
        | Ok t ->
          Alcotest.(check bool) (Printf.sprintf "cut %d: repaired is sealed" cut) true
            t.A.Ledger.sealed;
          Alcotest.(check int)
            (Printf.sprintf "cut %d: repaired rows" cut)
            report.A.Ledger.clean_prefix_rows
            (List.length t.A.Ledger.rows)))
  done

let test_ledger_typed_errors () =
  let full = sealed_ledger_bytes () in
  let header_end = String.index full '\n' + 1 in
  (* Truncated header: not a ledger at all. *)
  (match A.Ledger.of_string (String.sub full 0 5) with
  | Error A.Ledger.Missing_header -> ()
  | Error e -> Alcotest.failf "expected Missing_header, got %s" (A.Ledger.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated header accepted");
  (* Truncated meta: position-anchored Malformed. *)
  (match A.Ledger.of_string (String.sub full 0 (header_end + 3)) with
  | Error (A.Ledger.Malformed msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "meta error names line 2 and byte offset: %S" msg)
      true
      (contains_sub msg (Printf.sprintf "line 2 (byte %d)" header_end))
  | Error e -> Alcotest.failf "expected Malformed, got %s" (A.Ledger.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated meta accepted");
  (* Torn tail mid-row: Malformed with the line/byte anchor. *)
  (match A.Ledger.of_string (String.sub full 0 (String.length full - 60)) with
  | Error (A.Ledger.Malformed msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "torn tail names its position: %S" msg)
      true
      (contains_sub msg "line " && contains_sub msg " (byte ")
  | Error e -> Alcotest.failf "expected Malformed, got %s" (A.Ledger.error_to_string e)
  | Ok _ -> Alcotest.fail "torn tail accepted");
  (* A bit flip that keeps every line valid JSON is still caught by the
     fin seal's CRC. *)
  let flipped =
    let target = "\"i\":1" in
    let rec find i =
      if i + String.length target > String.length full then
        Alcotest.fail "row marker not found"
      else if String.sub full i (String.length target) = target then i
      else find (i + 1)
    in
    let i = find 0 in
    let b = Bytes.of_string full in
    Bytes.set b (i + 4) '2';
    Bytes.to_string b
  in
  (match A.Ledger.of_string flipped with
  | Error (A.Ledger.Malformed msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "silent bit flip caught by the seal: %S" msg)
      true (contains_sub msg "crc mismatch")
  | Error e -> Alcotest.failf "expected crc mismatch, got %s" (A.Ledger.error_to_string e)
  | Ok _ -> Alcotest.fail "bit-flipped sealed ledger accepted");
  (* Without its fin line the same file is merely unsealed, not corrupt:
     a killed writer is the normal case. *)
  let fin_start = String.rindex_from full (String.length full - 2) '\n' + 1 in
  match A.Ledger.of_string (String.sub full 0 fin_start) with
  | Ok t ->
    Alcotest.(check bool) "unsealed" false t.A.Ledger.sealed;
    Alcotest.(check int) "all rows kept" 8 (List.length t.A.Ledger.rows)
  | Error e -> Alcotest.failf "unsealed ledger rejected: %s" (A.Ledger.error_to_string e)

(* ------------------------------------------------------------------ *)
(* fsck: detection completeness over seeded corruption                 *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "wayfinder_fsck" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let write_file path data = Durable.atomic_write_exn ~path data
let read_file path = In_channel.with_open_bin path In_channel.input_all

let flip_bit_in_file path bit =
  let b = Bytes.of_string (read_file path) in
  let byte = bit / 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (0x80 lsr (bit mod 8))));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

(* Status of a single file per fsck. *)
let fsck_status path =
  match (A.Fsck.scan [ path ]).A.Fsck.findings with
  | [ f ] -> f.A.Fsck.status
  | fs -> Alcotest.failf "expected one finding for %s, got %d" path (List.length fs)

let test_fsck_detects_all_seeded_corruption () =
  with_temp_dir (fun dir ->
      let ckpt = Filename.concat dir "search.ckpt" in
      let ledger = Filename.concat dir "run.jsonl" in
      let report = Filename.concat dir "report.json" in
      for n = 1 to 2 do
        Checkpoint.save ~keep:2 ~path:ckpt (sample_ck n)
      done;
      write_file ledger (sealed_ledger_bytes ());
      write_file report "{\"benchmark\":\"cache\",\"cells\":[{\"hits\":3}]}\n";
      (* Pristine tree: everything valid, exit clean. *)
      let pristine = A.Fsck.scan [ dir ] in
      Alcotest.(check bool) "pristine tree is clean" true pristine.A.Fsck.clean;
      Alcotest.(check int) "pristine: all valid" pristine.A.Fsck.scanned pristine.A.Fsck.valid;
      let seeded = ref 0 and detected = ref 0 in
      let expect_detected path what ok =
        incr seeded;
        if ok then incr detected else Alcotest.failf "%s: %s went undetected" path what
      in
      (* Bit flips: every sampled position in checkpoints and the sealed
         ledger must be caught (CRC envelope / fin seal). *)
      List.iter
        (fun path ->
          let original = read_file path in
          let bits = 8 * String.length original in
          let rec sweep bit =
            if bit < bits then begin
              flip_bit_in_file path bit;
              expect_detected path
                (Printf.sprintf "bit flip at %d" bit)
                (fsck_status path = A.Fsck.Corrupt);
              Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc original);
              sweep (bit + 509)
            end
          in
          sweep 0)
        [ ckpt; ckpt ^ ".1"; ledger ];
      (* Truncations: any proper prefix of a checkpoint is corrupt; any
         proper prefix of a sealed ledger is at best unsealed, never
         valid. *)
      let truncation_sweep path ~ok =
        let original = read_file path in
        let len = String.length original in
        let rec sweep cut =
          if cut < len then begin
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (String.sub original 0 cut));
            expect_detected path (Printf.sprintf "truncation at %d" cut) (ok (fsck_status path));
            Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc original);
            sweep (cut + 97)
          end
        in
        sweep 0
      in
      truncation_sweep ckpt ~ok:(fun st -> st = A.Fsck.Corrupt);
      truncation_sweep ledger ~ok:(fun st -> st <> A.Fsck.Valid);
      (* JSON report truncation: everything short of removing only the
         trailing newline is detected. *)
      let original = read_file report in
      let rec sweep cut =
        if cut <= String.length original - 2 then begin
          Out_channel.with_open_bin report (fun oc ->
              Out_channel.output_string oc (String.sub original 0 cut));
          expect_detected report
            (Printf.sprintf "truncation at %d" cut)
            (fsck_status report = A.Fsck.Corrupt);
          Out_channel.with_open_bin report (fun oc -> Out_channel.output_string oc original);
          sweep (cut + 7)
        end
      in
      sweep 0;
      (* Torn rename: the staging file survived, flagged as a stray. *)
      let tmp = ckpt ^ ".tmp" in
      Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc "partial");
      expect_detected tmp "torn rename staging file" (fsck_status tmp = A.Fsck.Stray);
      Sys.remove tmp;
      Alcotest.(check int)
        (Printf.sprintf "every seeded corruption detected (%d cases)" !seeded)
        !seeded !detected)

let test_fsck_repair_heals_the_tree () =
  with_temp_dir (fun dir ->
      let ckpt = Filename.concat dir "search.ckpt" in
      let ledger = Filename.concat dir "run.jsonl" in
      for n = 1 to 2 do
        Checkpoint.save ~keep:2 ~path:ckpt (sample_ck n)
      done;
      let full = sealed_ledger_bytes () in
      (* Torn ledger tail, corrupt primary generation, stray tmp. *)
      write_file ledger (String.sub full 0 (String.length full - 33));
      flip_bit_in_file ckpt 123;
      Out_channel.with_open_bin (ckpt ^ ".tmp") (fun oc -> Out_channel.output_string oc "x");
      let before = A.Fsck.scan [ dir ] in
      Alcotest.(check bool) "damage detected" false before.A.Fsck.clean;
      let repair = A.Fsck.scan ~repair:true [ dir ] in
      Alcotest.(check bool) "repair pass ends clean" true repair.A.Fsck.clean;
      Alcotest.(check int) "three repairs applied" 3 repair.A.Fsck.repaired;
      let after = A.Fsck.scan [ dir ] in
      Alcotest.(check bool) "re-scan is clean" true after.A.Fsck.clean;
      (* The repaired ledger is sealed and holds the clean prefix. *)
      (match A.Ledger.load ledger with
      | Ok t -> Alcotest.(check bool) "repaired ledger sealed" true t.A.Ledger.sealed
      | Error e -> Alcotest.fail (A.Ledger.error_to_string e));
      (* The pruned primary no longer hides the good generation. *)
      match Checkpoint.load_latest ckpt with
      | Ok (ck, _) -> Alcotest.(check int) "good generation loads" 1 ck.Checkpoint.iterations
      | Error e -> Alcotest.fail (Checkpoint.error_to_string e))

(* ------------------------------------------------------------------ *)
(* Composition: crash recovery under the 10 % fault-rate resume test   *)
(* ------------------------------------------------------------------ *)

let toy_target () =
  let space = ledger_space () in
  Target.make ~name:"toy" ~space ~metric:Metric.throughput (fun ~trial config ->
      ignore trial;
      match config.(0) with
      | Param.Vint x when x > 9 ->
        { Target.value = Error Failure.Runtime_crash; build_s = 10.; boot_s = 1.; run_s = 2.; objectives = [||] }
      | Param.Vint x ->
        let v = 100. -. float_of_int ((x - 7) * (x - 7)) in
        { Target.value = Ok v; build_s = 10.; boot_s = 1.; run_s = 5.; objectives = [||] }
      | _ -> { Target.value = Error (Failure.Other "invalid"); build_s = 0.; boot_s = 0.; run_s = 0.; objectives = [||] })

let frozen_obs () = Obs.Recorder.create ~now:(fun () -> 0.) ()

let faulty_run ?checkpoint_path ?checkpoint_keep ?resume_from ~seed ~iterations () =
  let plan = Faults.create ~rates:(Faults.rates_of_total 0.10) ~seed () in
  let target = Target.with_faults ~plan (toy_target ()) in
  Driver.run ~seed ~obs:(frozen_obs ()) ~resilience:Resilience.default_resilient
    ?checkpoint_path ~checkpoint_every:7 ?checkpoint_keep ?resume_from ~target
    ~algorithm:(Random_search.create ()) ~budget:(Driver.Iterations iterations) ()

let test_resume_from_fallback_generation_reproduces_run () =
  let full = faulty_run ~seed:11 ~iterations:20 () in
  let path = Filename.temp_file "wayfinder" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".1"; path ^ ".2" ])
    (fun () ->
      (* Kill mid-run with rotation on, then corrupt the primary the way
         a torn final write would. *)
      ignore (faulty_run ~checkpoint_path:path ~checkpoint_keep:3 ~seed:11 ~iterations:13 ());
      flip_bit_in_file path 200;
      match Checkpoint.load_latest path with
      | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
      | Ok (ck, notice) ->
        Alcotest.(check bool) "recovery notice surfaced" true (notice <> None);
        let resumed = faulty_run ~resume_from:ck ~seed:11 ~iterations:20 () in
        Alcotest.(check string) "identical CSV from the fallback generation"
          (History.to_csv full.Driver.history)
          (History.to_csv resumed.Driver.history))

let () =
  Alcotest.run "durable"
    [ ( "crc32",
        [ Alcotest.test_case "known answers" `Quick test_crc_known_answers;
          QCheck_alcotest.to_alcotest prop_crc_streaming ] );
      ( "atomic-write",
        [ Alcotest.test_case "publishes durably" `Quick test_atomic_write_publishes;
          Alcotest.test_case "crash matrix: old or new, never torn" `Quick
            test_atomic_write_crash_matrix ] );
      ( "checkpoint",
        [ Alcotest.test_case "crash matrix with rotation" `Quick
            test_checkpoint_save_crash_matrix;
          Alcotest.test_case "generation rotation and fallback" `Quick
            test_checkpoint_generation_rotation;
          QCheck_alcotest.to_alcotest prop_checkpoint_crash_matrix ] );
      ( "ledger",
        [ Alcotest.test_case "seal roundtrip" `Quick test_ledger_seal_roundtrip;
          Alcotest.test_case "torn-tail matrix: salvage at every cut" `Quick
            test_ledger_torn_tail_matrix;
          Alcotest.test_case "typed errors with positions" `Quick test_ledger_typed_errors ] );
      ( "fsck",
        [ Alcotest.test_case "detects 100% of seeded corruption" `Quick
            test_fsck_detects_all_seeded_corruption;
          Alcotest.test_case "repair heals the tree" `Quick test_fsck_repair_heals_the_tree ] );
      ( "composition",
        [ Alcotest.test_case "resume from fallback generation under 10% faults" `Quick
            test_resume_from_fallback_generation_reproduces_run ] ) ]
