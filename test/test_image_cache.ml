(* The shared content-addressed image cache: stage-key canonicalization,
   LRU determinism, negative caching and its composition with quarantine,
   cross-slot rebuild-skip, and kill-and-resume with a warm cache. *)

open Wayfinder_platform
module C = Conformance
module S = Wayfinder_simos
module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Rng = Wayfinder_tensor.Rng
module Obs = Wayfinder_obs

(* ------------------------------------------------------------------ *)
(* Stage-key canonicalization                                          *)
(* ------------------------------------------------------------------ *)

(* One parameter per stage, so projections are easy to reason about. *)
let staged_space () =
  Space.create
    [ Param.int_param "copt" ~stage:Param.Compile_time ~lo:0 ~hi:7 ~default:3;
      Param.bool_param "bflag" ~stage:Param.Boot_time false;
      Param.int_param "rknob" ~stage:Param.Runtime ~lo:0 ~hi:5 ~default:0 ]

let test_stage_key_ignores_runtime () =
  let space = staged_space () in
  let a = [| Param.Vint 4; Param.Vbool true; Param.Vint 0 |] in
  let b = [| Param.Vint 4; Param.Vbool true; Param.Vint 5 |] in
  let c = [| Param.Vint 5; Param.Vbool true; Param.Vint 0 |] in
  Alcotest.(check string)
    "runtime-only variation shares the key"
    (Space.stage_key space a) (Space.stage_key space b);
  Alcotest.(check bool) "compile-time variation changes the key" true
    (Space.stage_key space a <> Space.stage_key space c)

let test_project_stages () =
  let space = staged_space () in
  let config = [| Param.Vint 4; Param.Vbool true; Param.Vint 5 |] in
  Alcotest.(check bool) "compile+boot projection" true
    (Space.project_stages space ~stages:[ Param.Compile_time; Param.Boot_time ] config
    = [ ("copt", Param.Vint 4); ("bflag", Param.Vbool true) ]);
  Alcotest.(check bool) "runtime projection" true
    (Space.project_stages space ~stages:[ Param.Runtime ] config
    = [ ("rknob", Param.Vint 5) ])

(* The load-bearing property: key equality is exactly "differs only in
   runtime parameters" — the §3.1 rebuild-skip condition. *)
let prop_stage_key_iff_runtime_only =
  QCheck2.Test.make
    ~name:"stage_key equality iff configurations differ only at runtime" ~count:200
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let space = staged_space () in
      let rng = Rng.create seed in
      let sample () =
        Array.map (fun p -> Param.sample p rng) (Space.params space)
      in
      let a = sample () and b = sample () in
      Space.stage_key space a = Space.stage_key space b
      = Space.differs_only_in_stage space a b Param.Runtime)

(* ------------------------------------------------------------------ *)
(* LRU determinism                                                     *)
(* ------------------------------------------------------------------ *)

let built origin = { Image_cache.status = Image_cache.Built; origin }

let test_lru_eviction_order () =
  let c = Image_cache.create (Image_cache.capacity 2) in
  Alcotest.(check bool) "no eviction below capacity" true
    (Image_cache.add c "a" (built 0) = None && Image_cache.add c "b" (built 1) = None);
  (* "a" is LRU; adding "c" evicts it. *)
  (match Image_cache.add c "c" (built 0) with
  | Some ("a", e) -> Alcotest.(check int) "evicted origin" 0 e.Image_cache.origin
  | Some (k, _) -> Alcotest.failf "evicted %S, expected \"a\"" k
  | None -> Alcotest.fail "expected an eviction");
  (* find promotes "b"; the next eviction victim is "c". *)
  ignore (Image_cache.find c "b");
  (match Image_cache.add c "d" (built 0) with
  | Some ("c", _) -> ()
  | Some (k, _) -> Alcotest.failf "evicted %S, expected \"c\"" k
  | None -> Alcotest.fail "expected an eviction");
  Alcotest.(check int) "length stays at capacity" 2 (Image_cache.length c);
  Alcotest.(check bool) "MRU-first listing" true
    (List.map fst (Image_cache.to_alist c) = [ "d"; "b" ])

let test_peek_does_not_promote () =
  let c = Image_cache.create (Image_cache.capacity 2) in
  ignore (Image_cache.add c "a" (built 0));
  ignore (Image_cache.add c "b" (built 0));
  (* peek leaves "a" as LRU; touch promotes it. *)
  Alcotest.(check bool) "peek finds" true (Image_cache.peek c "a" <> None);
  (match Image_cache.add c "x" (built 0) with
  | Some ("a", _) -> ()
  | _ -> Alcotest.fail "peek must not promote");
  ignore (Image_cache.add c "a" (built 0));
  (* now [x; a] with "x" LRU after touching "x"... promote "x" explicitly. *)
  Image_cache.touch c "x";
  (match Image_cache.add c "y" (built 0) with
  | Some ("a", _) -> ()
  | _ -> Alcotest.fail "touch must promote")

let test_overwrite_promotes_without_growth () =
  let c = Image_cache.create (Image_cache.capacity 2) in
  ignore (Image_cache.add c "a" (built 0));
  ignore (Image_cache.add c "b" (built 0));
  Alcotest.(check bool) "overwrite evicts nothing" true
    (Image_cache.add c "a" { Image_cache.status = Image_cache.Built; origin = 3 } = None);
  Alcotest.(check int) "no growth" 2 (Image_cache.length c);
  (match Image_cache.peek c "a" with
  | Some e -> Alcotest.(check int) "entry replaced" 3 e.Image_cache.origin
  | None -> Alcotest.fail "overwritten key vanished");
  (match Image_cache.add c "z" (built 0) with
  | Some ("b", _) -> ()
  | _ -> Alcotest.fail "overwrite must promote \"a\"")

let test_alist_roundtrip () =
  let c = Image_cache.create (Image_cache.capacity 3) in
  ignore (Image_cache.add c "a" (built 0));
  ignore
    (Image_cache.add c "b"
       { Image_cache.status = Image_cache.Build_failed Failure.Build_failure; origin = 1 });
  ignore (Image_cache.add c "c" (built 2));
  ignore (Image_cache.find c "a");
  let listing = Image_cache.to_alist c in
  Alcotest.(check bool) "recency order" true (List.map fst listing = [ "a"; "c"; "b" ]);
  let c' = Image_cache.of_alist (Image_cache.capacity 3) listing in
  Alcotest.(check bool) "of_alist inverts to_alist" true
    (Image_cache.to_alist c' = listing);
  (* The restored recency order governs eviction identically. *)
  ignore (Image_cache.add c "d" (built 0));
  ignore (Image_cache.add c' "d" (built 0));
  Alcotest.(check bool) "restored cache evicts identically" true
    (Image_cache.to_alist c' = Image_cache.to_alist c)

let test_of_alist_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "overflow rejected" true
    (raises (fun () ->
         Image_cache.of_alist (Image_cache.capacity 1) [ ("a", built 0); ("b", built 0) ]));
  Alcotest.(check bool) "duplicate keys rejected" true
    (raises (fun () ->
         Image_cache.of_alist (Image_cache.capacity 2) [ ("a", built 0); ("a", built 1) ]));
  Alcotest.(check bool) "capacity below 1 rejected" true
    (raises (fun () -> Image_cache.capacity 0))

(* ------------------------------------------------------------------ *)
(* Negative caching × quarantine                                       *)
(* ------------------------------------------------------------------ *)

let constant_algo config =
  Search_algorithm.make ~name:"constant"
    ~propose:(fun _ctx -> Array.copy config)
    ~observe:(fun _ctx _entry -> ())
    ()

(* copt = 0 deterministically fails to build; anything else succeeds. *)
let build_failing_target () =
  Target.make ~name:"buildfail" ~space:(staged_space ()) ~metric:Metric.throughput
    (fun ~trial config ->
      ignore trial;
      match config.(0) with
      | Param.Vint 0 ->
        { Target.value = Error Failure.Build_failure; build_s = 10.; boot_s = 0.; run_s = 0.; objectives = [||] }
      | _ -> { Target.value = Ok 50.; build_s = 10.; boot_s = 1.; run_s = 2.; objectives = [||] })

let counter r name = int_of_float (Obs.Metrics.counter r.Driver.metrics name)

let test_negative_cache_serves_deterministic_build_failure () =
  let config = [| Param.Vint 0; Param.Vbool false; Param.Vint 0 |] in
  let r =
    Driver.run_sequential ~seed:1 ~resilience:Resilience.default_resilient
      ~target:(build_failing_target ()) ~algorithm:(constant_algo config)
      ~budget:(Driver.Iterations 6) ()
  in
  (* One doomed build, then five negative hits at the floor charge. *)
  Alcotest.(check int) "one build charged" 1 (counter r "driver.builds_charged");
  Alcotest.(check int) "negative hits" 5 (counter r "driver.image_cache.negative_hits");
  Alcotest.(check int) "deterministic failures never quarantine" 0
    (counter r "driver.quarantines");
  Array.iteri
    (fun i (e : History.entry) ->
      Alcotest.(check bool) "every entry records the cached failure" true
        (e.History.failure = Some Failure.Build_failure
        (* only the first (doomed) attempt ran the build *)
        && e.History.built = (i = 0)))
    (History.entries r.Driver.history);
  (* Phase-sum invariant holds with the negative-cache phase in play. *)
  let phase_total =
    List.fold_left (fun acc (_, s) -> acc +. s) 0. (Driver.phase_virtual_seconds r)
  in
  Alcotest.(check bool) "phase sum equals history" true
    (Float.abs (phase_total -. History.total_eval_seconds r.Driver.history) < 1e-6)

(* Transient build failures must NOT be negative-cached: they strike
   toward quarantine instead, and quarantine then takes precedence over
   the cache pre-check. *)
let test_transient_build_failures_quarantine_not_negative_cache () =
  let config = [| Param.Vint 1; Param.Vbool false; Param.Vint 0 |] in
  let target =
    Target.make ~name:"flaky" ~space:(staged_space ()) ~metric:Metric.throughput
      (fun ~trial config ->
        ignore trial;
        ignore config;
        { Target.value = Error Failure.Flaky_build; build_s = 10.; boot_s = 0.; run_s = 0.; objectives = [||] })
  in
  let resilience =
    { Resilience.none with Resilience.retries = 1; quarantine_after = 2 }
  in
  let r =
    Driver.run_sequential ~seed:1 ~resilience ~target ~algorithm:(constant_algo config)
      ~budget:(Driver.Iterations 6) ()
  in
  Alcotest.(check int) "no negative hits for transient failures" 0
    (counter r "driver.image_cache.negative_hits");
  Alcotest.(check int) "quarantined after two exhausted episodes" 1
    (counter r "driver.quarantines");
  let entries = History.entries r.Driver.history in
  Alcotest.(check bool) "later proposals are served the quarantine" true
    (entries.(Array.length entries - 1).History.failure = Some Failure.Quarantined)

(* ------------------------------------------------------------------ *)
(* Cross-slot rebuild-skip                                             *)
(* ------------------------------------------------------------------ *)

let stage_keys_evaluated space r =
  History.entries r.Driver.history |> Array.to_list
  |> List.map (fun (e : History.entry) -> Space.stage_key space e.History.config)
  |> List.sort_uniq compare

let test_cross_slot_hits () =
  (* 2 compile projections, many runtime variants: most proposals share an
     image some other slot already built. *)
  let space =
    Space.create
      [ Param.bool_param "copt" ~stage:Param.Compile_time false;
        Param.int_param "rknob" ~stage:Param.Runtime ~lo:0 ~hi:1000 ~default:0 ]
  in
  let target =
    Target.make ~name:"twokeys" ~space ~metric:Metric.throughput (fun ~trial config ->
        ignore trial;
        match config with
        | [| Param.Vbool b; Param.Vint r |] ->
          { Target.value = Ok ((if b then 10. else 0.) +. float_of_int (r mod 7));
            build_s = 50.;
            boot_s = 1.;
            run_s = 2.; objectives = [||] }
        | _ -> { Target.value = Error (Failure.Other "arity"); build_s = 0.; boot_s = 0.; run_s = 0.; objectives = [||] })
  in
  let r =
    Driver.run ~seed:5 ~workers:4 ~image_cache:(Image_cache.capacity 4) ~target
      ~algorithm:(Random_search.create ()) ~budget:(Driver.Iterations 24) ()
  in
  let distinct = List.length (stage_keys_evaluated space r) in
  (* Capacity exceeds the key population, so each distinct image is built
     exactly once — every other evaluation is a shared-cache hit. *)
  Alcotest.(check int) "builds = distinct images" distinct
    (counter r "driver.builds_charged");
  Alcotest.(check int) "hits account for the rest" (24 - distinct)
    (counter r "driver.image_cache.hits");
  Alcotest.(check bool) "some hits are cross-slot" true
    (counter r "driver.image_cache.cross_slot_hits" > 0)

(* ------------------------------------------------------------------ *)
(* Checkpoint: warm-cache kill-and-resume; capacity pinning            *)
(* ------------------------------------------------------------------ *)

let prop_kill_and_resume_with_warm_cache =
  QCheck2.Test.make
    ~name:"workers=4 kill-and-resume with a warm shared cache reproduces the run" ~count:6
    QCheck2.Gen.(pair (int_range 0 300) (int_range 6 20))
    (fun (seed, interrupt_at) ->
      let budget = Driver.Iterations 24 in
      let engine = `Workers 4 in
      let image_cache = Image_cache.capacity 8 in
      let full = C.run ~engine ~seed ~budget ~image_cache "random" in
      let path = Filename.temp_file "wayfinder_cache" ".ckpt" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let completions = ref 0 in
          (try
             ignore
               (C.run ~engine ~seed ~budget ~image_cache ~checkpoint_path:path
                  ~checkpoint_every:5
                  ~on_iteration:(fun _ ->
                    incr completions;
                    if !completions = interrupt_at then raise Exit)
                  "random")
           with Exit -> ());
          match Checkpoint.load ~path with
          | Error _ -> false
          | Ok ck ->
            let resumed =
              C.run ~engine ~seed ~budget ~image_cache ~resume_from:ck "random"
            in
            (* The checkpoint must persist a populated cache at the right
               capacity, and the resumed run must be byte-for-byte the
               uninterrupted one. *)
            ck.Checkpoint.cache_capacity = 8
            && ck.Checkpoint.cache <> []
            && History.to_csv full.C.result.Driver.history
               = History.to_csv resumed.C.result.Driver.history))

let test_resume_requires_same_capacity () =
  let path = Filename.temp_file "wayfinder_cache" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore
        (C.run ~engine:(`Workers 2) ~seed:3 ~budget:(Driver.Iterations 8)
           ~image_cache:(Image_cache.capacity 4) ~checkpoint_path:path "random");
      match Checkpoint.load ~path with
      | Error e -> Alcotest.failf "checkpoint load: %s" (Checkpoint.error_to_string e)
      | Ok ck ->
        (match
           C.run ~engine:(`Workers 2) ~seed:3 ~budget:(Driver.Iterations 16)
             ~image_cache:(Image_cache.capacity 2) ~resume_from:ck "random"
         with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "capacity mismatch accepted");
        (* Same capacity resumes fine and continues past the checkpoint. *)
        let resumed =
          C.run ~engine:(`Workers 2) ~seed:3 ~budget:(Driver.Iterations 16)
            ~image_cache:(Image_cache.capacity 4) ~resume_from:ck "random"
        in
        Alcotest.(check int) "resumed to the full budget" 16
          resumed.C.result.Driver.iterations)

let () =
  Alcotest.run "image_cache"
    [ ( "stage-key",
        [ Alcotest.test_case "runtime params excluded" `Quick test_stage_key_ignores_runtime;
          Alcotest.test_case "project_stages" `Quick test_project_stages;
          QCheck_alcotest.to_alcotest prop_stage_key_iff_runtime_only ] );
      ( "lru",
        [ Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "peek does not promote" `Quick test_peek_does_not_promote;
          Alcotest.test_case "overwrite promotes without growth" `Quick
            test_overwrite_promotes_without_growth;
          Alcotest.test_case "to_alist/of_alist round-trip" `Quick test_alist_roundtrip;
          Alcotest.test_case "of_alist validation" `Quick test_of_alist_validation ] );
      ( "negative-cache",
        [ Alcotest.test_case "deterministic build failures served from cache" `Quick
            test_negative_cache_serves_deterministic_build_failure;
          Alcotest.test_case "transient build failures quarantine instead" `Quick
            test_transient_build_failures_quarantine_not_negative_cache ] );
      ( "cross-slot",
        [ Alcotest.test_case "any slot's image serves every slot" `Quick test_cross_slot_hits ] );
      ( "checkpoint",
        [ QCheck_alcotest.to_alcotest prop_kill_and_resume_with_warm_cache;
          Alcotest.test_case "resume requires the checkpointed capacity" `Quick
            test_resume_requires_same_capacity ] ) ]
