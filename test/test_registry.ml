(* Model registry: sealed-entry round-trips (bitwise floats, qcheck),
   verified fingerprints (typed mismatch — the filename hash is never
   trusted), the save crash matrix over the deterministic fault backend
   (old or new entry after any crash, never a torn one), corruption
   detection completeness (every single-byte flip caught), donor lookup
   ranking, incumbent projection, and the drift probe's staleness
   policy. *)

open Wayfinder_platform
module A = Wayfinder_analytics
module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Mem = Durable.Mem

let fault_plans = [ (false, false); (false, true); (true, false); (true, true) ]
let bits = Int64.bits_of_float

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let space_a =
  Space.create
    [ Param.bool_param "net.poll" true;
      Param.int_param ~log_scale:true "buf.kb" ~lo:4 ~hi:4096 ~default:64;
      Param.tristate_param ~stage:Param.Compile_time "CONFIG_SMP" 2;
      Param.categorical_param "sched" [| "cfs"; "eevdf"; "rt" |] ~default:0 ]

(* Overlaps [space_a] in "net.poll" (re-defaulted — identity unchanged)
   and "buf.kb"; adds a parameter of its own. *)
let space_b =
  Space.create
    [ Param.bool_param "net.poll" false;
      Param.int_param ~log_scale:true "buf.kb" ~lo:4 ~hi:4096 ~default:128;
      Param.bool_param "extra.flag" false ]

let sample_entry ?(app = "sim-test/app") ?(seed = 11)
    ?(model = [| 1.5; -0.25; 3.75e-3; 0.; 1e30 |]) space =
  let fp = Registry.fingerprint ~app space in
  { Registry.fp;
    meta =
      { Registry.algo = "deeptune";
        seed;
        samples = 42;
        metric_name = "throughput";
        unit_name = "req/s";
        maximize = true;
        objectives = [ "throughput"; "p95" ];
        best_value = Some 12345.678;
        mean_value = 9876.5;
        crash_rate = 0.25;
        ledger = Some "runs/a.ledger.jsonl" };
    model_kind = "dtm";
    model;
    incumbents = [ Space.defaults space ];
    sealed = true }

let entry_equal_strings a b = Registry.to_string a = Registry.to_string b

(* ------------------------------------------------------------------ *)
(* Round-trip                                                          *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let e = sample_entry space_a in
  match Registry.of_string (Registry.to_string e) with
  | Error err -> Alcotest.fail (Registry.error_to_string err)
  | Ok e' ->
    Alcotest.(check bool) "sealed" true e'.Registry.sealed;
    Alcotest.(check string) "app" e.Registry.fp.Registry.app e'.Registry.fp.Registry.app;
    Alcotest.(check string) "space text" e.Registry.fp.Registry.space_text
      e'.Registry.fp.Registry.space_text;
    Alcotest.(check string) "key" e.Registry.fp.Registry.key e'.Registry.fp.Registry.key;
    Alcotest.(check bool) "meta" true (e'.Registry.meta = e.Registry.meta);
    Alcotest.(check string) "model kind" e.Registry.model_kind e'.Registry.model_kind;
    Alcotest.(check bool) "model floats bitwise" true
      (Array.length e'.Registry.model = Array.length e.Registry.model
      && Array.for_all2 (fun a b -> bits a = bits b) e'.Registry.model e.Registry.model);
    Alcotest.(check bool) "incumbents" true
      (e'.Registry.incumbents = e.Registry.incumbents);
    Alcotest.(check string) "render is a fixpoint" (Registry.to_string e)
      (Registry.to_string e')

let prop_roundtrip_bitwise =
  QCheck2.Test.make ~name:"random entries round-trip bitwise" ~count:100
    QCheck2.Gen.(pair (list float) (pair small_nat small_nat))
    (fun (floats, (seed, samples)) ->
      (* NaN payloads do not survive text (the value does); everything
         else — subnormals, negative zero, infinities — must. *)
      let model =
        Array.of_list (List.map (fun f -> if Float.is_nan f then 0.125 else f) floats)
      in
      let e = sample_entry ~seed ~model space_a in
      let e = { e with Registry.meta = { e.Registry.meta with Registry.samples } } in
      match Registry.of_string (Registry.to_string e) with
      | Error _ -> false
      | Ok e' ->
        e'.Registry.sealed
        && Array.length e'.Registry.model = Array.length model
        && Array.for_all2 (fun a b -> bits a = bits b) e'.Registry.model model
        && Registry.to_string e' = Registry.to_string e)

let test_unsealed_loads () =
  let e = sample_entry space_a in
  let s = Registry.to_string e in
  (* Drop the crc trailer line — the torn-tail shape fsck reports as
     Unsealed. *)
  let no_trailer =
    let lines = String.split_on_char '\n' s in
    let body = List.filteri (fun i l -> ignore i; not (String.length l >= 4 && String.sub l 0 4 = "crc ")) lines in
    String.concat "\n" body
  in
  match Registry.of_string no_trailer with
  | Error err -> Alcotest.fail (Registry.error_to_string err)
  | Ok e' ->
    Alcotest.(check bool) "unsealed" false e'.Registry.sealed;
    Alcotest.(check bool) "content intact" true
      (Array.for_all2 (fun a b -> bits a = bits b) e'.Registry.model e.Registry.model)

(* ------------------------------------------------------------------ *)
(* Fingerprint verification                                            *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_mismatch_is_typed () =
  let fs = Mem.create () in
  let backend = Mem.backend fs in
  let dir = "reg" in
  let entry = sample_entry ~app:"sim-test/app" space_a in
  (match Registry.save ~backend ~dir entry with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Registry.error_to_string e));
  (* The honest path verifies. *)
  (match Registry.load_for ~backend ~dir entry.Registry.fp with
  | Ok e -> Alcotest.(check bool) "honest load verifies" true (entry_equal_strings e entry)
  | Error e -> Alcotest.fail (Registry.error_to_string e));
  (* A colliding filename cannot smuggle a foreign donor in: plant the
     space_a entry at the path that space_b's fingerprint hashes to. *)
  let fp_b = Registry.fingerprint ~app:"sim-test/app" space_b in
  Mem.set_file fs (Registry.entry_path ~dir fp_b) (Registry.to_string entry);
  (match Registry.load_for ~backend ~dir fp_b with
  | Error (Registry.Fingerprint_mismatch _) -> ()
  | Error e -> Alcotest.failf "expected Fingerprint_mismatch, got %s" (Registry.error_to_string e)
  | Ok _ -> Alcotest.fail "a planted foreign entry loaded as a match");
  (* Likewise a different app over the identical space. *)
  let fp_other_app = Registry.fingerprint ~app:"sim-test/other" space_a in
  Mem.set_file fs (Registry.entry_path ~dir fp_other_app) (Registry.to_string entry);
  match Registry.load_for ~backend ~dir fp_other_app with
  | Error (Registry.Fingerprint_mismatch _) -> ()
  | Error e -> Alcotest.failf "expected Fingerprint_mismatch, got %s" (Registry.error_to_string e)
  | Ok _ -> Alcotest.fail "an entry for another app loaded as a match"

(* ------------------------------------------------------------------ *)
(* Save: crash matrix                                                  *)
(* ------------------------------------------------------------------ *)

let registry_crash_step ~keep_unsynced ~keep_renames ~old_entry ~new_entry fuel =
  let fs = Mem.create ~keep_unsynced ~keep_renames () in
  let backend = Mem.backend fs in
  (match Registry.save ~backend ~keep:2 ~dir:"reg" old_entry with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Registry.error_to_string e));
  Mem.set_fuel fs fuel;
  (match Registry.save ~backend ~keep:2 ~dir:"reg" new_entry with
  | Ok _ | Error _ -> ()
  | exception Mem.Crashed -> ());
  Mem.crash fs;
  let primary = Registry.entry_path ~dir:"reg" old_entry.Registry.fp in
  let loaded =
    match Registry.load ~backend primary with
    | Ok e -> Some e
    | Error _ -> (
      (* The primary can be mid-rotation; a reader (like fsck or the
         CLI's lookup) falls back to the rotated generation. *)
      match Registry.load ~backend (Durable.generation_path primary 1) with
      | Ok e -> Some e
      | Error _ -> None)
  in
  match loaded with
  | None ->
    Alcotest.failf "fuel %d (unsynced=%b renames=%b): no generation loads" fuel keep_unsynced
      keep_renames
  | Some e ->
    if not (entry_equal_strings e old_entry || entry_equal_strings e new_entry) then
      Alcotest.failf "fuel %d (unsynced=%b renames=%b): loaded neither old nor new entry" fuel
        keep_unsynced keep_renames

let test_save_crash_matrix () =
  let old_entry = sample_entry ~seed:1 ~model:[| 1.; 2.; 3. |] space_a in
  let new_entry = sample_entry ~seed:2 ~model:[| 4.; 5.; 6.; 7. |] space_a in
  let total =
    let probe = Mem.create () in
    let backend = Mem.backend probe in
    (match Registry.save ~backend ~keep:2 ~dir:"reg" old_entry with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Registry.error_to_string e));
    let before = Mem.cost probe in
    (match Registry.save ~backend ~keep:2 ~dir:"reg" new_entry with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Registry.error_to_string e));
    Mem.cost probe - before
  in
  List.iter
    (fun (keep_unsynced, keep_renames) ->
      for fuel = 0 to total do
        registry_crash_step ~keep_unsynced ~keep_renames ~old_entry ~new_entry fuel
      done)
    fault_plans

(* ------------------------------------------------------------------ *)
(* Corruption detection completeness                                   *)
(* ------------------------------------------------------------------ *)

let test_every_byte_flip_detected () =
  let e = sample_entry space_a in
  let content = Registry.to_string e in
  let undetected = ref [] in
  String.iteri
    (fun i c ->
      let corrupted = Bytes.of_string content in
      Bytes.set corrupted i (Char.chr (Char.code c lxor 0x01));
      let corrupted = Bytes.to_string corrupted in
      match Registry.of_string corrupted with
      | Error _ -> () (* detected: typed corruption *)
      | Ok e' ->
        (* A parse that still succeeds must at least have lost its seal
           (fsck reports Unsealed, never Valid). *)
        if e'.Registry.sealed then undetected := i :: !undetected)
    content;
  Alcotest.(check (list int)) "every single-byte flip detected" [] (List.rev !undetected)

(* ------------------------------------------------------------------ *)
(* Lookup ranking and incumbent projection                             *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir = Filename.temp_file "wayfinder-registry" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_lookup_ranking () =
  with_temp_dir (fun dir ->
      let exact = sample_entry ~app:"sim-test/app" space_a in
      let overlap = sample_entry ~app:"sim-test/app" space_b in
      let other_app = sample_entry ~app:"sim-test/other" space_b in
      List.iter
        (fun e ->
          match Registry.save ~dir e with
          | Ok _ -> ()
          | Error err -> Alcotest.fail (Registry.error_to_string err))
        [ overlap; other_app; exact ];
      match Registry.lookup ~dir ~app:"sim-test/app" space_a with
      | (_, e1, Registry.Exact) :: (_, e2, Registry.Overlap o2) :: (_, e3, Registry.Overlap _) :: []
        ->
        Alcotest.(check bool) "exact first" true (entry_equal_strings e1 exact);
        Alcotest.(check bool) "same-app overlap second" true (entry_equal_strings e2 overlap);
        Alcotest.(check int) "two shared params" 2 o2.shared;
        Alcotest.(check bool) "other app last" true (entry_equal_strings e3 other_app)
      | ranked -> Alcotest.failf "unexpected ranking (%d candidates)" (List.length ranked))

let test_project_incumbents () =
  (* Donor incumbent on space_a: poll on, buf 4096, SMP=y, sched "rt". *)
  let donor =
    { (sample_entry ~app:"sim-test/app" space_a) with
      Registry.incumbents =
        [ [| Param.Vbool true; Param.Vint 4096; Param.Vtristate 2; Param.Vcat 2 |] ]
    }
  in
  (* Target: shared buf.kb with a narrower range (clamp), shared net.poll
     pinned (pin wins over the donor), one new parameter (default). *)
  let target =
    Space.fix
      (Space.create
         [ Param.bool_param "net.poll" true;
           Param.int_param ~log_scale:true "buf.kb" ~lo:4 ~hi:64 ~default:16;
           Param.bool_param "extra.flag" false ])
      [ ("net.poll", Param.Vbool false) ]
  in
  match Registry.project_incumbents donor target with
  | [ projected ] ->
    Alcotest.(check bool) "pin wins over the donor value" true
      (Param.value_equal projected.(0) (Param.Vbool false));
    Alcotest.(check bool) "donor value clamped into the target range" true
      (Param.value_equal projected.(1) (Param.Vint 64));
    Alcotest.(check bool) "new parameter takes its default" true
      (Param.value_equal projected.(2) (Param.Vbool false))
  | l -> Alcotest.failf "expected one projected incumbent, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Drift probe                                                         *)
(* ------------------------------------------------------------------ *)

let series_of rows_spec =
  let rows =
    Array.of_list
      (List.mapi
         (fun i spec ->
           let value, failure =
             match spec with
             | `Ok v -> (Some v, None)
             | `Crash -> (None, Some Failure.Runtime_crash)
           in
           { A.Series.index = i;
             tokens = [||];
             value;
             failure;
             at_seconds = float_of_int i;
             eval_seconds = 1.;
             built = true;
             decide_seconds = 0.;
             belief = None;
             objectives = None })
         rows_spec)
  in
  { A.Series.metric = Metric.make ~name:"throughput" ~unit_name:"req/s" ();
    names = [||];
    stages = [||];
    rows;
    objectives = [||] }

let test_drift_fresh_and_stale () =
  let healthy = series_of (List.init 20 (fun i -> `Ok (100. +. float_of_int (i mod 3)))) in
  let p = A.Drift.probe ~donor_crash_rate:0.1 ~donor_mean:100. healthy in
  Alcotest.(check bool) "matching distribution is fresh" true (p.A.Drift.verdict = A.Drift.Fresh);
  let crashing = series_of (List.init 20 (fun _ -> `Crash)) in
  let p = A.Drift.probe ~donor_crash_rate:0.1 ~donor_mean:100. crashing in
  (match p.A.Drift.verdict with
  | A.Drift.Stale _ -> ()
  | A.Drift.Fresh -> Alcotest.fail "all-crash window must read as drift");
  let shifted = series_of (List.init 20 (fun _ -> `Ok 400.)) in
  let p = A.Drift.probe ~donor_crash_rate:0.1 ~donor_mean:100. shifted in
  (match p.A.Drift.verdict with
  | A.Drift.Stale _ -> ()
  | A.Drift.Fresh -> Alcotest.fail "a 4x mean shift must read as drift");
  (* Too few live rows never vote: absence of evidence keeps the warm
     start. *)
  let tiny = series_of [ `Crash; `Crash; `Crash ] in
  let p = A.Drift.probe ~donor_crash_rate:0.0 ~donor_mean:100. tiny in
  Alcotest.(check bool) "below min_samples is never drift" true
    (p.A.Drift.verdict = A.Drift.Fresh)

let test_drift_windowing () =
  (* An old incident followed by a recovered tail: only the trailing
     window votes, so the series reads fresh. *)
  let recovered =
    series_of
      (List.init 30 (fun _ -> `Crash) @ List.init 25 (fun _ -> `Ok 101.))
  in
  let p = A.Drift.probe ~window:20 ~donor_crash_rate:0.05 ~donor_mean:100. recovered in
  Alcotest.(check bool) "recovered tail is fresh" true (p.A.Drift.verdict = A.Drift.Fresh)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "registry"
    [ ( "roundtrip",
        [ Alcotest.test_case "sealed entry round-trips" `Quick test_roundtrip;
          Alcotest.test_case "body without trailer loads unsealed" `Quick test_unsealed_loads;
          QCheck_alcotest.to_alcotest prop_roundtrip_bitwise ] );
      ( "fingerprint",
        [ Alcotest.test_case "mismatch is typed, filename never trusted" `Quick
            test_fingerprint_mismatch_is_typed ] );
      ( "durability",
        [ Alcotest.test_case "save crash matrix: old or new, never torn" `Quick
            test_save_crash_matrix;
          Alcotest.test_case "every single-byte flip detected" `Quick
            test_every_byte_flip_detected ] );
      ( "transfer",
        [ Alcotest.test_case "lookup ranks exact, then overlap" `Quick test_lookup_ranking;
          Alcotest.test_case "incumbent projection: pins, clamps, defaults" `Quick
            test_project_incumbents ] );
      ( "drift",
        [ Alcotest.test_case "fresh vs stale verdicts" `Quick test_drift_fresh_and_stale;
          Alcotest.test_case "only the trailing window votes" `Quick test_drift_windowing ] )
    ]
