(* The analytics layer: exact-round-trip JSON codec, the ledger-vs-live
   conformance property ("series recomputed from a ledger are
   byte-identical to series computed live"), calibration edge cases and
   the compare table. *)

open Wayfinder_platform
module A = Wayfinder_analytics
module Param = Wayfinder_configspace.Param

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let reparse_number v =
  match A.Json.parse_exn (A.Json.number_to_string v) with
  | A.Json.Num x -> x
  | _ -> Alcotest.fail "number did not parse back to a number"

let prop_json_float_roundtrip =
  QCheck2.Test.make ~name:"number_to_string round-trips any float bit-for-bit" ~count:500
    QCheck2.Gen.float
    (fun v ->
      let back = reparse_number v in
      if Float.is_nan v then Float.is_nan back
      else Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float back))

let test_json_special_values () =
  List.iter
    (fun (v, expect) ->
      Alcotest.(check string) expect expect (A.Json.number_to_string v);
      let back = reparse_number v in
      Alcotest.(check bool) (expect ^ " parses back") true
        (if Float.is_nan v then Float.is_nan back
         else Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float back)))
    [ (nan, "NaN");
      (infinity, "Infinity");
      (neg_infinity, "-Infinity");
      (0.1, "0.10000000000000001");
      (42., "42");
      (-0., "-0") ]

let test_json_string_escapes () =
  let s = A.Json.Str "a\"b\\c\nd\t\x01" in
  let rendered = A.Json.to_string s in
  Alcotest.(check bool) "escapes render" true
    (rendered = {|"a\"b\\c\nd\t\u0001"|});
  (match A.Json.parse_exn rendered with
  | A.Json.Str back -> Alcotest.(check string) "string round-trip" "a\"b\\c\nd\t\x01" back
  | _ -> Alcotest.fail "not a string");
  (* \uXXXX escapes decode to UTF-8. *)
  match A.Json.parse_exn {|"é"|} with
  | A.Json.Str e -> Alcotest.(check string) "latin e-acute" "\xc3\xa9" e
  | _ -> Alcotest.fail "not a string"

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match A.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Ledger-vs-live conformance                                          *)
(* ------------------------------------------------------------------ *)

let float_bits_equal a b =
  (Float.is_nan a && Float.is_nan b)
  || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let float_opt_bits_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> float_bits_equal a b
  | _ -> false

let belief_equal (a : Search_algorithm.belief option) b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    float_opt_bits_equal a.Search_algorithm.crash_probability b.Search_algorithm.crash_probability
    && float_opt_bits_equal a.Search_algorithm.predicted_value b.Search_algorithm.predicted_value
    && float_opt_bits_equal a.Search_algorithm.predicted_uncertainty
         b.Search_algorithm.predicted_uncertainty
    && String.equal a.Search_algorithm.belief_source b.Search_algorithm.belief_source
  | _ -> false

let row_equal (a : A.Series.row) (b : A.Series.row) =
  a.index = b.index
  && a.tokens = b.tokens
  && float_opt_bits_equal a.value b.value
  && a.failure = b.failure
  && float_bits_equal a.at_seconds b.at_seconds
  && float_bits_equal a.eval_seconds b.eval_seconds
  && a.built = b.built
  && float_bits_equal a.decide_seconds b.decide_seconds
  && belief_equal a.belief b.belief

(* Run one search, recording a ledger file and the in-memory beliefs; the
   series rebuilt from the ledger must match the live one row-for-row
   (bit-exact floats) and render identical analyze reports and CSVs. *)
let check_ledger_matches_live ~algo ~workers ~seed ~fault_rate =
  let path = Filename.temp_file "wayfinder" ".ledger" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let space = Conformance.space () in
      let beliefs = Hashtbl.create 32 in
      let outcome =
        A.Ledger.with_writer ~seed ~algo ~space ~metric:Metric.throughput path
          (fun w ->
            Conformance.run ~engine:(`Workers workers) ~seed ~fault_rate
              ~budget:(Driver.Iterations 14)
              ~on_record:(fun entry belief ->
                Hashtbl.replace beliefs entry.History.index belief;
                A.Ledger.record w entry belief)
              algo)
      in
      let live =
        A.Series.of_history
          ~beliefs:(fun i -> Option.join (Hashtbl.find_opt beliefs i))
          ~space outcome.Conformance.result.Driver.history
      in
      let ledger =
        match A.Ledger.load path with
        | Ok l -> l
        | Error e -> Alcotest.fail (A.Ledger.error_to_string e)
      in
      let from_file = A.Series.of_ledger ledger in
      if ledger.A.Ledger.meta.A.Ledger.algo <> algo then
        Alcotest.fail "meta algo mismatch";
      if ledger.A.Ledger.meta.A.Ledger.seed <> Some seed then
        Alcotest.fail "meta seed mismatch";
      if Array.length live.A.Series.rows <> Array.length from_file.A.Series.rows then
        Alcotest.fail "row count mismatch";
      Array.iteri
        (fun i r ->
          if not (row_equal r from_file.A.Series.rows.(i)) then
            Alcotest.fail (Printf.sprintf "row %d differs (%s, workers %d)" i algo workers))
        live.A.Series.rows;
      (* The whole derived layer byte-matches, not just the rows. *)
      let render s =
        ( A.Json.to_string (A.Analyze.to_json (A.Analyze.of_series ~label:"t" ~algo s)),
          A.Analyze.series_csv s )
      in
      render live = render from_file)

let prop_ledger_equals_live =
  QCheck2.Test.make
    ~name:"ledger-loaded series byte-match live series (random/grid/deeptune x workers 1,4)"
    ~count:4
    QCheck2.Gen.(pair (int_range 0 300) (float_range 0. 0.2))
    (fun (seed, fault_rate) ->
      List.for_all
        (fun algo ->
          List.for_all
            (fun workers -> check_ledger_matches_live ~algo ~workers ~seed ~fault_rate)
            [ 1; 4 ])
        [ "random"; "grid"; "deeptune" ])

(* ~on_record must not perturb the search: the belief hook is pure and
   fires outside the RNG's draw sequence. *)
let prop_recording_is_invisible =
  QCheck2.Test.make ~name:"a recorded run is byte-identical to an unrecorded one" ~count:6
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      List.for_all
        (fun algo ->
          let plain = Conformance.run ~engine:(`Workers 2) ~seed algo in
          let recorded =
            Conformance.run ~engine:(`Workers 2) ~seed ~on_record:(fun _ _ -> ()) algo
          in
          compare
            (History.entries plain.Conformance.result.Driver.history)
            (History.entries recorded.Conformance.result.Driver.history)
          = 0)
        [ "random"; "deeptune"; "bayes" ])

let test_ledger_rejects_unknown_schema () =
  (match A.Ledger.of_lines [ {|{"wayfinder_schema":999,"kind":"ledger"}|} ] with
  | Error (A.Ledger.Unsupported_schema 999) -> ()
  | Error e -> Alcotest.fail (A.Ledger.error_to_string e)
  | Ok _ -> Alcotest.fail "schema 999 accepted");
  (match A.Ledger.of_lines [ "not json at all" ] with
  | Error A.Ledger.Missing_header -> ()
  | Error e -> Alcotest.fail (A.Ledger.error_to_string e)
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match A.Ledger.of_lines [] with
  | Error A.Ledger.Missing_header -> ()
  | _ -> Alcotest.fail "empty file accepted");
  (* A trace file is versioned but is not a ledger. *)
  match A.Ledger.of_lines [ {|{"wayfinder_schema":1,"kind":"trace"}|} ] with
  | Error (A.Ledger.Malformed _) -> ()
  | Error e -> Alcotest.fail (A.Ledger.error_to_string e)
  | Ok _ -> Alcotest.fail "trace header accepted as ledger"

(* ------------------------------------------------------------------ *)
(* Synthetic series helpers                                            *)
(* ------------------------------------------------------------------ *)

let belief ?crash ?value ?sigma () =
  { Search_algorithm.crash_probability = crash;
    predicted_value = value;
    predicted_uncertainty = sigma;
    belief_source = "test" }

let row ?value ?failure ?belief ~at index =
  { A.Series.index;
    tokens = [||];
    value;
    failure;
    at_seconds = at;
    eval_seconds = 1.;
    built = true;
    decide_seconds = 0.;
    belief;
    objectives = None }

let series ?(metric = Metric.throughput) rows =
  { A.Series.metric; names = [||]; stages = [||]; rows = Array.of_list rows; objectives = [||] }

(* ------------------------------------------------------------------ *)
(* Calibration                                                         *)
(* ------------------------------------------------------------------ *)

let test_calibration_empty_and_single () =
  let empty = A.Calibration.of_series (series []) in
  Alcotest.(check (option (float 1e-12))) "no brier" None empty.A.Calibration.brier;
  Alcotest.(check (option (float 1e-12))) "no mae" None empty.A.Calibration.mae;
  Alcotest.(check (option (float 1e-12))) "no spearman" None
    empty.A.Calibration.uncertainty_spearman;
  Alcotest.(check int) "no bins" 0 (Array.length empty.A.Calibration.reliability);
  (* One labelled pair: Brier defined, Spearman still undefined. *)
  let one =
    A.Calibration.of_series
      (series [ row ~value:10. ~belief:(belief ~crash:0.25 ~value:10. ~sigma:1. ()) ~at:1. 0 ])
  in
  Alcotest.(check int) "one crash pair" 1 one.A.Calibration.crash_pairs;
  Alcotest.(check (option (float 1e-12))) "brier of one" (Some 0.0625) one.A.Calibration.brier;
  Alcotest.(check (option (float 1e-12))) "mae of exact prediction" (Some 0.)
    one.A.Calibration.mae;
  Alcotest.(check (option (float 1e-12))) "spearman needs two" None
    one.A.Calibration.uncertainty_spearman

let test_calibration_all_crash_and_no_crash () =
  let all_crash =
    series
      (List.init 5 (fun i ->
           row ~failure:Failure.Runtime_crash ~belief:(belief ~crash:1. ()) ~at:(float_of_int i) i))
  in
  let c = A.Calibration.of_series all_crash in
  Alcotest.(check (option (float 1e-12))) "perfect pessimist" (Some 0.) c.A.Calibration.brier;
  Alcotest.(check int) "no value pairs on failures" 0 c.A.Calibration.value_pairs;
  let no_crash =
    series
      (List.init 5 (fun i ->
           row ~value:1. ~belief:(belief ~crash:1. ()) ~at:(float_of_int i) i))
  in
  let c = A.Calibration.of_series no_crash in
  Alcotest.(check (option (float 1e-12))) "maximally wrong" (Some 1.) c.A.Calibration.brier

let test_calibration_label_policy () =
  (* Never-evaluated and testbed-caused outcomes carry no crash label. *)
  let s =
    series
      [ row ~failure:Failure.Invalid_configuration ~belief:(belief ~crash:0.5 ()) ~at:0. 0;
        row ~failure:Failure.Quarantined ~belief:(belief ~crash:0.5 ()) ~at:1. 1;
        row ~failure:Failure.Spurious_failure ~belief:(belief ~crash:0.5 ()) ~at:2. 2;
        row ~failure:Failure.Run_timeout ~belief:(belief ~crash:0.5 ()) ~at:3. 3;
        row ~failure:Failure.Build_failure ~belief:(belief ~crash:0.9 ()) ~at:4. 4;
        row ~value:5. ~belief:(belief ~crash:0.1 ()) ~at:5. 5;
        (* No belief: nothing to score. *)
        row ~value:6. ~at:6. 6 ]
  in
  Alcotest.(check (list (pair (float 1e-12) bool)))
    "only the deterministic failure and the success are labelled"
    [ (0.9, true); (0.1, false) ]
    (A.Calibration.crash_pairs s)

let test_reliability_bins_clamp () =
  let pairs = [ (-0.5, false); (0.05, false); (0.95, true); (1.5, true) ] in
  let bins = A.Calibration.reliability ~bins:10 pairs in
  Alcotest.(check int) "ten bins" 10 (Array.length bins);
  Alcotest.(check int) "out-of-range low clamps into bin 0" 2 bins.(0).A.Calibration.count;
  Alcotest.(check int) "out-of-range high clamps into last bin" 2 bins.(9).A.Calibration.count;
  Alcotest.(check (float 1e-12)) "observed rate in last bin" 1. bins.(9).A.Calibration.observed_rate;
  Alcotest.(check bool) "empty bin renders NaN" true
    (Float.is_nan bins.(5).A.Calibration.mean_predicted);
  Alcotest.(check bool) "bins=0 rejected" true
    (try
       ignore (A.Calibration.reliability ~bins:0 pairs);
       false
     with Invalid_argument _ -> true)

let test_spearman_monotone () =
  let up = [ (1., 10.); (2., 20.); (3., 30.) ] in
  let down = [ (1., 30.); (2., 20.); (3., 10.) ] in
  Alcotest.(check (option (float 1e-9))) "monotone" (Some 1.)
    (A.Calibration.uncertainty_spearman up);
  Alcotest.(check (option (float 1e-9))) "anti-monotone" (Some (-1.))
    (A.Calibration.uncertainty_spearman down);
  Alcotest.(check (option (float 1e-9))) "single pair undefined" None
    (A.Calibration.uncertainty_spearman [ (1., 1.) ])

(* ------------------------------------------------------------------ *)
(* Series & Analyze on synthetic data                                  *)
(* ------------------------------------------------------------------ *)

let test_series_convergence () =
  let s =
    series
      [ row ~failure:Failure.Boot_failure ~at:10. 0;
        row ~value:5. ~at:20. 1;
        row ~value:9.9 ~at:30. 2;
        row ~value:10. ~at:40. 3;
        row ~value:7. ~at:50. 4 ]
  in
  Alcotest.(check (option (pair int (float 1e-12)))) "best" (Some (3, 10.)) (A.Series.best s);
  Alcotest.(check bool) "best-so-far starts NaN" true
    (Float.is_nan (A.Series.best_so_far s).(0));
  Alcotest.(check (float 1e-12)) "best-so-far tracks" 9.9 (A.Series.best_so_far s).(2);
  (* 9.9 is within 1% of 10, so epsilon=0.01 is reached at sample 3. *)
  Alcotest.(check (option int)) "samples to within 1%" (Some 3)
    (A.Series.samples_to_within s ~epsilon:0.01);
  Alcotest.(check (option (float 1e-12))) "virtual time to within 1%" (Some 30.)
    (A.Series.virtual_seconds_to_within s ~epsilon:0.01);
  Alcotest.(check (option int)) "samples to exact best" (Some 4) (A.Series.samples_to_best s);
  Alcotest.(check (float 1e-12)) "crash rate counts deterministic only" 0.2
    (A.Series.crash_rate s);
  let report = A.Analyze.of_series ~label:"synthetic" s in
  Alcotest.(check (float 1e-12)) "final regret is zero" 0. report.A.Analyze.final_regret;
  let csv = A.Analyze.series_csv s in
  (match String.split_on_char '\n' csv with
  | header :: _ ->
    Alcotest.(check string) "csv header"
      "iteration,value,best_so_far,simple_regret,crash_rate_w25,transient_rate_w25,at_s" header
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check int) "one csv line per row (+header, trailing)" 7
    (List.length (String.split_on_char '\n' csv))

let test_series_csv_roundtrip () =
  (* A History.to_csv export parses back into the same outcome series. *)
  let h = History.create Metric.throughput in
  let entry ?value ?failure index at =
    { History.index;
      config = [| Param.Vint 1 |];
      value;
      failure;
      at_seconds = at;
      eval_seconds = 1.;
      built = true;
      decide_seconds = 0.25; objectives = None }
  in
  History.add h (entry ~value:10. 0 10.);
  History.add h (entry ~failure:(Failure.Other "panic, with commas \"quoted\"") 1 20.);
  History.add h (entry ~value:12.5 2 30.);
  match A.Series.of_csv ~metric:Metric.throughput (History.to_csv h) with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "rows" 3 (A.Series.length s);
    Alcotest.(check (option (pair int (float 1e-12)))) "best" (Some (2, 12.5))
      (A.Series.best s);
    Alcotest.(check bool) "failure row survives quoting" true
      (s.A.Series.rows.(1).A.Series.failure <> None);
    Alcotest.(check (float 1e-12)) "at_s parsed" 20. s.A.Series.rows.(1).A.Series.at_seconds

(* ------------------------------------------------------------------ *)
(* Compare                                                             *)
(* ------------------------------------------------------------------ *)

let monotone_series ~n ~step =
  series (List.init n (fun i -> row ~value:(step *. float_of_int (i + 1)) ~at:(float_of_int i) i))

let test_compare_winner_ordering () =
  let fast = monotone_series ~n:30 ~step:10. in
  let slow = monotone_series ~n:30 ~step:1. in
  match A.Compare.make [ ("slow", slow); ("fast", fast) ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check (array int)) "budgets clip to shortest run" [| 5; 10; 25; 30 |]
      t.A.Compare.budgets;
    Array.iter
      (fun w -> Alcotest.(check (option int)) "fast wins every budget" (Some 1) w)
      t.A.Compare.winners;
    Alcotest.(check (float 1e-12)) "best-so-far at budget 5" 50. t.A.Compare.best_at.(1).(0);
    (match t.A.Compare.finals.(1) with
    | Some (samples, best) ->
      Alcotest.(check int) "samples to best" 30 samples;
      Alcotest.(check (float 1e-12)) "final best" 300. best
    | None -> Alcotest.fail "fast run has no final")

let test_compare_rejects_mismatched_metrics () =
  let a = monotone_series ~n:10 ~step:1. in
  let latency = Metric.make ~maximize:false ~name:"latency" ~unit_name:"ms" () in
  let b = { (monotone_series ~n:10 ~step:1.) with A.Series.metric = latency } in
  (match A.Compare.make [ ("a", a); ("b", b) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched metrics accepted");
  match A.Compare.make [ ("empty", series []) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty run accepted"

let test_compare_no_success_column () =
  let crashes =
    series (List.init 10 (fun i -> row ~failure:Failure.Runtime_crash ~at:(float_of_int i) i))
  in
  let ok = monotone_series ~n:10 ~step:1. in
  match A.Compare.make ~budgets:[ 5; 10 ] [ ("crashes", crashes); ("ok", ok) ] with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check bool) "no-success run shows NaN" true
      (Float.is_nan t.A.Compare.best_at.(0).(0));
    Alcotest.(check (option int)) "other run still wins" (Some 1) t.A.Compare.winners.(0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analytics"
    [ ( "json",
        [ QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
          Alcotest.test_case "special values" `Quick test_json_special_values;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors ] );
      ( "ledger",
        [ QCheck_alcotest.to_alcotest prop_ledger_equals_live;
          QCheck_alcotest.to_alcotest prop_recording_is_invisible;
          Alcotest.test_case "schema rejection" `Quick test_ledger_rejects_unknown_schema ] );
      ( "calibration",
        [ Alcotest.test_case "empty and single" `Quick test_calibration_empty_and_single;
          Alcotest.test_case "all-crash / no-crash" `Quick
            test_calibration_all_crash_and_no_crash;
          Alcotest.test_case "label policy" `Quick test_calibration_label_policy;
          Alcotest.test_case "reliability clamping" `Quick test_reliability_bins_clamp;
          Alcotest.test_case "spearman" `Quick test_spearman_monotone ] );
      ( "series",
        [ Alcotest.test_case "convergence diagnostics" `Quick test_series_convergence;
          Alcotest.test_case "csv round-trip" `Quick test_series_csv_roundtrip ] );
      ( "compare",
        [ Alcotest.test_case "winner ordering" `Quick test_compare_winner_ordering;
          Alcotest.test_case "metric mismatch" `Quick test_compare_rejects_mismatched_metrics;
          Alcotest.test_case "no-success column" `Quick test_compare_no_success_column ] )
    ]
