open Wayfinder_nn
module Mat = Wayfinder_tensor.Mat
module Vec = Wayfinder_tensor.Vec
module Rng = Wayfinder_tensor.Rng

let fd_epsilon = 1e-5
let fd_tolerance = 1e-4

(* Central finite difference of [loss_of ()] with respect to one mutable
   cell, used to validate every analytic gradient below. *)
let finite_difference cell loss_of =
  let saved = !cell in
  cell := saved +. fd_epsilon;
  let up = loss_of () in
  cell := saved -. fd_epsilon;
  let down = loss_of () in
  cell := saved;
  (up -. down) /. (2. *. fd_epsilon)

let check_close name expected actual =
  let scale = Stdlib.max 1. (abs_float expected) in
  if abs_float (expected -. actual) /. scale > fd_tolerance then
    Alcotest.failf "%s: finite diff %.8f vs analytic %.8f" name expected actual

(* A cell view into a matrix entry. *)
let mat_cell m idx =
  let get () = m.Mat.data.{idx} in
  let set v = m.Mat.data.{idx} <- v in
  (get, set)

let fd_mat name m grad loss_of =
  Array.iteri
    (fun idx _ ->
      let get, set = mat_cell m idx in
      let cell = ref (get ()) in
      let wrapped () =
        set !cell;
        let l = loss_of () in
        set (get ());
        l
      in
      let fd =
        let saved = !cell in
        cell := saved +. fd_epsilon;
        set !cell;
        let up = loss_of () in
        cell := saved -. fd_epsilon;
        set !cell;
        let down = loss_of () in
        cell := saved;
        set saved;
        ignore wrapped;
        (up -. down) /. (2. *. fd_epsilon)
      in
      check_close (Printf.sprintf "%s[%d]" name idx) fd grad.Mat.data.{idx})
    (Mat.to_array m)

(* ------------------------------------------------------------------ *)
(* Dense layer                                                         *)
(* ------------------------------------------------------------------ *)

let quadratic_loss y =
  (* L = Σ y_ij² ; dL/dy = 2y *)
  Array.fold_left (fun acc v -> acc +. (v *. v)) 0. (Mat.to_array y)

let dquadratic y = Mat.scale 2. y

let test_dense_shapes () =
  let rng = Rng.create 1 in
  let d = Layer.Dense.create rng ~in_dim:3 ~out_dim:5 in
  let x = Mat.init 4 3 (fun i j -> float_of_int ((i * 3) + j) /. 10.) in
  let y = Layer.Dense.forward d x in
  Alcotest.(check int) "rows" 4 y.Mat.rows;
  Alcotest.(check int) "cols" 5 y.Mat.cols;
  let dx = Layer.Dense.backward d (Mat.zeros 4 5) in
  Alcotest.(check int) "dx cols" 3 dx.Mat.cols

let test_dense_gradients () =
  let rng = Rng.create 2 in
  let d = Layer.Dense.create rng ~in_dim:3 ~out_dim:2 in
  let x = Mat.init 5 3 (fun i j -> Float.of_int (i + j) /. 7.) in
  let loss_of () = quadratic_loss (Layer.Dense.forward d x) in
  (* Analytic gradients. *)
  let y = Layer.Dense.forward d x in
  List.iter Layer.zero_grad (Layer.Dense.params d);
  let dx = Layer.Dense.backward d (dquadratic y) in
  (match Layer.Dense.params d with
   | [ w; b ] ->
     fd_mat "dense w" w.Layer.value w.Layer.grad loss_of;
     fd_mat "dense b" b.Layer.value b.Layer.grad loss_of
   | _ -> Alcotest.fail "expected [w; b]");
  (* Check dX with finite differences on the input. *)
  Array.iteri
    (fun idx _ ->
      let fd = finite_difference (ref x.Mat.data.{idx}) (fun () -> loss_of ()) in
      ignore fd)
    [||];
  Array.iteri
    (fun idx _ ->
      let saved = x.Mat.data.{idx} in
      x.Mat.data.{idx} <- saved +. fd_epsilon;
      let up = loss_of () in
      x.Mat.data.{idx} <- saved -. fd_epsilon;
      let down = loss_of () in
      x.Mat.data.{idx} <- saved;
      check_close (Printf.sprintf "dense dx[%d]" idx) ((up -. down) /. (2. *. fd_epsilon))
        dx.Mat.data.{idx})
    (Mat.to_array x)

let test_relu () =
  let r = Layer.Relu.create () in
  let x = Mat.of_rows [| [| -1.; 0.; 2. |] |] in
  let y = Layer.Relu.forward r x in
  Alcotest.(check (array (float 1e-12))) "forward" [| 0.; 0.; 2. |] (Mat.to_array y);
  let dx = Layer.Relu.backward r (Mat.of_rows [| [| 5.; 5.; 5. |] |]) in
  Alcotest.(check (array (float 1e-12))) "backward gates" [| 0.; 0.; 5. |] (Mat.to_array dx)

let test_dropout_train_and_eval () =
  let rng = Rng.create 3 in
  let d = Layer.Dropout.create ~rate:0.5 in
  let x = Mat.create 1 1000 1. in
  let y = Layer.Dropout.forward d rng x in
  let kept = Array.fold_left (fun acc v -> if v > 0. then acc + 1 else acc) 0 (Mat.to_array y) in
  Alcotest.(check bool) "about half kept" true (kept > 400 && kept < 600);
  (* Inverted dropout preserves expectation. *)
  let mean = Array.fold_left ( +. ) 0. (Mat.to_array y) /. 1000. in
  Alcotest.(check bool) "mean near 1" true (abs_float (mean -. 1.) < 0.15);
  let y_eval = Layer.Dropout.forward d ~train:false rng x in
  Alcotest.(check (array (float 1e-12))) "identity at eval" (Mat.to_array x) (Mat.to_array y_eval)

let test_dropout_backward_masks () =
  let rng = Rng.create 4 in
  let d = Layer.Dropout.create ~rate:0.5 in
  let x = Mat.create 1 100 1. in
  let y = Layer.Dropout.forward d rng x in
  let dy = Mat.create 1 100 1. in
  let dx = Layer.Dropout.backward d dy in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-12)) "mask consistent" y.Mat.data.{i} v)
    (Mat.to_array dx)

(* ------------------------------------------------------------------ *)
(* RBF layer                                                           *)
(* ------------------------------------------------------------------ *)

let test_rbf_activation_range () =
  let rng = Rng.create 5 in
  let r = Layer.Rbf.create rng ~in_dim:4 ~centroids:6 ~gamma:0.5 in
  let z = Mat.init 3 4 (fun i j -> Rng.normal rng () +. float_of_int (i * j) /. 10.) in
  let phi = Layer.Rbf.forward r z in
  Array.iter
    (fun v -> Alcotest.(check bool) "phi in (0,1]" true (v > 0. && v <= 1.))
    (Mat.to_array phi)

let test_rbf_peak_at_centroid () =
  let rng = Rng.create 6 in
  let r = Layer.Rbf.create rng ~in_dim:3 ~centroids:2 ~gamma:0.3 in
  let c = Layer.Rbf.centroid_matrix r in
  let z = Mat.of_rows [| Mat.row c 0 |] in
  let phi = Layer.Rbf.forward r z in
  Alcotest.(check (float 1e-9)) "activation 1 at own centroid" 1. (Mat.get phi 0 0)

let test_rbf_gradients () =
  let rng = Rng.create 7 in
  let r = Layer.Rbf.create rng ~in_dim:3 ~centroids:4 ~gamma:0.7 in
  let z = Mat.init 5 3 (fun i j -> Rng.normal rng () /. 2. +. (float_of_int (i + j) /. 10.)) in
  let loss_of () = quadratic_loss (Layer.Rbf.forward r z) in
  let phi = Layer.Rbf.forward r z in
  List.iter Layer.zero_grad (Layer.Rbf.params r);
  let dz = Layer.Rbf.backward r (dquadratic phi) in
  (match Layer.Rbf.params r with
   | [ c ] -> fd_mat "rbf centroids" c.Layer.value c.Layer.grad loss_of
   | _ -> Alcotest.fail "expected [c]");
  Array.iteri
    (fun idx _ ->
      let saved = z.Mat.data.{idx} in
      z.Mat.data.{idx} <- saved +. fd_epsilon;
      let up = loss_of () in
      z.Mat.data.{idx} <- saved -. fd_epsilon;
      let down = loss_of () in
      z.Mat.data.{idx} <- saved;
      check_close (Printf.sprintf "rbf dz[%d]" idx) ((up -. down) /. (2. *. fd_epsilon))
        dz.Mat.data.{idx})
    (Mat.to_array z)

(* ------------------------------------------------------------------ *)
(* Losses                                                              *)
(* ------------------------------------------------------------------ *)

let test_bce_known_values () =
  let loss, grad = Loss.bce_with_logits ~logits:[| 0. |] ~targets:[| 1. |] () in
  Alcotest.(check (float 1e-9)) "loss = ln 2" (log 2.) loss;
  Alcotest.(check (float 1e-9)) "grad = -0.5" (-0.5) grad.(0)

let test_bce_gradient () =
  let logits = [| 0.3; -1.2; 2.5; 0. |] and targets = [| 1.; 0.; 1.; 0. |] in
  let _, grad = Loss.bce_with_logits ~logits ~targets () in
  Array.iteri
    (fun i _ ->
      let saved = logits.(i) in
      logits.(i) <- saved +. fd_epsilon;
      let up, _ = Loss.bce_with_logits ~logits ~targets () in
      logits.(i) <- saved -. fd_epsilon;
      let down, _ = Loss.bce_with_logits ~logits ~targets () in
      logits.(i) <- saved;
      check_close (Printf.sprintf "bce[%d]" i) ((up -. down) /. (2. *. fd_epsilon)) grad.(i))
    logits

let test_bce_extreme_logits_stable () =
  let loss, grad = Loss.bce_with_logits ~logits:[| 500.; -500. |] ~targets:[| 1.; 0. |] () in
  Alcotest.(check bool) "finite loss" true (Float.is_finite loss);
  Array.iter (fun g -> Alcotest.(check bool) "finite grad" true (Float.is_finite g)) grad

let test_softmax_cce_gradient () =
  let logits = Mat.of_rows [| [| 0.5; -0.2; 1.1 |]; [| 2.0; 0.1; -1.0 |] |] in
  let classes = [| 2; 0 |] in
  let _, grad = Loss.softmax_cce ~logits ~classes in
  Array.iteri
    (fun idx _ ->
      let saved = logits.Mat.data.{idx} in
      logits.Mat.data.{idx} <- saved +. fd_epsilon;
      let up, _ = Loss.softmax_cce ~logits ~classes in
      logits.Mat.data.{idx} <- saved -. fd_epsilon;
      let down, _ = Loss.softmax_cce ~logits ~classes in
      logits.Mat.data.{idx} <- saved;
      check_close (Printf.sprintf "cce[%d]" idx) ((up -. down) /. (2. *. fd_epsilon))
        grad.Mat.data.{idx})
    (Mat.to_array logits)

let test_heteroscedastic_gradient () =
  let mu = [| 0.5; -0.3; 1.0 |] and log_var = [| 0.1; -0.5; 0.3 |] in
  let targets = [| 1.0; 0.0; 0.5 |] and mask = [| true; true; false |] in
  let _, (dmu, ds) = Loss.heteroscedastic ~mu ~log_var ~targets ~mask in
  Alcotest.(check (float 1e-12)) "masked dmu zero" 0. dmu.(2);
  Alcotest.(check (float 1e-12)) "masked ds zero" 0. ds.(2);
  Array.iteri
    (fun i _ ->
      let saved = mu.(i) in
      mu.(i) <- saved +. fd_epsilon;
      let up, _ = Loss.heteroscedastic ~mu ~log_var ~targets ~mask in
      mu.(i) <- saved -. fd_epsilon;
      let down, _ = Loss.heteroscedastic ~mu ~log_var ~targets ~mask in
      mu.(i) <- saved;
      check_close (Printf.sprintf "dmu[%d]" i) ((up -. down) /. (2. *. fd_epsilon)) dmu.(i))
    mu;
  Array.iteri
    (fun i _ ->
      let saved = log_var.(i) in
      log_var.(i) <- saved +. fd_epsilon;
      let up, _ = Loss.heteroscedastic ~mu ~log_var ~targets ~mask in
      log_var.(i) <- saved -. fd_epsilon;
      let down, _ = Loss.heteroscedastic ~mu ~log_var ~targets ~mask in
      log_var.(i) <- saved;
      check_close (Printf.sprintf "ds[%d]" i) ((up -. down) /. (2. *. fd_epsilon)) ds.(i))
    log_var

let test_heteroscedastic_uncertainty_tradeoff () =
  (* For a fixed error, the loss at the optimal log-variance should be
     lower than at log-variance 0 when the error is large. *)
  let loss_at s =
    let l, _ =
      Loss.heteroscedastic ~mu:[| 0. |] ~log_var:[| s |] ~targets:[| 3. |] ~mask:[| true |]
    in
    l
  in
  let optimal = log 9. in
  Alcotest.(check bool) "optimal log-var beats zero" true (loss_at optimal < loss_at 0.)

let test_chamfer_zero_when_matched () =
  let points = Mat.of_rows [| [| 1.; 2. |]; [| -1.; 0. |] |] in
  let centroids = Mat.copy points in
  let loss, _ = Loss.chamfer ~points ~centroids in
  Alcotest.(check (float 1e-12)) "zero loss" 0. loss

let test_chamfer_gradient () =
  let points = Mat.of_rows [| [| 1.0; 2.0 |]; [| -1.0; 0.5 |]; [| 0.3; -0.7 |] |] in
  let centroids = Mat.of_rows [| [| 0.8; 1.5 |]; [| -0.5; -0.5 |] |] in
  let _, grad = Loss.chamfer ~points ~centroids in
  Array.iteri
    (fun idx _ ->
      let saved = centroids.Mat.data.{idx} in
      centroids.Mat.data.{idx} <- saved +. fd_epsilon;
      let up, _ = Loss.chamfer ~points ~centroids in
      centroids.Mat.data.{idx} <- saved -. fd_epsilon;
      let down, _ = Loss.chamfer ~points ~centroids in
      centroids.Mat.data.{idx} <- saved;
      check_close (Printf.sprintf "chamfer[%d]" idx) ((up -. down) /. (2. *. fd_epsilon))
        grad.Mat.data.{idx})
    (Mat.to_array centroids)

let test_chamfer_pulls_centroids_to_data () =
  let rng = Rng.create 8 in
  (* Data clustered at (5, 5); a centroid starting at the origin should be
     pulled towards the cluster by gradient descent on the Chamfer loss. *)
  let points = Mat.init 20 2 (fun _ _ -> 5. +. Rng.normal rng ~sigma:0.1 ()) in
  let centroids = Mat.of_rows [| [| 0.; 0. |] |] in
  for _ = 1 to 200 do
    let _, grad = Loss.chamfer ~points ~centroids in
    Array.iteri
      (fun i g -> centroids.Mat.data.{i} <- centroids.Mat.data.{i} -. (0.05 *. g))
      (Mat.to_array grad)
  done;
  Alcotest.(check bool) "centroid reached cluster" true
    (abs_float (Mat.get centroids 0 0 -. 5.) < 0.5 && abs_float (Mat.get centroids 0 1 -. 5.) < 0.5)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let test_network_shapes_and_spec_errors () =
  let rng = Rng.create 9 in
  let net = Network.create rng ~in_dim:4 [ `Dense 8; `Relu; `Dense 3 ] in
  Alcotest.(check int) "in" 4 (Network.in_dim net);
  Alcotest.(check int) "out" 3 (Network.out_dim net);
  Alcotest.(check bool) "empty spec rejected" true
    (try
       ignore (Network.create rng ~in_dim:2 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "relu first rejected" true
    (try
       ignore (Network.create rng ~in_dim:2 [ `Relu ]);
       false
     with Invalid_argument _ -> true)

let test_network_gradients () =
  let rng = Rng.create 10 in
  let net = Network.create rng ~in_dim:3 [ `Dense 5; `Relu; `Dense 2 ] in
  let x = Mat.init 4 3 (fun i j -> (float_of_int ((i * 3) + j) /. 6.) -. 0.5) in
  let loss_of () = quadratic_loss (Network.forward net ~train:false rng x) in
  let y = Network.forward net ~train:false rng x in
  List.iter Layer.zero_grad (Network.params net);
  ignore (Network.backward net (dquadratic y));
  List.iteri
    (fun li p -> fd_mat (Printf.sprintf "net param %d" li) p.Layer.value p.Layer.grad loss_of)
    (Network.params net)

let test_network_learns_linear_function () =
  let rng = Rng.create 11 in
  let net = Network.create rng ~in_dim:1 [ `Dense 16; `Relu; `Dense 1 ] in
  let opt = Optimizer.adam ~lr:0.01 (Network.params net) in
  let xs = Array.init 32 (fun i -> (float_of_int i /. 16.) -. 1.) in
  let targets = Array.map (fun x -> (2. *. x) +. 1.) xs in
  let batch = Mat.of_rows (Array.map (fun x -> [| x |]) xs) in
  for _ = 1 to 500 do
    let y = Network.forward net rng batch in
    let dy = Mat.zeros 32 1 in
    for i = 0 to 31 do
      Mat.set dy i 0 (2. *. (Mat.get y i 0 -. targets.(i)) /. 32.)
    done;
    ignore (Network.backward net dy);
    Optimizer.step opt
  done;
  let y = Network.forward net ~train:false rng batch in
  let mse = ref 0. in
  for i = 0 to 31 do
    let e = Mat.get y i 0 -. targets.(i) in
    mse := !mse +. (e *. e /. 32.)
  done;
  Alcotest.(check bool) "fits y=2x+1" true (!mse < 0.01)

let test_network_hidden_activations () =
  let rng = Rng.create 12 in
  let net = Network.create rng ~in_dim:3 [ `Dense 7; `Relu; `Dense 2 ] in
  let x = Mat.init 2 3 (fun _ _ -> 0.5) in
  ignore (Network.forward net ~train:false rng x);
  match Network.hidden_after_forward net with
  | [ h1; h2 ] ->
    Alcotest.(check int) "first dense width" 7 h1.Mat.cols;
    Alcotest.(check int) "second dense width" 2 h2.Mat.cols
  | _ -> Alcotest.fail "expected two dense activations"

let test_network_save_load_roundtrip () =
  let rng = Rng.create 13 in
  let a = Network.create rng ~in_dim:3 [ `Dense 5; `Relu; `Dense 2 ] in
  let b = Network.create rng ~in_dim:3 [ `Dense 5; `Relu; `Dense 2 ] in
  Network.load_weights b (Network.save_weights a);
  let x = Mat.init 3 3 (fun i j -> float_of_int (i - j) /. 3.) in
  let ya = Network.forward a ~train:false rng x and yb = Network.forward b ~train:false rng x in
  Alcotest.(check (array (float 1e-12))) "identical outputs" (Mat.to_array ya) (Mat.to_array yb);
  Alcotest.(check bool) "size mismatch rejected" true
    (try
       Network.load_weights b [| 1.; 2. |];
       false
     with Invalid_argument _ -> true)

let test_network_copy_independent () =
  let rng = Rng.create 14 in
  let a = Network.create rng ~in_dim:2 [ `Dense 3; `Relu; `Dense 1 ] in
  let b = Network.copy a in
  let x = Mat.of_rows [| [| 0.4; -0.2 |] |] in
  let before = (Network.forward b ~train:false rng x).Mat.data.{0} in
  (* Train [a]; [b] must not move. *)
  let opt = Optimizer.sgd ~lr:0.1 (Network.params a) in
  for _ = 1 to 10 do
    let y = Network.forward a rng x in
    ignore (Network.backward a (dquadratic y));
    Optimizer.step opt
  done;
  let after = (Network.forward b ~train:false rng x).Mat.data.{0} in
  Alcotest.(check (float 1e-12)) "copy unaffected" before after

(* ------------------------------------------------------------------ *)
(* Optimizers                                                          *)
(* ------------------------------------------------------------------ *)

let rosenbrock_like_quadratic optimizer_of =
  (* Minimise f(w) = Σ (w_i - i)² over a 1×4 tensor. *)
  let p = Layer.tensor_zeros 1 4 in
  let opt = optimizer_of [ p ] in
  for _ = 1 to 2000 do
    Array.iteri
      (fun i v -> p.Layer.grad.Mat.data.{i} <- 2. *. (v -. float_of_int i))
      (Mat.to_array p.Layer.value);
    Optimizer.step opt
  done;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "w[%d] converged" i)
        true
        (abs_float (v -. float_of_int i) < 0.01))
    (Mat.to_array p.Layer.value)

let test_sgd_converges () = rosenbrock_like_quadratic (fun ps -> Optimizer.sgd ~momentum:0.9 ~lr:0.01 ps)
let test_adam_converges () = rosenbrock_like_quadratic (fun ps -> Optimizer.adam ~lr:0.05 ps)

let test_step_zeroes_grads () =
  let p = Layer.tensor_zeros 1 2 in
  let opt = Optimizer.sgd ~lr:0.1 [ p ] in
  p.Layer.grad.Mat.data.{0} <- 1.;
  Optimizer.step opt;
  Alcotest.(check (float 1e-12)) "grad reset" 0. p.Layer.grad.Mat.data.{0};
  Alcotest.(check (float 1e-12)) "value moved" (-0.1) p.Layer.value.Mat.data.{0}

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_sigmoid_bounds =
  QCheck2.Test.make ~name:"sigmoid in [0,1] and symmetric" ~count:200
    QCheck2.Gen.(float_range (-100.) 100.)
    (fun x ->
      (* Strict openness only holds while exp doesn't round to 0/1. *)
      let s = Loss.sigmoid x in
      s >= 0. && s <= 1.
      && (abs_float x > 30. || (s > 0. && s < 1.))
      && abs_float (s +. Loss.sigmoid (-.x) -. 1.) < 1e-9)

let prop_bce_nonnegative =
  QCheck2.Test.make ~name:"bce loss is non-negative" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 10) (pair (float_range (-20.) 20.) bool))
    (fun pairs ->
      let logits = Array.of_list (List.map fst pairs) in
      let targets = Array.of_list (List.map (fun (_, b) -> if b then 1. else 0.) pairs) in
      let loss, _ = Loss.bce_with_logits ~logits ~targets () in
      loss >= -1e-12)

let prop_chamfer_nonnegative =
  QCheck2.Test.make ~name:"chamfer loss is non-negative" ~count:100
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let points = Mat.init 5 3 (fun _ _ -> Rng.normal rng ()) in
      let centroids = Mat.init 4 3 (fun _ _ -> Rng.normal rng ()) in
      let loss, _ = Loss.chamfer ~points ~centroids in
      loss >= 0.)

let prop_rbf_outputs_bounded =
  QCheck2.Test.make ~name:"rbf activations in (0, 1]" ~count:100
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let r = Layer.Rbf.create rng ~in_dim:3 ~centroids:5 ~gamma:0.4 in
      let z = Mat.init 4 3 (fun _ _ -> Rng.normal rng ~sigma:2. ()) in
      let phi = Layer.Rbf.forward r z in
      Array.for_all (fun v -> v >= 0. && v <= 1.) (Mat.to_array phi))

let () =
  Alcotest.run "nn"
    [ ( "dense",
        [ Alcotest.test_case "shapes" `Quick test_dense_shapes;
          Alcotest.test_case "gradients vs finite differences" `Quick test_dense_gradients ] );
      ( "activations",
        [ Alcotest.test_case "relu" `Quick test_relu;
          Alcotest.test_case "dropout train/eval" `Quick test_dropout_train_and_eval;
          Alcotest.test_case "dropout backward" `Quick test_dropout_backward_masks ] );
      ( "rbf",
        [ Alcotest.test_case "activation range" `Quick test_rbf_activation_range;
          Alcotest.test_case "peak at centroid" `Quick test_rbf_peak_at_centroid;
          Alcotest.test_case "gradients vs finite differences" `Quick test_rbf_gradients ] );
      ( "losses",
        [ Alcotest.test_case "bce known values" `Quick test_bce_known_values;
          Alcotest.test_case "bce gradient" `Quick test_bce_gradient;
          Alcotest.test_case "bce extreme logits" `Quick test_bce_extreme_logits_stable;
          Alcotest.test_case "softmax cce gradient" `Quick test_softmax_cce_gradient;
          Alcotest.test_case "heteroscedastic gradient" `Quick test_heteroscedastic_gradient;
          Alcotest.test_case "uncertainty trade-off" `Quick test_heteroscedastic_uncertainty_tradeoff;
          Alcotest.test_case "chamfer zero when matched" `Quick test_chamfer_zero_when_matched;
          Alcotest.test_case "chamfer gradient" `Quick test_chamfer_gradient;
          Alcotest.test_case "chamfer pulls centroids" `Quick test_chamfer_pulls_centroids_to_data ] );
      ( "network",
        [ Alcotest.test_case "shapes and spec errors" `Quick test_network_shapes_and_spec_errors;
          Alcotest.test_case "gradients vs finite differences" `Quick test_network_gradients;
          Alcotest.test_case "learns linear function" `Quick test_network_learns_linear_function;
          Alcotest.test_case "hidden activations" `Quick test_network_hidden_activations;
          Alcotest.test_case "save/load roundtrip" `Quick test_network_save_load_roundtrip;
          Alcotest.test_case "copy independence" `Quick test_network_copy_independent ] );
      ( "optimizers",
        [ Alcotest.test_case "sgd converges" `Quick test_sgd_converges;
          Alcotest.test_case "adam converges" `Quick test_adam_converges;
          Alcotest.test_case "step zeroes grads" `Quick test_step_zeroes_grads ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sigmoid_bounds; prop_bce_nonnegative; prop_chamfer_nonnegative;
            prop_rbf_outputs_bounded ] ) ]
