(* The streaming-observability conformance suite.

   The tentpole property: a Live_series fed one row at a time is
   bitwise-identical ([Int64.bits_of_float] on every float) to a batch
   Series rebuild at EVERY prefix, across algorithms, engines and the
   multi-objective scenario harness.  Around it: the tail reader's
   torn-write/truncation/seal semantics, the alert rules' grammar and
   edge-triggering, the span profiler's reconciliation against the
   driver's own metrics registry, and the Prometheus exposition. *)

module C = Conformance
module M = Wayfinder_monitor
module A = Wayfinder_analytics
module P = Wayfinder_platform
module Obs = Wayfinder_obs
module CS = Wayfinder_configspace
module Ls = M.Live_series

(* ------------------------------------------------------------------ *)
(* Bitwise stats comparison                                            *)
(* ------------------------------------------------------------------ *)

let bits = Int64.bits_of_float
let fl_eq a b = bits a = bits b

let opt_eq eq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> eq a b
  | _ -> false

let stats_eq (a : Ls.stats) (b : Ls.stats) =
  a.Ls.length = b.Ls.length
  && opt_eq (fun (i, v) (j, w) -> i = j && fl_eq v w) a.Ls.best b.Ls.best
  && fl_eq a.Ls.best_so_far b.Ls.best_so_far
  && fl_eq a.Ls.regret_slope b.Ls.regret_slope
  && fl_eq a.Ls.crash_rate b.Ls.crash_rate
  && fl_eq a.Ls.transient_rate b.Ls.transient_rate
  && fl_eq a.Ls.windowed_crash_rate b.Ls.windowed_crash_rate
  && fl_eq a.Ls.windowed_transient_rate b.Ls.windowed_transient_rate
  && a.Ls.evaluated = b.Ls.evaluated
  && a.Ls.distinct_configs = b.Ls.distinct_configs
  && a.Ls.distinct_stage_keys = b.Ls.distinct_stage_keys
  && a.Ls.pareto_size = b.Ls.pareto_size
  && opt_eq fl_eq a.Ls.hypervolume_proxy b.Ls.hypervolume_proxy
  && fl_eq a.Ls.virtual_seconds b.Ls.virtual_seconds
  && fl_eq a.Ls.total_eval_seconds b.Ls.total_eval_seconds

let stats_pp (s : Ls.stats) =
  Printf.sprintf
    "{n=%d bsf=%h slope=%h crash=%h/%h trans=%h/%h eval=%d cfg=%d stage=%d vt=%h evs=%h}"
    s.Ls.length s.Ls.best_so_far s.Ls.regret_slope s.Ls.crash_rate
    s.Ls.windowed_crash_rate s.Ls.transient_rate s.Ls.windowed_transient_rate
    s.Ls.evaluated s.Ls.distinct_configs s.Ls.distinct_stage_keys
    s.Ls.virtual_seconds s.Ls.total_eval_seconds

(* Space geometry of the conformance target, shared by every prefix
   check. *)
let conf_names, conf_stages =
  let params = CS.Space.params (C.space ()) in
  ( Array.map (fun (p : CS.Param.t) -> p.CS.Param.name) params,
    Array.map (fun (p : CS.Param.t) -> p.CS.Param.stage) params )

(* Check live == batch at every prefix of [rows]. *)
let check_prefix_parity ~metric ~objectives rows =
  let live = Ls.create ~metric ~names:conf_names ~stages:conf_stages ~objectives () in
  List.iteri
    (fun i row ->
      Ls.observe live row;
      let k = i + 1 in
      let batch =
        { A.Series.metric;
          names = conf_names;
          stages = conf_stages;
          rows = Array.of_list (List.filteri (fun j _ -> j < k) rows);
          objectives }
      in
      let got = Ls.stats live and want = Ls.stats_of_series batch in
      if not (stats_eq got want) then
        Alcotest.failf "prefix %d diverged:\n  live  %s\n  batch %s" k (stats_pp got)
          (stats_pp want))
    rows

let collect_rows () =
  let rows = ref [] in
  let on_record entry belief = rows := A.Ledger.row_of_entry entry belief :: !rows in
  (rows, on_record)

(* The tentpole property: random seeds and fault rates, every algorithm,
   both engine widths. *)
let prefix_parity_prop =
  QCheck2.Test.make ~count:15 ~name:"live series == batch series at every prefix"
    QCheck2.Gen.(
      tup4 (oneofl [ "random"; "grid"; "deeptune" ]) (oneofl [ 1; 4 ])
        (int_range 1 1000) (oneofl [ 0.; 0.3 ]))
    (fun (name, workers, seed, fault_rate) ->
      let rows, on_record = collect_rows () in
      let (_ : C.outcome) =
        C.run ~engine:(`Workers workers) ~seed ~fault_rate ~on_record name
      in
      check_prefix_parity ~metric:P.Metric.throughput ~objectives:[||]
        (List.rev !rows);
      true)

(* Multi-objective scenario runs carry objective vectors; the live
   Pareto front and hypervolume must track the batch ones. *)
let test_prefix_parity_scenario () =
  List.iter
    (fun workers ->
      let rows, on_record = collect_rows () in
      let (_ : C.outcome * int) =
        C.run_scenario ~engine:(`Workers workers) ~seed:13 ~fault_rate:0.25 ~on_record
          "deeptune-multi"
      in
      check_prefix_parity
        ~metric:(P.Metric.make ~name:"score" ~unit_name:"score" ())
        ~objectives:C.scenario_spec (List.rev !rows))
    [ 1; 4 ]

(* of_meta wiring: folding a loaded ledger's rows through a meta-shaped
   live series matches the batch series of the same ledger. *)
let test_of_meta_matches_of_ledger path =
  match A.Ledger.load path with
  | Error e -> Alcotest.failf "load: %s" (A.Ledger.error_to_string e)
  | Ok ledger ->
    let series = A.Series.of_ledger ledger in
    let live = Ls.of_meta ledger.A.Ledger.meta in
    Array.iter (Ls.observe live) series.A.Series.rows;
    Alcotest.(check bool) "of_meta stats match" true
      (stats_eq (Ls.stats live) (Ls.stats_of_series series))

(* ------------------------------------------------------------------ *)
(* Ledger fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let temp_path suffix =
  let path = Filename.temp_file "wayfinder_monitor" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* A real driver run recorded to a sealed ledger on disk. *)
let write_ledger ?(n = 14) ?(fault_rate = 0.3) ?(seed = 21) path =
  let writer =
    A.Ledger.create_writer ~seed ~algo:"random" ~space:(C.space ())
      ~metric:P.Metric.throughput path
  in
  let (_ : C.outcome) =
    C.run ~seed ~fault_rate ~budget:(P.Driver.Iterations n)
      ~on_record:(fun e b -> A.Ledger.record writer e b)
      "random"
  in
  A.Ledger.close_writer writer

let read_file path = In_channel.with_open_text path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ------------------------------------------------------------------ *)
(* Tail                                                                *)
(* ------------------------------------------------------------------ *)

let test_tail_whole_file () =
  let path = temp_path ".jsonl" in
  write_ledger path;
  let tail = M.Tail.create path in
  match (M.Tail.step tail, A.Ledger.load path) with
  | Error e, _ | _, Error e -> Alcotest.failf "tail: %s" (A.Ledger.error_to_string e)
  | Ok step, Ok ledger ->
    Alcotest.(check int) "all rows in one step" (List.length ledger.A.Ledger.rows)
      (List.length step.M.Tail.rows);
    Alcotest.(check bool) "rows identical" true (step.M.Tail.rows = ledger.A.Ledger.rows);
    Alcotest.(check bool) "seal verified" true (M.Tail.seal tail = M.Tail.Sealed);
    Alcotest.(check int) "no drops" 0 (M.Tail.dropped tail);
    (* A second step on the unchanged file delivers nothing. *)
    (match M.Tail.step tail with
    | Ok s2 ->
      Alcotest.(check int) "quiescent" 0 (List.length s2.M.Tail.rows)
    | Error e -> Alcotest.failf "re-step: %s" (A.Ledger.error_to_string e));
    test_of_meta_matches_of_ledger path

(* Feed the file in two chunks cut at an arbitrary byte: the torn
   fragment must stay pending (never a half-parsed row) and the
   accumulated result must equal the batch read.  Cuts sweep the file so
   mid-header, mid-meta, mid-row and mid-seal tears are all hit. *)
let test_tail_torn_writes () =
  let whole = temp_path ".jsonl" in
  write_ledger whole;
  let bytes = read_file whole in
  let batch =
    match A.Ledger.load whole with
    | Ok l -> l
    | Error e -> Alcotest.failf "batch: %s" (A.Ledger.error_to_string e)
  in
  let n = String.length bytes in
  let cut = ref 1 in
  while !cut < n do
    let part = temp_path ".jsonl" in
    write_file part (String.sub bytes 0 !cut);
    let tail = M.Tail.create part in
    let rows = ref [] in
    (match M.Tail.step tail with
    | Ok step ->
      rows := step.M.Tail.rows;
      Alcotest.(check bool)
        (Printf.sprintf "cut %d: torn file never sealed" !cut)
        true
        (M.Tail.seal tail <> M.Tail.Sealed || !cut = n)
    | Error e ->
      (* Only header/meta damage may be fatal — and a clean partial
         prefix of a valid file is never damaged, merely incomplete. *)
      Alcotest.failf "cut %d: unexpected fatal %s" !cut (A.Ledger.error_to_string e));
    write_file part bytes;
    (match M.Tail.step tail with
    | Ok step -> rows := !rows @ step.M.Tail.rows
    | Error e -> Alcotest.failf "cut %d: resume %s" !cut (A.Ledger.error_to_string e));
    Alcotest.(check bool)
      (Printf.sprintf "cut %d: accumulated rows = batch" !cut)
      true
      (!rows = batch.A.Ledger.rows);
    Alcotest.(check bool)
      (Printf.sprintf "cut %d: sealed at the end" !cut)
      true
      (M.Tail.seal tail = M.Tail.Sealed);
    cut := !cut + 37
  done

let test_tail_truncation_resets () =
  let path = temp_path ".jsonl" in
  write_ledger ~n:14 path;
  let long = read_file path in
  let tail = M.Tail.create path in
  (match M.Tail.step tail with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first read: %s" (A.Ledger.error_to_string e));
  (* The file is replaced by a shorter, different run. *)
  write_ledger ~n:6 ~seed:99 path;
  Alcotest.(check bool) "fixture really shrank" true
    (String.length (read_file path) < String.length long);
  (match M.Tail.step tail with
  | Error e -> Alcotest.failf "after truncation: %s" (A.Ledger.error_to_string e)
  | Ok step ->
    Alcotest.(check bool) "truncation flagged" true step.M.Tail.truncated;
    let batch =
      match A.Ledger.load path with
      | Ok l -> l
      | Error e -> Alcotest.failf "reload: %s" (A.Ledger.error_to_string e)
    in
    Alcotest.(check bool) "re-delivers the new file from byte 0" true
      (step.M.Tail.rows = batch.A.Ledger.rows);
    Alcotest.(check bool) "new seal verified" true (M.Tail.seal tail = M.Tail.Sealed))

let reason_mentions needle (drops : A.Ledger.drop list) =
  List.exists
    (fun (d : A.Ledger.drop) ->
      let r = d.A.Ledger.reason in
      let nl = String.length needle in
      let rec scan i =
        i + nl <= String.length r && (String.sub r i nl = needle || scan (i + 1))
      in
      scan 0)
    drops

(* Corrupt one body line into garbage: the tail's drops must mirror the
   batch salvage reader's (same line, offset and reason), and the fin
   seal — whose row count no longer matches — must become a drop, not a
   crash. *)
let test_tail_drop_parity_with_salvage () =
  let path = temp_path ".jsonl" in
  write_ledger path;
  let lines = String.split_on_char '\n' (read_file path) in
  let corrupt =
    List.mapi (fun i l -> if i = 4 then "{\"type\":\"iter\",garbage" else l) lines
  in
  write_file path (String.concat "\n" corrupt);
  let tail = M.Tail.create path in
  match (M.Tail.step tail, A.Ledger.salvage path) with
  | Error e, _ | _, Error e -> Alcotest.failf "read: %s" (A.Ledger.error_to_string e)
  | Ok step, Ok salvaged ->
    Alcotest.(check bool) "rows match salvage" true
      (step.M.Tail.rows = salvaged.A.Ledger.ledger.A.Ledger.rows);
    Alcotest.(check bool) "drops match salvage" true
      (step.M.Tail.drops = salvaged.A.Ledger.dropped);
    Alcotest.(check bool) "damaged body never seals" true
      (M.Tail.seal tail <> M.Tail.Sealed);
    Alcotest.(check bool) "row-count mismatch reported" true
      (reason_mentions "fin seal claims" step.M.Tail.drops)

(* Flip one digit inside a body line so the row still parses but the
   bytes differ: every row survives, yet the fin seal's CRC cannot
   verify and is reported as a positioned drop. *)
let test_tail_crc_mismatch_is_a_drop () =
  let path = temp_path ".jsonl" in
  write_ledger path;
  let lines = String.split_on_char '\n' (read_file path) in
  let flip_digit l =
    let b = Bytes.of_string l in
    let rec go i =
      if i < 0 then Alcotest.fail "no digit to flip in the fixture row"
      else
        match Bytes.get b i with
        | '0' .. '8' as c ->
          Bytes.set b i (Char.chr (Char.code c + 1));
          Bytes.to_string b
        | _ -> go (i - 1)
    in
    go (Bytes.length b - 1)
  in
  let corrupt = List.mapi (fun i l -> if i = 4 then flip_digit l else l) lines in
  write_file path (String.concat "\n" corrupt);
  let tail = M.Tail.create path in
  match (M.Tail.step tail, A.Ledger.salvage path) with
  | Error e, _ | _, Error e -> Alcotest.failf "read: %s" (A.Ledger.error_to_string e)
  | Ok step, Ok salvaged ->
    Alcotest.(check int) "every row still parses"
      (List.length salvaged.A.Ledger.ledger.A.Ledger.rows)
      (List.length step.M.Tail.rows);
    Alcotest.(check bool) "salvage agrees the seal is broken" false
      salvaged.A.Ledger.ledger.A.Ledger.sealed;
    Alcotest.(check bool) "flipped byte never seals" true
      (M.Tail.seal tail <> M.Tail.Sealed);
    Alcotest.(check bool) "crc mismatch reported" true
      (reason_mentions "crc mismatch" step.M.Tail.drops)

let test_tail_resume_is_sealed_unverified () =
  let path = temp_path ".jsonl" in
  write_ledger path;
  let bytes = read_file path in
  (* First reader consumes a prefix... *)
  let half = temp_path ".jsonl" in
  write_file half (String.sub bytes 0 (String.length bytes / 2));
  let first = M.Tail.create half in
  (match M.Tail.step first with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "prefix read: %s" (A.Ledger.error_to_string e));
  let offset = M.Tail.offset first in
  let rows_read = M.Tail.rows_read first in
  let meta = Option.get (M.Tail.meta first) in
  write_file half bytes;
  (* ...and a resumed tail picks up at its offset: the row count checks
     out but the CRC of the skipped prefix is unknowable. *)
  let resumed = M.Tail.resume ~rows_read ~path:half ~offset ~meta () in
  (match M.Tail.step resumed with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "resumed read: %s" (A.Ledger.error_to_string e));
  Alcotest.(check bool) "resumed seal is row-checked only" true
    (M.Tail.seal resumed = M.Tail.Sealed_unverified)

(* ------------------------------------------------------------------ *)
(* Dashboard                                                           *)
(* ------------------------------------------------------------------ *)

(* The frame is a function of the ledger's semantic content: chunked
   (follow-style) and one-shot reads render identical frames, and two
   identical-seed runs render identical frames from different files. *)
let test_dashboard_deterministic () =
  let p1 = temp_path ".jsonl" and p2 = temp_path ".jsonl" in
  write_ledger p1;
  write_ledger p2;
  let frame path chunked =
    let tail = M.Tail.create path in
    let live = ref None in
    let feed () =
      match M.Tail.step tail with
      | Error e -> Alcotest.failf "step: %s" (A.Ledger.error_to_string e)
      | Ok step ->
        List.iter
          (fun row ->
            let ls =
              match !live with
              | Some ls -> ls
              | None ->
                let ls = Ls.of_meta (Option.get (M.Tail.meta tail)) in
                live := Some ls;
                ls
            in
            Ls.observe ls row)
          step.M.Tail.rows
    in
    if chunked then begin
      (* Force several steps over a growing copy of the file. *)
      let bytes = read_file path in
      let part = temp_path ".jsonl" in
      let tail = M.Tail.create part in
      let live = ref None in
      let n = String.length bytes in
      let pos = ref 0 in
      while !pos < n do
        pos := min n (!pos + 113);
        write_file part (String.sub bytes 0 !pos);
        match M.Tail.step tail with
        | Error e -> Alcotest.failf "chunk step: %s" (A.Ledger.error_to_string e)
        | Ok step ->
          List.iter
            (fun row ->
              let ls =
                match !live with
                | Some ls -> ls
                | None ->
                  let ls = Ls.of_meta (Option.get (M.Tail.meta tail)) in
                  live := Some ls;
                  ls
              in
              Ls.observe ls row)
            step.M.Tail.rows
      done;
      M.Dashboard.render ~dropped:(M.Tail.dropped tail) ~seal:(M.Tail.seal tail)
        ~meta:(Option.get (M.Tail.meta tail))
        (Option.get !live)
    end
    else begin
      feed ();
      M.Dashboard.render ~dropped:(M.Tail.dropped tail) ~seal:(M.Tail.seal tail)
        ~meta:(Option.get (M.Tail.meta tail))
        (Option.get !live)
    end
  in
  let f1 = frame p1 false in
  Alcotest.(check string) "identical runs render identical frames" f1 (frame p2 false);
  Alcotest.(check string) "follow converges to once" f1 (frame p1 true);
  Alcotest.(check bool) "frame mentions the seal" true
    (let needle = "sealed" in
     let nl = String.length needle in
     let rec scan i =
       i + nl <= String.length f1 && (String.sub f1 i nl = needle || scan (i + 1))
     in
     scan 0)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_rules_parse_roundtrip () =
  let rules =
    [ M.Rules.Crash { threshold = 0.5; window = 40 };
      M.Rules.Stall { iterations = 30 };
      M.Rules.Starve { fraction = 0.25 };
      M.Rules.Drift { window = 12 } ]
  in
  List.iter
    (fun r ->
      match M.Rules.parse (M.Rules.rule_to_string r) with
      | Ok [ r' ] ->
        Alcotest.(check bool) (M.Rules.rule_to_string r) true (r = r')
      | Ok _ | Error _ -> Alcotest.failf "round-trip failed: %s" (M.Rules.rule_to_string r))
    rules;
  (match M.Rules.parse "crash>0.5@40,stall>30,drift" with
  | Ok [ M.Rules.Crash { threshold = 0.5; window = 40 }; M.Rules.Stall { iterations = 30 };
         M.Rules.Drift { window = _ } ] ->
    ()
  | Ok _ | Error _ -> Alcotest.fail "combined spec misparsed");
  List.iter
    (fun bad ->
      match M.Rules.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "crash>1.5"; "crash>0.5@0"; "stall>0"; "starve<2"; "bogus"; "drift@-3"; "" ]

(* Hand-built rows for deterministic rule scenarios. *)
let row ~index ?value ?failure () =
  { A.Series.index;
    tokens = [| "x=1" |];
    value;
    failure;
    at_seconds = float_of_int (index + 1);
    eval_seconds = 1.;
    built = true;
    decide_seconds = 0.;
    belief = None;
    objectives = None }

let scalar_live () =
  Ls.create ~metric:P.Metric.throughput ~names:[| "x" |]
    ~stages:[| CS.Param.Runtime |] ~objectives:[||] ()

let test_rules_crash_edge_trigger () =
  let live = scalar_live () in
  let st = M.Rules.create [ M.Rules.Crash { threshold = 0.5; window = 4 } ] in
  let feed r =
    Ls.observe live r;
    M.Rules.evaluate st live
  in
  let fired = ref 0 in
  for i = 0 to 3 do
    let fs = feed (row ~index:i ~failure:P.Failure.Runtime_crash ()) in
    fired := !fired + List.length fs
  done;
  Alcotest.(check int) "fires exactly once while condition holds" 1 !fired;
  Alcotest.(check (list string)) "active while high" [ "crash" ] (M.Rules.active st);
  (* Enough successes clear the window... *)
  for i = 4 to 9 do
    ignore (feed (row ~index:i ~value:100. ()))
  done;
  Alcotest.(check (list string)) "cleared" [] (M.Rules.active st);
  (* ...and the rule re-arms. *)
  let refired = ref 0 in
  for i = 10 to 13 do
    let fs = feed (row ~index:i ~failure:P.Failure.Runtime_crash ()) in
    refired := !refired + List.length fs
  done;
  Alcotest.(check int) "re-fires after clearing" 1 !refired

let test_rules_stall () =
  let live = scalar_live () in
  let st = M.Rules.create [ M.Rules.Stall { iterations = 3 } ] in
  let feed r =
    Ls.observe live r;
    M.Rules.evaluate st live
  in
  ignore (feed (row ~index:0 ~value:10. ()));
  ignore (feed (row ~index:1 ~value:20. ()));
  (* Two non-improving rows: 3 iterations since the improvement at #2 not
     yet reached. *)
  ignore (feed (row ~index:2 ~value:5. ()));
  Alcotest.(check (list string)) "not yet stalled" [] (M.Rules.active st);
  let fs3 = feed (row ~index:3 ~value:5. ()) in
  let fs4 = feed (row ~index:4 ~value:5. ()) in
  Alcotest.(check int) "fires once at the threshold" 1
    (List.length fs3 + List.length fs4);
  Alcotest.(check (list string)) "stall active" [ "stall" ] (M.Rules.active st);
  (* An improvement clears and re-arms it. *)
  ignore (feed (row ~index:5 ~value:50. ()));
  Alcotest.(check (list string)) "improvement clears stall" [] (M.Rules.active st)

let test_rules_starve_needs_busy () =
  let live = scalar_live () in
  let st = M.Rules.create [ M.Rules.Starve { fraction = 0.5 } ] in
  Ls.observe live (row ~index:0 ~value:1. ());
  Alcotest.(check int) "no busy signal, no firing" 0
    (List.length (M.Rules.evaluate st live));
  Ls.observe live (row ~index:1 ~value:1. ());
  let fs = M.Rules.evaluate st ~worker_busy:0.2 live in
  Alcotest.(check int) "starved pool fires" 1 (List.length fs);
  Alcotest.(check int) "healthy pool clears" 0
    (List.length (M.Rules.evaluate st ~worker_busy:0.9 live))

let test_rules_drift () =
  let live = scalar_live () in
  let st = M.Rules.create [ M.Rules.Drift { window = 5 } ] in
  let feed r =
    Ls.observe live r;
    M.Rules.evaluate st live
  in
  (* Baseline window: healthy values around 100. *)
  for i = 0 to 4 do
    ignore (feed (row ~index:i ~value:100. ()))
  done;
  (* Second window: the distribution triples — well past the default 50%
     mean margin. *)
  let fired = ref 0 in
  for i = 5 to 9 do
    fired := !fired + List.length (feed (row ~index:i ~value:300. ()))
  done;
  Alcotest.(check int) "drifted tail fires once" 1 !fired;
  Alcotest.(check (list string)) "drift active" [ "drift" ] (M.Rules.active st)

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

(* Drive a real (unfrozen) recorder through the driver with a JSONL sink
   attached; per-phase virtual sums recovered from the trace must equal
   the driver's own metrics registry bitwise — the spans ARE the
   histograms' feed, so any divergence is a codec bug.  Single worker:
   with several recording domains the per-name emission order (and so
   the float accumulation order) is not stable across the two
   structures, only the multiset is. *)
let test_profile_reconciles_with_metrics () =
  let buf = Buffer.create 8192 in
  let obs = Obs.Recorder.create ~sinks:[ Obs.Sink.jsonl (Buffer.add_string buf) ] () in
  let target = C.faulty_target ~fault_rate:0.3 ~seed:11 in
  let algo = C.algorithm "random" ~seed:11 target.P.Target.space in
  let result =
    P.Driver.run ~seed:11 ~obs ~workers:1 ~target ~algorithm:algo
      ~budget:(P.Driver.Iterations 15) ()
  in
  match M.Profile.of_string (Buffer.contents buf) with
  | Error e -> Alcotest.failf "profile: %s" e
  | Ok t ->
    Alcotest.(check int) "no dropped lines in a clean trace" 0 t.M.Profile.dropped;
    let virt = M.Profile.phase_totals t M.Profile.Virtual in
    let wall = M.Profile.phase_totals t M.Profile.Wall in
    let m = result.P.Driver.metrics in
    List.iter
      (fun (_, span_name) ->
        let from_trace = Option.value ~default:0. (List.assoc_opt span_name virt) in
        let from_metrics = Obs.Metrics.sum m (span_name ^ ".virtual_s") in
        if not (fl_eq from_trace from_metrics) then
          Alcotest.failf "%s: trace %h <> metrics %h" span_name from_trace from_metrics)
      P.Driver.virtual_phases;
    (* Wall-clocked phases reconcile the same way. *)
    List.iter
      (fun span_name ->
        let from_trace = Option.value ~default:0. (List.assoc_opt span_name wall) in
        let from_metrics = Obs.Metrics.sum m (span_name ^ ".wall_s") in
        if not (fl_eq from_trace from_metrics) then
          Alcotest.failf "%s: trace %h <> metrics %h (wall)" span_name from_trace
            from_metrics)
      [ "driver.iteration"; "driver.propose"; "driver.validate"; "driver.observe" ]

(* A hand-built trace with known geometry: parent [0,6], children [1,3]
   and [4,5].  Span events arrive in end order (children first). *)
let test_profile_tree_shape () =
  let span name began wall =
    Printf.sprintf
      "{\"type\":\"span\",\"name\":\"%s\",\"wall_s\":%g,\"virtual_s\":0,\"began_wall_s\":%g,\"began_virtual_s\":0}"
      name wall began
  in
  let trace =
    String.concat "\n"
      [ Obs.Sink.schema_header ~kind:"trace";
        span "child" 1. 2.;
        span "child" 4. 1.;
        span "parent" 0. 6.;
        "this line is torn garba" ]
  in
  match M.Profile.of_string trace with
  | Error e -> Alcotest.failf "profile: %s" e
  | Ok t -> (
    Alcotest.(check int) "torn line dropped" 1 t.M.Profile.dropped;
    match t.M.Profile.roots with
    | [ root ] -> (
      Alcotest.(check string) "root name" "parent" root.M.Profile.node_name;
      Alcotest.(check (float 0.)) "root total" 6. root.M.Profile.wall_total;
      match root.M.Profile.children with
      | [ c ] ->
        Alcotest.(check string) "same-name siblings merged" "child"
          c.M.Profile.node_name;
        Alcotest.(check int) "both occurrences counted" 2 c.M.Profile.count;
        Alcotest.(check (float 0.)) "children total" 3. c.M.Profile.wall_total;
        Alcotest.(check (float 0.)) "parent self = total - children" 3.
          (M.Profile.self M.Profile.Wall root);
        let flame = M.Profile.flamegraph t M.Profile.Wall in
        Alcotest.(check bool) "flamegraph paths" true
          (let has needle =
             let nl = String.length needle in
             let rec scan i =
               i + nl <= String.length flame
               && (String.sub flame i nl = needle || scan (i + 1))
             in
             scan 0
           in
           has "parent 3000000" && has "parent;child 3000000")
      | _ -> Alcotest.fail "expected one merged child")
    | _ -> Alcotest.fail "expected a single root")

let test_profile_rejects_foreign_header () =
  match M.Profile.of_string "{\"hello\":1}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a foreign header"

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nl = String.length needle in
  let rec scan i = i + nl <= String.length hay && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let test_prom_histogram_format () =
  let m = Obs.Metrics.create () in
  List.iter (Obs.Metrics.observe m "phase.virtual_s") [ 1.0; 2.0; 4.0; 8.0 ];
  Obs.Metrics.incr m ~by:3. "driver.iterations";
  let text = M.Prom.render ~snapshot:(Obs.Metrics.snapshot m) () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains text needle))
    [ "# TYPE wayfinder_driver_iterations counter\nwayfinder_driver_iterations 3\n";
      "# TYPE wayfinder_phase_virtual_s histogram\n";
      (* Buckets are cumulative... *)
      "wayfinder_phase_virtual_s_bucket{le=\"1\"} 1\n";
      "wayfinder_phase_virtual_s_bucket{le=\"2\"} 2\n";
      "wayfinder_phase_virtual_s_bucket{le=\"4\"} 3\n";
      "wayfinder_phase_virtual_s_bucket{le=\"8\"} 4\n";
      (* ...with the mandatory +Inf bucket equal to the count. *)
      "wayfinder_phase_virtual_s_bucket{le=\"+Inf\"} 4\n";
      "wayfinder_phase_virtual_s_sum 15\n";
      "wayfinder_phase_virtual_s_count 4\n" ]

let test_prom_stats_gauges () =
  let live = scalar_live () in
  Ls.observe live (row ~index:0 ~value:42. ());
  Ls.observe live (row ~index:1 ~failure:P.Failure.Runtime_crash ());
  let text = M.Prom.render ~stats:(Ls.stats live) () in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains text needle))
    [ "# TYPE wayfinder_live_iteration gauge\nwayfinder_live_iteration 2\n";
      "wayfinder_live_best 42\n";
      "wayfinder_live_crash_rate 0.5\n";
      "wayfinder_live_distinct_configs 1\n" ]

let test_prom_sanitizes_names () =
  Alcotest.(check string) "bad chars replaced" "wayfinder_a_b_c:d"
    (M.Prom.metric_name "a.b-c:d")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "monitor"
    [ ( "live_series",
        [ QCheck_alcotest.to_alcotest prefix_parity_prop;
          Alcotest.test_case "scenario prefixes (multi-objective)" `Quick
            test_prefix_parity_scenario ] );
      ( "tail",
        [ Alcotest.test_case "whole file" `Quick test_tail_whole_file;
          Alcotest.test_case "torn writes stay pending" `Quick test_tail_torn_writes;
          Alcotest.test_case "truncation resets" `Quick test_tail_truncation_resets;
          Alcotest.test_case "drop parity with salvage" `Quick
            test_tail_drop_parity_with_salvage;
          Alcotest.test_case "crc mismatch is a drop" `Quick
            test_tail_crc_mismatch_is_a_drop;
          Alcotest.test_case "resume seals unverified" `Quick
            test_tail_resume_is_sealed_unverified ] );
      ( "dashboard",
        [ Alcotest.test_case "deterministic frames" `Quick test_dashboard_deterministic ] );
      ( "rules",
        [ Alcotest.test_case "parse round-trip" `Quick test_rules_parse_roundtrip;
          Alcotest.test_case "crash edge-trigger" `Quick test_rules_crash_edge_trigger;
          Alcotest.test_case "stall" `Quick test_rules_stall;
          Alcotest.test_case "starve needs busy signal" `Quick test_rules_starve_needs_busy;
          Alcotest.test_case "drift" `Quick test_rules_drift ] );
      ( "profile",
        [ Alcotest.test_case "reconciles with driver metrics" `Quick
            test_profile_reconciles_with_metrics;
          Alcotest.test_case "tree shape" `Quick test_profile_tree_shape;
          Alcotest.test_case "rejects foreign header" `Quick
            test_profile_rejects_foreign_header ] );
      ( "prom",
        [ Alcotest.test_case "histogram format" `Quick test_prom_histogram_format;
          Alcotest.test_case "stats gauges" `Quick test_prom_stats_gauges;
          Alcotest.test_case "name sanitization" `Quick test_prom_sanitizes_names ] )
    ]
