(* The trace-driven workload layer: the versioned trace codec and its
   builders, the deterministic replay model and its edge cases, the
   scalarizers, the Pareto archive and the scenario cursor. *)

open Wayfinder_platform
module S = Wayfinder_simos
module Trace = S.Trace
module Replay = S.Trace_replay

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let trace_gen =
  QCheck2.Gen.(
    let* window_s = float_range 0.1 10. in
    let* loads = array_size (int_range 0 40) (float_range 0. 2000.) in
    return { Trace.window_s; loads })

let service_gen =
  QCheck2.Gen.(
    let* capacity_rps = float_range 10. 2000. in
    let* base_latency_s = float_range 1e-4 0.1 in
    let* memory_mb = float_range 1. 1024. in
    return { Replay.capacity_rps; base_latency_s; memory_mb })

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"of_string (to_string t) = Ok t, bitwise" ~count:200 trace_gen
    (fun t ->
      match Trace.of_string (Trace.to_string t) with
      | Ok t' -> Trace.equal t t'
      | Error _ -> false)

let test_codec_rejects_malformed () =
  let bad s = match Trace.of_string s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "wrong magic" true (bad "not-a-trace 1\nwindow 0x1p+0\n");
  Alcotest.(check bool) "future version" true (bad "wayfinder-trace 99\nwindow 0x1p+0\n");
  Alcotest.(check bool) "missing window" true (bad "wayfinder-trace 1\nload 0x1p+0\n");
  Alcotest.(check bool) "negative load" true
    (bad "wayfinder-trace 1\nwindow 0x1p+0\nload -0x1p+0\n");
  Alcotest.(check bool) "junk line" true
    (bad "wayfinder-trace 1\nwindow 0x1p+0\nwat 3\n")

let test_save_load_roundtrip () =
  let path = Filename.temp_file "wayfinder" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t = Trace.flash_crowd ~window_s:0.5 ~windows:16 ~base:100. ~peak:900. ~at:8 ~width:3 in
      match Trace.save ~path t with
      | Error e -> Alcotest.fail ("save: " ^ e)
      | Ok () -> (
        match Trace.load ~path with
        | Error e -> Alcotest.fail ("load: " ^ e)
        | Ok t' -> Alcotest.(check bool) "file roundtrip" true (Trace.equal t t')))

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let test_builders_validate () =
  let ok t = Alcotest.(check bool) "validates" true (Trace.validate t = Ok ()) in
  ok (Trace.constant ~window_s:1. ~windows:5 250.);
  ok (Trace.diurnal ~jitter:0.1 ~seed:3 ~window_s:1. ~windows:48 ~base:100. ~peak:800. ());
  ok (Trace.flash_crowd ~window_s:1. ~windows:20 ~base:200. ~peak:1500. ~at:10 ~width:4);
  ok (Trace.ramp ~window_s:1. ~windows:12 ~from_load:50. ~to_load:950.);
  ok (Trace.steps ~window_s:1. [ (5, 100.); (5, 700.); (5, 300.) ])

let test_builders_reject_nonsense () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero window" true
    (raises (fun () -> Trace.constant ~window_s:0. ~windows:5 250.));
  Alcotest.(check bool) "negative load" true
    (raises (fun () -> Trace.constant ~window_s:1. ~windows:5 (-1.)));
  Alcotest.(check bool) "negative ramp" true
    (raises (fun () -> Trace.ramp ~window_s:1. ~windows:5 ~from_load:(-10.) ~to_load:10.))

let test_builder_shapes () =
  let fc = Trace.flash_crowd ~window_s:1. ~windows:10 ~base:100. ~peak:900. ~at:4 ~width:2 in
  Alcotest.(check (float 0.)) "burst window" 900. fc.Trace.loads.(4);
  Alcotest.(check (float 0.)) "burst tail" 900. fc.Trace.loads.(5);
  Alcotest.(check (float 0.)) "steady base" 100. fc.Trace.loads.(0);
  Alcotest.(check (float 0.)) "back to base" 100. fc.Trace.loads.(6);
  let r = Trace.ramp ~window_s:1. ~windows:3 ~from_load:0. ~to_load:100. in
  Alcotest.(check (float 1e-9)) "ramp start" 0. r.Trace.loads.(0);
  Alcotest.(check (float 1e-9)) "ramp end" 100. r.Trace.loads.(2);
  let st = Trace.steps ~window_s:1. [ (2, 10.); (3, 20.) ] in
  Alcotest.(check int) "steps length" 5 (Array.length st.Trace.loads);
  Alcotest.(check (float 0.)) "steps phase 2" 20. st.Trace.loads.(2)

let test_diurnal_deterministic () =
  let mk seed = Trace.diurnal ~jitter:0.2 ~seed ~window_s:1. ~windows:24 ~base:100. ~peak:800. () in
  Alcotest.(check bool) "same seed, same trace" true (Trace.equal (mk 7) (mk 7));
  Alcotest.(check bool) "different seed, different trace" false (Trace.equal (mk 7) (mk 8))

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let summaries_equal (a : Replay.summary) (b : Replay.summary) =
  a.Replay.samples = b.Replay.samples
  && a.Replay.mean_throughput_rps = b.Replay.mean_throughput_rps
  && a.Replay.p50_latency_s = b.Replay.p50_latency_s
  && a.Replay.p95_latency_s = b.Replay.p95_latency_s
  && a.Replay.p99_latency_s = b.Replay.p99_latency_s
  && a.Replay.peak_memory_mb = b.Replay.peak_memory_mb

let prop_replay_deterministic =
  QCheck2.Test.make ~name:"replay is bitwise deterministic" ~count:100
    QCheck2.Gen.(pair trace_gen service_gen)
    (fun (t, service) ->
      summaries_equal (Replay.replay t service) (Replay.replay t service))

let prop_replay_bounded =
  QCheck2.Test.make ~name:"throughput never exceeds offered load or capacity" ~count:100
    QCheck2.Gen.(pair trace_gen service_gen)
    (fun (t, service) ->
      let s = Replay.replay t service in
      Array.for_all
        (fun (w : Replay.sample) ->
          w.Replay.throughput_rps <= w.Replay.offered_rps +. 1e-9
          && w.Replay.throughput_rps <= service.Replay.capacity_rps +. 1e-9
          && w.Replay.latency_s >= service.Replay.base_latency_s)
        s.Replay.samples)

let test_replay_empty_trace () =
  let service = { Replay.capacity_rps = 500.; base_latency_s = 0.002; memory_mb = 64. } in
  let s = Replay.replay { Trace.window_s = 1.; loads = [||] } service in
  Alcotest.(check int) "no samples" 0 (Array.length s.Replay.samples);
  Alcotest.(check (float 0.)) "zero throughput" 0. s.Replay.mean_throughput_rps;
  Alcotest.(check (float 0.)) "zero p99" 0. s.Replay.p99_latency_s;
  Alcotest.(check (float 0.)) "idle memory" 64. s.Replay.peak_memory_mb

let test_replay_zero_load () =
  let service = { Replay.capacity_rps = 500.; base_latency_s = 0.002; memory_mb = 64. } in
  let s = Replay.replay (Trace.constant ~window_s:1. ~windows:4 0.) service in
  Alcotest.(check (float 0.)) "zero throughput" 0. s.Replay.mean_throughput_rps;
  Alcotest.(check (float 1e-12)) "unloaded latency" 0.002 s.Replay.p99_latency_s

let test_replay_latency_monotone_in_load () =
  let service = { Replay.capacity_rps = 1000.; base_latency_s = 0.001; memory_mb = 64. } in
  let lat offered = (Replay.window service ~offered_rps:offered).Replay.latency_s in
  Alcotest.(check bool) "500 < 900" true (lat 500. < lat 900.);
  Alcotest.(check bool) "900 < 1100 (overload)" true (lat 900. < lat 1100.);
  Alcotest.(check bool) "1100 < 1500 (deeper overload)" true (lat 1100. < lat 1500.)

let test_replay_overload_throughput_capped () =
  let service = { Replay.capacity_rps = 800.; base_latency_s = 0.001; memory_mb = 64. } in
  let w = Replay.window service ~offered_rps:1200. in
  Alcotest.(check (float 1e-9)) "capped at capacity" 800. w.Replay.throughput_rps

let test_replay_rejects_bad_service () =
  let raises service =
    try
      ignore (Replay.replay (Trace.constant ~window_s:1. ~windows:2 10.) service);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero capacity" true
    (raises { Replay.capacity_rps = 0.; base_latency_s = 0.001; memory_mb = 1. });
  Alcotest.(check bool) "zero base latency" true
    (raises { Replay.capacity_rps = 100.; base_latency_s = 0.; memory_mb = 1. })

(* ------------------------------------------------------------------ *)
(* Scalarization                                                       *)
(* ------------------------------------------------------------------ *)

let spec3 =
  [| Metric.make ~name:"throughput" ~unit_name:"req/s" ();
     Metric.make ~maximize:false ~name:"p99" ~unit_name:"s" ();
     Metric.make ~maximize:false ~name:"memory" ~unit_name:"MiB" () |]

let test_scalarize_lone_weight_unscaled () =
  (* The degenerate (1, 0, 0): bitwise the first objective's score, no
     arithmetic applied. *)
  let vec = [| 0.1 +. 0.2; 3.7; 512.3 |] in
  let v = Scalarize.apply (Scalarize.Weighted_sum [| 1.; 0.; 0. |]) ~spec:spec3 vec in
  Alcotest.(check bool) "bitwise equal to score" true
    (Int64.bits_of_float v = Int64.bits_of_float (Metric.score spec3.(0) vec.(0)))

let test_scalarize_weighted_sum () =
  let vec = [| 100.; 2.; 50. |] in
  let v = Scalarize.apply (Scalarize.Weighted_sum [| 1.; 4.; 0. |]) ~spec:spec3 vec in
  (* p99 is minimized: its score is the negation. *)
  Alcotest.(check (float 1e-9)) "sum of weighted scores"
    ((1. *. Metric.score spec3.(0) 100.) +. (4. *. Metric.score spec3.(1) 2.))
    v

let test_scalarize_epsilon_constraint () =
  let unconstrained =
    Scalarize.Epsilon_constraint { primary = 0; bounds = [| nan; nan; nan |] }
  in
  let vec = [| 100.; 2.; 50. |] in
  Alcotest.(check (float 1e-9)) "unconstrained = primary score"
    (Metric.score spec3.(0) 100.)
    (Scalarize.apply unconstrained ~spec:spec3 vec);
  let bounded =
    Scalarize.Epsilon_constraint { primary = 0; bounds = [| nan; 1.; nan |] }
  in
  let ok = Scalarize.apply bounded ~spec:spec3 [| 100.; 0.5; 50. |] in
  let violated = Scalarize.apply bounded ~spec:spec3 [| 100.; 2.; 50. |] in
  Alcotest.(check (float 1e-9)) "satisfied bound: primary score"
    (Metric.score spec3.(0) 100.) ok;
  Alcotest.(check bool) "violated bound penalized" true (violated < ok -. 1e5);
  Alcotest.(check bool) "penalty keeps the scalar finite" true (Float.is_finite violated)

let test_scalarize_validate () =
  let err s = match s with Error _ -> true | Ok () -> false in
  Alcotest.(check bool) "arity mismatch" true
    (err (Scalarize.validate (Scalarize.Weighted_sum [| 1.; 2. |]) ~n:3));
  Alcotest.(check bool) "non-finite weight" true
    (err (Scalarize.validate (Scalarize.Weighted_sum [| 1.; nan; 0. |]) ~n:3));
  Alcotest.(check bool) "primary out of range" true
    (err
       (Scalarize.validate
          (Scalarize.Epsilon_constraint { primary = 3; bounds = [| nan; nan; nan |] })
          ~n:3));
  Alcotest.(check bool) "well-formed accepted" true
    (Scalarize.validate (Scalarize.Weighted_sum [| 1.; 0.; 2. |]) ~n:3 = Ok ());
  (* Bounds: NaN means "no bound" and must pass; an infinite bound would
     poison the soft barrier with ±inf and must be rejected typed. *)
  Alcotest.(check bool) "+inf bound rejected" true
    (err
       (Scalarize.validate
          (Scalarize.Epsilon_constraint { primary = 0; bounds = [| nan; infinity; 1. |] })
          ~n:3));
  Alcotest.(check bool) "-inf bound rejected" true
    (err
       (Scalarize.validate
          (Scalarize.Epsilon_constraint { primary = 0; bounds = [| neg_infinity; nan; 1. |] })
          ~n:3));
  Alcotest.(check bool) "NaN no-bound accepted" true
    (Scalarize.validate
       (Scalarize.Epsilon_constraint { primary = 0; bounds = [| nan; 1.; nan |] })
       ~n:3
    = Ok ())

(* ------------------------------------------------------------------ *)
(* Objective spec                                                      *)
(* ------------------------------------------------------------------ *)

let test_objective_builtins () =
  List.iter
    (fun name ->
      match Objective.builtin name with
      | Some m -> Alcotest.(check string) ("builtin " ^ name) name m.Metric.metric_name
      | None -> Alcotest.failf "builtin %s missing" name)
    [ "throughput"; "p50"; "p95"; "p99"; "memory" ];
  (match Objective.spec_of_names [ "throughput"; "p99" ] with
  | Ok spec -> Alcotest.(check int) "resolved arity" 2 (Array.length spec)
  | Error e -> Alcotest.fail e);
  match Objective.spec_of_names [ "throughput"; "warp-drive" ] with
  | Ok _ -> Alcotest.fail "unknown objective accepted"
  | Error e ->
    let contains sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "error names the culprit" true (contains "warp-drive" e)

let test_objective_dominates () =
  let spec =
    [| Metric.make ~name:"a" ~unit_name:"u" ();
       Metric.make ~maximize:false ~name:"b" ~unit_name:"u" () |]
  in
  let d = Objective.dominates spec in
  Alcotest.(check bool) "better on both" true (d [| 2.; 1. |] [| 1.; 2. |]);
  Alcotest.(check bool) "better on one, equal on other" true (d [| 2.; 1. |] [| 1.; 1. |]);
  Alcotest.(check bool) "equal dominates nothing" false (d [| 1.; 1. |] [| 1.; 1. |]);
  Alcotest.(check bool) "trade-off does not dominate" false (d [| 2.; 2. |] [| 1.; 1. |])

(* ------------------------------------------------------------------ *)
(* Pareto archive                                                      *)
(* ------------------------------------------------------------------ *)

let spec2 =
  [| Metric.make ~name:"a" ~unit_name:"u" ();
     Metric.make ~maximize:false ~name:"b" ~unit_name:"u" () |]

let vec2_gen = QCheck2.Gen.(pair (float_range 0. 100.) (float_range 0. 100.))

let archive_of points =
  List.fold_left
    (fun t (index, (a, b)) -> Pareto.insert t ~index ~objectives:[| a; b |])
    (Pareto.create ~spec:spec2)
    points

let indexed points = List.mapi (fun i p -> (i, p)) points

let prop_archive_never_dominated =
  QCheck2.Test.make ~name:"archive retains no dominated point" ~count:200
    QCheck2.Gen.(list_size (int_range 0 20) vec2_gen)
    (fun points ->
      let front = Pareto.points (archive_of (indexed points)) in
      List.for_all
        (fun (p : Pareto.point) ->
          List.for_all
            (fun (q : Pareto.point) ->
              p.Pareto.index = q.Pareto.index
              || not (Objective.dominates spec2 q.Pareto.objectives p.Pareto.objectives))
            front)
        front)

let prop_archive_order_independent =
  QCheck2.Test.make ~name:"archive is insertion-order independent" ~count:100
    QCheck2.Gen.(
      let* points = list_size (int_range 0 15) vec2_gen in
      let* shuffled = shuffle_l (indexed points) in
      return (indexed points, shuffled))
    (fun (in_order, shuffled) ->
      Pareto.to_list (archive_of in_order) = Pareto.to_list (archive_of shuffled))

let test_archive_tie_keeps_smallest_index () =
  let t = archive_of [ (5, (10., 1.)); (2, (10., 1.)); (9, (10., 1.)) ] in
  match Pareto.to_list t with
  | [ (2, _) ] -> ()
  | other -> Alcotest.failf "expected the index-2 point alone, got %d points" (List.length other)

let test_archive_of_list_roundtrip () =
  let t = archive_of (indexed [ (10., 5.); (20., 8.); (5., 1.) ]) in
  let t' = Pareto.of_list ~spec:spec2 (Pareto.to_list t) in
  Alcotest.(check bool) "roundtrip" true (Pareto.to_list t = Pareto.to_list t');
  (* A dominated point smuggled into the list is dropped on rebuild. *)
  let smuggled = Pareto.of_list ~spec:spec2 ((99, [| 1.; 100. |]) :: Pareto.to_list t) in
  Alcotest.(check bool) "dominated input dropped" true
    (Pareto.to_list smuggled = Pareto.to_list t)

let test_hypervolume_proxy () =
  Alcotest.(check (float 0.)) "empty archive" 0.
    (Pareto.hypervolume_proxy (Pareto.create ~spec:spec2));
  let small = archive_of (indexed [ (10., 5.) ]) in
  let large = archive_of (indexed [ (10., 5.); (20., 8.); (5., 1.) ]) in
  Alcotest.(check bool) "non-empty is positive" true (Pareto.hypervolume_proxy small > 0.);
  (* Normalized per-point products are in [0, 1], so the proxy is bounded
     by the front size — and it is a pure function of the archive. *)
  let hv = Pareto.hypervolume_proxy large in
  Alcotest.(check bool) "bounded by front size" true
    (hv >= 0. && hv <= float_of_int (Pareto.size large));
  Alcotest.(check (float 0.)) "deterministic" hv (Pareto.hypervolume_proxy large)

(* ------------------------------------------------------------------ *)
(* Scenario cursor                                                     *)
(* ------------------------------------------------------------------ *)

let test_scenario_cursor () =
  let trace = Trace.constant ~window_s:1. ~windows:6 100. in
  let sc = Scenario.create ~stride:2 trace in
  Alcotest.(check int) "starts at zero" 0 (Scenario.cursor sc);
  Scenario.advance sc;
  Scenario.advance sc;
  Alcotest.(check int) "advances by stride" 4 (Scenario.cursor sc);
  Scenario.set_cursor sc 11;
  Alcotest.(check int) "set_cursor" 11 (Scenario.cursor sc);
  let stationary = Scenario.create trace in
  Scenario.advance stationary;
  Alcotest.(check int) "stride 0 is stationary" 0 (Scenario.cursor stationary)

let test_scenario_slice_wraps () =
  let trace = { Trace.window_s = 1.; loads = [| 0.; 1.; 2.; 3.; 4.; 5. |] } in
  let sc = Scenario.create ~stride:1 ~span:4 trace in
  Scenario.set_cursor sc 4;
  let slice = Scenario.slice sc in
  Alcotest.(check bool) "wraps around the trace" true
    (slice.Trace.loads = [| 4.; 5.; 0.; 1. |]);
  Scenario.set_cursor sc 10;
  let slice = Scenario.slice sc in
  Alcotest.(check bool) "cursor reduced mod length" true
    (slice.Trace.loads = [| 4.; 5.; 0.; 1. |])

let test_scenario_empty_trace () =
  let sc = Scenario.create ~stride:1 { Trace.window_s = 1.; loads = [||] } in
  let slice = Scenario.slice sc in
  Alcotest.(check int) "empty slices to empty" 0 (Array.length slice.Trace.loads)

let test_scenario_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  let trace = Trace.constant ~window_s:1. ~windows:4 10. in
  Alcotest.(check bool) "negative stride" true
    (raises (fun () -> Scenario.create ~stride:(-1) trace));
  Alcotest.(check bool) "zero span" true
    (raises (fun () -> Scenario.create ~span:0 trace));
  Alcotest.(check bool) "negative cursor at create" true
    (raises (fun () -> Scenario.create ~cursor:(-3) trace))

(* Regression: a corrupted checkpoint cursor used to reach [slice],
   where OCaml's truncating [mod] turned it into a negative array index
   and an [Invalid_argument] crash deep in replay.  Negative cursors are
   now rejected at the boundary, and [slice] itself stays total under a
   Euclidean modulo even for out-of-range cursors. *)
let test_scenario_cursor_out_of_range () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  let trace = { Trace.window_s = 1.; loads = [| 0.; 1.; 2.; 3.; 4.; 5. |] } in
  let sc = Scenario.create ~stride:1 ~span:3 trace in
  Alcotest.(check bool) "set_cursor rejects negative" true
    (raises (fun () -> Scenario.set_cursor sc (-1)));
  Alcotest.(check int) "rejected set leaves cursor untouched" 0 (Scenario.cursor sc);
  Scenario.set_cursor sc 7;
  let slice = Scenario.slice sc in
  Alcotest.(check bool) "> n cursor wraps, never raises" true
    (slice.Trace.loads = [| 1.; 2.; 3. |]);
  (* A checkpoint carrying a negative cursor must be rejected as
     malformed at parse time, not restored into the scenario. *)
  let ck =
    { Checkpoint.seed = 1;
      rng_state = 1L;
      clock_seconds = 0.;
      budget_start_seconds = 0.;
      iterations = 0;
      workers = 1;
      consecutive_invalid = 0;
      cache_capacity = 1;
      cache = [];
      strikes = [];
      quarantined = [];
      entries = [];
      inflight = [];
      pareto = [];
      trace_cursor = Some (-2) }
  in
  match Checkpoint.of_string (Checkpoint.to_string ck) with
  | Error (Checkpoint.Malformed _) -> ()
  | Error _ -> Alcotest.fail "expected Malformed for negative trace_cursor"
  | Ok _ -> Alcotest.fail "negative trace_cursor accepted"

let () =
  Alcotest.run "trace"
    [ ( "codec",
        [ QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick test_codec_rejects_malformed;
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip ] );
      ( "builders",
        [ Alcotest.test_case "all builders validate" `Quick test_builders_validate;
          Alcotest.test_case "nonsense rejected" `Quick test_builders_reject_nonsense;
          Alcotest.test_case "shapes" `Quick test_builder_shapes;
          Alcotest.test_case "diurnal deterministic in seed" `Quick test_diurnal_deterministic ] );
      ( "replay",
        [ QCheck_alcotest.to_alcotest prop_replay_deterministic;
          QCheck_alcotest.to_alcotest prop_replay_bounded;
          Alcotest.test_case "empty trace" `Quick test_replay_empty_trace;
          Alcotest.test_case "zero load" `Quick test_replay_zero_load;
          Alcotest.test_case "latency monotone in load" `Quick
            test_replay_latency_monotone_in_load;
          Alcotest.test_case "overload throughput capped" `Quick
            test_replay_overload_throughput_capped;
          Alcotest.test_case "bad service rejected" `Quick test_replay_rejects_bad_service ] );
      ( "scalarize",
        [ Alcotest.test_case "lone weight-1 term unscaled" `Quick
            test_scalarize_lone_weight_unscaled;
          Alcotest.test_case "weighted sum" `Quick test_scalarize_weighted_sum;
          Alcotest.test_case "epsilon constraint" `Quick test_scalarize_epsilon_constraint;
          Alcotest.test_case "validation" `Quick test_scalarize_validate ] );
      ( "objective",
        [ Alcotest.test_case "builtins" `Quick test_objective_builtins;
          Alcotest.test_case "dominance" `Quick test_objective_dominates ] );
      ( "pareto",
        [ QCheck_alcotest.to_alcotest prop_archive_never_dominated;
          QCheck_alcotest.to_alcotest prop_archive_order_independent;
          Alcotest.test_case "tie keeps smallest index" `Quick
            test_archive_tie_keeps_smallest_index;
          Alcotest.test_case "of_list/to_list roundtrip" `Quick test_archive_of_list_roundtrip;
          Alcotest.test_case "hypervolume proxy" `Quick test_hypervolume_proxy ] );
      ( "scenario",
        [ Alcotest.test_case "cursor" `Quick test_scenario_cursor;
          Alcotest.test_case "slice wraps" `Quick test_scenario_slice_wraps;
          Alcotest.test_case "empty trace" `Quick test_scenario_empty_trace;
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "cursor out of range" `Quick
            test_scenario_cursor_out_of_range ] ) ]
