(* Shared cross-algorithm conformance harness.

   Every search algorithm — random, grid, Bayesian, DeepTune and the
   Unicorn causal baseline — is driven through the same battery of engine
   invariants, in both the sequential driver and the batched multi-worker
   engine.  The harness lives in its own module so the conformance suite,
   the equivalence properties and the resume tests all exercise identical
   targets and algorithm constructions. *)

open Wayfinder_platform
module S = Wayfinder_simos
module D = Wayfinder_deeptune
module Unicorn = Wayfinder_causal.Unicorn
module Space = Wayfinder_configspace.Space
module Param = Wayfinder_configspace.Param
module Rng = Wayfinder_tensor.Rng
module Obs = Wayfinder_obs

(* ------------------------------------------------------------------ *)
(* Target                                                              *)
(* ------------------------------------------------------------------ *)

(* 4 × 2 × 3 = 24 grid points at the driver's default 4 int steps: big
   enough that a 12-iteration budget never exhausts the grid, small enough
   that every algorithm finds signal quickly. *)
let space () =
  Space.create
    [ Param.int_param "x" ~lo:0 ~hi:7 ~default:3;
      Param.bool_param "flag" false;
      Param.categorical_param "mode" [| "a"; "b"; "c" |] ~default:0 ]

(* Deterministic in the configuration; durations vary with [x] so
   multi-worker completion interleavings are non-trivial, and x = 7
   crashes so the failure paths are exercised. *)
let target () =
  Target.make ~name:"conformance" ~space:(space ()) ~metric:Metric.throughput
    (fun ~trial config ->
      ignore trial;
      match config with
      | [| Param.Vint x; Param.Vbool flag; Param.Vcat mode |] ->
        if x = 7 then
          { Target.value = Error Failure.Runtime_crash;
            build_s = 10.;
            boot_s = 1.;
            run_s = 2.; objectives = [||] }
        else
          let v =
            100.
            -. float_of_int ((x - 5) * (x - 5))
            +. (if flag then 4. else 0.)
            +. float_of_int mode
          in
          { Target.value = Ok v;
            build_s = 10.;
            boot_s = 1.;
            run_s = 2. +. (0.5 *. float_of_int x); objectives = [||] }
      | _ -> { Target.value = Error (Failure.Other "bad arity"); build_s = 0.; boot_s = 0.; run_s = 0.; objectives = [||] })

let faulty_target ~fault_rate ~seed =
  let t = target () in
  if fault_rate > 0. then
    Target.with_faults
      ~plan:(S.Faults.create ~rates:(S.Faults.rates_of_total fault_rate) ~seed ())
      t
  else t

(* ------------------------------------------------------------------ *)
(* The Unicorn adapter                                                 *)
(* ------------------------------------------------------------------ *)

(* Unicorn [38] is a causal-inference optimizer: it keeps an observation
   matrix (one column per option plus the performance target), re-runs
   PC-skeleton discovery as data arrives, and exploits the variables found
   causally adjacent to performance.  This adapter exposes that loop
   through the platform's ask/tell API: propose either mutates the best
   known configuration on an influential variable or samples fresh;
   observe appends a row and periodically refits the causal graph. *)
let unicorn_algorithm ~space () =
  let n_params = Space.size space in
  let u = Unicorn.create ~n_vars:(n_params + 1) () in
  let best = ref None in
  let influential = ref [] in
  let encode_value = function
    | Param.Vbool b -> if b then 1. else 0.
    | Param.Vtristate t -> float_of_int t /. 2.
    | Param.Vint x -> float_of_int x
    | Param.Vcat i -> float_of_int i
  in
  let propose ctx =
    let rng = ctx.Search_algorithm.rng in
    match (!best, !influential) with
    | Some (_, cfg), (var, _) :: _ when Rng.bool rng ->
      let c = Array.copy cfg in
      let p = (Space.params ctx.Search_algorithm.space).(var) in
      c.(var) <- Param.perturb p rng c.(var);
      c
    | _ -> Random_search.sampler ctx.Search_algorithm.space rng
  in
  let observe ctx (entry : History.entry) =
    let score =
      match entry.History.value with
      | Some v -> Metric.score ctx.Search_algorithm.metric v
      | None -> -1.
    in
    let row =
      Array.append (Array.map encode_value entry.History.config) [| score |]
    in
    Unicorn.add_observation u row;
    (match (entry.History.value, !best) with
    | Some _, None -> best := Some (score, entry.History.config)
    | Some _, Some (bs, _) when score > bs -> best := Some (score, entry.History.config)
    | _ -> ());
    let n = Unicorn.observations u in
    if n >= 4 && n mod 5 = 0 then begin
      ignore (Unicorn.refit u);
      influential :=
        List.filter (fun (v, _) -> v < n_params) (Unicorn.influential_on u ~target:n_params)
    end
  in
  Search_algorithm.make ~name:"unicorn" ~propose ~observe ()

(* ------------------------------------------------------------------ *)
(* Algorithm registry                                                  *)
(* ------------------------------------------------------------------ *)

let names = [ "random"; "grid"; "bayes"; "deeptune"; "unicorn" ]

(* Small DeepTune: the conformance budgets are ~12 iterations, so a 96
   candidate pool and 10 warm-up draws would never leave warm-up. *)
let deeptune_options =
  { D.Deeptune.default_options with D.Deeptune.warmup = 5; pool_size = 16 }

let algorithm name ~seed space =
  match name with
  | "random" -> Random_search.create ()
  | "grid" -> Grid_search.create ()
  | "bayes" -> Bayes_search.create ~n_init:4 ~pool:32 ~seed ()
  | "deeptune" ->
    D.Deeptune.algorithm (D.Deeptune.create ~options:deeptune_options ~seed space)
  | "unicorn" -> unicorn_algorithm ~space ()
  | other -> invalid_arg ("conformance: unknown algorithm " ^ other)

(* Wrap an algorithm so every [observe] call is counted per entry index —
   the observe-exactly-once invariant. *)
let with_observe_counter algo =
  let counts = Hashtbl.create 64 in
  let observe ctx (entry : History.entry) =
    let n = Option.value ~default:0 (Hashtbl.find_opt counts entry.History.index) in
    Hashtbl.replace counts entry.History.index (n + 1);
    algo.Search_algorithm.observe ctx entry
  in
  ({ algo with Search_algorithm.observe = observe }, counts)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let frozen_obs () = Obs.Recorder.create ~now:(fun () -> 0.) ()

type outcome = {
  result : Driver.result;
  observed : (int, int) Hashtbl.t;  (* entry index -> observe calls *)
}

(* [engine]: [`Sequential] is the legacy loop ([Driver.run_sequential]);
   [`Workers n] the batched engine.  The recorder is frozen so wall-clock
   fields are zero and outcomes compare byte-for-byte.

   [domains] runs the whole thing on a domain pool of that size: the pool
   is installed as the ambient default (so the numeric kernels — matmul,
   DTM training and pool scoring — parallelize) and handed to [Driver.run]
   for speculative evaluation prefetch.  The sequential loop never takes a
   pool; it is the determinism oracle the pooled runs are compared
   against. *)
let run ?(engine = `Workers 1) ?batch ?(seed = 7) ?(budget = Driver.Iterations 12)
    ?(fault_rate = 0.) ?checkpoint_path ?checkpoint_every ?resume_from ?on_iteration
    ?on_record ?image_cache ?domains name =
  let target = faulty_target ~fault_rate ~seed in
  let algo, observed = with_observe_counter (algorithm name ~seed target.Target.space) in
  let with_pool f =
    match domains with
    | None -> f None
    | Some n ->
      let pool = Domain_pool.create n in
      Fun.protect
        ~finally:(fun () -> Domain_pool.shutdown pool)
        (fun () -> Domain_pool.with_default (Some pool) (fun () -> f (Some pool)))
  in
  let result =
    with_pool (fun pool ->
        match engine with
        | `Sequential ->
          Driver.run_sequential ~seed ~obs:(frozen_obs ()) ?checkpoint_path ?checkpoint_every
            ?resume_from ?image_cache ~target ?on_iteration ?on_record ~algorithm:algo ~budget
            ()
        | `Workers workers ->
          Driver.run ~seed ~obs:(frozen_obs ()) ?checkpoint_path ?checkpoint_every
            ?resume_from ?on_iteration ?on_record ~workers ?batch ?image_cache ?pool ~target
            ~algorithm:algo ~budget ())
  in
  { result; observed }

(* ------------------------------------------------------------------ *)
(* Comparison helpers                                                  *)
(* ------------------------------------------------------------------ *)

let entries r = History.entries r.Driver.history

(* A multiset fingerprint of the evaluated configurations, insensitive to
   completion order. *)
let config_multiset r =
  entries r |> Array.to_list
  |> List.map (fun (e : History.entry) -> Array.to_list e.History.config)
  |> List.sort compare

let phase_sum r =
  List.fold_left (fun acc (_, s) -> acc +. s) 0. (Driver.phase_virtual_seconds r)

(* ------------------------------------------------------------------ *)
(* Trace-replay scenario harness                                       *)
(* ------------------------------------------------------------------ *)

(* The same 24-point synthetic space, but evaluated by replaying a flash
   crowd through a per-configuration service model: x buys capacity, mode
   and x cost memory, memory inflates the unloaded latency.  That puts
   throughput against p99/memory, so the Pareto front is non-trivial. *)

let scenario_spec =
  [| Metric.make ~name:"throughput" ~unit_name:"req/s" ();
     Metric.make ~maximize:false ~name:"p99" ~unit_name:"s" ();
     Metric.make ~maximize:false ~name:"memory" ~unit_name:"MiB" () |]

let scenario_trace () =
  S.Trace.flash_crowd ~window_s:1.0 ~windows:24 ~base:400. ~peak:1200. ~at:12 ~width:4

let make_scenario ?(stride = 1) () = Scenario.create ~stride (scenario_trace ())

let objective_of_summary (s : S.Trace_replay.summary) (m : Metric.t) =
  match m.Metric.metric_name with
  | "throughput" -> s.S.Trace_replay.mean_throughput_rps
  | "p50" -> s.S.Trace_replay.p50_latency_s
  | "p95" -> s.S.Trace_replay.p95_latency_s
  | "p99" -> s.S.Trace_replay.p99_latency_s
  | "memory" -> s.S.Trace_replay.peak_memory_mb
  | other -> invalid_arg ("conformance: unmeasurable objective " ^ other)

(* Mirrors the Targets.of_sim_linux_trace contract: one objective
   degenerates to a plain scalar target under that objective's metric;
   several scalarize into a synthetic "score" metric and report the raw
   vector. *)
let trace_target ?(spec = scenario_spec)
    ?(scalarize = Scalarize.Weighted_sum [| 1.; 1.; 1. |]) scenario =
  let n = Array.length spec in
  let metric =
    if n = 1 then spec.(0) else Metric.make ~name:"score" ~unit_name:"score" ()
  in
  Target.make ~name:"conformance-trace" ~space:(space ()) ~metric ~objective_spec:spec
    (fun ~trial config ->
      ignore trial;
      match config with
      | [| Param.Vint x; Param.Vbool flag; Param.Vcat mode |] ->
        if x = 7 then
          { Target.value = Error Failure.Runtime_crash;
            build_s = 10.;
            boot_s = 1.;
            run_s = 2.;
            objectives = [||] }
        else
          let rel = 0.6 +. (0.1 *. float_of_int x) +. (if flag then 0.2 else 0.) in
          let memory_mb =
            200. +. (60. *. float_of_int mode) +. (25. *. float_of_int x)
          in
          let service =
            { S.Trace_replay.capacity_rps = 1000. *. rel;
              base_latency_s = 0.001 *. (1. +. (memory_mb /. 400.));
              memory_mb }
          in
          let slice = Scenario.slice scenario in
          let summary = S.Trace_replay.replay slice service in
          let vec = Array.map (objective_of_summary summary) spec in
          let value = if n = 1 then vec.(0) else Scalarize.apply scalarize ~spec vec in
          { Target.value = Ok value;
            build_s = 10.;
            boot_s = 1.;
            run_s = S.Trace.duration_s slice;
            objectives = vec }
      | _ ->
        { Target.value = Error (Failure.Other "bad arity");
          build_s = 0.;
          boot_s = 0.;
          run_s = 0.;
          objectives = [||] })

(* "deeptune-multi" joins the registry for scenario runs only: the
   adapter needs the objective spec. *)
let scenario_names = names @ [ "deeptune-multi" ]

let scenario_algorithm name ~seed ~spec space =
  if name = "deeptune-multi" then
    D.Multi_objective.algorithm
      ~options:deeptune_options ~seed
      ~objectives:
        (Array.to_list
           (Array.map
              (fun (m : Metric.t) ->
                { D.Multi_objective.label = m.Metric.metric_name; weight = 1. })
              spec))
      ~spec space
  else algorithm name ~seed space

let run_scenario ?(engine = `Workers 1) ?batch ?(seed = 7)
    ?(budget = Driver.Iterations 12) ?(fault_rate = 0.) ?(stride = 1) ?spec ?scalarize
    ?checkpoint_path ?checkpoint_every ?resume_from ?on_iteration ?on_record name =
  let scenario = make_scenario ~stride () in
  let base = trace_target ?spec ?scalarize scenario in
  let target =
    if fault_rate > 0. then
      Target.with_faults
        ~plan:(S.Faults.create ~rates:(S.Faults.rates_of_total fault_rate) ~seed ())
        base
    else base
  in
  let algo, observed =
    with_observe_counter
      (scenario_algorithm name ~seed ~spec:target.Target.objective_spec target.Target.space)
  in
  let result =
    match engine with
    | `Sequential ->
      Driver.run_sequential ~seed ~obs:(frozen_obs ()) ?checkpoint_path ?checkpoint_every
        ?resume_from ~scenario ~target ?on_iteration ?on_record ~algorithm:algo ~budget ()
    | `Workers workers ->
      Driver.run ~seed ~obs:(frozen_obs ()) ?checkpoint_path ?checkpoint_every ?resume_from
        ~workers ?batch ~scenario ~target ?on_iteration ?on_record ~algorithm:algo ~budget ()
  in
  ({ result; observed }, Scenario.cursor scenario)

let archive_list r = Pareto.to_list r.Driver.pareto
