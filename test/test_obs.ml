open Wayfinder_obs

(* ------------------------------------------------------------------ *)
(* Attrs                                                               *)
(* ------------------------------------------------------------------ *)

let test_attr_json () =
  let attrs =
    [ Attr.string "name" "a \"quoted\"\nvalue";
      Attr.int "pool" 96;
      Attr.bool "built" true;
      Attr.float "dt" 1.5 ]
  in
  Alcotest.(check string)
    "escapes and types"
    {|{"name":"a \"quoted\"\nvalue","pool":96,"built":true,"dt":1.5}|}
    (Attr.to_json attrs)

let test_attr_nonfinite_floats () =
  Alcotest.(check string) "nan is null" "null" (Attr.json_of_value (Attr.Float nan));
  Alcotest.(check string) "inf is null" "null"
    (Attr.json_of_value (Attr.Float infinity));
  Alcotest.(check string) "integral floats stay short" "60"
    (Attr.json_of_value (Attr.Float 60.))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m ~by:2.5 "a";
  Metrics.incr m "b";
  let s = Metrics.snapshot m in
  Alcotest.(check (float 1e-9)) "accumulates" 3.5 (Metrics.counter s "a");
  Alcotest.(check (float 1e-9)) "independent" 1. (Metrics.counter s "b");
  Alcotest.(check (float 1e-9)) "absent is 0" 0. (Metrics.counter s "c");
  Alcotest.(check (list string)) "sorted by name" [ "a"; "b" ]
    (List.map fst s.Metrics.counters)

let test_metrics_histogram () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "h") [ 1.0; 2.0; 4.0; 8.0 ];
  let s = Metrics.snapshot m in
  (match Metrics.histogram s "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 4 h.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 15. h.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 1. h.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 8. h.Metrics.max;
    Alcotest.(check (float 1e-9)) "mean" 3.75 (Metrics.mean h);
    (* Quantiles are bucket upper bounds clamped to [min, max]. *)
    Alcotest.(check bool) "p0 at min" true (Metrics.quantile h 0. >= 1.);
    Alcotest.(check (float 1e-9)) "p100 clamps to max" 8. (Metrics.quantile h 1.));
  Alcotest.(check (float 1e-9)) "sum helper" 15. (Metrics.sum s "h");
  Alcotest.(check (float 1e-9)) "sum of absent is 0" 0. (Metrics.sum s "nope")

let test_metrics_bucket_edges () =
  (* A sample exactly on a power of two lands in the bucket it bounds
     (bounds are inclusive). *)
  for e = Metrics.min_exp + 1 to Metrics.max_exp do
    let v = Float.pow 2. (float_of_int e) in
    Alcotest.(check (float 0.))
      (Printf.sprintf "2^%d on its own bound" e)
      v
      (Metrics.bucket_bound (Metrics.bucket_index v))
  done;
  let tiny = Float.pow 2. (float_of_int Metrics.min_exp) in
  Alcotest.(check int) "at 2^min_exp -> bucket 0" 0 (Metrics.bucket_index tiny);
  Alcotest.(check int) "below 2^min_exp -> bucket 0" 0 (Metrics.bucket_index (tiny /. 4.));
  Alcotest.(check int) "zero -> bucket 0" 0 (Metrics.bucket_index 0.);
  Alcotest.(check int) "negative -> bucket 0" 0 (Metrics.bucket_index (-3.));
  Alcotest.(check int) "nan -> bucket 0" 0 (Metrics.bucket_index Float.nan);
  let huge = Float.pow 2. (float_of_int Metrics.max_exp) *. 4. in
  Alcotest.(check int) "above 2^max_exp -> last bucket" (Metrics.n_buckets - 1)
    (Metrics.bucket_index huge);
  Alcotest.(check (float 0.)) "last bound is +inf" infinity
    (Metrics.bucket_bound (Metrics.n_buckets - 1))

let test_metrics_nan_does_not_poison () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "h") [ 1.0; Float.nan; 4.0 ];
  match Metrics.histogram (Metrics.snapshot m) "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "nan still counted" 3 h.Metrics.count;
    Alcotest.(check (float 0.)) "min unpoisoned" 1. h.Metrics.min;
    Alcotest.(check (float 0.)) "max unpoisoned" 4. h.Metrics.max;
    (* The NaN sits in bucket 0 with the other non-positives. *)
    let b0 =
      Array.fold_left
        (fun acc (bound, c) -> if bound <= Float.pow 2. (float Metrics.min_exp) then acc + c else acc)
        0 h.Metrics.buckets
    in
    Alcotest.(check int) "nan in bucket 0" 1 b0

(* Interpolated quantiles stay within one power-of-two bucket of the
   exact order statistic: for positive in-range samples that is a factor
   of 2 either way. *)
let quantile_error_bound_prop =
  QCheck2.Test.make ~count:200 ~name:"quantile within a bucket of exact"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 60) (float_range 1e-3 1e5))
        (float_range 0. 1.))
    (fun (samples, q) ->
      let m = Metrics.create () in
      List.iter (Metrics.observe m "h") samples;
      match Metrics.histogram (Metrics.snapshot m) "h" with
      | None -> false
      | Some h ->
        let sorted = List.sort compare samples in
        let n = List.length sorted in
        let k =
          Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n)))
        in
        let exact = List.nth sorted (k - 1) in
        let est = Metrics.quantile h q in
        est >= (exact /. 2.) -. 1e-9 && est <= (exact *. 2.) +. 1e-9)

let test_metrics_snapshot_is_immutable () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  let s = Metrics.snapshot m in
  Metrics.incr m ~by:10. "a";
  Alcotest.(check (float 1e-9)) "snapshot frozen" 1. (Metrics.counter s "a");
  Alcotest.(check (float 1e-9)) "registry kept counting" 11.
    (Metrics.counter (Metrics.snapshot m) "a")

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let test_memory_ring_drops_oldest () =
  let store = Sink.Memory.create ~capacity:3 () in
  let sink = Sink.Memory.sink store in
  for i = 1 to 5 do
    Sink.emit sink
      (Event.Count
         { name = Printf.sprintf "c%d" i;
           delta = 1.;
           at = { Event.wall_s = 0.; virtual_s = 0. } })
  done;
  Alcotest.(check int) "length bounded" 3 (Sink.Memory.length store);
  Alcotest.(check int) "dropped counted" 2 (Sink.Memory.dropped store);
  Alcotest.(check (list string)) "oldest retained first" [ "c3"; "c4"; "c5" ]
    (List.map Event.name (Sink.Memory.events store));
  Sink.Memory.clear store;
  Alcotest.(check int) "clear empties" 0 (Sink.Memory.length store)

let test_memory_rejects_bad_capacity () =
  Alcotest.(check bool) "capacity 0 rejected" true
    (try
       ignore (Sink.Memory.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

let test_jsonl_sink_format () =
  let buf = Buffer.create 256 in
  let sink = Sink.jsonl (Buffer.add_string buf) in
  Sink.emit sink
    (Event.Span
       { name = "driver.build";
         attrs = [ Attr.bool "built" true ];
         began = { Event.wall_s = 0.5; virtual_s = 10. };
         wall_duration_s = 0.;
         virtual_duration_s = 112.5 });
  Sink.emit sink
    (Event.Sample
       { name = "loss"; value = 0.25; at = { Event.wall_s = 1.; virtual_s = 0. } });
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check int) "schema header, one line per event, trailing" 4 (List.length lines);
  Alcotest.(check string) "schema header line"
    (Sink.schema_header ~kind:"trace")
    (List.nth lines 0);
  let first = List.nth lines 1 in
  Alcotest.(check bool) "span line carries type" true
    (String.length first > 0
    && String.sub first 0 15 = {|{"type":"span",|});
  Alcotest.(check bool) "span line carries attrs" true
    (let needle = {|"attrs":{"built":true}|} in
     let n = String.length needle in
     let rec scan i =
       i + n <= String.length first
       && (String.sub first i n = needle || scan (i + 1))
     in
     scan 0)

(* The write-callback JSONL sink must surface a real flush: a buffered
   owner that is never flushed loses the tail on crash.  Emit through a
   buffered out_channel and check the event is on disk only after
   Sink.flush. *)
let test_jsonl_sink_flush_visibility () =
  let path = Filename.temp_file "wayfinder_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      let sink = Sink.jsonl ~flush:(fun () -> flush oc) (output_string oc) in
      Sink.emit sink
        (Event.Count { name = "c"; delta = 1.; at = { Event.wall_s = 0.; virtual_s = 0. } });
      Sink.flush sink;
      let on_disk = In_channel.with_open_text path In_channel.input_all in
      close_out oc;
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' on_disk)
      in
      Alcotest.(check int) "header and event visible after flush" 2 (List.length lines);
      Alcotest.(check string) "header first" (Sink.schema_header ~kind:"trace")
        (List.nth lines 0))

let test_tee_forwards_in_order () =
  let seen = ref [] in
  let make tag = Sink.make ~emit:(fun e -> seen := (tag, Event.name e) :: !seen) () in
  let tee = Sink.tee [ make "a"; make "b" ] in
  Sink.emit tee
    (Event.Count { name = "x"; delta = 1.; at = { Event.wall_s = 0.; virtual_s = 0. } });
  Alcotest.(check (list (pair string string)))
    "both sinks, in order"
    [ ("a", "x"); ("b", "x") ]
    (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

(* A recorder with hand-cranked clocks so durations are deterministic. *)
let manual_recorder ?sinks () =
  let wall = ref 0. and virt = ref 0. in
  let r = Recorder.create ~now:(fun () -> !wall) ~virtual_now:(fun () -> !virt) ?sinks () in
  (r, wall, virt)

let test_recorder_span_histograms () =
  let r, wall, virt = manual_recorder () in
  let sp = Recorder.span_begin r "phase" in
  wall := 2.;
  virt := 60.;
  Recorder.span_end r sp;
  let s = Recorder.snapshot r in
  Alcotest.(check (float 1e-9)) "wall histogram fed" 2. (Metrics.sum s "phase.wall_s");
  Alcotest.(check (float 1e-9)) "virtual histogram fed" 60.
    (Metrics.sum s "phase.virtual_s")

let test_recorder_span_without_virtual_advance () =
  let r, wall, _ = manual_recorder () in
  Recorder.with_span r "p" (fun () -> wall := 1.);
  let s = Recorder.snapshot r in
  Alcotest.(check bool) "no virtual histogram when clock idle" true
    (Metrics.histogram s "p.virtual_s" = None);
  Alcotest.(check (float 1e-9)) "wall recorded" 1. (Metrics.sum s "p.wall_s")

let test_recorder_with_span_propagates_error () =
  let store = Sink.Memory.create () in
  let r, _, _ = manual_recorder ~sinks:[ Sink.Memory.sink store ] () in
  Alcotest.(check bool) "exception re-raised" true
    (try
       let (_ : int) = Recorder.with_span r "boom" (fun () -> failwith "no") in
       false
     with Failure _ -> true);
  (* The span still closed, with an error attribute. *)
  match Sink.Memory.events store with
  | [ Event.Span { name = "boom"; attrs; _ } ] ->
    Alcotest.(check bool) "error attr set" true
      (Attr.find attrs "error" = Some (Attr.Bool true))
  | _ -> Alcotest.fail "expected exactly one span event"

let test_recorder_emit_span_virtual_only () =
  let r, _, _ = manual_recorder () in
  Recorder.emit_span r ~virtual_s:42. "driver.boot";
  let s = Recorder.snapshot r in
  Alcotest.(check (float 1e-9)) "virtual recorded" 42.
    (Metrics.sum s "driver.boot.virtual_s");
  Alcotest.(check bool) "no wall histogram" true
    (Metrics.histogram s "driver.boot.wall_s" = None)

let test_recorder_quiet_skips_events_not_metrics () =
  let store = Sink.Memory.create () in
  let r, _, _ = manual_recorder ~sinks:[ Sink.Memory.sink store ] () in
  Recorder.incr r ~quiet:true "silent";
  Recorder.observe r ~quiet:true "silent_h" 1.;
  Recorder.incr r "loud";
  Alcotest.(check (list string)) "only loud events reach sinks" [ "loud" ]
    (List.map Event.name (Sink.Memory.events store));
  let s = Recorder.snapshot r in
  Alcotest.(check (float 1e-9)) "quiet counter aggregated" 1.
    (Metrics.counter s "silent");
  Alcotest.(check (float 1e-9)) "quiet histogram aggregated" 1.
    (Metrics.sum s "silent_h")

let test_alert_event_json () =
  Alcotest.(check string) "alert json"
    {|{"type":"alert","rule":"crash","message":"windowed crash rate 50% > 10%","wall_s":1.5,"virtual_s":60}|}
    (Event.to_json
       (Event.Alert
          { rule = "crash";
            message = "windowed crash rate 50% > 10%";
            at = { Event.wall_s = 1.5; virtual_s = 60. } }))

let test_recorder_alert () =
  let store = Sink.Memory.create () in
  let r, _, _ = manual_recorder ~sinks:[ Sink.Memory.sink store ] () in
  Recorder.alert r ~rule:"stall" "no improvement in 30 iterations";
  (match Sink.Memory.events store with
  | [ Event.Alert { rule = "stall"; message; _ } ] ->
    Alcotest.(check string) "message carried" "no improvement in 30 iterations" message
  | _ -> Alcotest.fail "expected exactly one alert event");
  Alcotest.(check (float 1e-9)) "per-rule counter" 1.
    (Metrics.counter (Recorder.snapshot r) "alerts.stall")

let test_recorder_timed () =
  let r, wall, _ = manual_recorder () in
  let x, dt =
    Recorder.timed r "work" (fun () ->
        wall := !wall +. 0.25;
        7)
  in
  Alcotest.(check int) "result passed through" 7 x;
  Alcotest.(check (float 1e-9)) "duration measured" 0.25 dt

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_si () =
  List.iter
    (fun (v, expect) -> Alcotest.(check string) (Printf.sprintf "si %g" v) expect (Summary.si v))
    [ (0., "0");
      (5e-4, "500us");
      (0.25, "250.0ms");
      (1.5, "1.50s");
      (59.99, "59.99s");
      (* Minute boundary is exactly 60 s — 90 s must not render as seconds. *)
      (60., "1.0m");
      (90., "1.5m");
      (3600., "60.0m");
      (7200., "2.0h");
      (* Sign applies outside the unit conversion. *)
      (-90., "-1.5m");
      (-0.25, "-250.0ms");
      (nan, "nan");
      (infinity, "inf");
      (neg_infinity, "-inf") ]

let test_summary_phase_line () =
  let m = Metrics.create () in
  Metrics.observe m "driver.build.virtual_s" 75.;
  Metrics.observe m "driver.run.virtual_s" 25.;
  let line =
    Summary.phase_line (Metrics.snapshot m)
      ~phases:[ ("build", "driver.build"); ("boot", "driver.boot"); ("run", "driver.run") ]
      ~suffix:".virtual_s"
  in
  Alcotest.(check bool) "build share" true
    (let contains needle hay =
       let n = String.length needle in
       let rec scan i =
         i + n <= String.length hay && (String.sub hay i n = needle || scan (i + 1))
       in
       scan 0
     in
     contains "build" line && contains "75%" line && contains "25%" line
     && contains "boot" line)

let test_summary_to_text_mentions_everything () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3. "driver.iterations";
  Metrics.observe m "driver.boot.virtual_s" 5.;
  let text = Summary.to_text ~title:"t" (Metrics.snapshot m) in
  let contains needle =
    let n = String.length needle in
    let rec scan i =
      i + n <= String.length text && (String.sub text i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "title" true (contains "t");
  Alcotest.(check bool) "counter listed" true (contains "driver.iterations");
  Alcotest.(check bool) "histogram listed" true (contains "driver.boot.virtual_s")

let () =
  Alcotest.run "obs"
    [ ( "attr",
        [ Alcotest.test_case "json rendering" `Quick test_attr_json;
          Alcotest.test_case "non-finite floats" `Quick test_attr_nonfinite_floats ] );
      ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "bucket edges" `Quick test_metrics_bucket_edges;
          Alcotest.test_case "nan does not poison min/max" `Quick
            test_metrics_nan_does_not_poison;
          QCheck_alcotest.to_alcotest quantile_error_bound_prop;
          Alcotest.test_case "snapshot immutable" `Quick test_metrics_snapshot_is_immutable ] );
      ( "sinks",
        [ Alcotest.test_case "memory ring drops oldest" `Quick test_memory_ring_drops_oldest;
          Alcotest.test_case "memory rejects bad capacity" `Quick
            test_memory_rejects_bad_capacity;
          Alcotest.test_case "jsonl format" `Quick test_jsonl_sink_format;
          Alcotest.test_case "jsonl flush visibility" `Quick test_jsonl_sink_flush_visibility;
          Alcotest.test_case "tee order" `Quick test_tee_forwards_in_order ] );
      ( "recorder",
        [ Alcotest.test_case "span feeds both histograms" `Quick
            test_recorder_span_histograms;
          Alcotest.test_case "no virtual histogram when idle" `Quick
            test_recorder_span_without_virtual_advance;
          Alcotest.test_case "with_span propagates errors" `Quick
            test_recorder_with_span_propagates_error;
          Alcotest.test_case "emit_span virtual only" `Quick
            test_recorder_emit_span_virtual_only;
          Alcotest.test_case "quiet skips events not metrics" `Quick
            test_recorder_quiet_skips_events_not_metrics;
          Alcotest.test_case "alert event json" `Quick test_alert_event_json;
          Alcotest.test_case "recorder alert" `Quick test_recorder_alert;
          Alcotest.test_case "timed" `Quick test_recorder_timed ] );
      ( "summary",
        [ Alcotest.test_case "si rendering" `Quick test_summary_si;
          Alcotest.test_case "phase line" `Quick test_summary_phase_line;
          Alcotest.test_case "to_text" `Quick test_summary_to_text_mentions_everything ] )
    ]
